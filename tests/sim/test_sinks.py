"""Unit tests for the pluggable trace sinks (emit layer)."""

from collections import Counter

import pytest

from repro.net import UniformDelay
from repro.sim import trace as T
from repro.sim.trace import (
    InMemorySink,
    JsonlStreamSink,
    MetricsSink,
    NullSink,
    Trace,
    load_jsonl,
)
from repro.testing import build_sim, run_random_workload
from repro.types import MessageId, TreeId


def record_sample(trace):
    """A small stream exercising the full field vocabulary."""
    trace.record(0.0, T.K_SEND, pid=0, msg_id=MessageId(0, 1), dst=1, label=1, payload="x")
    trace.record(0.5, T.K_RECEIVE, pid=1, msg_id=MessageId(0, 1), src=0, label=1)
    trace.record(1.0, T.K_CTRL_SEND, pid=1, dst=0, msg_type="chkpt_req", tree=TreeId(1, 2))
    trace.record(1.5, T.K_CHKPT_TENTATIVE, pid=1, seq=2, tree=TreeId(1, 2))
    trace.record(2.0, T.K_PARTITION, groups=[{0}, {1}])
    trace.record(2.5, T.K_ROLLBACK, pid=0, to_seq=1, tree=None, target="oldchkpt",
                 undone_sends=1, undone_receives=0)


def test_default_trace_keeps_events_in_memory():
    trace = Trace()
    record_sample(trace)
    assert len(trace) == 6
    assert trace.retained_events == 6
    assert [e.kind for e in trace][:2] == [T.K_SEND, T.K_RECEIVE]
    assert len(trace.of_kind(T.K_SEND)) == 1


def test_null_sink_retains_nothing_but_counts():
    trace = Trace(sinks=[NullSink()])
    record_sample(trace)
    assert len(trace) == 6
    assert trace.events_recorded == 6
    assert trace.retained_events == 0


def test_streaming_trace_rejects_memory_queries():
    trace = Trace(sinks=[NullSink()])
    record_sample(trace)
    with pytest.raises(RuntimeError, match="no InMemorySink"):
        trace.events
    with pytest.raises(RuntimeError, match="no InMemorySink"):
        list(trace)


def test_backfill_requires_memory_sink():
    trace = Trace(sinks=[NullSink()])
    record_sample(trace)
    with pytest.raises(RuntimeError, match="backfill"):
        trace.add_sink(InMemorySink())


def test_late_sink_is_backfilled_from_memory():
    trace = Trace()
    record_sample(trace)
    late = trace.add_sink(InMemorySink())
    assert late.events == trace.events
    trace.record(3.0, T.K_CRASH, pid=0)
    assert len(late.events) == 7


def test_jsonl_round_trip_is_lossless(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlStreamSink(path)
    trace = Trace(sinks=[sink, InMemorySink()])
    record_sample(trace)
    trace.close()
    assert sink.written == 6

    reloaded = load_jsonl(path)
    assert len(reloaded) == len(trace.events)
    for original, copy in zip(trace.events, reloaded):
        assert copy.index == original.index
        assert copy.time == original.time
        assert copy.kind == original.kind
        assert copy.pid == original.pid
        assert copy.fields == original.fields
    # Rich ids reconstruct as their real types, not strings.
    assert isinstance(reloaded[0].fields["msg_id"], MessageId)
    assert isinstance(reloaded[2].fields["tree"], TreeId)


def test_jsonl_streaming_run_matches_in_memory_run(tmp_path):
    """Same seed, different sinks: the event streams must be identical."""
    path = str(tmp_path / "run.jsonl")
    sim_mem, procs_mem = build_sim(n=4, seed=7, delay=UniformDelay(0.3, 0.9))
    run_random_workload(sim_mem, procs_mem, duration=10.0, checkpoint_rate=0.1,
                        error_rate=0.02)

    stream = JsonlStreamSink(path)
    sim_str, procs_str = build_sim(n=4, seed=7, delay=UniformDelay(0.3, 0.9),
                                   sinks=[stream])
    run_random_workload(sim_str, procs_str, duration=10.0, checkpoint_rate=0.1,
                        error_rate=0.02)
    sim_str.trace.close()

    assert sim_str.trace.retained_events == 0
    assert stream.written == len(sim_mem.trace) > 0
    reloaded = load_jsonl(path)
    assert [(e.time, e.kind, e.pid) for e in reloaded] == [
        (e.time, e.kind, e.pid) for e in sim_mem.trace
    ]


def test_metrics_sink_counters_match_brute_force():
    memory = InMemorySink()
    metrics = MetricsSink()
    sim, procs = build_sim(n=5, seed=3, delay=UniformDelay(0.3, 0.9),
                           sinks=[memory, metrics])
    run_random_workload(sim, procs, duration=20.0, checkpoint_rate=0.1,
                        error_rate=0.05)

    by_kind = Counter(e.kind for e in memory.events)
    assert metrics.events_by_kind == by_kind
    assert metrics.total_events == len(memory.events)
    assert metrics.checkpoints_tentative == by_kind[T.K_CHKPT_TENTATIVE]
    assert metrics.checkpoints_committed == by_kind[T.K_CHKPT_COMMIT]
    assert metrics.checkpoints_aborted == by_kind[T.K_CHKPT_ABORT]
    assert metrics.rollbacks == by_kind[T.K_ROLLBACK]

    per_tree = Counter(
        e.fields.get("tree") for e in memory.events if e.kind == T.K_CTRL_SEND
    )
    assert metrics.control_sends_per_tree == per_tree

    depths = [
        e.fields.get("undone_sends", 0) + e.fields.get("undone_receives", 0)
        for e in memory.events
        if e.kind == T.K_ROLLBACK
    ]
    assert metrics.rollback_depth_total == sum(depths)
    assert metrics.max_rollback_depth == (max(depths) if depths else 0)

    snap = metrics.snapshot()
    assert snap["total_events"] == len(memory.events)
    assert snap["rollbacks"] == metrics.rollbacks


def test_trace_or_sinks_are_exclusive():
    from repro.errors import SimulationError
    from repro.sim import Simulation

    with pytest.raises(SimulationError, match="not both"):
        Simulation(trace=Trace(), sinks=[NullSink()])


def test_shared_trace_can_be_passed_in():
    from repro.sim import Simulation

    trace = Trace()
    sim = Simulation(trace=trace)
    assert sim.trace is trace


def test_jsonl_sink_buffers_until_flush_threshold(tmp_path):
    path = str(tmp_path / "buffered.jsonl")
    sink = JsonlStreamSink(path, flush_every=4)
    trace = Trace(sinks=[sink])
    # Three events sit in the buffer; nothing has hit the file yet.
    trace.record(0.0, T.K_SEND, pid=0, msg_id=MessageId(0, 1), dst=1, label=1)
    trace.record(0.5, T.K_RECEIVE, pid=1, msg_id=MessageId(0, 1), src=0, label=1)
    trace.record(1.0, T.K_CRASH, pid=0)
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == ""
    # The fourth crosses flush_every: all four land in one write.
    trace.record(1.5, T.K_RECOVER, pid=0)
    assert len(load_jsonl(path)) == 4
    # An explicit flush forces a partial buffer out.
    trace.record(2.0, T.K_CRASH, pid=1)
    sink.flush()
    assert len(load_jsonl(path)) == 5
    trace.close()


def test_jsonl_sink_close_is_idempotent_and_guards_late_emits(tmp_path):
    path = str(tmp_path / "closed.jsonl")
    sink = JsonlStreamSink(path, flush_every=64)
    trace = Trace(sinks=[sink])
    record_sample(trace)
    trace.close()
    trace.close()  # idempotent
    assert sink.closed
    assert len(load_jsonl(path)) == 6  # close flushed the buffer
    with pytest.raises(RuntimeError, match="closed"):
        sink.emit(T.TraceEvent(index=99, time=9.0, kind=T.K_CRASH, pid=0, fields={}))


def test_jsonl_sink_rejects_bad_flush_every(tmp_path):
    with pytest.raises(ValueError):
        JsonlStreamSink(str(tmp_path / "x.jsonl"), flush_every=0)
