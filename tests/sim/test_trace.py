"""Unit tests for the structured trace."""

from repro.sim import trace as T
from repro.sim.trace import Trace


def make_trace():
    tr = Trace()
    tr.record(1.0, T.K_SEND, pid=0, msg_id="m1", dst=1, label=1)
    tr.record(2.0, T.K_RECEIVE, pid=1, msg_id="m1", src=0, label=1)
    tr.record(3.0, T.K_CHKPT_TENTATIVE, pid=1, seq=2, tree="t")
    tr.record(4.0, T.K_CHKPT_COMMIT, pid=1, seq=2, tree="t")
    tr.record(5.0, T.K_CRASH, pid=0)
    return tr


def test_records_are_ordered_and_indexed():
    tr = make_trace()
    assert len(tr) == 5
    assert [e.index for e in tr] == [0, 1, 2, 3, 4]
    assert tr[2].kind == T.K_CHKPT_TENTATIVE


def test_field_attribute_access():
    tr = make_trace()
    assert tr[0].msg_id == "m1"
    assert tr[0].dst == 1


def test_missing_field_raises_attribute_error():
    tr = make_trace()
    try:
        tr[0].nonexistent
        assert False, "expected AttributeError"
    except AttributeError:
        pass


def test_of_kind_filters():
    tr = make_trace()
    assert len(tr.of_kind(T.K_SEND)) == 1
    assert len(tr.of_kind(T.K_SEND, T.K_RECEIVE)) == 2


def test_for_process_filters():
    tr = make_trace()
    assert len(tr.for_process(1)) == 3
    assert len(tr.for_process(1, T.K_CHKPT_COMMIT)) == 1


def test_where_predicate():
    tr = make_trace()
    late = tr.where(lambda e: e.time >= 3.0)
    assert len(late) == 3


def test_last():
    tr = make_trace()
    assert tr.last(T.K_CHKPT_COMMIT).seq == 2
    assert tr.last(T.K_SEND, pid=1) is None


def test_dump_renders_lines():
    tr = make_trace()
    text = tr.dump(limit=2)
    assert text.count("\n") == 1
    assert "send" in text


def test_to_jsonl_roundtrips(tmp_path):
    import json

    from repro.types import MessageId, TreeId

    tr = Trace()
    tr.record(1.0, T.K_SEND, pid=0, msg_id=MessageId(0, 0), dst=1, label=1)
    tr.record(2.0, T.K_CHKPT_TENTATIVE, pid=1, seq=2, tree=TreeId(1, 0))
    path = str(tmp_path / "trace.jsonl")
    written = tr.to_jsonl(path)
    assert written == 2
    lines = [json.loads(line) for line in open(path)]
    assert lines[0]["kind"] == "send"
    assert lines[0]["msg_id"] == "m(P0#0)"
    assert lines[1]["tree"] == "T(P1@0)"
    assert lines[1]["time"] == 2.0
