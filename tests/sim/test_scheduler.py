"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim.event import (
    PRIORITY_CHECKPOINT,
    PRIORITY_NORMAL,
    PRIORITY_ROLLBACK,
    PRIORITY_TIMER,
)
from repro.sim.scheduler import Scheduler


def test_events_fire_in_time_order():
    sched = Scheduler()
    order = []
    sched.at(3.0, lambda: order.append("c"))
    sched.at(1.0, lambda: order.append("a"))
    sched.at(2.0, lambda: order.append("b"))
    sched.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_insertion_order():
    sched = Scheduler()
    order = []
    for k in range(10):
        sched.at(1.0, lambda k=k: order.append(k))
    sched.run()
    assert order == list(range(10))


def test_priority_orders_same_instant_events():
    sched = Scheduler()
    order = []
    sched.at(1.0, lambda: order.append("timer"), priority=PRIORITY_TIMER)
    sched.at(1.0, lambda: order.append("normal"), priority=PRIORITY_NORMAL)
    sched.at(1.0, lambda: order.append("ckpt"), priority=PRIORITY_CHECKPOINT)
    sched.at(1.0, lambda: order.append("roll"), priority=PRIORITY_ROLLBACK)
    sched.run()
    assert order == ["roll", "ckpt", "normal", "timer"]


def test_rollback_priority_is_highest():
    assert PRIORITY_ROLLBACK < PRIORITY_CHECKPOINT < PRIORITY_NORMAL < PRIORITY_TIMER


def test_now_advances_to_event_time():
    sched = Scheduler()
    seen = []
    sched.at(5.0, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [5.0]
    assert sched.now == 5.0


def test_after_is_relative_to_now():
    sched = Scheduler()
    times = []
    sched.at(10.0, lambda: sched.after(2.5, lambda: times.append(sched.now)))
    sched.run()
    assert times == [12.5]


def test_scheduling_in_the_past_raises():
    sched = Scheduler()
    sched.at(5.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.at(3.0, lambda: None)


def test_negative_delay_raises():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.after(-1.0, lambda: None)


def test_cancelled_events_are_skipped():
    sched = Scheduler()
    fired = []
    event = sched.at(1.0, lambda: fired.append("cancelled"))
    sched.at(2.0, lambda: fired.append("kept"))
    event.cancel()
    sched.run()
    assert fired == ["kept"]


def test_run_until_is_inclusive():
    sched = Scheduler()
    fired = []
    sched.at(1.0, lambda: fired.append(1))
    sched.at(2.0, lambda: fired.append(2))
    sched.at(3.0, lambda: fired.append(3))
    sched.run(until=2.0)
    assert fired == [1, 2]
    assert sched.now == 2.0


def test_run_resumes_after_until():
    sched = Scheduler()
    fired = []
    sched.at(1.0, lambda: fired.append(1))
    sched.at(5.0, lambda: fired.append(5))
    sched.run(until=2.0)
    sched.run()
    assert fired == [1, 5]


def test_max_events_raises_on_runaway():
    sched = Scheduler()

    def reschedule():
        sched.after(1.0, reschedule)

    sched.at(0.0, reschedule)
    with pytest.raises(SimulationError, match="livelock"):
        sched.run(max_events=100)


def test_events_processed_counter():
    sched = Scheduler()
    for k in range(7):
        sched.at(float(k), lambda: None)
    sched.run()
    assert sched.events_processed == 7


def test_step_returns_false_when_exhausted():
    sched = Scheduler()
    sched.at(1.0, lambda: None)
    assert sched.step() is True
    assert sched.step() is False


def test_events_scheduled_during_run_are_processed():
    sched = Scheduler()
    order = []

    def chain(n):
        order.append(n)
        if n < 3:
            sched.after(1.0, lambda: chain(n + 1))

    sched.at(0.0, lambda: chain(0))
    sched.run()
    assert order == [0, 1, 2, 3]


def test_pending_excludes_cancelled_events():
    sched = Scheduler()
    events = [sched.at(float(k), lambda: None) for k in range(5)]
    assert sched.pending == 5
    events[1].cancel()
    events[3].cancel()
    # Lazily deleted: still physically in the heap, but not due to fire.
    assert sched.pending == 3
    assert sched.pending_raw == 5
    assert sched.events_cancelled == 2


def test_pending_settles_after_run():
    sched = Scheduler()
    keep = sched.at(1.0, lambda: None)
    drop = sched.at(2.0, lambda: None)
    drop.cancel()
    sched.run()
    assert sched.pending == 0
    assert sched.pending_raw == 0
    assert sched.events_processed == 1
    assert sched.events_cancelled == 1
    assert keep.cancelled is False


def test_double_cancel_counts_once():
    sched = Scheduler()
    event = sched.at(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert sched.events_cancelled == 1
    assert sched.pending == 0
    # Cancelling the heap's only event makes tombstones the majority, so
    # compaction evicts it right away.
    assert sched.pending_raw == 0
    sched.run()
    assert sched.pending_raw == 0


def test_compaction_evicts_cancelled_majority():
    sched = Scheduler()
    keep = [sched.at(float(k), lambda: None) for k in range(4)]
    drop = [sched.at(float(10 + k), lambda: None) for k in range(5)]
    for k, event in enumerate(drop):
        event.cancel()
        if k < 4:  # 1..4 dead of 9 total: still a minority
            assert sched.compactions == 0
    # The fifth cancel tips the majority and triggers a rebuild.
    assert sched.compactions == 1
    assert sched.pending == 4
    assert sched.pending_raw == 4
    assert all(not event.cancelled for event in keep)


def test_compaction_preserves_firing_order():
    sched = Scheduler()
    order = []
    keep = []
    drop = []
    for k in range(20):
        target = keep if k % 3 == 0 else drop
        target.append(sched.at(float(k), lambda k=k: order.append(k)))
    for event in drop:
        event.cancel()
    assert sched.compactions >= 1
    sched.run()
    assert order == sorted(k for k in range(20) if k % 3 == 0)


def test_cancel_after_compaction_is_harmless():
    sched = Scheduler()
    sched.at(1.0, lambda: None)
    doomed = [sched.at(2.0, lambda: None) for _ in range(3)]
    for event in doomed:
        event.cancel()
    assert sched.compactions >= 1
    assert sched.pending_raw == 1  # only the live event survived
    # Evicted events lost their hook: re-cancelling must not skew counters.
    for event in doomed:
        event.cancel()
    assert sched.events_cancelled == 3
    assert sched.pending == 1
    assert sched.pending_raw == 1


def test_cancel_after_fire_does_not_skew_pending():
    sched = Scheduler()
    fired = []
    event = sched.at(1.0, lambda: fired.append(1))
    sched.at(2.0, lambda: event.cancel())
    sched.at(3.0, lambda: None)
    sched.run(until=2.0)
    # Cancelling an already-fired event is a no-op for heap accounting.
    assert fired == [1]
    assert sched.pending == 1
    assert sched.pending_raw == 1


def test_pending_during_run_sees_future_events():
    sched = Scheduler()
    seen = []
    extra = []
    sched.at(1.0, lambda: extra.append(sched.at(5.0, lambda: None)))
    sched.at(2.0, lambda: extra[0].cancel())
    sched.at(3.0, lambda: seen.append(sched.pending))
    sched.run()
    assert seen == [0]


def test_scheduler_not_reentrant():
    sched = Scheduler()
    errors = []

    def reenter():
        try:
            sched.run()
        except SimulationError as exc:
            errors.append(exc)

    sched.at(1.0, reenter)
    sched.run()
    assert len(errors) == 1
