"""The membership plane: epoch-numbered views and the sim front doors.

Covers the :class:`repro.membership.MembershipPlane` state machine itself,
then the full join/leave/handoff path through a running simulation — the
engines' peer updates, departed-peer recruitment exclusion, obligation
handoff to a successor, and the network's departed-destination salvage.
"""

import pytest

from repro.analysis import check_c1, check_c1_from_trace
from repro.core.process import CheckpointProcess
from repro.errors import SimulationError
from repro.membership import MembershipPlane
from repro.sim import trace as T
from repro.testing import build_sim


# ----------------------------------------------------------------------
# The plane's state machine
# ----------------------------------------------------------------------
def test_seed_is_silent_and_joins_bump_the_epoch_twice():
    plane = MembershipPlane()
    views = []
    plane.subscribe(views.append)
    plane.seed(0)
    plane.seed(1)
    assert plane.epoch == 0 and views == []  # golden-trace bit-identity
    plane.begin_join(2)
    plane.complete_join(2)
    assert plane.epoch == 2
    assert [v.epoch for v in views] == [1, 2]
    assert views[0].joining == (2,) and 2 not in views[0]
    assert views[1].joining == () and 2 in views[1]


def test_leave_moves_the_pid_to_departed_and_refuses_reuse():
    plane = MembershipPlane([0, 1, 2])
    plane.begin_leave(2)
    assert plane.view.leaving == (2,)
    plane.complete_leave(2)
    assert not plane.is_member(2)
    assert plane.is_departed(2)
    with pytest.raises(SimulationError, match="cannot be reused"):
        plane.begin_join(2)
    with pytest.raises(SimulationError, match="cannot be reused"):
        plane.seed(2)


def test_invalid_transitions_are_rejected():
    plane = MembershipPlane([0])
    with pytest.raises(SimulationError, match="already a member"):
        plane.begin_join(0)
    with pytest.raises(SimulationError, match="no join in progress"):
        plane.complete_join(5)
    with pytest.raises(SimulationError, match="not a member"):
        plane.begin_leave(9)


# ----------------------------------------------------------------------
# Sim front doors
# ----------------------------------------------------------------------
def test_join_makes_the_new_process_a_full_participant():
    sim, procs = build_sim(n=3, seed=7)
    sim.scheduler.at(2.0, lambda: sim.join(CheckpointProcess(3, None)))
    sim.scheduler.at(3.0, lambda: sim.nodes[3].send_app_message(0, "hello"))
    sim.scheduler.at(4.0, lambda: procs[0].send_app_message(3, "back"))
    sim.scheduler.at(6.0, lambda: sim.nodes[3].initiate_checkpoint())
    sim.run(until=40.0)
    assert sim.membership.epoch == 2
    joins = sim.trace.of_kind(T.K_JOIN)
    assert [e.pid for e in joins] == [3]
    # Every pre-existing engine learned the new peer.
    for pid in (0, 1, 2):
        assert 3 in procs[pid].engine.peers
    # The joiner's checkpoint instance recruited its correspondent and
    # committed — it is a first-class protocol member.
    commits = {e.pid for e in sim.trace.of_kind(T.K_CHKPT_COMMIT)}
    assert {0, 3} <= commits
    check_c1(sim.nodes.values())


def test_leave_hands_obligations_to_the_successor():
    sim, procs = build_sim(n=3, seed=7)
    sim.scheduler.at(1.0, lambda: procs[1].send_app_message(0, "m"))
    sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
    sim.scheduler.at(10.0, lambda: sim.leave(1, successor=0))
    sim.run(until=40.0)
    leaves = sim.trace.of_kind(T.K_LEAVE)
    assert [e.pid for e in leaves] == [1]
    assert leaves[0].fields["successor"] == 0
    # The successor adopted P1's obligations (decision log and commit-set
    # membership travel in the handoff message).
    handoffs = sim.trace.of_kind(T.K_HANDOFF)
    assert [e.pid for e in handoffs] == [0]
    assert 1 in procs[0].engine.adopted
    # P1 is gone from the live membership and every survivor's peer set.
    assert 1 not in sim.nodes
    for pid in (0, 2):
        assert 1 not in procs[pid].engine.peers
        assert 1 in procs[pid].engine.departed_peers
    check_c1(sim.nodes.values())


def test_leave_mid_instance_does_not_wedge_the_round():
    # P2 is recruited into P0's checkpoint instance, then departs before
    # the 2PC settles; the round must still close (drop-child semantics),
    # and later instances must not recruit the departed pid.
    sim, procs = build_sim(n=4, seed=3)
    sim.scheduler.at(1.0, lambda: procs[2].send_app_message(0, "dep"))
    sim.scheduler.at(3.0, lambda: procs[0].initiate_checkpoint())
    sim.scheduler.at(3.6, lambda: sim.leave(2, successor=1))
    sim.scheduler.at(10.0, lambda: procs[0].send_app_message(1, "post"))
    sim.scheduler.at(12.0, lambda: procs[1].initiate_checkpoint())
    sim.run(until=60.0)
    # Theorem 1 still holds: nothing left open anywhere.
    for proc in sim.nodes.values():
        assert not proc.chkpt_commit_set
        assert not proc.roll_restart_set
    # The post-departure instance committed without touching P2.
    commits = sim.trace.of_kind(T.K_CHKPT_COMMIT)
    assert any(e.pid == 1 and e.time > 12.0 for e in commits)
    assert not any(e.pid == 2 and e.time > 4.0 for e in commits)
    check_c1_from_trace(sim.trace)


def test_traffic_to_a_departed_pid_is_salvaged_not_an_error():
    sim, procs = build_sim(n=3, seed=7)
    sim.scheduler.at(2.0, lambda: sim.leave(1, successor=0))
    # P2 has not heard (it has: view fan-out is synchronous) — force the
    # stale-destination path straight through the network front door.
    sim.scheduler.at(4.0, lambda: procs[2].send_app_message(1, "stale"))
    sim.run(until=20.0)
    assert sim.network.salvaged_departed >= 1


def test_departed_pid_cannot_rejoin_the_simulation():
    sim, procs = build_sim(n=3, seed=7)
    sim.scheduler.at(2.0, lambda: sim.leave(1, successor=0))
    sim.run(until=10.0)
    with pytest.raises(SimulationError, match="cannot be reused"):
        sim.join(CheckpointProcess(1, None))
