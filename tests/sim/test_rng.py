"""Unit tests for named reproducible randomness streams."""

from repro.sim.rng import Rng


def test_same_seed_same_stream():
    a = Rng(42).stream("delay", 1, 2)
    b = Rng(42).stream("delay", 1, 2)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = Rng(1).stream("delay")
    b = Rng(2).stream("delay")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_names_are_independent():
    rng = Rng(7)
    a = [rng.stream("a").random() for _ in range(5)]
    rng2 = Rng(7)
    # Consuming another stream first must not perturb stream "a".
    [rng2.stream("b").random() for _ in range(100)]
    a2 = [rng2.stream("a").random() for _ in range(5)]
    assert a == a2


def test_stream_is_cached():
    rng = Rng(0)
    assert rng.stream("x") is rng.stream("x")


def test_spawn_creates_independent_child():
    parent = Rng(3)
    child = parent.spawn("worker", 1)
    p = [parent.stream("s").random() for _ in range(5)]
    c = [child.stream("s").random() for _ in range(5)]
    assert p != c
    # Spawning is deterministic.
    child2 = Rng(3).spawn("worker", 1)
    assert [child2.stream("s").random() for _ in range(5)] == c


def test_compound_names():
    rng = Rng(5)
    s1 = rng.stream("delay", 0, 1)
    s2 = rng.stream("delay", 0, 2)
    assert s1 is not s2
