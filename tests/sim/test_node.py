"""Unit tests for the Node actor base class."""

import pytest

from repro.errors import SimulationError
from repro.net import FixedDelay, normal
from repro.sim import Node, Simulation
from repro.types import MessageId


class Probe(Node):
    def __init__(self, nid):
        super().__init__(nid)
        self.fired = []
        self.received = []

    def on_envelope(self, envelope):
        self.received.append(envelope)


def make_sim(n=2):
    sim = Simulation(seed=0, delay_model=FixedDelay(1.0))
    nodes = [sim.add_node(Probe(i)) for i in range(n)]
    return sim, nodes


def test_duplicate_node_id_rejected():
    sim, _ = make_sim()
    with pytest.raises(SimulationError):
        sim.add_node(Probe(0))


def test_unbound_node_has_no_sim():
    node = Probe(9)
    with pytest.raises(SimulationError):
        node.sim


def test_double_bind_rejected():
    sim, nodes = make_sim()
    with pytest.raises(SimulationError):
        nodes[0].bind(sim)


def test_send_delivers_via_network():
    sim, (a, b) = make_sim()
    a.send(normal(0, 1, MessageId(0, 0), label=1, body="hello"))
    sim.run()
    assert len(b.received) == 1
    assert b.received[0].body == "hello"
    assert b.received[0].deliver_time == 1.0


def test_timer_fires_and_clears():
    sim, (a, _) = make_sim()
    a.set_timer("t", 2.0, lambda: a.fired.append(sim.now))
    sim.run()
    assert a.fired == [2.0]


def test_timer_replace_cancels_previous():
    sim, (a, _) = make_sim()
    a.set_timer("t", 2.0, lambda: a.fired.append("first"))
    a.set_timer("t", 3.0, lambda: a.fired.append("second"))
    sim.run()
    assert a.fired == ["second"]


def test_timer_replace_false_raises_on_duplicate():
    sim, (a, _) = make_sim()
    a.set_timer("t", 2.0, lambda: None)
    with pytest.raises(SimulationError):
        a.set_timer("t", 3.0, lambda: None, replace=False)


def test_cancel_timer():
    sim, (a, _) = make_sim()
    a.set_timer("t", 2.0, lambda: a.fired.append("x"))
    a.cancel_timer("t")
    sim.run()
    assert a.fired == []


def test_cancel_unknown_timer_is_noop():
    sim, (a, _) = make_sim()
    a.cancel_timer("missing")  # must not raise


def test_crashed_node_timers_suppressed():
    sim, (a, _) = make_sim()
    a.set_timer("t", 5.0, lambda: a.fired.append("x"))
    sim.scheduler.at(1.0, lambda: sim.crash(0))
    sim.run()
    assert a.fired == []


def test_crashed_node_receives_nothing():
    sim, (a, b) = make_sim()
    sim.scheduler.at(0.5, lambda: sim.crash(1))
    a.send(normal(0, 1, MessageId(0, 0), label=1, body="x"))
    sim.run()
    assert b.received == []


def test_recover_restores_delivery():
    sim, (a, b) = make_sim()
    sim.scheduler.at(0.5, lambda: sim.crash(1))
    sim.scheduler.at(2.0, lambda: sim.recover(1))
    sim.scheduler.at(3.0, lambda: a.send(normal(0, 1, MessageId(0, 1), label=1, body="y")))
    sim.run()
    assert len(b.received) == 1


def test_crash_twice_raises():
    sim, _ = make_sim()
    sim.crash(0)
    with pytest.raises(SimulationError):
        sim.crash(0)


def test_recover_non_crashed_raises():
    sim, _ = make_sim()
    with pytest.raises(SimulationError):
        sim.recover(0)


def test_alive_processes():
    sim, _ = make_sim(3)
    sim.crash(1)
    assert sim.alive_processes() == [0, 2]
    assert not sim.is_alive(1)
    assert sim.is_alive(0)
