"""Unit tests for the parallel sweep runner."""

import pytest

from repro.bench.parallel import point_seed, run_registry_parallel, run_sweep


def double(point):
    return {"point": point, "value": point * 2}


def seeded(point, seed):
    return {"point": point, "seed": seed}


def boom(point):
    raise ValueError(f"bad point {point}")


def test_point_seed_is_deterministic_and_spread():
    assert point_seed(7, 0) == point_seed(7, 0)
    seeds = {point_seed(7, i) for i in range(50)}
    assert len(seeds) == 50  # no collisions across a sweep
    assert point_seed(8, 0) != point_seed(7, 0)  # base seed matters


def test_run_sweep_serial_matches_parallel():
    points = list(range(8))
    serial = run_sweep(double, points, workers=1)
    parallel = run_sweep(double, points, workers=2)
    assert serial == parallel
    assert [row["point"] for row in parallel] == points  # order-stable


def test_run_sweep_derives_per_point_seeds():
    rows = run_sweep(seeded, ["a", "b"], workers=1, base_seed=5)
    assert rows == [
        {"point": "a", "seed": point_seed(5, 0)},
        {"point": "b", "seed": point_seed(5, 1)},
    ]
    # The same derivation regardless of worker count.
    assert rows == run_sweep(seeded, ["a", "b"], workers=2, base_seed=5)


def test_run_sweep_single_point_stays_in_process():
    # One point never pays for a pool, whatever the worker count.
    assert run_sweep(double, [3], workers=8) == [{"point": 3, "value": 6}]


def test_run_sweep_propagates_worker_errors():
    with pytest.raises(ValueError, match="bad point"):
        run_sweep(boom, [1, 2], workers=2)


def test_registry_parallel_matches_serial():
    names = ["fig3", "fig1"]
    serial = run_registry_parallel(names, workers=1)
    parallel = run_registry_parallel(names, workers=2)
    assert [title for title, _ in parallel] == [title for title, _ in serial]
    assert [rows for _, rows in parallel] == [rows for _, rows in serial]


# ----------------------------------------------------------------------
# Honest worker clamping + the real pool path (forced via a fake CPU count)
# ----------------------------------------------------------------------

from repro.bench import parallel as P  # noqa: E402
from repro.bench.parallel import effective_workers, get_pool, shutdown_pool  # noqa: E402


def test_effective_workers_caps_at_cpus_and_points(monkeypatch):
    monkeypatch.setattr(P, "_visible_cpus", lambda: 4)
    assert effective_workers(8, 10) == 4  # CPU cap
    assert effective_workers(2, 10) == 2  # request honored under the cap
    assert effective_workers(8, 3) == 3  # idle workers cost start-up for nothing
    assert effective_workers(0, 10) == 1  # floor
    monkeypatch.setattr(P, "_visible_cpus", lambda: 1)
    assert effective_workers(8, 10) == 1  # the 1-core-container regression case


def test_run_sweep_pool_path_matches_serial(monkeypatch):
    # The other sweep tests silently short-circuit to the serial loop on a
    # 1-core box; faking the CPU count forces the actual executor path.
    monkeypatch.setattr(P, "_visible_cpus", lambda: 2)
    try:
        points = list(range(5))
        serial = run_sweep(double, points, workers=1)
        parallel = run_sweep(double, points, workers=2)
        assert serial == parallel
        assert [row["point"] for row in parallel] == points  # order-stable merge
        assert run_sweep(seeded, ["a", "b", "c"], workers=2, base_seed=5) == run_sweep(
            seeded, ["a", "b", "c"], workers=1, base_seed=5
        )
    finally:
        shutdown_pool()


def test_run_sweep_pool_path_propagates_errors(monkeypatch):
    monkeypatch.setattr(P, "_visible_cpus", lambda: 2)
    try:
        with pytest.raises(ValueError, match="bad point"):
            run_sweep(boom, [1, 2], workers=2)
    finally:
        shutdown_pool()


def test_pool_is_shared_and_grow_only(monkeypatch):
    monkeypatch.setattr(P, "_visible_cpus", lambda: 4)
    try:
        pool2 = get_pool(2)
        assert get_pool(2) is pool2  # reused across sweeps
        pool4 = get_pool(4)
        assert pool4 is not pool2  # grown when more workers are needed
        assert get_pool(3) is pool4  # never shrunk back down
    finally:
        shutdown_pool()
