"""Unit tests for the benchmark harness formatting helpers."""

from repro.bench.harness import format_series, format_table


def test_format_table_basic():
    rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
    text = format_table(rows)
    lines = text.splitlines()
    assert lines[0].startswith("a ")
    assert "22" in lines[3]
    # Columns align: every row has the same width.
    assert len(set(map(len, lines))) == 1


def test_format_table_with_title_and_columns():
    rows = [{"a": 1, "b": 2, "c": 3}]
    text = format_table(rows, columns=["c", "a"], title="T")
    assert text.splitlines()[0] == "T"
    assert "b" not in text.splitlines()[1]


def test_format_table_floats_rounded():
    text = format_table([{"v": 3.14159265}])
    assert "3.142" in text
    assert "3.14159" not in text


def test_format_table_missing_keys_blank():
    text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
    assert "1" in text and "2" in text


def test_format_table_empty():
    assert "(no rows)" in format_table([])
    assert format_table([], title="T").startswith("T")


def test_format_series():
    text = format_series([(1, 10.0), (2, 20.0)], "x", "y", title="S")
    assert text.splitlines()[0] == "S"
    assert "10.000" in text


def test_cli_registry_names_resolve():
    from repro.bench.__main__ import REGISTRY, main

    assert {"fig1", "fig2", "fig3", "fig4", "table5", "scale"} <= set(REGISTRY)
    assert main(["definitely-not-an-experiment"]) == 2


def test_cli_runs_a_cheap_experiment(capsys):
    from repro.bench.__main__ import main

    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "EXPERIMENT fig2" in out
    assert "paper_label" in out
