"""Unit tests for the benchmark harness formatting helpers."""

from repro.bench.harness import format_series, format_table


def test_format_table_basic():
    rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
    text = format_table(rows)
    lines = text.splitlines()
    assert lines[0].startswith("a ")
    assert "22" in lines[3]
    # Columns align: every row has the same width.
    assert len(set(map(len, lines))) == 1


def test_format_table_with_title_and_columns():
    rows = [{"a": 1, "b": 2, "c": 3}]
    text = format_table(rows, columns=["c", "a"], title="T")
    assert text.splitlines()[0] == "T"
    assert "b" not in text.splitlines()[1]


def test_format_table_floats_rounded():
    text = format_table([{"v": 3.14159265}])
    assert "3.142" in text
    assert "3.14159" not in text


def test_format_table_missing_keys_blank():
    text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
    assert "1" in text and "2" in text


def test_format_table_defaults_to_union_of_keys():
    # Later rows' extra keys appear as columns (first-seen order), so a
    # sweep that adds a metric mid-way no longer loses it silently.
    rows = [{"a": 1}, {"a": 2, "b": 20}, {"c": 30}]
    lines = format_table(rows).splitlines()
    header = lines[0].split("|")
    assert [cell.strip() for cell in header] == ["a", "b", "c"]
    assert "20" in lines[3]
    assert "30" in lines[4]


def test_format_table_empty():
    assert "(no rows)" in format_table([])
    assert format_table([], title="T").startswith("T")


def test_format_series():
    text = format_series([(1, 10.0), (2, 20.0)], "x", "y", title="S")
    assert text.splitlines()[0] == "S"
    assert "10.000" in text


def test_cli_registry_names_resolve():
    from repro.bench.__main__ import REGISTRY, main

    assert {"fig1", "fig2", "fig3", "fig4", "table5", "scale"} <= set(REGISTRY)
    assert main(["definitely-not-an-experiment"]) == 2


def test_cli_unknown_name_lists_experiments(capsys):
    from repro.bench.__main__ import REGISTRY, main

    assert main(["definitely-not-an-experiment"]) == 2
    out = capsys.readouterr().out
    assert "unknown experiment(s): 'definitely-not-an-experiment'" in out
    assert "available experiments:" in out
    # Every registered experiment is listed, with its one-line description.
    for name, (title, _) in REGISTRY.items():
        assert name in out
        assert title in out


def test_cli_list_flag_prints_registry_and_succeeds(capsys):
    from repro.bench.__main__ import REGISTRY, main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "available experiments:" in out
    for name in REGISTRY:
        assert name in out


def test_cli_runs_a_cheap_experiment(capsys):
    from repro.bench.__main__ import main

    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "EXPERIMENT fig2" in out
    assert "paper_label" in out


def test_cli_json_artifact_matches_table_rows(capsys, tmp_path):
    import json

    from repro.bench.__main__ import REGISTRY, main, run_experiment

    path = tmp_path / "artifacts.json"
    assert main(["fig2", "--json", str(path)]) == 0
    out = capsys.readouterr().out
    assert "EXPERIMENT fig2" in out

    payload = json.loads(path.read_text())
    assert list(payload) == ["fig2"]
    assert payload["fig2"]["title"] == REGISTRY["fig2"][0]
    # The JSON rows are the table's rows, value for value.
    _title, rows = run_experiment("fig2")
    assert len(payload["fig2"]["rows"]) == len(rows)
    for json_row, row in zip(payload["fig2"]["rows"], rows):
        assert set(json_row) == {str(k) for k in row}
        for key, value in row.items():
            if isinstance(value, (str, int, float, bool)) or value is None:
                assert json_row[str(key)] == value


def test_cli_registry_entries_are_titled_thunks():
    from repro.bench.__main__ import REGISTRY

    for name, (title, thunk) in REGISTRY.items():
        assert isinstance(title, str) and title
        assert callable(thunk)
