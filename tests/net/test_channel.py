"""Unit tests for channel ordering disciplines."""

from repro.net.channel import FifoChannel, NonFifoChannel


def test_non_fifo_uses_raw_delay():
    ch = NonFifoChannel()
    assert ch.delivery_time(0, 1, send_time=10.0, delay=2.0) == 12.0
    # A later, faster message may overtake.
    assert ch.delivery_time(0, 1, send_time=11.0, delay=0.1) == 11.1


def test_fifo_clamps_to_preserve_order():
    ch = FifoChannel(epsilon=0.001)
    first = ch.delivery_time(0, 1, send_time=0.0, delay=5.0)
    second = ch.delivery_time(0, 1, send_time=1.0, delay=0.1)
    assert first == 5.0
    assert second == 5.001  # clamped behind the slow one


def test_fifo_channels_are_independent_per_direction():
    ch = FifoChannel()
    slow = ch.delivery_time(0, 1, 0.0, 5.0)
    other = ch.delivery_time(1, 0, 0.0, 0.1)  # reverse direction unaffected
    assert other == 0.1
    third = ch.delivery_time(2, 1, 0.0, 0.1)  # different source unaffected
    assert third == 0.1
    assert slow == 5.0


def test_fifo_no_clamp_when_order_natural():
    ch = FifoChannel()
    a = ch.delivery_time(0, 1, 0.0, 1.0)
    b = ch.delivery_time(0, 1, 2.0, 1.0)
    assert (a, b) == (1.0, 3.0)


def test_fifo_reset_clears_history():
    ch = FifoChannel()
    ch.delivery_time(0, 1, 0.0, 5.0)
    ch.reset()
    assert ch.delivery_time(0, 1, 0.0, 0.1) == 0.1


def test_flags():
    assert FifoChannel.fifo is True
    assert NonFifoChannel.fifo is False
