"""Unit tests for the network router: partitions, crashes, spooling."""

import pytest

from repro.errors import NetworkError
from repro.net import FixedDelay, control, normal
from repro.sim import Node, Simulation
from repro.types import MessageId


class Probe(Node):
    def __init__(self, nid):
        super().__init__(nid)
        self.received = []

    def on_envelope(self, envelope):
        self.received.append(envelope)


def make_sim(n=3):
    sim = Simulation(seed=0, delay_model=FixedDelay(1.0))
    nodes = [sim.add_node(Probe(i)) for i in range(n)]
    return sim, nodes


def msg(src, dst, k=0, body="x"):
    return normal(src, dst, MessageId(src, k), label=1, body=body)


def test_unknown_destination_raises():
    sim, _ = make_sim()
    with pytest.raises(NetworkError):
        sim.network.transmit(msg(0, 99))


def test_counters_track_categories():
    sim, nodes = make_sim()
    nodes[0].send(msg(0, 1))
    nodes[0].send(control(0, 1, body="ctl"))
    sim.run()
    assert sim.network.normal_sent == 1
    assert sim.network.control_sent == 1
    assert sim.network.delivered == 2


def test_partition_blocks_cross_group_traffic():
    sim, nodes = make_sim(4)
    sim.network.partition([{0, 1}, {2, 3}])
    nodes[0].send(msg(0, 1, 0))  # same group: delivered
    nodes[0].send(msg(0, 2, 1))  # cross group: dropped
    sim.run()
    assert len(nodes[1].received) == 1
    assert len(nodes[2].received) == 0
    assert sim.network.dropped == 1


def test_partition_checked_at_delivery_time():
    """A message in flight when the partition heals is delivered."""
    sim, nodes = make_sim(2)
    sim.network.partition([{0}, {1}])
    nodes[0].send(msg(0, 1))  # would arrive at t=1
    sim.scheduler.at(0.5, sim.network.merge)
    sim.run()
    assert len(nodes[1].received) == 1


def test_partition_validation():
    sim, _ = make_sim(3)
    with pytest.raises(NetworkError):
        sim.network.partition([{0, 1}, {1, 2}])  # overlap
    with pytest.raises(NetworkError):
        sim.network.partition([{0}, {1}])  # missing node 2


def test_group_of_and_reachable():
    sim, _ = make_sim(4)
    assert sim.network.reachable(0, 3)
    sim.network.partition([{0, 1}, {2, 3}])
    assert sim.network.group_of(0) == frozenset({0, 1})
    assert sim.network.reachable(0, 1)
    assert not sim.network.reachable(1, 2)
    sim.network.merge()
    assert sim.network.reachable(1, 2)


def test_crashed_destination_drops_without_spooler():
    sim, nodes = make_sim(2)
    sim.crash(1)
    nodes[0].send(msg(0, 1))
    sim.run()
    assert sim.network.dropped == 1
    assert nodes[1].received == []


def test_crashed_destination_spools_with_spooler():
    sim, nodes = make_sim(3)
    group = sim.network.install_spoolers(1, hosts=[2])
    sim.crash(1)
    nodes[0].send(msg(0, 1))
    sim.run()
    assert sim.network.spooled == 1
    spooled = group.drain(sim.is_alive)
    assert len(spooled) == 1
    assert spooled[0].dst == 1


def test_spool_lost_when_all_hosts_down():
    sim, nodes = make_sim(3)
    sim.network.install_spoolers(1, hosts=[2])
    sim.crash(1)
    sim.crash(2)
    nodes[0].send(msg(0, 1))
    sim.run()
    assert sim.network.spooled == 0
    assert sim.network.dropped == 1


def test_redeliver_to_recovered_node():
    sim, nodes = make_sim(3)
    group = sim.network.install_spoolers(1, hosts=[2])
    sim.crash(1)
    nodes[0].send(msg(0, 1))
    sim.run()
    sim.recover(1)
    for envelope in group.drain(sim.is_alive):
        sim.network.redeliver(envelope)
    assert len(nodes[1].received) == 1


def test_redeliver_to_crashed_raises():
    sim, nodes = make_sim(2)
    sim.crash(1)
    with pytest.raises(NetworkError):
        sim.network.redeliver(msg(0, 1))


def test_partition_and_merge_traced():
    sim, _ = make_sim(2)
    sim.network.partition([{0}, {1}])
    sim.network.merge()
    kinds = [e.kind for e in sim.trace]
    assert "partition" in kinds and "merge" in kinds
