"""Unit tests for replicated message spoolers."""

from repro.net.message import normal
from repro.net.spooler import SpoolerGroup
from repro.types import MessageId


def env(k=0):
    return normal(0, 9, MessageId(0, k), label=1, body=f"m{k}")


def alive_all(pid):
    return True


def test_spool_records_on_all_live_replicas():
    group = SpoolerGroup(owner=9, hosts=[1, 2])
    assert group.spool(env(), alive_all)
    assert all(len(r.envelopes) == 1 for r in group.replicas)


def test_spool_skips_dead_replicas():
    group = SpoolerGroup(owner=9, hosts=[1, 2])
    alive = lambda pid: pid == 2
    assert group.spool(env(), alive)
    assert len(group.replicas[0].envelopes) == 0
    assert len(group.replicas[1].envelopes) == 1


def test_spool_fails_when_all_replicas_dead():
    group = SpoolerGroup(owner=9, hosts=[1, 2])
    assert not group.spool(env(), lambda pid: False)


def test_drain_deduplicates_across_replicas():
    group = SpoolerGroup(owner=9, hosts=[1, 2])
    e = env()
    group.spool(e, alive_all)
    drained = group.drain(alive_all)
    assert drained == [e]
    # Drain clears.
    assert group.drain(alive_all) == []


def test_drain_only_reads_live_replicas():
    group = SpoolerGroup(owner=9, hosts=[1, 2])
    e = env()
    group.spool(e, lambda pid: pid == 1)  # only replica on host 1
    drained = group.drain(lambda pid: pid == 2)  # host 1 now dead
    assert drained == []


def test_decisions_recorded_and_queried():
    group = SpoolerGroup(owner=9, hosts=[1, 2])
    group.observe_decision(("commit", "t1"), alive_all)
    seen = group.decisions_seen(alive_all)
    assert ("commit", "t1") in seen


def test_decisions_none_when_all_replicas_dead():
    group = SpoolerGroup(owner=9, hosts=[1])
    group.observe_decision(("commit", "t1"), alive_all)
    assert group.decisions_seen(lambda pid: False) is None
