"""Unit tests for delay models."""

import pytest

from repro.errors import NetworkError
from repro.net.delay import (
    AdversarialReorderDelay,
    ExponentialDelay,
    FixedDelay,
    LossyDelay,
    UniformDelay,
)
from repro.sim.rng import Rng


def test_fixed_delay_is_constant():
    model = FixedDelay(2.5)
    rng = Rng(0)
    assert all(model.sample(rng, 0, 1) == 2.5 for _ in range(10))


def test_fixed_delay_rejects_negative():
    with pytest.raises(NetworkError):
        FixedDelay(-1.0)


def test_uniform_delay_within_bounds():
    model = UniformDelay(0.5, 1.5)
    rng = Rng(1)
    samples = [model.sample(rng, 0, 1) for _ in range(200)]
    assert all(0.5 <= s <= 1.5 for s in samples)
    assert max(samples) - min(samples) > 0.5  # actually varies


def test_uniform_delay_rejects_bad_range():
    with pytest.raises(NetworkError):
        UniformDelay(2.0, 1.0)
    with pytest.raises(NetworkError):
        UniformDelay(-1.0, 1.0)


def test_exponential_delay_positive_and_varies():
    model = ExponentialDelay(mean=1.0, floor=0.01)
    rng = Rng(2)
    samples = [model.sample(rng, 0, 1) for _ in range(500)]
    assert all(s >= 0.01 for s in samples)
    mean = sum(samples) / len(samples)
    assert 0.6 < mean < 1.6  # roughly the configured mean


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(NetworkError):
        ExponentialDelay(mean=0.0)


def test_adversarial_alternates_per_channel():
    model = AdversarialReorderDelay(short=0.1, long=5.0)
    rng = Rng(3)
    a = [model.sample(rng, 0, 1) for _ in range(4)]
    assert a == [0.1, 5.0, 0.1, 5.0]
    # An unrelated channel has its own toggle.
    b = model.sample(rng, 2, 3)
    assert b == 0.1


def test_adversarial_guarantees_reordering():
    """Message k with the long delay arrives after message k+1 (short)."""
    model = AdversarialReorderDelay(short=0.1, long=5.0)
    rng = Rng(4)
    send_times = [0.0, 0.2]
    arrivals = [t + model.sample(rng, 0, 1) for t in send_times]
    # first message: 0.1, second: 5.2?  The toggle starts short; adjust:
    # msg0 -> 0.1 arrives 0.1; msg1 -> 5.0 arrives 5.2 (no reorder yet);
    # msg2 -> short again overtakes msg1.
    third = 0.4 + model.sample(rng, 0, 1)
    assert third < arrivals[1]


def test_adversarial_rejects_bad_params():
    with pytest.raises(NetworkError):
        AdversarialReorderDelay(short=5.0, long=1.0)


def test_lossy_delay_adds_retransmission_latency():
    base = FixedDelay(1.0)
    model = LossyDelay(base, loss_probability=0.5, retransmit_timeout=3.0)
    rng = Rng(5)
    samples = [model.sample(rng, 0, 1) for _ in range(300)]
    assert all(s >= 1.0 for s in samples)
    # With 50% loss some messages need at least one retransmission.
    assert any(s >= 4.0 for s in samples)
    # And some go through directly.
    assert any(s == 1.0 for s in samples)


def test_lossy_delay_zero_loss_equals_base():
    model = LossyDelay(FixedDelay(1.0), loss_probability=0.0)
    rng = Rng(6)
    assert all(model.sample(rng, 0, 1) == 1.0 for _ in range(20))


def test_lossy_rejects_certain_loss():
    with pytest.raises(NetworkError):
        LossyDelay(FixedDelay(1.0), loss_probability=1.0)
