"""Regression suite: the adversarial seeds that exposed protocol races.

Each seed below, under exactly this configuration, triggered a specific
protocol bug during development (see DESIGN.md §5, notes 7-17).  They are
pinned here so that reverting any of the fixes fails loudly:

* 26, 35, 65, 83, 136 — the neg_ack/roll_req race and the stale-membership
  C1 holes (notes 8-9);
* 87, 159, 164, 208 — late-child decision forwarding (note 11);
* 107 — cross-instance commit forwarding through resolved nodes (note 11);
* 309 — the cross-round gating cycle (note 10);
* failure seeds 0, 17, 24, 27, 32, 34, 45, 50, 55 — spooled roll_reqs,
  rule-4 uncertainty, rule-5 substitutes masked by rule 2, stranded
  intervals, shared-checkpoint recovery (notes 12-13 and the Section 6
  handler fixes).
"""

import pytest

from repro.analysis import check_app_states, check_quiescent, check_recovery_line
from repro.core import CheckpointProcess, ProtocolConfig
from repro.failure import FailureInjector
from repro.net import ExponentialDelay
from repro.testing import build_sim, run_random_workload

BASE_SEEDS = [26, 35, 65, 83, 87, 107, 136, 159, 164, 208, 309]
FAILURE_SEEDS = [0, 17, 24, 27, 32, 34, 45, 50, 55]


@pytest.mark.parametrize("seed", BASE_SEEDS)
def test_base_protocol_adversarial_seed(seed):
    sim, procs = build_sim(n=6, seed=seed, delay=ExponentialDelay(mean=1.0))
    run_random_workload(sim, procs, duration=60.0, message_rate=1.0,
                        checkpoint_rate=0.05, error_rate=0.02,
                        max_events=400000)
    check_quiescent(procs.values())
    check_recovery_line(procs.values())
    check_app_states(procs.values())


@pytest.mark.parametrize("seed", FAILURE_SEEDS)
def test_failure_handling_adversarial_seed(seed):
    sim, procs = build_sim(
        n=6, seed=seed, delay=ExponentialDelay(mean=1.0),
        config=ProtocolConfig(failure_resilience=True),
        detector_latency=2.0, spoolers=True,
    )
    inj = FailureInjector(sim)
    inj.crash_at(20.0, pid=seed % 6)
    inj.crash_at(25.0, pid=(seed + 3) % 6)
    inj.recover_at(45.0, pid=seed % 6)
    inj.recover_at(50.0, pid=(seed + 3) % 6)
    run_random_workload(sim, procs, duration=60.0, checkpoint_rate=0.05,
                        error_rate=0.01, horizon=400.0, max_events=500000)
    alive = [p for p in procs.values() if not p.crashed]
    for p in alive:
        assert not p.comm_suspended and not p.send_suspended, f"P{p.node_id} stuck"
    check_recovery_line(alive)
    check_app_states(alive)


def test_extension_adversarial_seeds():
    from repro.core import ExtendedCheckpointProcess

    for seed in (2, 5, 12, 55, 87):
        sim, procs = build_sim(n=5, seed=seed, cls=ExtendedCheckpointProcess,
                               delay=ExponentialDelay(mean=1.0))
        run_random_workload(sim, procs, duration=50.0, checkpoint_rate=0.05,
                            error_rate=0.02, max_events=400000)
        for p in procs.values():
            assert not p.comm_suspended and not p.roll_restart_set
            assert not p.commit_sets, f"seed {seed}: pending {p.commit_sets}"
        check_recovery_line(procs.values())
        check_app_states(procs.values())
