"""End-to-end failure and partition scenarios (Section 6 at system scale)."""

import pytest

from repro.analysis import check_app_states, check_recovery_line
from repro.core import CheckpointProcess, PartitionCoordinator, ProtocolConfig
from repro.failure import FailureInjector, VoteRegistry
from repro.net import ExponentialDelay
from repro.testing import build_sim, run_random_workload


def build(n=6, seed=0):
    sim, procs = build_sim(
        n=n, seed=seed, delay=ExponentialDelay(mean=1.0),
        config=ProtocolConfig(failure_resilience=True),
        detector_latency=2.0, spoolers=True,
    )
    return sim, procs


def quiesced_alive(procs):
    alive = [p for p in procs.values() if not p.crashed]
    for p in alive:
        assert not p.comm_suspended, f"P{p.node_id} comm stuck"
        assert not p.send_suspended, f"P{p.node_id} send stuck"
    return alive


@pytest.mark.parametrize("seed", range(10))
def test_double_crash_and_recovery(seed):
    sim, procs = build(seed=seed)
    inj = FailureInjector(sim)
    inj.crash_at(20.0, pid=seed % 6)
    inj.crash_at(25.0, pid=(seed + 3) % 6)
    inj.recover_at(45.0, pid=seed % 6)
    inj.recover_at(50.0, pid=(seed + 3) % 6)
    run_random_workload(sim, procs, duration=60.0, checkpoint_rate=0.05,
                        error_rate=0.01, horizon=400.0, max_events=500000)
    alive = quiesced_alive(procs)
    check_recovery_line(alive)
    check_app_states(alive)


@pytest.mark.parametrize("seed", range(4))
def test_triple_crash_majority_survives(seed):
    sim, procs = build(n=7, seed=seed)
    inj = FailureInjector(sim)
    for offset, when in ((0, 15.0), (2, 20.0), (4, 25.0)):
        inj.crash_at(when, pid=(seed + offset) % 7)
    for offset, when in ((0, 50.0), (2, 55.0), (4, 60.0)):
        inj.recover_at(when, pid=(seed + offset) % 7)
    run_random_workload(sim, procs, duration=70.0, checkpoint_rate=0.04,
                        error_rate=0.01, horizon=400.0, max_events=600000)
    alive = quiesced_alive(procs)
    check_recovery_line(alive)
    check_app_states(alive)


def test_crash_without_recovery_leaves_survivors_consistent():
    sim, procs = build(seed=1)
    inj = FailureInjector(sim)
    inj.crash_at(20.0, pid=2)  # never recovers
    run_random_workload(sim, procs, duration=60.0, checkpoint_rate=0.05,
                        error_rate=0.01, horizon=400.0, max_events=500000)
    alive = quiesced_alive(procs)
    assert len(alive) == 5
    check_recovery_line(alive)
    check_app_states(alive)


@pytest.mark.parametrize("seed", range(4))
def test_partition_split_and_heal(seed):
    sim, procs = build(seed=seed)
    coord = PartitionCoordinator(sim, VoteRegistry.uniform(range(6)))
    coord.schedule_split(20.0, [{0, 1, 2, 3}, {4, 5}])
    coord.schedule_heal(45.0)
    run_random_workload(sim, procs, duration=60.0, checkpoint_rate=0.04,
                        error_rate=0.01, horizon=400.0, max_events=500000)
    alive = quiesced_alive(procs)
    assert len(alive) == 6  # everyone woke up after the heal
    check_recovery_line(alive)
    check_app_states(alive)


def test_weighted_votes_decide_the_major_side():
    """A 2-process group with a heavyweight voter outweighs a 3-process one."""
    sim, procs = build(n=5, seed=2)
    votes = VoteRegistry({0: 5, 1: 1, 2: 1, 3: 1, 4: 1})
    coord = PartitionCoordinator(sim, votes)
    sim.scheduler.at(10.0, lambda: coord.split([{0, 1}, {2, 3, 4}]))
    sim.run(until=15.0)
    assert coord.dormant == {2, 3, 4}
    assert not procs[0].crashed and not procs[1].crashed
    sim.scheduler.at(16.0, lambda: coord.heal())
    sim.run(until=200.0)
    alive = quiesced_alive(procs)
    check_recovery_line(alive)
