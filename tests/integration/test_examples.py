"""Smoke tests: every shipped example runs end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES = [
    "quickstart.py",
    "transaction_pipeline.py",
    "resilient_cluster.py",
    "algorithm_comparison.py",
    "paper_figures.py",
    "live_cluster.py",
]

ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(ROOT, "examples", script)],
        capture_output=True, text=True, timeout=420,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_quickstart_output_shape():
    result = subprocess.run(
        [sys.executable, os.path.join(ROOT, "examples", "quickstart.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert "checkpoint tree" in result.stdout
    assert "consistency checks passed" in result.stdout
