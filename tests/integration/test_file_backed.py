"""End-to-end runs with real file-backed stable storage.

Exercises the Lampson-Sturgis contract the paper's assumption (b) relies
on: checkpoints, persisted commit sets and decisions all round-trip through
the filesystem and survive a crash/recovery cycle.
"""

import json
import os

from repro.analysis import check_app_states, check_recovery_line
from repro.core import CheckpointProcess, ProtocolConfig
from repro.failure import FailureDetector, FailureInjector
from repro.net import FixedDelay
from repro.sim import Simulation
from repro.stable import FileStableStorage
from repro.testing import run_random_workload


def build_file_backed(tmp_path, n=4, seed=0, resilient=False):
    sim = Simulation(seed=seed, delay_model=FixedDelay(0.5))
    config = ProtocolConfig(failure_resilience=resilient)
    procs = {}
    for i in range(n):
        storage = FileStableStorage(str(tmp_path / f"p{i}"))
        procs[i] = sim.add_node(CheckpointProcess(i, config, storage=storage))
    if resilient:
        FailureDetector(sim, detection_latency=1.0)
        for i in range(n):
            sim.network.install_spoolers(i, [(i + 1) % n, (i + 2) % n])
    sim.run(until=0.0)
    return sim, procs


def test_checkpoints_written_to_disk(tmp_path):
    sim, procs = build_file_backed(tmp_path)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    path = tmp_path / "p1" / "ckpt.old.json"
    assert path.exists()
    record = json.loads(path.read_text())
    assert record["seq"] == 2 and record["committed"] is True
    assert record["meta"]["recv"] == [[0, 0]]


def test_run_consistent_on_disk_storage(tmp_path):
    sim, procs = build_file_backed(tmp_path, seed=3)
    run_random_workload(sim, procs, duration=30.0, checkpoint_rate=0.08,
                        error_rate=0.02)
    check_recovery_line(procs.values())
    check_app_states(procs.values())


def test_crash_recovery_restores_from_disk(tmp_path):
    sim, procs = build_file_backed(tmp_path, seed=1, resilient=True)
    injector = FailureInjector(sim)
    injector.crash_at(15.0, pid=2)
    injector.recover_at(30.0, pid=2)
    run_random_workload(sim, procs, duration=45.0, checkpoint_rate=0.08,
                        error_rate=0.01, horizon=200.0)
    alive = [p for p in procs.values() if not p.crashed]
    check_recovery_line(alive)
    # The recovered process's state came from its on-disk checkpoint.
    on_disk = json.loads((tmp_path / "p2" / "ckpt.old.json").read_text())
    assert procs[2].store.oldchkpt.seq == on_disk["seq"]


def test_storage_survives_a_new_store_object(tmp_path):
    """Simulate a full process restart: a fresh store over the same files
    sees the committed checkpoint (the durability contract itself)."""
    sim, procs = build_file_backed(tmp_path)
    sim.scheduler.at(1.0, lambda: procs[0].initiate_checkpoint())
    sim.run()
    from repro.stable import CheckpointStore

    reopened = CheckpointStore(FileStableStorage(str(tmp_path / "p0")))
    assert reopened.oldchkpt.seq == procs[0].store.oldchkpt.seq
    assert reopened.newchkpt is None
