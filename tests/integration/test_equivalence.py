"""Snapshot-backed storage is observationally equivalent to deep-copy storage.

The copy-on-write engine must preserve protocol semantics bit-for-bit: the
same workload on the same seeds has to produce the identical trace (every
event, in order, with every field) and the identical committed-checkpoint
ledger whether stable storage deep-copies values or freezes them.  Hypothesis
drives the workload parameters; any divergence would mean frozen views leak
semantics into the protocol.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stable import DeepCopyStableStorage, InMemoryStableStorage
from repro.testing import build_sim, run_random_workload


def observe(storage_factory, n, seed, duration, error_rate):
    sim, procs = build_sim(n=n, seed=seed, storage_factory=storage_factory)
    run_random_workload(
        sim, procs,
        duration=duration,
        checkpoint_rate=0.15,
        error_rate=error_rate,
    )
    trace = [
        (event.time, event.kind, event.pid, sorted(event.fields.items()))
        for event in sim.trace.events
    ]
    ledgers = {pid: proc.committed_history for pid, proc in procs.items()}
    final = {pid: proc.store.oldchkpt for pid, proc in procs.items()}
    return trace, ledgers, final


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(2, 4),
    seed=st.integers(0, 10_000),
    duration=st.floats(10.0, 30.0),
    error_rate=st.sampled_from([0.0, 0.02]),
)
def test_snapshot_and_deepcopy_storage_are_equivalent(n, seed, duration, error_rate):
    deep = observe(
        lambda pid: DeepCopyStableStorage(), n, seed, duration, error_rate
    )
    snap = observe(
        lambda pid: InMemoryStableStorage(), n, seed, duration, error_rate
    )
    deep_trace, deep_ledgers, deep_final = deep
    snap_trace, snap_ledgers, snap_final = snap
    assert snap_trace == deep_trace
    # FrozenDict/FrozenList subclass dict/list, so == compares structure.
    assert snap_ledgers == deep_ledgers
    assert snap_final == deep_final
