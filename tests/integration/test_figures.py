"""Exact reproductions of the paper's figures as integration tests.

Each test replays the literal scenario from the figure and asserts the
paper's stated outcome.  The benchmark suite re-runs the same scripts and
prints the artifacts for EXPERIMENTS.md.
"""

from repro.analysis import check_c1, check_quiescent, reconstruct_trees
from repro.core import CheckpointProcess
from repro.net import FixedDelay
from repro.sim import Simulation
from repro.workloads import (
    ScriptedWorkload,
    figure2_steps,
    figure3_steps,
    figure4_steps,
)


def build_numbered(n_first, n_last, seed=1):
    sim = Simulation(seed=seed, delay_model=FixedDelay(0.5))
    procs = {i: sim.add_node(CheckpointProcess(i)) for i in range(n_first, n_last + 1)}
    sim.run(until=0.0)
    return sim, procs


def test_figure1_inconsistent_checkpoint_detected():
    """Fig. 1: receive before the receiver's checkpoint, send after the
    sender's — the algorithm *refuses* to create this state: the receiver's
    instance forces the sender forward instead."""
    sim, procs = build_numbered(0, 1)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    # The would-be Fig.1 line {P0 seq 1, P1 seq 2} is inconsistent; the
    # algorithm committed {P0 seq 2, P1 seq 2} instead.
    assert procs[0].store.oldchkpt.seq == 2
    check_c1(procs.values())
    # Demonstrate the checker catches the naughty line: build it by hand.
    from repro.analysis.consistency import ConsistencyViolation

    class Fake:
        def __init__(self, pid, record):
            self.node_id = pid
            self.store = type("S", (), {"oldchkpt": record})()

    old_p0 = procs[0].committed_history[0]    # P0's birth checkpoint
    new_p1 = procs[1].committed_history[-1]   # P1's committed checkpoint
    try:
        check_c1([Fake(0, old_p0), Fake(1, new_p1)])
        assert False, "the Fig. 1 line must violate C1"
    except ConsistencyViolation as exc:
        assert exc.constraint == "C1"


def test_figure2_labels():
    """Fig. 2: the labels of m, l, x, y, z are 1, 2, 3, 3, 4."""
    sim, procs = build_numbered(0, 1)
    ScriptedWorkload(figure2_steps()).install(sim, procs)
    sim.run()
    labels = [r.label for r in procs[0].ledger.sent]
    assert labels == [1, 2, 3, 3, 4]


def test_figure3_example1_chain_tree():
    """Fig. 3 / Example 1: P2 initiates; the tree is exactly P2->P3->P4 and
    P1 stays out (its own checkpoint already covers x)."""
    sim, procs = build_numbered(1, 4)
    ScriptedWorkload(figure3_steps()).install(sim, procs)
    sim.run()

    assert [procs[i].store.oldchkpt.seq for i in (1, 2, 3, 4)] == [2, 2, 2, 2]
    trees = reconstruct_trees(sim.trace)
    p2_tree = next(t for t in trees.values() if t.root == 2)
    assert p2_tree.edges == [(2, 3), (3, 4)]
    assert p2_tree.decided == "commit"
    assert p2_tree.render() == "P2\n  P3\n    P4"
    # P1's instance was separate (its own lambda_1) with no children.
    p1_tree = next(t for t in trees.values() if t.root == 1)
    assert p1_tree.participants == set()
    check_quiescent(procs.values())
    check_c1(procs.values())


def test_figure4_example2_interfering_instances():
    """Fig. 4 / Example 2: P1 and P2 initiate simultaneously; P3 and P4 are
    recruited by both, share one uncommitted checkpoint each, and both
    instances terminate with success — no blocking, no deadlock."""
    sim, procs = build_numbered(1, 4, seed=2)
    ScriptedWorkload(figure4_steps()).install(sim, procs)
    sim.run()

    trees = reconstruct_trees(sim.trace)
    assert len(trees) == 2
    for tree in trees.values():
        assert tree.decided == "commit"
        assert {3, 4} <= tree.nodes  # shared participants
    # One tentative + one commit per shared process: the checkpoint was
    # shared between the trees, not duplicated.
    for pid in (3, 4):
        assert len(sim.trace.for_process(pid, "chkpt_tentative")) == 1
        assert len(sim.trace.for_process(pid, "chkpt_commit")) == 1
    assert all(procs[i].store.oldchkpt.seq == 2 for i in (1, 2, 3, 4))
    check_quiescent(procs.values())
    check_c1(procs.values())
