"""Randomized integration sweeps: the theorems as statistical assertions.

These runs exercise the full stack (concurrent instances, rollbacks,
non-FIFO channels) and assert the correctness theorems' claims via the
trace oracles.  Seed counts are kept modest for suite speed; the benchmark
suite runs the large sweeps.
"""

import pytest

from repro.analysis import (
    check_app_states,
    check_checkpoint_minimality,
    check_quiescent,
    check_recovery_line,
    check_rollback_minimality,
    reconstruct_trees,
)
from repro.net import AdversarialReorderDelay, ExponentialDelay, LossyDelay, UniformDelay
from repro.testing import build_sim, run_random_workload

SEEDS = range(8)


@pytest.mark.parametrize("seed", SEEDS)
def test_theorem1_and_2_nonfifo(seed):
    """Theorem 1 (termination) + Theorem 2 (consistency) on non-FIFO
    channels with concurrent checkpoints and rollbacks."""
    sim, procs = build_sim(n=5, seed=seed, delay=ExponentialDelay(mean=1.0))
    run_random_workload(sim, procs, duration=50.0, checkpoint_rate=0.06,
                        error_rate=0.02)
    check_quiescent(procs.values())
    check_recovery_line(procs.values())
    check_app_states(procs.values())


@pytest.mark.parametrize("seed", range(4))
def test_adversarial_reordering(seed):
    sim, procs = build_sim(
        n=4, seed=seed, delay=AdversarialReorderDelay(short=0.1, long=4.0)
    )
    run_random_workload(sim, procs, duration=40.0, checkpoint_rate=0.06,
                        error_rate=0.02)
    check_quiescent(procs.values())
    check_recovery_line(procs.values())


@pytest.mark.parametrize("seed", range(4))
def test_lossy_channels(seed):
    """Message loss is retransmission latency; correctness is unaffected."""
    sim, procs = build_sim(
        n=4, seed=seed,
        delay=LossyDelay(UniformDelay(0.3, 0.8), loss_probability=0.2),
    )
    run_random_workload(sim, procs, duration=40.0, checkpoint_rate=0.06,
                        error_rate=0.02)
    check_quiescent(procs.values())
    check_recovery_line(procs.values())


@pytest.mark.parametrize("seed", SEEDS)
def test_theorem3_minimality_of_isolated_instances(seed):
    """Every committed isolated instance recruited only necessary processes."""
    sim, procs = build_sim(n=5, seed=seed, delay=UniformDelay(0.3, 0.7))
    run_random_workload(sim, procs, duration=30.0, message_rate=0.8)
    # One isolated instance at the end of the quiet period.
    procs[seed % 5].initiate_checkpoint()
    sim.run()
    trees = reconstruct_trees(sim.trace)
    committed = [t for t, v in trees.items()
                 if v.kind == "checkpoint" and v.decided == "commit"]
    assert committed
    check_checkpoint_minimality(sim.trace, procs.values(), committed[-1])


@pytest.mark.parametrize("seed", SEEDS)
def test_theorem4_minimality_of_isolated_rollbacks(seed):
    sim, procs = build_sim(n=5, seed=seed, delay=UniformDelay(0.3, 0.7))
    run_random_workload(sim, procs, duration=30.0, message_rate=0.8)
    procs[seed % 5].initiate_rollback()
    sim.run()
    trees = reconstruct_trees(sim.trace)
    rollbacks = [t for t, v in trees.items() if v.kind == "rollback"]
    assert rollbacks
    check_rollback_minimality(sim.trace, rollbacks[-1])


def test_determinism_same_seed_same_trace():
    def run(seed):
        sim, procs = build_sim(n=4, seed=seed, delay=ExponentialDelay(mean=1.0))
        run_random_workload(sim, procs, duration=30.0, checkpoint_rate=0.05,
                            error_rate=0.02)
        return [repr(e) for e in sim.trace]

    assert run(11) == run(11)
    assert run(11) != run(12)


def test_scales_to_more_processes():
    sim, procs = build_sim(n=12, seed=3, delay=UniformDelay(0.3, 0.9))
    run_random_workload(sim, procs, duration=30.0, checkpoint_rate=0.04,
                        error_rate=0.01)
    check_quiescent(procs.values())
    check_recovery_line(procs.values())
    check_app_states(procs.values())
