"""Broad randomized sweeps — Theorem 1/2 at volume.

These compress the development-time stress harness (hundreds of seeds per
configuration) into suite-sized sweeps.  Every run is checked against the
full oracle set; one failing seed fails the sweep with its seed number.
"""

import pytest

from repro.analysis import check_app_states, check_quiescent, check_recovery_line
from repro.net import ExponentialDelay, UniformDelay
from repro.testing import build_sim, run_random_workload


def oracle_sweep(seeds, build, drive):
    failures = []
    for seed in seeds:
        sim, procs = build(seed)
        try:
            drive(sim, procs)
            check_quiescent(procs.values())
            check_recovery_line(procs.values())
            check_app_states(procs.values())
        except Exception as exc:  # noqa: BLE001 - reported with the seed
            failures.append((seed, f"{type(exc).__name__}: {exc}"))
    assert not failures, failures


def test_hundred_seed_concurrent_sweep():
    oracle_sweep(
        range(100),
        lambda seed: build_sim(n=6, seed=seed, delay=ExponentialDelay(mean=1.0)),
        lambda sim, procs: run_random_workload(
            sim, procs, duration=50.0, checkpoint_rate=0.05, error_rate=0.02
        ),
    )


def test_failure_sweep():
    """Thirty seeds of double-crash-and-recover under the Section 6 rules."""
    from repro.core import ProtocolConfig
    from repro.failure import FailureInjector

    def build(seed):
        return build_sim(
            n=6, seed=seed, delay=ExponentialDelay(mean=1.0),
            config=ProtocolConfig(failure_resilience=True),
            detector_latency=2.0, spoolers=True,
        )

    failures = []
    for seed in range(30):
        sim, procs = build(seed)
        inj = FailureInjector(sim)
        inj.crash_at(20.0, pid=seed % 6)
        inj.crash_at(25.0, pid=(seed + 3) % 6)
        inj.recover_at(45.0, pid=seed % 6)
        inj.recover_at(50.0, pid=(seed + 3) % 6)
        try:
            run_random_workload(sim, procs, duration=60.0, checkpoint_rate=0.05,
                                error_rate=0.01, horizon=400.0, max_events=500000)
            alive = [p for p in procs.values() if not p.crashed]
            for p in alive:
                assert not p.comm_suspended and not p.send_suspended
            check_recovery_line(alive)
            check_app_states(alive)
        except Exception as exc:  # noqa: BLE001
            failures.append((seed, f"{type(exc).__name__}: {exc}"))
    assert not failures, failures


def test_high_contention_sweep():
    """Checkpoint and error rates cranked up: instances constantly overlap."""
    oracle_sweep(
        range(20),
        lambda seed: build_sim(n=5, seed=seed, delay=UniformDelay(0.2, 1.8)),
        lambda sim, procs: run_random_workload(
            sim, procs, duration=40.0, message_rate=2.0,
            checkpoint_rate=0.2, error_rate=0.08,
        ),
    )


@pytest.mark.parametrize("n", [2, 3, 9, 16])
def test_size_sweep(n):
    oracle_sweep(
        range(5),
        lambda seed: build_sim(n=n, seed=seed, delay=ExponentialDelay(mean=0.8)),
        lambda sim, procs: run_random_workload(
            sim, procs, duration=30.0, checkpoint_rate=0.05, error_rate=0.02,
            max_events=600000,
        ),
    )
