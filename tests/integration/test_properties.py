"""Property-based tests (hypothesis) on core invariants.

Two layers: pure data-structure properties (ledger, votes, recovery line)
and whole-protocol properties driven by generated workload parameters.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    check_app_states,
    check_c1_from_trace,
    check_no_dangling_receives_from_trace,
    check_quiescent,
    check_recovery_line,
)
from repro.analysis.domino import CheckpointView, recovery_line
from repro.errors import ConsistencyViolation
from repro.core.labels import LabelLedger
from repro.failure import VoteRegistry
from repro.net import ExponentialDelay, UniformDelay
from repro.testing import build_sim, run_random_workload
from repro.types import MessageId

# ----------------------------------------------------------------------
# Ledger properties
# ----------------------------------------------------------------------

ledger_ops = st.lists(
    st.one_of(
        st.tuples(st.just("send"), st.integers(1, 4)),
        st.tuples(st.just("recv"), st.integers(1, 4)),
        st.tuples(st.just("advance"), st.just(0)),
    ),
    max_size=60,
)


def apply_ops(ops):
    led = LabelLedger(0)
    led.n = 1
    peer_label = {p: 1 for p in range(1, 5)}
    k = 0
    for op, arg in ops:
        if op == "send":
            led.record_send(MessageId(0, k), dst=arg)
            k += 1
        elif op == "recv":
            led.record_receive(MessageId(arg, k), src=arg, label=peer_label[arg])
            peer_label[arg] += 1
            k += 1
        else:
            led.advance()
    return led


@given(ledger_ops)
def test_labels_never_exceed_counter(ops):
    led = apply_ops(ops)
    assert all(r.label <= led.n for r in led.sent)
    assert all(r.interval <= led.n for r in led.received)


@given(ledger_ops, st.integers(1, 10))
def test_rollback_undoes_exactly_the_suffix(ops, restored):
    led = apply_ops(ops)
    led.undo_for_rollback(restored)
    for r in led.sent:
        assert r.undone == (r.label >= restored)
    for r in led.received:
        assert r.undone == (r.interval >= restored)


@given(ledger_ops, st.integers(1, 10), st.integers(1, 10))
def test_rollback_monotone_and_idempotent(ops, a, b):
    lo, hi = min(a, b), max(a, b)
    led = apply_ops(ops)
    led.undo_for_rollback(hi)
    extra, _ = led.undo_for_rollback(hi)
    assert extra == []  # idempotent
    led.undo_for_rollback(lo)  # deeper rollback only adds undone records
    for r in led.sent:
        assert r.undone == (r.label >= lo)


@given(ledger_ops)
def test_senders_in_range_is_union_of_intervals(ops):
    led = apply_ops(ops)
    lo, hi = 1, max(led.n, 1)
    merged = {}
    for interval in range(lo, hi + 1):
        for src, label in led.senders_in_interval(interval).items():
            merged[src] = max(merged.get(src, 0), label)
    assert led.senders_in_range(lo, hi) == merged


# ----------------------------------------------------------------------
# Voting properties
# ----------------------------------------------------------------------

@given(
    st.dictionaries(st.integers(0, 9), st.integers(1, 5), min_size=2, max_size=10),
    st.data(),
)
def test_at_most_one_major_partition(votes, data):
    reg = VoteRegistry(votes)
    pids = sorted(votes)
    cut = data.draw(st.integers(1, len(pids) - 1))
    groups = [set(pids[:cut]), set(pids[cut:])]
    labels = reg.classify(groups)
    assert list(labels.values()).count("major") <= 1


@given(st.dictionaries(st.integers(0, 9), st.integers(1, 5), min_size=1, max_size=10))
def test_whole_system_is_always_major(votes):
    reg = VoteRegistry(votes)
    labels = reg.classify([set(votes)])
    assert list(labels.values()) == ["major"]


# ----------------------------------------------------------------------
# Recovery-line properties
# ----------------------------------------------------------------------

@st.composite
def histories_strategy(draw):
    n = draw(st.integers(2, 4))
    depth = draw(st.integers(1, 4))
    # Random message keys; each history's view k reflects a random subset
    # of sends (its own) and receives (others'), growing with k.
    histories = {}
    sends = {p: {(p, i) for i in range(draw(st.integers(0, 4)))} for p in range(n)}
    all_msgs = sorted(set().union(*sends.values()))
    for p in range(n):
        views = [CheckpointView(1, set(), set())]
        sent_so_far, recv_so_far = set(), set()
        for k in range(depth):
            new_sent = draw(st.sets(st.sampled_from(sorted(sends[p]) or [(p, 99)]),
                                    max_size=len(sends[p])))
            others = [m for m in all_msgs if m[0] != p]
            new_recv = draw(st.sets(st.sampled_from(others), max_size=len(others))) if others else set()
            sent_so_far |= {m for m in new_sent if m in sends[p]}
            recv_so_far |= set(new_recv)
            views.append(CheckpointView(k + 2, set(recv_so_far), set(sent_so_far)))
        histories[p] = views
    return histories


@settings(max_examples=50, deadline=None)
@given(histories_strategy())
def test_recovery_line_is_consistent_and_maximal_downwards(histories):
    start = {p: len(v) - 1 for p, v in histories.items()}
    line = recovery_line(histories, start)
    # The line never exceeds the start and is itself consistent.
    for p in line:
        assert 0 <= line[p] <= start[p]
    sent_union = {p: histories[p][line[p]].sent for p in line}
    for p in line:
        for src, idx in histories[p][line[p]].recv:
            if src in line and line[p] > 0:
                assert (src, idx) in sent_union[src]


# ----------------------------------------------------------------------
# Whole-protocol properties
# ----------------------------------------------------------------------

@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 6),
    message_rate=st.floats(0.2, 2.0),
    checkpoint_rate=st.floats(0.0, 0.15),
    error_rate=st.floats(0.0, 0.05),
)
def test_protocol_invariants_hold_for_generated_workloads(
    seed, n, message_rate, checkpoint_rate, error_rate
):
    sim, procs = build_sim(n=n, seed=seed, delay=ExponentialDelay(mean=0.8))
    run_random_workload(
        sim, procs, duration=25.0, message_rate=message_rate,
        checkpoint_rate=checkpoint_rate, error_rate=error_rate,
    )
    check_quiescent(procs.values())
    check_recovery_line(procs.values())
    check_app_states(procs.values())


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 6),
    error_rate=st.floats(0.0, 0.08),
)
def test_trace_based_checkers_agree_with_manifest_checkers(seed, n, error_rate):
    """The TraceIndex oracles and the stored-manifest oracles are the same
    function: same verdicts, and element-for-element equal manifests."""
    sim, procs = build_sim(n=n, seed=seed, delay=ExponentialDelay(mean=0.8))
    run_random_workload(
        sim, procs, duration=20.0, message_rate=1.0,
        checkpoint_rate=0.1, error_rate=error_rate,
    )
    index = sim.trace.index

    # Verdict agreement (a healthy run passes both ways; any disagreement
    # between the two oracles is a bug regardless of the verdict).
    from repro.analysis import check_c1, check_no_dangling_receives

    for manifest_check, trace_check in (
        (check_c1, check_c1_from_trace),
        (check_no_dangling_receives, check_no_dangling_receives_from_trace),
    ):
        try:
            manifest_check(procs.values())
            manifest_verdict = None
        except ConsistencyViolation as violation:
            manifest_verdict = violation.constraint
        try:
            trace_check(sim.trace)
            trace_verdict = None
        except ConsistencyViolation as violation:
            trace_verdict = violation.constraint
        assert manifest_verdict == trace_verdict

    # The reconstructed recovery line IS the stored one.
    from repro.analysis.consistency import _last_committed

    for pid, proc in procs.items():
        record = _last_committed(proc)
        view = index.last_committed_manifest(pid)
        assert view.seq == record.seq
        assert set(view.recv) == {tuple(p) for p in record.meta.get("recv", [])}
        assert set(view.sent) == {tuple(p) for p in record.meta.get("sent", [])}


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(2, 5))
def test_k_simultaneous_initiators_all_terminate(seed, k):
    """The concurrency claim as a property: k instances, zero blocking."""
    sim, procs = build_sim(n=6, seed=seed, delay=UniformDelay(0.3, 0.9))
    run_random_workload(sim, procs, duration=15.0, message_rate=1.0)
    for pid in range(k):
        procs[pid].initiate_checkpoint()
    sim.run()
    check_quiescent(procs.values())
    check_recovery_line(procs.values())
