"""`python -m repro.mc` CLI: exit codes and the counterexample workflow."""

import json

from repro.mc.__main__ import main


def test_clean_exploration_exits_zero(capsys):
    code = main(["--scenario", "isolated-checkpoint", "--depth-bound", "20"])
    out = capsys.readouterr().out
    assert code == 0
    assert "invariants hold on every explored state" in out
    assert "explored" in out and "pruned" in out


def test_bounded_run_reports_incompleteness(capsys):
    code = main(["--scenario", "concurrent", "--depth-bound", "8", "--max-states", "5000"])
    out = capsys.readouterr().out
    assert code == 0
    assert "exploration incomplete" in out


def test_mutant_run_writes_replayable_counterexample(capsys, tmp_path):
    cx = tmp_path / "cx.json"
    code = main(
        [
            "--scenario", "concurrent",
            "--mutant", "drop-undone-send-guard",
            "--depth-bound", "14",
            "--max-states", "60000",
            "--counterexample", str(cx),
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "VIOLATION" in out and "shrunk to" in out
    payload = json.loads(cx.read_text())
    assert payload["format"] == "repro.mc/schedule-v1"

    replay_code = main(["--replay", str(cx)])
    replay_out = capsys.readouterr().out
    assert replay_code == 1
    assert "reproduced violation" in replay_out
