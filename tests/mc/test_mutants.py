"""End-to-end mutant pipeline: find -> shrink -> dump -> replay.

``drop-undone-send-guard`` deletes clause 3 of the true-child test; the
explorer must find an interleaving where that breaks 2PC all-or-nothing,
the shrinker must reduce the schedule, and the dumped artifact must replay
to the same violation — the full counterexample workflow CI exercises.
"""

import pytest

from repro.mc import Explorer, make_scenario
from repro.mc.mutants import MUTANTS, resolve_mutant
from repro.mc.schedule import dump_schedule, load_schedule, replay_file
from repro.mc.shrink import shrink

MUTANT = "drop-undone-send-guard"
BOUNDS = {"depth_bound": 14, "max_states": 60_000}


@pytest.fixture(scope="module")
def caught():
    explorer = Explorer(
        make_scenario("concurrent", 3), engine_class=resolve_mutant(MUTANT), **BOUNDS
    )
    result = explorer.run()
    assert result.violation is not None, "explorer failed to catch the mutant"
    return explorer, result.violation


def test_healthy_engine_passes_where_the_mutant_fails(caught):
    explorer, violation = caught
    healthy = Explorer(make_scenario("concurrent", 3), **BOUNDS)
    # The exact violating schedule is clean on the real protocol.
    harness = healthy.replay(violation.schedule)
    healthy.check(harness)


def test_violation_is_all_or_nothing_breakage(caught):
    _, violation = caught
    assert "committed at" in str(violation.cause)
    assert "aborted at" in str(violation.cause)


def test_shrink_produces_minimal_reproduction(caught):
    explorer, violation = caught
    minimal, cause = shrink(explorer, violation.schedule)
    assert 0 < len(minimal) <= len(violation.schedule)
    assert "2PC" in str(cause) or "committed" in str(cause)
    # 1-minimality: removing any single remaining choice loses the bug.
    from repro.mc.shrink import _violates

    for i in range(len(minimal)):
        candidate = minimal[:i] + minimal[i + 1:]
        assert _violates(explorer, candidate) is None, (
            f"choice {i} of the shrunk schedule is removable — not minimal"
        )


def test_counterexample_roundtrip_reproduces_violation(caught, tmp_path):
    explorer, violation = caught
    minimal, cause = shrink(explorer, violation.schedule)
    path = tmp_path / "cx.json"
    dump_schedule(str(path), "concurrent", 3, minimal, mutant=MUTANT, violation=str(cause))

    payload = load_schedule(str(path))
    assert payload["mutant"] == MUTANT
    assert payload["schedule"] == minimal

    reproduced = replay_file(str(path))
    assert reproduced is not None
    assert "committed at" in str(reproduced)


def test_schedule_file_without_mutant_replays_clean(tmp_path):
    path = tmp_path / "clean.json"
    dump_schedule(str(path), "isolated-checkpoint", 3, [("a", 0)])
    assert replay_file(str(path)) is None


def test_load_rejects_wrong_format(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text('{"format": "something-else", "schedule": []}')
    with pytest.raises(ValueError, match="not a repro.mc/schedule"):
        load_schedule(str(path))


def test_resolve_mutant():
    assert resolve_mutant(None) is None
    assert resolve_mutant(MUTANT) is MUTANTS[MUTANT]
    with pytest.raises(ValueError, match="unknown mutant"):
        resolve_mutant("no-such-mutant")
