"""Scenario construction and validation."""

import pytest

from repro.mc import SCENARIOS, Scenario, make_scenario


def test_registry_covers_the_documented_scenarios():
    assert set(SCENARIOS) == {
        "concurrent",
        "isolated-checkpoint",
        "isolated-rollback",
        "join-mid-instance",
    }


def test_make_scenario_builds_each_registered_name():
    for name in SCENARIOS:
        scenario = make_scenario(name, 3)
        assert scenario.n == 3
        assert scenario.actions  # every scenario initiates something


def test_concurrent_has_two_distinct_initiators():
    scenario = make_scenario("concurrent", 3)
    ops = sorted(op for _, op in scenario.actions)
    assert ops == ["checkpoint", "rollback"]
    pids = {pid for pid, _ in scenario.actions}
    assert len(pids) == 2  # distinct processes race at n >= 3


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        make_scenario("nope", 3)


def test_too_small_cluster_rejected():
    with pytest.raises(ValueError, match="at least 2"):
        Scenario(name="tiny", n=1, setup=(), actions=())


def test_out_of_range_send_rejected():
    with pytest.raises(ValueError, match="outside"):
        Scenario(name="bad", n=2, setup=((0, 5, "m"),), actions=())


def test_out_of_range_action_pid_rejected():
    with pytest.raises(ValueError, match="outside"):
        Scenario(name="bad", n=2, setup=(), actions=((7, "checkpoint"),))


def test_unknown_action_op_rejected():
    with pytest.raises(ValueError, match="unknown action"):
        Scenario(name="bad", n=2, setup=(), actions=((0, "explode"),))


def test_join_pid_must_be_outside_the_seed_membership():
    with pytest.raises(ValueError, match="already a member"):
        Scenario(name="bad", n=3, setup=(), actions=((1, "join"),))


def test_join_mid_instance_admits_a_fresh_pid():
    scenario = make_scenario("join-mid-instance", 3)
    ops = sorted(op for _, op in scenario.actions)
    assert ops == ["checkpoint", "join"]
    join_pid = next(pid for pid, op in scenario.actions if op == "join")
    assert join_pid >= scenario.n
