"""ClusterHarness: deterministic replay, stable choice keys, quiescence."""

from repro.mc import ClusterHarness, make_scenario


def drain_fifo(harness):
    """Execute choices in sorted (FIFO-ish) order until quiescent."""
    schedule = []
    while not harness.quiescent:
        key = harness.enabled()[0]
        harness.execute(key)
        schedule.append(key)
    return schedule


def state_fingerprint(harness):
    return {
        pid: (
            engine.ledger.n,
            engine.store.oldchkpt.seq,
            tuple(r.seq for r in engine.committed_history),
            tuple(sorted(engine.decisions_seen.items())),
        )
        for pid, engine in harness.engines.items()
    }


def test_setup_sends_are_in_flight_and_keyed_per_channel():
    harness = ClusterHarness(make_scenario("concurrent", 3))
    message_keys = [k for k in harness.enabled() if k[0] == "m"]
    # One ring message per edge, each the 0th message on its channel.
    assert message_keys == [("m", 0, 1, 0), ("m", 1, 2, 0), ("m", 2, 0, 0)]
    action_keys = [k for k in harness.enabled() if k[0] == "a"]
    assert action_keys == [("a", 0), ("a", 1)]


def test_target_maps_delivery_to_dst_and_action_to_pid():
    scenario = make_scenario("concurrent", 3)
    harness = ClusterHarness(scenario)
    assert harness.target(("m", 0, 1, 0)) == 1
    assert harness.target(("a", 0)) == scenario.actions[0][0]


def test_identical_schedules_reproduce_identical_states():
    scenario = make_scenario("concurrent", 3)
    first = ClusterHarness(scenario)
    schedule = drain_fifo(first)

    second = ClusterHarness(scenario)
    for key in schedule:
        assert second.is_enabled(key)
        second.execute(key)

    assert second.quiescent
    assert state_fingerprint(first) == state_fingerprint(second)
    assert len(first.trace) == len(second.trace)


def test_run_reaches_quiescence_and_commits_the_checkpoint_instance():
    harness = ClusterHarness(make_scenario("isolated-checkpoint", 3))
    drain_fifo(harness)
    assert harness.quiescent
    committed = [
        pid
        for pid, engine in harness.engines.items()
        if engine.store.oldchkpt.seq > 1
    ]
    assert committed, "the initiated checkpoint instance never committed anywhere"
