"""Explorer: exhaustive small scenarios, honest bounds, and POR soundness."""

import pytest

from repro.mc import Explorer, make_scenario


def test_isolated_checkpoint_explored_exhaustively_and_clean():
    explorer = Explorer(make_scenario("isolated-checkpoint", 3), depth_bound=20)
    result = explorer.run()
    assert result.violation is None
    assert result.truncated == 0, "small scenario should fit the bounds"
    assert result.exhaustive
    assert result.terminal > 0
    assert result.pruned > 0, "sleep sets should prune something non-trivial"


def test_isolated_rollback_explored_exhaustively_and_clean():
    explorer = Explorer(make_scenario("isolated-rollback", 3), depth_bound=20)
    result = explorer.run()
    assert result.violation is None
    assert result.exhaustive
    assert result.terminal > 0


def test_concurrent_quick_mode_is_clean_and_reports_truncation():
    # CI quick mode: bounded exploration of the checkpoint+rollback race.
    explorer = Explorer(make_scenario("concurrent", 3), depth_bound=10, max_states=20_000)
    result = explorer.run()
    assert result.violation is None
    assert result.explored > 100
    assert result.truncated > 0, "depth bound must be reported, not hidden"
    assert not result.exhaustive


def test_por_prunes_but_preserves_verdict_and_terminal_coverage():
    scenario = make_scenario("isolated-rollback", 3)
    with_por = Explorer(scenario, depth_bound=20, por=True).run()
    without_por = Explorer(scenario, depth_bound=20, por=False).run()
    assert with_por.violation is None and without_por.violation is None
    assert with_por.exhaustive and without_por.exhaustive
    assert with_por.explored < without_por.explored
    assert without_por.pruned == 0


def test_state_bound_truncates_gracefully():
    explorer = Explorer(make_scenario("concurrent", 3), depth_bound=30, max_states=50)
    result = explorer.run()
    assert result.explored <= 50
    assert not result.exhaustive


def test_replay_reproduces_a_schedule_prefix_deterministically():
    explorer = Explorer(make_scenario("concurrent", 3), depth_bound=10)
    harness = explorer.replay([])
    schedule = []
    while not harness.quiescent and len(schedule) < 6:
        key = harness.enabled()[0]
        harness.execute(key)
        schedule.append(key)
    replayed = explorer.replay(schedule)
    assert replayed.step == harness.step
    assert sorted(replayed.in_flight) == sorted(harness.in_flight)


@pytest.mark.parametrize("bad_depth", [0, -3])
def test_nonpositive_depth_bound_rejected(bad_depth):
    with pytest.raises(ValueError):
        Explorer(make_scenario("concurrent", 3), depth_bound=bad_depth)


def test_join_mid_instance_neither_blocks_nor_breaks_minimality():
    # The explorer places the join at every point relative to the 2PC:
    # every terminal state must be quiescent (the instance completed — a
    # join never blocks the round), the quiescent battery holds over the
    # enlarged membership, and the single-instance minimality check
    # confirms the joiner was never recruited into the tree.
    explorer = Explorer(make_scenario("join-mid-instance", 3), depth_bound=25)
    result = explorer.run()
    assert result.violation is None
    assert result.exhaustive
    assert result.terminal > 0


def test_joined_engine_participates_in_later_replayed_steps():
    explorer = Explorer(make_scenario("join-mid-instance", 3), depth_bound=25)
    harness = explorer.replay([])
    # Fire the join first, then drain everything else.
    join_key = next(
        k for k in harness.enabled()
        if k[0] == "a" and harness._pending_actions[k[1]][1] == "join"
    )
    harness.execute(join_key)
    assert 3 in harness.engines
    assert harness.engines[3].peers == (0, 1, 2, 3)
    assert all(e.peers == (0, 1, 2, 3) for e in harness.engines.values())
    while not harness.quiescent:
        harness.execute(harness.enabled()[0])
    # The joiner has no communication history, so it must not have been
    # recruited: no committed checkpoint beyond its initial one.
    assert len(harness.engines[3].committed_history) == 1
