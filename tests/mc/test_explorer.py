"""Explorer: exhaustive small scenarios, honest bounds, and POR soundness."""

import pytest

from repro.mc import Explorer, make_scenario


def test_isolated_checkpoint_explored_exhaustively_and_clean():
    explorer = Explorer(make_scenario("isolated-checkpoint", 3), depth_bound=20)
    result = explorer.run()
    assert result.violation is None
    assert result.truncated == 0, "small scenario should fit the bounds"
    assert result.exhaustive
    assert result.terminal > 0
    assert result.pruned > 0, "sleep sets should prune something non-trivial"


def test_isolated_rollback_explored_exhaustively_and_clean():
    explorer = Explorer(make_scenario("isolated-rollback", 3), depth_bound=20)
    result = explorer.run()
    assert result.violation is None
    assert result.exhaustive
    assert result.terminal > 0


def test_concurrent_quick_mode_is_clean_and_reports_truncation():
    # CI quick mode: bounded exploration of the checkpoint+rollback race.
    explorer = Explorer(make_scenario("concurrent", 3), depth_bound=10, max_states=20_000)
    result = explorer.run()
    assert result.violation is None
    assert result.explored > 100
    assert result.truncated > 0, "depth bound must be reported, not hidden"
    assert not result.exhaustive


def test_por_prunes_but_preserves_verdict_and_terminal_coverage():
    scenario = make_scenario("isolated-rollback", 3)
    with_por = Explorer(scenario, depth_bound=20, por=True).run()
    without_por = Explorer(scenario, depth_bound=20, por=False).run()
    assert with_por.violation is None and without_por.violation is None
    assert with_por.exhaustive and without_por.exhaustive
    assert with_por.explored < without_por.explored
    assert without_por.pruned == 0


def test_state_bound_truncates_gracefully():
    explorer = Explorer(make_scenario("concurrent", 3), depth_bound=30, max_states=50)
    result = explorer.run()
    assert result.explored <= 50
    assert not result.exhaustive


def test_replay_reproduces_a_schedule_prefix_deterministically():
    explorer = Explorer(make_scenario("concurrent", 3), depth_bound=10)
    harness = explorer.replay([])
    schedule = []
    while not harness.quiescent and len(schedule) < 6:
        key = harness.enabled()[0]
        harness.execute(key)
        schedule.append(key)
    replayed = explorer.replay(schedule)
    assert replayed.step == harness.step
    assert sorted(replayed.in_flight) == sorted(harness.in_flight)


@pytest.mark.parametrize("bad_depth", [0, -3])
def test_nonpositive_depth_bound_rejected(bad_depth):
    with pytest.raises(ValueError):
        Explorer(make_scenario("concurrent", 3), depth_bound=bad_depth)
