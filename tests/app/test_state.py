"""The hosted job table: tracked mutations, trace records, snapshots.

Unit-level checks of :class:`repro.app.state.AppHost` — the server side of
checkpoint-as-a-service — and of the engine's ``AppOp`` path that makes its
mutations crash-consistent.
"""

import pytest

from repro.app.state import AppHost, AppProcess, completed_record, fold_unit
from repro.core import ProtocolConfig
from repro.errors import ProtocolError
from repro.testing import build_sim
from repro.tracekinds import K_JOB_DONE, K_JOB_STAGE, K_JOB_SUBMIT, K_JOB_UNIT


def drain(host, op):
    """Apply one op, returning just the trace kinds it produced."""
    return [kind for kind, _ in host.apply(op)]


def test_submit_registers_and_is_idempotent():
    host = AppHost(0)
    assert drain(host, ("submit", "j0", (2, 1))) == [K_JOB_SUBMIT]
    record = host.jobs["j0"]
    assert (record["stage"], record["cursor"], record["done"]) == (0, 0, False)
    # Resubmission (a client retrying after a deep rollback) changes nothing.
    assert drain(host, ("submit", "j0", (2, 1))) == []
    assert host.jobs["j0"] == record


def test_units_advance_stages_and_finish_the_job():
    host = AppHost(0)
    host.apply(("submit", "j0", (2, 1)))
    assert drain(host, ("unit", "j0")) == [K_JOB_UNIT]
    assert drain(host, ("unit", "j0")) == [K_JOB_UNIT, K_JOB_STAGE]
    assert host.progress("j0") == (1, 0)
    assert drain(host, ("unit", "j0")) == [K_JOB_UNIT, K_JOB_STAGE, K_JOB_DONE]
    assert host.jobs["j0"] == completed_record("j0", (2, 1))
    # Ticking a finished job is a no-op (the driver may race a completion).
    assert drain(host, ("unit", "j0")) == []


def test_unit_for_unknown_job_is_a_noop():
    host = AppHost(0)
    assert drain(host, ("unit", "ghost")) == []
    assert host.jobs == {}


def test_digest_is_deterministic_across_hosts():
    # Two hosts that executed the same units hold bit-equal records —
    # whatever kernel drove them.  This is the equivalence tests' anchor.
    a, b = AppHost(0), AppHost(7)
    for host in (a, b):
        host.apply(("submit", "j0", (2, 2)))
        for _ in range(4):
            host.apply(("unit", "j0"))
    assert a.fingerprints() == b.fingerprints()
    digest = 0
    for stage, units in enumerate((2, 2)):
        for unit in range(units):
            digest = fold_unit(digest, "j0", stage, unit)
    assert a.jobs["j0"]["digest"] == digest


def test_snapshot_restore_roundtrips_the_job_table():
    host = AppHost(0)
    host.apply(("submit", "j0", (2, 2)))
    host.apply(("unit", "j0"))
    frozen = host.snapshot()
    host.apply(("unit", "j0"))
    host.apply(("unit", "j0"))
    host.restore(frozen)
    assert host.progress("j0") == (0, 1)
    # The restored table is a copy, not an alias of the snapshot.
    host.apply(("unit", "j0"))
    assert frozen["jobs"]["j0"]["cursor"] == 1


def test_app_op_is_traced_through_the_engine():
    sim, procs = build_sim(
        n=2, cls=AppProcess,
        config=ProtocolConfig(checkpoint_interval=None),
    )
    procs[0].app_op(("submit", "j0", (1, 1)))
    procs[0].app_op(("unit", "j0"))
    procs[0].app_op(("unit", "j0"))
    sim.run(until=1.0)
    index = sim.trace.index
    assert index.count(K_JOB_SUBMIT) == 1
    assert index.count(K_JOB_UNIT) == 2
    assert index.count(K_JOB_STAGE) == 2
    assert index.count(K_JOB_DONE) == 1
    assert all(e.pid == 0 for e in index.by_kind(K_JOB_UNIT))


def test_app_op_requires_an_application_with_apply():
    # The default CounterApp has no tracked-mutation support; the engine
    # must say so, not fail deep inside the app.
    sim, procs = build_sim(n=2)
    with pytest.raises(ProtocolError, match="does not support tracked mutations"):
        procs[0].app_op(("submit", "j0", (1,)))


def test_crashed_host_ignores_app_ops():
    sim, procs = build_sim(
        n=2, cls=AppProcess,
        config=ProtocolConfig(checkpoint_interval=None, failure_resilience=True),
    )
    procs[0].app_op(("submit", "j0", (2,)))
    sim.crash(0)
    procs[0].app_op(("unit", "j0"))  # dropped, like any event on a dead node
    assert procs[0].app.units_applied("j0") == 0
