"""One workload, three kernels: the job ledger must not care.

:class:`~repro.app.traffic.JobTraffic` runs unmodified on the discrete-event
simulator, the live asyncio :class:`~repro.runtime.cluster.Cluster`, and the
multi-process :class:`~repro.runtime.shard.ShardedCluster`.  Unit content is
a pure function of ``(job, stage, unit)``, so all three must finish every
job with bit-identical ``(done, digest)`` records — the sim-vs-live
job-ledger equivalence the subsystem promises.
"""

import asyncio

from repro.analysis import audit_jobs, check_c1_from_trace
from repro.app.state import AppProcess, completed_record
from repro.app.traffic import JobTraffic
from repro.core import ProtocolConfig
from repro.testing import build_sim

JOBS = 12
STAGES = (2, 2, 2)
TRAFFIC = dict(
    jobs=JOBS, rate=3.0, stages=STAGES, unit_time=0.25, retry=1.0, horizon=40.0
)


def config():
    return ProtocolConfig(checkpoint_interval=5.0, failure_resilience=True)


def expected_ledger():
    return {
        f"j{k}": (True, completed_record(f"j{k}", STAGES)["digest"])
        for k in range(JOBS)
    }


def ledger_sim():
    sim, procs = build_sim(
        n=4, seed=2, cls=AppProcess, config=config(),
        detector_latency=1.0, spoolers=True,
    )
    traffic = JobTraffic(**TRAFFIC)
    traffic.install(sim, procs)
    sim.run(until=50.0)
    assert traffic.metrics()["jobs_durable"] == JOBS
    return traffic.fingerprints()


def ledger_live(tmp_path):
    from repro.runtime.cluster import Cluster

    async def drive():
        cluster = Cluster(
            n=4, root=str(tmp_path / "live"), seed=2, transport="loopback",
            config=config(), process_cls=AppProcess, time_scale=0.005,
        )
        traffic = JobTraffic(**TRAFFIC)
        driver = traffic.install(cluster.runtime, cluster.procs)
        await cluster.start()
        await cluster.wait_until(
            lambda: all(h.durable for h in driver.handles.values()),
            timeout=300.0, what="live jobs to complete durably",
        )
        await cluster.quiesce()
        await cluster.shutdown()
        return traffic.fingerprints()

    return asyncio.run(drive())


def ledger_sharded(tmp_path):
    from repro.runtime.shard import ShardedCluster

    cluster = ShardedCluster(
        n=4, root=str(tmp_path / "sharded"), shards=2, seed=2,
        config=config(), time_scale=0.01, app=dict(TRAFFIC),
    )
    try:
        cluster.start()
        cluster.wait_until_jobs_durable(timeout=600.0)
        status = cluster.app_status()
        cluster.shutdown()
    finally:
        cluster.close()
    assert status["jobs_durable"] == JOBS
    # Each shard hosted and completed its own slice of the one schedule.
    assert all(s["jobs"] > 0 for s in status["per_shard"])
    return status["fingerprints"]


def test_job_ledger_is_identical_across_all_three_kernels(tmp_path):
    control = expected_ledger()
    assert ledger_sim() == control
    assert ledger_live(tmp_path) == control
    assert ledger_sharded(tmp_path) == control


def test_sharded_app_survives_kill_and_restart(tmp_path):
    from repro.runtime.shard import ShardedCluster

    cluster = ShardedCluster(
        n=4, root=str(tmp_path / "sharded-kill"), shards=2, seed=2,
        config=config(), time_scale=0.01,
        app=dict(TRAFFIC, jobs=16, rate=4.0, horizon=80.0),
    )
    victim = 1
    try:
        cluster.start()
        cluster.run_for(6.0)
        cluster.kill(victim)
        cluster.run_for(5.0)
        cluster.restart(victim)
        cluster.wait_until_jobs_durable(timeout=600.0)
        status = cluster.app_status()
        cluster.shutdown()
    finally:
        cluster.close()

    assert status["jobs_done"] == 16
    assert status["jobs_durable"] == 16
    expected = {
        f"j{k}": (True, completed_record(f"j{k}", STAGES)["digest"])
        for k in range(16)
    }
    assert status["fingerprints"] == expected

    index = cluster.merged_index()
    audit = audit_jobs(index)
    assert audit["committed_stage_reexecutions"] == 0
    assert audit["jobs_done"] == 16
    check_c1_from_trace(index, pids=list(range(cluster.n)))
