"""Crash-consistent resume: kill a hosting node, restart it, prove resume.

The subsystem's acceptance behaviour, at test scale: a staged data-pipeline
job hosted on a node that dies mid-stage resumes from the recovery line
after restart — no committed stage re-executes, no uncommitted effect
survives, and the final job records are bit-identical to a run that never
failed.
"""

from repro.analysis import audit_jobs
from repro.app.state import AppProcess, completed_record
from repro.app.traffic import JobTraffic
from repro.core import ProtocolConfig
from repro.testing import build_sim

JOBS = 20
STAGES = (2, 2, 2)


def run_scenario(
    kill=False, collector=None, jobs=JOBS, seed=3, kill_at=8.0, recover_at=14.0
):
    config = ProtocolConfig(checkpoint_interval=5.0, failure_resilience=True)
    sim, procs = build_sim(
        n=4, seed=seed, cls=AppProcess, config=config,
        detector_latency=1.0, spoolers=True,
    )
    traffic = JobTraffic(
        jobs=jobs, rate=4.0, stages=STAGES, unit_time=0.25,
        retry=1.0, horizon=60.0, collector=collector,
    )
    traffic.install(sim, procs)
    if kill:
        victim = collector if collector is not None else 1
        sim.scheduler.at(kill_at, lambda: sim.crash(victim), label="kill")
        sim.scheduler.at(recover_at, lambda: sim.recover(victim), label="restart")
    sim.run(until=70.0)
    return sim, procs, traffic


def expected_ledger(jobs=JOBS):
    return {
        f"j{k}": (True, completed_record(f"j{k}", STAGES)["digest"])
        for k in range(jobs)
    }


def test_all_jobs_complete_durably_without_failures():
    sim, procs, traffic = run_scenario(kill=False)
    metrics = traffic.metrics()
    assert metrics["jobs_done"] == JOBS
    assert metrics["jobs_durable"] == JOBS
    # No failures -> every unit executed exactly once.
    assert metrics["units_executed"] == metrics["units_needed_done"]
    assert traffic.fingerprints() == expected_ledger()
    audit = audit_jobs(sim.trace.index)
    assert audit["committed_stage_reexecutions"] == 0
    assert audit["rollbacks"] == 0


def test_killed_host_resumes_from_recovery_line_not_from_scratch():
    sim, procs, traffic = run_scenario(kill=True)
    metrics = traffic.metrics()
    assert metrics["jobs_done"] == JOBS
    assert metrics["jobs_durable"] == JOBS
    # The final records match the never-killed control exactly: resumed
    # execution replayed precisely the undone units, nothing else.
    assert traffic.fingerprints() == expected_ledger()

    audit = audit_jobs(sim.trace.index)
    # The headline invariants: a committed stage never ran twice, and the
    # restart salvaged checkpointed progress instead of starting over.
    assert audit["committed_stage_reexecutions"] == 0
    assert audit["violations"] == []
    assert audit["rollbacks"] > 0
    assert audit["units_salvaged"] > 0
    # Work *was* re-executed (the slice past the recovery line) — but less
    # than the killed host had completed: a resume, not a restart.
    killed_host_units = sum(
        h.units_executed for h in traffic.driver.handles.values()
        if h.spec.host == 1
    )
    assert 0 < metrics["units_reexecuted"] < killed_host_units


def test_spooled_completion_reports_replay_after_collector_restart():
    # Completion reports are normal app messages to a collector node.  Kill
    # the collector while reports are in flight: the Section 6 spooler
    # group must hold them and replay on restart — and the job plane must
    # still land on the never-killed control ledger.
    # Kill early (t=3), while most jobs are still running, so completion
    # reports are generated during the collector's downtime.
    sim, procs, traffic = run_scenario(
        kill=True, collector=3, kill_at=3.0, recover_at=9.0
    )
    assert sim.network.spooled > 0  # reports really were spooled
    metrics = traffic.metrics()
    assert metrics["jobs_done"] == JOBS
    assert metrics["jobs_durable"] == JOBS
    assert traffic.fingerprints() == expected_ledger()
    # The restarted collector consumed replayed reports: its app saw
    # completion messages from other hosts despite being down when many
    # were sent.  (Reports from the collector's own jobs are not sent.)
    reports = [p for p in procs[3].app.log if str(p).startswith("done:")]
    assert reports, "no completion reports reached the restarted collector"
    audit = audit_jobs(sim.trace.index)
    assert audit["committed_stage_reexecutions"] == 0
