"""Shared test fixtures (builders live in repro.testing)."""

import pytest

from repro.testing import build_sim


@pytest.fixture
def sim_pair():
    """A 2-process simulation with deterministic delays."""
    return build_sim(n=2, seed=1)


@pytest.fixture
def sim_quad():
    """A 4-process simulation with deterministic delays."""
    return build_sim(n=4, seed=1)
