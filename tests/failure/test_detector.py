"""Unit tests for the failure detector and injector."""

from repro.failure import FailureDetector, FailureInjector
from repro.net import FixedDelay
from repro.sim import Node, Simulation


class Watcher(Node):
    def __init__(self, nid):
        super().__init__(nid)
        self.crash_notices = []
        self.recovery_notices = []

    def on_failure_notice(self, pid):
        self.crash_notices.append((pid, self.sim.now))

    def on_recovery_notice(self, pid):
        self.recovery_notices.append((pid, self.sim.now))


def make(n=3, latency=2.0):
    sim = Simulation(seed=0, delay_model=FixedDelay(1.0))
    nodes = [sim.add_node(Watcher(i)) for i in range(n)]
    detector = FailureDetector(sim, detection_latency=latency)
    return sim, nodes, detector


def test_crash_notices_delivered_after_latency():
    sim, nodes, _ = make()
    sim.scheduler.at(5.0, lambda: sim.crash(0))
    sim.run()
    assert nodes[1].crash_notices == [(0, 7.0)]
    assert nodes[2].crash_notices == [(0, 7.0)]
    assert nodes[0].crash_notices == []  # no self-notice


def test_recovery_notices():
    sim, nodes, _ = make()
    sim.scheduler.at(5.0, lambda: sim.crash(0))
    sim.scheduler.at(10.0, lambda: sim.recover(0))
    sim.run()
    assert nodes[1].recovery_notices == [(0, 12.0)]


def test_fast_recovery_suppresses_stale_crash_notice():
    sim, nodes, _ = make(latency=5.0)
    sim.scheduler.at(1.0, lambda: sim.crash(0))
    sim.scheduler.at(2.0, lambda: sim.recover(0))
    sim.run()
    # The crash notice at t=6 is suppressed (node already back).
    assert nodes[1].crash_notices == []


def test_crashed_watchers_not_notified():
    sim, nodes, _ = make()
    sim.scheduler.at(4.0, lambda: sim.crash(1))
    sim.scheduler.at(5.0, lambda: sim.crash(0))
    sim.run()
    assert nodes[1].crash_notices == []  # was down at notice time
    assert nodes[2].crash_notices == [(1, 6.0), (0, 7.0)]


def test_status_snapshot_and_believed_down():
    sim, nodes, detector = make()
    sim.scheduler.at(1.0, lambda: sim.crash(2))
    sim.run()
    snap = detector.status_snapshot()
    assert snap == {0: True, 1: True, 2: False}
    assert detector.believed_down() == {2}


def test_injector_schedules():
    sim, nodes, detector = make()
    injector = FailureInjector(sim)
    injector.crash_at(3.0, pid=1)
    injector.recover_at(8.0, pid=1)
    sim.run()
    crash = sim.trace.last("crash")
    recover = sim.trace.last("recover")
    assert crash.pid == 1 and crash.time == 3.0
    assert recover.pid == 1 and recover.time == 8.0


def test_injector_tolerates_redundant_events():
    sim, nodes, _ = make()
    injector = FailureInjector(sim)
    injector.crash_at(3.0, pid=1)
    injector.crash_at(4.0, pid=1)    # already down: no-op
    injector.recover_at(8.0, pid=1)
    injector.recover_at(9.0, pid=1)  # already up: no-op
    sim.run()
    assert len(sim.trace.of_kind("crash")) == 1
    assert len(sim.trace.of_kind("recover")) == 1


def test_injector_partition_schedule():
    sim, nodes, _ = make()
    injector = FailureInjector(sim)
    injector.partition_at(2.0, [{0}, {1, 2}])
    injector.merge_at(5.0)
    sim.run()
    assert len(sim.trace.of_kind("partition")) == 1
    assert len(sim.trace.of_kind("merge")) == 1
