"""Unit tests for weighted voting and majority-partition determination."""

import pytest

from repro.errors import ProtocolError
from repro.failure import VoteRegistry


def test_uniform_assignment():
    reg = VoteRegistry.uniform([0, 1, 2, 3, 4])
    assert reg.total_votes == 5
    assert reg.weight([0, 1]) == 2


def test_invalid_assignments_rejected():
    with pytest.raises(ProtocolError):
        VoteRegistry({})
    with pytest.raises(ProtocolError):
        VoteRegistry({0: 0})
    with pytest.raises(ProtocolError):
        VoteRegistry({0: -2})


def test_absolute_majority_is_strict():
    reg = VoteRegistry.uniform(range(4))  # total 4
    assert not reg.is_absolute_majority([0, 1])       # exactly half
    assert reg.is_absolute_majority([0, 1, 2])


def test_weighted_majority():
    reg = VoteRegistry({0: 3, 1: 1, 2: 1})
    assert reg.is_absolute_majority([0])       # 3 of 5
    assert not reg.is_absolute_majority([1, 2])


def test_classify_major_minor():
    reg = VoteRegistry.uniform(range(5))
    labels = reg.classify([{0, 1, 2}, {3, 4}])
    assert labels[frozenset({0, 1, 2})] == "major"
    assert labels[frozenset({3, 4})] == "minor"
    assert reg.current_major == frozenset({0, 1, 2})


def test_classify_no_majority_all_minor():
    reg = VoteRegistry.uniform(range(4))
    labels = reg.classify([{0, 1}, {2, 3}])
    assert set(labels.values()) == {"minor"}


def test_relative_majority_after_major_split():
    """Paper: a fragment with more than half of the previous major's votes
    becomes the new major, even without an absolute system majority."""
    reg = VoteRegistry.uniform(range(5))
    reg.classify([{0, 1, 2}, {3, 4}])  # major = {0,1,2}
    labels = reg.classify([{0, 1}, {2}, {3, 4}])
    # {0,1} holds 2 of the previous major's 3 votes -> relative major,
    # despite holding only 2 of the system's 5.
    assert labels[frozenset({0, 1})] == "major"
    assert reg.current_major == frozenset({0, 1})


def test_relative_majority_is_strict_too():
    reg = VoteRegistry.uniform(range(4))
    reg.classify([{0, 1, 2}, {3}])  # major = {0,1,2}
    labels = reg.classify([{0}, {1, 2}, {3}])
    # {1,2} holds 2 of the previous major's 3 votes -> new major.
    assert labels[frozenset({1, 2})] == "major"


def test_merge_resets_reference_population():
    reg = VoteRegistry.uniform(range(5))
    reg.classify([{0, 1, 2}, {3, 4}])
    reg.on_merge(range(5))
    assert reg.current_major == frozenset(range(5))


def test_absolute_majority_beats_relative():
    reg = VoteRegistry.uniform(range(5))
    reg.classify([{0, 1}, {2, 3, 4}])  # major = {2,3,4}
    labels = reg.classify([{0, 1, 2, 3}, {4}])
    assert labels[frozenset({0, 1, 2, 3})] == "major"
