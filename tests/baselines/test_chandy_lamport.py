"""Tests for the Chandy-Lamport snapshot baseline."""

from repro.analysis import check_c1, collect
from repro.baselines import ChandyLamportProcess
from repro.net import UniformDelay
from repro.sim import trace as T
from repro.testing import build_sim, run_random_workload


def build(n=4, seed=0):
    return build_sim(n=n, seed=seed, fifo=True, cls=ChandyLamportProcess,
                     delay=UniformDelay(0.4, 0.8))


def test_snapshot_reaches_every_process():
    sim, procs = build()
    sim.scheduler.at(2.0, lambda: procs[1].initiate_checkpoint())
    sim.run(until=60.0)
    commits = sim.trace.of_kind(T.K_CHKPT_COMMIT)
    assert {e.pid for e in commits} == {0, 1, 2, 3}


def test_marker_cost_is_n_squared():
    sim, procs = build(n=5)
    sim.scheduler.at(2.0, lambda: procs[0].initiate_checkpoint())
    sim.run(until=60.0)
    markers = [e for e in sim.trace.of_kind("ctrl_send")
               if e.fields["msg_type"] == "marker"]
    assert len(markers) == 5 * 4  # one marker per directed channel


def test_snapshot_completes_and_is_consistent():
    sim, procs = build()
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
    sim.run(until=60.0)
    assert all(s.complete for p in procs.values() for s in p.snapshots.values())
    check_c1(procs.values())


def test_channel_state_captures_in_transit_messages():
    sim, procs = build()
    # Send a message timed to be in flight when the snapshot line passes.
    sim.scheduler.at(2.0, lambda: procs[2].send_app_message(1, "in-flight"))
    sim.scheduler.at(2.1, lambda: procs[1].initiate_checkpoint())
    sim.run(until=60.0)
    snapshot = next(iter(procs[1].snapshots.values()))
    recorded = [m for msgs in snapshot.channel_state.values() for m in msgs]
    assert "in-flight" in recorded


def test_no_blocking_at_all():
    sim, procs = build()
    run_random_workload(sim, procs, duration=30.0, checkpoint_rate=0.05)
    stats = collect(sim)
    assert stats.send_blocked_time == 0.0
    assert stats.comm_blocked_time == 0.0


def test_no_rollback_support():
    sim, procs = build()
    assert procs[0].initiate_rollback() is None


def test_randomized_snapshots_consistent():
    for seed in range(5):
        sim, procs = build(n=5, seed=seed)
        run_random_workload(sim, procs, duration=40.0, checkpoint_rate=0.05)
        check_c1(procs.values())
