"""Tests for the cooperative partial-snapshot baseline (arXiv:2103.15285)."""

from repro.analysis import check_c1
from repro.baselines import CooperativeProcess
from repro.net import UniformDelay
from repro.sim import trace as T
from repro.testing import build_sim, run_random_workload


def build(n=4, seed=0):
    return build_sim(n=n, seed=seed, fifo=True, cls=CooperativeProcess,
                     delay=UniformDelay(0.4, 0.8))


def test_snapshot_scope_is_the_dependency_set():
    # Only 0 and 1 communicate; 2 and 3 are bystanders and must not be
    # recruited — the defining contrast with Chandy-Lamport.
    sim, procs = build()
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[0].initiate_checkpoint())
    sim.run(until=60.0)
    commits = sim.trace.of_kind(T.K_CHKPT_COMMIT)
    assert {e.pid for e in commits} == {0, 1}
    assert procs[0].snapshot_group_sizes == [2]


def test_group_expands_transitively():
    # 0 -> 1 -> 2: the initiator only knows about 1, but 1's own dependency
    # set pulls 2 in; 3 stays out.
    sim, procs = build()
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "a"))
    sim.scheduler.at(2.0, lambda: procs[1].send_app_message(2, "b"))
    sim.scheduler.at(4.0, lambda: procs[0].initiate_checkpoint())
    sim.run(until=60.0)
    commits = sim.trace.of_kind(T.K_CHKPT_COMMIT)
    assert {e.pid for e in commits} == {0, 1, 2}
    assert procs[0].snapshot_group_sizes == [3]


def test_concurrent_instances_cooperate_by_sharing_checkpoints():
    # 0 and 1 initiate nearly simultaneously over the same dependency
    # edge.  Cooperation means neither aborts: both instances commit, yet
    # each process takes exactly ONE tentative checkpoint (the overlap
    # borrows it instead of taking a second).
    sim, procs = build()
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[0].initiate_checkpoint())
    sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
    sim.run(until=60.0)
    instance_commits = sim.trace.of_kind(T.K_INSTANCE_COMMIT)
    assert len(instance_commits) == 2
    for pid in (0, 1):
        tentatives = [e for e in sim.trace.of_kind(T.K_CHKPT_TENTATIVE)
                      if e.pid == pid]
        assert len(tentatives) == 1
    aborts = sim.trace.of_kind(T.K_INSTANCE_ABORT)
    assert not aborts


def test_empty_dependency_set_commits_locally():
    sim, procs = build()
    sim.scheduler.at(1.0, lambda: procs[3].initiate_checkpoint())
    sim.run(until=30.0)
    commits = sim.trace.of_kind(T.K_CHKPT_COMMIT)
    assert {e.pid for e in commits} == {3}
    assert procs[3].snapshot_group_sizes == [1]


def test_no_rollback_support():
    sim, procs = build()
    assert procs[0].initiate_rollback() is None


def test_graceful_leave_unblocks_open_groups():
    # 2 is in 0's dependency set but departs before the snapshot request
    # settles; the instance must complete without it rather than wedge
    # until the abort timeout.
    sim, procs = build()
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(2, "m"))
    sim.scheduler.at(3.0, lambda: procs[0].initiate_checkpoint())
    sim.scheduler.at(3.05, lambda: sim.leave(2, successor=0))
    sim.run(until=80.0)
    instance_commits = [e for e in sim.trace.of_kind(T.K_INSTANCE_COMMIT)
                        if e.pid == 0]
    assert len(instance_commits) == 1


def test_randomized_snapshots_consistent():
    for seed in range(5):
        sim, procs = build(n=5, seed=seed)
        run_random_workload(sim, procs, duration=40.0, checkpoint_rate=0.05)
        check_c1(procs.values())
