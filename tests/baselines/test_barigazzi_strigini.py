"""Tests for the Barigazzi-Strigini baseline: atomic sends, full blocking."""

from repro.analysis import check_c1, check_no_dangling_receives, collect
from repro.baselines import BarigazziStriginiProcess
from repro.net import UniformDelay
from repro.sim import trace as T
from repro.testing import build_sim, run_random_workload


def build(n=4, seed=0):
    return build_sim(n=n, seed=seed, fifo=True, cls=BarigazziStriginiProcess,
                     delay=UniformDelay(0.4, 0.8))


def test_atomic_sends_serialise():
    """The second send is transmitted only after the first is acknowledged."""
    sim, procs = build()
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "a"))
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(2, "b"))
    sim.run(until=60.0)
    sends = [e for e in sim.trace.of_kind(T.K_SEND) if e.pid == 0]
    assert len(sends) == 2
    # The second transmit happened at least one round-trip later.
    assert sends[1].time - sends[0].time >= 0.8


def test_every_message_acknowledged():
    sim, procs = build()
    run_random_workload(sim, procs, duration=20.0, message_rate=0.5)
    acks = [e for e in sim.trace.of_kind("ctrl_receive")
            if e.fields.get("msg_type") == "delivery_ack"]
    # Control receives of acks are not traced (no tree); count via network:
    # every normal message produced exactly one ack control message.
    assert sim.network.control_sent >= sim.network.normal_sent


def test_checkpoint_blocks_sends_and_receives():
    sim, procs = build()
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(4.0, lambda: procs[1].initiate_checkpoint())
    sim.run(until=60.0)
    assert sim.trace.for_process(1, T.K_SUSPEND_ALL)  # receive-blocking too
    check_c1(procs.values())


def test_blocking_time_exceeds_leu_bhargava():
    from repro.core import CheckpointProcess

    def measure(cls):
        sim, procs = build_sim(n=4, seed=5, fifo=True, cls=cls,
                               delay=UniformDelay(0.4, 0.8))
        run_random_workload(sim, procs, duration=40.0, message_rate=1.0,
                            checkpoint_rate=0.08, horizon=300.0)
        return collect(sim)

    bs = measure(BarigazziStriginiProcess)
    lb = measure(CheckpointProcess)
    assert bs.send_blocked_time > lb.send_blocked_time


def test_randomized_consistency():
    for seed in range(5):
        sim, procs = build(n=4, seed=seed)
        run_random_workload(sim, procs, duration=30.0, checkpoint_rate=0.05,
                            error_rate=0.02, horizon=300.0)
        check_c1(procs.values())
        check_no_dangling_receives(procs.values())
