"""Tests for the Tamir-Séquin baseline: system-wide checkpoints."""

from repro.analysis import check_c1, check_no_dangling_receives, collect, reconstruct_trees
from repro.baselines import TamirSequinProcess
from repro.net import UniformDelay
from repro.sim import trace as T
from repro.testing import build_sim, run_random_workload


def build(n=4, seed=0):
    return build_sim(n=n, seed=seed, fifo=True, cls=TamirSequinProcess,
                     delay=UniformDelay(0.4, 0.8))


def test_every_process_checkpoints_every_instance():
    sim, procs = build()
    sim.scheduler.at(2.0, lambda: procs[3].initiate_checkpoint())
    sim.run(until=60.0)
    # Even processes that exchanged no messages are forced.
    assert all(p.store.oldchkpt.seq >= 2 for p in procs.values())
    tentatives = sim.trace.of_kind(T.K_CHKPT_TENTATIVE)
    assert {e.pid for e in tentatives} == {0, 1, 2, 3}


def test_requests_route_through_static_coordinator():
    sim, procs = build()
    sim.scheduler.at(2.0, lambda: procs[3].initiate_checkpoint())
    sim.run(until=60.0)
    starts = sim.trace.of_kind(T.K_INSTANCE_START)
    assert all(e.pid == 0 for e in starts)  # coordinator = lowest id


def test_global_rollback_restores_everyone():
    sim, procs = build()
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[2].initiate_rollback())
    sim.run(until=60.0)
    rolls = sim.trace.of_kind(T.K_ROLLBACK)
    assert {e.pid for e in rolls} == {0, 1, 2, 3}
    check_no_dangling_receives(procs.values())


def test_concurrent_requests_serialised():
    sim, procs = build()
    sim.scheduler.at(2.0, lambda: procs[1].initiate_checkpoint())
    sim.scheduler.at(2.0, lambda: procs[2].initiate_checkpoint())
    sim.run(until=120.0)
    # Both ran, one after the other: two committed generations.
    commits = [e for e in sim.trace.of_kind(T.K_CHKPT_COMMIT) if e.pid == 0]
    assert len(commits) == 2
    check_c1(procs.values())


def test_blocking_between_tentative_and_commit():
    sim, procs = build()
    sim.scheduler.at(2.0, lambda: procs[0].initiate_checkpoint())
    sim.run(until=60.0)
    stats = collect(sim)
    assert stats.send_blocked_time > 0


def test_randomized_consistency():
    for seed in range(6):
        sim, procs = build(n=5, seed=seed)
        run_random_workload(sim, procs, duration=40.0, checkpoint_rate=0.05,
                            error_rate=0.02, horizon=300.0)
        check_c1(procs.values())
        check_no_dangling_receives(procs.values())
