"""Tests for the uncoordinated baseline and its domino behaviour."""

from repro.analysis import domino_metrics
from repro.baselines import UncoordinatedProcess
from repro.core import CheckpointProcess
from repro.sim import trace as T
from repro.testing import build_sim, run_random_workload


def test_checkpoints_are_local_and_instant():
    sim, procs = build_sim(n=3, seed=0, cls=UncoordinatedProcess)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    assert procs[1].store.oldchkpt.seq == 2
    assert procs[0].store.oldchkpt.seq == 1  # nobody else forced
    assert sim.network.control_sent == 0     # zero protocol messages


def test_history_grows_unboundedly():
    sim, procs = build_sim(n=2, seed=0, cls=UncoordinatedProcess)
    for k in range(5):
        sim.scheduler.at(float(k + 1), lambda: procs[0].initiate_checkpoint())
    sim.run()
    assert len(procs[0].committed_history) == 6  # birth + 5


def test_rollback_leaves_peers_inconsistent():
    """The point of the baseline: local rollback creates orphans."""
    sim, procs = build_sim(n=2, seed=0, cls=UncoordinatedProcess)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[0].initiate_rollback())
    sim.run()
    # P1 still holds the receive of the undone message: a dangling receive,
    # which the offline recovery-line analysis must detect and repair.
    undone = [r for r in procs[0].ledger.sent if r.undone]
    assert undone
    assert any(not r.undone for r in procs[1].ledger.received)


def test_domino_dragging_grows_with_message_rate():
    def drag(rate, seed):
        sim, procs = build_sim(n=5, seed=seed, cls=UncoordinatedProcess)
        run_random_workload(sim, procs, duration=40.0,
                            message_rate=rate, checkpoint_rate=0.2)
        return domino_metrics(procs.values(), initiator=0)["mean_distance"]

    quiet = sum(drag(0.05, s) for s in range(5))
    chatty = sum(drag(2.0, s) for s in range(5))
    assert chatty > quiet


def test_coordinated_rollback_distance_is_bounded():
    """Contrast: Leu-Bhargava never discards committed checkpoints."""
    sim, procs = build_sim(n=4, seed=1)
    run_random_workload(sim, procs, duration=40.0, checkpoint_rate=0.1,
                        error_rate=0.02)
    metrics = domino_metrics(procs.values(), initiator=0)
    assert metrics["max_distance"] == 0  # the committed line IS consistent
