"""Tests for the Koo-Toueg baseline: single instance, reject-and-retry."""

from repro.analysis import check_c1, check_no_dangling_receives, collect
from repro.baselines import KooTouegProcess
from repro.net import UniformDelay
from repro.sim import trace as T
from repro.testing import build_sim, run_random_workload


def build(n=4, seed=0):
    return build_sim(n=n, seed=seed, fifo=True, cls=KooTouegProcess,
                     delay=UniformDelay(0.4, 0.8))


def test_single_instance_commits_like_leu_bhargava():
    sim, procs = build()
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
    sim.run(until=60.0)
    assert procs[0].store.oldchkpt.seq == 2
    assert procs[1].store.oldchkpt.seq == 2
    check_c1(procs.values())


def test_concurrent_instances_cause_rejections():
    """Two simultaneous initiators sharing a member: at least one instance
    is rejected — the concurrency limitation Leu-Bhargava removes."""
    rejections = 0
    for seed in range(8):
        sim, procs = build(seed=seed)
        sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "x"))
        sim.scheduler.at(1.0, lambda: procs[0].send_app_message(2, "y"))
        sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
        sim.scheduler.at(3.0, lambda: procs[2].initiate_checkpoint())
        sim.run(until=120.0)
        rejections += len(sim.trace.of_kind(T.K_INSTANCE_REJECTED))
        check_c1(procs.values())
    assert rejections > 0


def test_rejected_initiator_retries_and_eventually_commits():
    sim, procs = build(seed=3)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "x"))
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(2, "y"))
    sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
    sim.scheduler.at(3.0, lambda: procs[2].initiate_checkpoint())
    sim.run(until=200.0)
    # Both initiators' checkpoints exist in the end (retry succeeded).
    assert procs[1].store.oldchkpt.seq >= 2
    assert procs[2].store.oldchkpt.seq >= 2


def test_rollback_preempts_checkpointing():
    sim, procs = build(seed=1)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
    sim.scheduler.at(3.1, lambda: procs[0].initiate_rollback())
    sim.run(until=200.0)
    check_no_dangling_receives(procs.values())
    for p in procs.values():
        assert not p.comm_suspended


def test_randomized_consistency_under_contention():
    for seed in range(6):
        sim, procs = build(n=5, seed=seed)
        run_random_workload(sim, procs, duration=40.0, checkpoint_rate=0.06,
                            error_rate=0.02, horizon=300.0)
        check_c1(procs.values())
        check_no_dangling_receives(procs.values())


def test_stats_show_rejections_under_contention():
    sim, procs = build(n=6, seed=2)
    run_random_workload(sim, procs, duration=60.0, checkpoint_rate=0.08,
                        error_rate=0.02, horizon=300.0)
    stats = collect(sim)
    assert stats.instances_rejected > 0  # the Koo-Toueg signature
