"""Unit tests for the oldchkpt/newchkpt slots and the multi-checkpoint stack."""

import pytest

from repro.errors import StableStorageError
from repro.stable import CheckpointStore, InMemoryStableStorage, MultiCheckpointStore


class SpyStorage(InMemoryStableStorage):
    """Counts backend traffic so tests can assert the stores' fast paths."""

    def __init__(self):
        super().__init__()
        self.gets = []
        self.puts = []

    def get(self, key, default=None):
        self.gets.append(key)
        return super().get(key, default)

    def put(self, key, value):
        self.puts.append(key)
        super().put(key, value)


def test_initialize_sets_committed_birth_checkpoint():
    store = CheckpointStore()
    record = store.initialize({"s": 0})
    assert record.seq == 1 and record.committed
    assert store.oldchkpt.seq == 1
    assert store.newchkpt is None


def test_take_commit_cycle():
    store = CheckpointStore()
    store.initialize({"s": 0})
    store.take_new(2, {"s": 5}, made_at=3.0, recv=[], sent=[])
    assert store.newchkpt.seq == 2
    assert not store.newchkpt.committed
    committed = store.commit_new()
    assert committed.seq == 2 and committed.committed
    assert store.oldchkpt.seq == 2
    assert store.oldchkpt.state == {"s": 5}
    assert store.newchkpt is None


def test_take_discard_cycle():
    store = CheckpointStore()
    store.initialize({"s": 0})
    store.take_new(2, {"s": 5})
    store.discard_new()
    assert store.newchkpt is None
    assert store.oldchkpt.seq == 1


def test_double_take_rejected():
    store = CheckpointStore()
    store.initialize({})
    store.take_new(2, {})
    with pytest.raises(StableStorageError):
        store.take_new(3, {})


def test_commit_without_pending_rejected():
    store = CheckpointStore()
    store.initialize({})
    with pytest.raises(StableStorageError):
        store.commit_new()


def test_meta_roundtrips():
    store = CheckpointStore()
    store.initialize({})
    store.take_new(2, {}, recv=[[0, 1]], sent=[[1, 0]])
    assert store.newchkpt.meta == {"recv": [[0, 1]], "sent": [[1, 0]]}


def test_has_new_tracks_pending_slot():
    store = CheckpointStore()
    store.initialize({})
    assert store.has_new is False
    store.take_new(2, {})
    assert store.has_new is True
    store.commit_new()
    assert store.has_new is False


def test_has_new_never_reads_the_slot():
    spy = SpyStorage()
    store = CheckpointStore(spy)
    store.initialize({})
    store.take_new(2, {"big": list(range(100))})
    spy.gets.clear()
    assert store.has_new is True
    assert spy.gets == []  # pure existence check, no deserialisation


def test_take_new_guard_does_not_decode():
    spy = SpyStorage()
    store = CheckpointStore(spy)
    store.initialize({})
    store.take_new(2, {})
    spy.gets.clear()
    with pytest.raises(StableStorageError):
        store.take_new(3, {})
    assert spy.gets == []


def test_slot_reads_decode_once_until_transition():
    spy = SpyStorage()
    store = CheckpointStore(spy)
    store.initialize({"s": 0})
    first = store.oldchkpt
    again = store.oldchkpt
    assert again is first  # identity-cached decode
    store.take_new(2, {"s": 1})
    store.commit_new()
    assert store.oldchkpt is not first  # transition invalidated the cache
    assert store.oldchkpt.seq == 2


def test_slot_cache_sees_direct_storage_writes():
    backing = InMemoryStableStorage()
    store = CheckpointStore(backing)
    store.initialize({"s": 0})
    assert store.oldchkpt.state == {"s": 0}
    # Bypass the store (tests tamper like this): the identity check on the
    # raw value must force a re-decode.
    backing.put("ckpt.old", {
        "seq": 7, "state": {"s": 9}, "committed": True, "made_at": 0.0, "meta": {},
    })
    assert store.oldchkpt.seq == 7
    assert store.oldchkpt.state == {"s": 9}


def test_two_stores_share_storage_with_namespaces():
    backing = InMemoryStableStorage()
    a = CheckpointStore(backing, namespace="a")
    b = CheckpointStore(backing, namespace="b")
    a.initialize({"who": "a"})
    b.initialize({"who": "b"})
    assert a.oldchkpt.state == {"who": "a"}
    assert b.oldchkpt.state == {"who": "b"}


# ----------------------------------------------------------------------
# MultiCheckpointStore (Section 3.5.3 extension)
# ----------------------------------------------------------------------

def multi():
    store = MultiCheckpointStore()
    store.initialize({"s": 0})
    return store


def test_multi_push_ordering_enforced():
    store = multi()
    store.push(2, {})
    store.push(4, {})
    with pytest.raises(StableStorageError):
        store.push(3, {})


def test_multi_newest_and_find():
    store = multi()
    store.push(2, {"s": 2})
    store.push(3, {"s": 3})
    assert store.newest.seq == 3
    assert store.find(2).state == {"s": 2}
    assert store.find(9) is None


def test_multi_commit_through_promotes_and_discards_older():
    store = multi()
    store.push(2, {"s": 2})
    store.push(3, {"s": 3})
    store.push(5, {"s": 5})
    committed = store.commit_through(3)
    assert committed.seq == 3
    assert store.oldchkpt.seq == 3
    assert [r.seq for r in store.pending] == [5]


def test_multi_commit_unknown_seq_rejected():
    store = multi()
    store.push(2, {})
    with pytest.raises(StableStorageError):
        store.commit_through(9)


def test_multi_discard_from():
    store = multi()
    for seq in (2, 3, 5):
        store.push(seq, {"s": seq})
    dropped = store.discard_from(3)
    assert [r.seq for r in dropped] == [3, 5]
    assert [r.seq for r in store.pending] == [2]


def test_multi_discard_all():
    store = multi()
    store.push(2, {})
    store.push(3, {})
    dropped = store.discard_all()
    assert len(dropped) == 2
    assert store.pending == []
    assert store.oldchkpt.seq == 1


def test_multi_pending_count_without_decoding():
    spy = SpyStorage()
    store = MultiCheckpointStore(spy)
    store.initialize({})
    for seq in (2, 3, 5):
        store.push(seq, {"big": list(range(50))})
    spy.gets.clear()
    assert store.pending_count == 3
    assert spy.gets == ["ckpt.pending"]  # only the (tiny) index, no entries


def test_multi_push_touches_only_new_entry_and_index():
    spy = SpyStorage()
    store = MultiCheckpointStore(spy)
    store.initialize({})
    store.push(2, {"s": 2})
    store.push(3, {"s": 3})
    spy.puts.clear()
    store.push(5, {"s": 5})
    assert spy.puts == ["ckpt.pending.5", "ckpt.pending"]


def test_multi_commit_through_never_reserialises_survivors():
    spy = SpyStorage()
    store = MultiCheckpointStore(spy)
    store.initialize({})
    for seq in (2, 3, 5, 8):
        store.push(seq, {"s": seq})
    spy.puts.clear()
    store.commit_through(3)
    # Promoted slot + trimmed index; entries 5 and 8 untouched.
    assert spy.puts == ["ckpt.old", "ckpt.pending"]
    assert [r.seq for r in store.pending] == [5, 8]


def test_multi_discard_from_touches_only_dropped_entries():
    spy = SpyStorage()
    store = MultiCheckpointStore(spy)
    store.initialize({})
    for seq in (2, 3, 5):
        store.push(seq, {"s": seq})
    spy.puts.clear()
    store.discard_from(3)
    assert spy.puts == ["ckpt.pending"]  # survivors never re-serialised
