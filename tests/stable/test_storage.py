"""Unit tests for stable storage backends."""

import os

import pytest

from repro.errors import StableStorageError
from repro.stable import (
    DeepCopyStableStorage,
    FileStableStorage,
    InMemoryStableStorage,
    WriteBehindFileStableStorage,
    escape_key,
    thaw,
    unescape_key,
)


@pytest.fixture(params=["memory", "deepcopy", "file", "write-behind"])
def storage(request, tmp_path):
    if request.param == "memory":
        return InMemoryStableStorage()
    if request.param == "deepcopy":
        return DeepCopyStableStorage()
    if request.param == "file":
        return FileStableStorage(str(tmp_path / "stable"))
    return WriteBehindFileStableStorage(str(tmp_path / "stable"), flush_every=4)


def test_put_get_roundtrip(storage):
    storage.put("k", {"a": 1, "b": [1, 2, 3]})
    assert storage.get("k") == {"a": 1, "b": [1, 2, 3]}


def test_get_missing_returns_default(storage):
    assert storage.get("missing") is None
    assert storage.get("missing", 42) == 42


def test_overwrite(storage):
    storage.put("k", 1)
    storage.put("k", 2)
    assert storage.get("k") == 2


def test_delete(storage):
    storage.put("k", 1)
    storage.delete("k")
    assert storage.get("k") is None
    storage.delete("k")  # idempotent


def test_contains(storage):
    assert "k" not in storage
    storage.put("k", 0)  # falsy value must still count as present
    assert "k" in storage


def test_keys_sorted(storage):
    for name in ["b", "a", "c"]:
        storage.put(name, 1)
    assert list(storage.keys()) == ["a", "b", "c"]


def test_caller_mutation_never_leaks_in(storage):
    value = {"x": [1]}
    storage.put("k", value)
    value["x"].append(2)  # caller mutation after put must not leak in
    assert storage.get("k") == {"x": [1]}


def test_memory_storage_returns_frozen_views():
    """``get`` is zero-copy: the view is immutable, ``thaw`` is the escape
    hatch (the old backend deep-copied on every read instead)."""
    storage = InMemoryStableStorage()
    storage.put("k", {"x": [1]})
    out = storage.get("k")
    with pytest.raises(TypeError, match="frozen"):
        out["x"].append(3)
    with pytest.raises(TypeError, match="frozen"):
        out["y"] = 1
    editable = thaw(out)
    editable["x"].append(3)  # thawed copies are independent of the store
    assert storage.get("k") == {"x": [1]}
    assert storage.get("k") is out  # repeated reads share the frozen view


def test_memory_storage_rejects_unfreezable():
    with pytest.raises(StableStorageError):
        InMemoryStableStorage().put("k", object())


def test_deepcopy_storage_is_copy_on_access():
    storage = DeepCopyStableStorage()
    storage.put("k", {"x": [1]})
    out = storage.get("k")
    out["x"].append(3)  # baseline semantics: reader mutation cannot leak back
    assert storage.get("k") == {"x": [1]}


def test_file_storage_persists_across_instances(tmp_path):
    root = str(tmp_path / "stable")
    FileStableStorage(root).put("k", [1, 2])
    assert FileStableStorage(root).get("k") == [1, 2]


def test_file_storage_rejects_unserialisable(tmp_path):
    storage = FileStableStorage(str(tmp_path / "stable"))
    with pytest.raises(StableStorageError):
        storage.put("k", object())


def test_file_storage_detects_corruption(tmp_path):
    root = str(tmp_path / "stable")
    storage = FileStableStorage(root)
    storage.put("k", 1)
    path = os.path.join(root, "k.json")
    with open(path, "w") as handle:
        handle.write("{not json")
    with pytest.raises(StableStorageError):
        storage.get("k")


def test_file_storage_no_tmp_leftovers(tmp_path):
    root = str(tmp_path / "stable")
    storage = FileStableStorage(root)
    for k in range(20):
        storage.put(f"key{k}", k)
    leftovers = [n for n in os.listdir(root) if n.startswith(".tmp-")]
    assert leftovers == []


# ----------------------------------------------------------------------
# Key escaping (reversible; distinct keys -> distinct files)
# ----------------------------------------------------------------------

AWKWARD_KEYS = ["a/b", "a_b", "a b", "a%b", "üñï", ".hidden", ".tmp-x", "a.b"]


@pytest.mark.parametrize("key", AWKWARD_KEYS)
def test_escape_key_roundtrips(key):
    assert unescape_key(escape_key(key)) == key


def test_escape_key_is_injective_for_former_collisions():
    assert escape_key("a/b") != escape_key("a_b")


def test_file_storage_keys_roundtrip(tmp_path):
    storage = FileStableStorage(str(tmp_path / "stable"))
    for i, key in enumerate(AWKWARD_KEYS):
        storage.put(key, i)
    assert list(storage.keys()) == sorted(AWKWARD_KEYS)
    for i, key in enumerate(AWKWARD_KEYS):
        assert storage.get(key) == i


def test_file_storage_slash_and_underscore_no_longer_collide(tmp_path):
    storage = FileStableStorage(str(tmp_path / "stable"))
    storage.put("a/b", "slash")
    storage.put("a_b", "underscore")
    assert storage.get("a/b") == "slash"
    assert storage.get("a_b") == "underscore"


# ----------------------------------------------------------------------
# Write-behind batching (group commit)
# ----------------------------------------------------------------------

def test_write_behind_buffers_until_flush(tmp_path):
    root = str(tmp_path / "stable")
    storage = WriteBehindFileStableStorage(root, flush_every=100)
    storage.put("k", {"v": 1})
    assert storage.get("k") == {"v": 1}  # read-your-writes from the buffer
    assert FileStableStorage(root).get("k") is None  # nothing on disk yet
    storage.flush()
    assert FileStableStorage(root).get("k") == {"v": 1}
    assert storage.flushes == 1


def test_write_behind_auto_flushes_at_threshold(tmp_path):
    root = str(tmp_path / "stable")
    storage = WriteBehindFileStableStorage(root, flush_every=3)
    for i in range(3):
        storage.put(f"k{i}", i)
    assert storage.flushes == 1
    assert FileStableStorage(root).get("k2") == 2


def test_write_behind_counts_ops_not_distinct_keys(tmp_path):
    # A checkpoint workload rewrites the same few keys; the threshold must
    # still bound un-flushed history.
    root = str(tmp_path / "stable")
    storage = WriteBehindFileStableStorage(root, flush_every=4)
    for i in range(4):
        storage.put("same", i)
    assert storage.flushes == 1
    assert FileStableStorage(root).get("same") == 3


def test_write_behind_last_write_wins_within_batch(tmp_path):
    root = str(tmp_path / "stable")
    storage = WriteBehindFileStableStorage(root, flush_every=100)
    storage.put("k", 1)
    storage.delete("k")
    storage.put("j", 1)
    storage.put("j", 2)
    storage.flush()
    durable = FileStableStorage(root)
    assert durable.get("k") is None
    assert durable.get("j") == 2


def test_write_behind_delete_of_flushed_key(tmp_path):
    root = str(tmp_path / "stable")
    storage = WriteBehindFileStableStorage(root, flush_every=100)
    storage.put("k", 1)
    storage.flush()
    storage.delete("k")
    assert "k" not in storage  # buffer-first read sees the delete
    storage.flush()
    assert FileStableStorage(root).get("k") is None


def test_write_behind_close_flushes_and_leaves_no_tmp(tmp_path):
    root = str(tmp_path / "stable")
    storage = WriteBehindFileStableStorage(root, flush_every=100)
    for i in range(10):
        storage.put(f"k{i}", i)
    storage.close()
    assert [n for n in os.listdir(root) if n.startswith(".tmp-")] == []
    assert FileStableStorage(root).get("k9") == 9
