"""Unit tests for stable storage backends."""

import os

import pytest

from repro.errors import StableStorageError
from repro.stable import FileStableStorage, InMemoryStableStorage


@pytest.fixture(params=["memory", "file"])
def storage(request, tmp_path):
    if request.param == "memory":
        return InMemoryStableStorage()
    return FileStableStorage(str(tmp_path / "stable"))


def test_put_get_roundtrip(storage):
    storage.put("k", {"a": 1, "b": [1, 2, 3]})
    assert storage.get("k") == {"a": 1, "b": [1, 2, 3]}


def test_get_missing_returns_default(storage):
    assert storage.get("missing") is None
    assert storage.get("missing", 42) == 42


def test_overwrite(storage):
    storage.put("k", 1)
    storage.put("k", 2)
    assert storage.get("k") == 2


def test_delete(storage):
    storage.put("k", 1)
    storage.delete("k")
    assert storage.get("k") is None
    storage.delete("k")  # idempotent


def test_contains(storage):
    assert "k" not in storage
    storage.put("k", 0)  # falsy value must still count as present
    assert "k" in storage


def test_keys_sorted(storage):
    for name in ["b", "a", "c"]:
        storage.put(name, 1)
    assert list(storage.keys()) == ["a", "b", "c"]


def test_memory_storage_is_copy_on_write():
    storage = InMemoryStableStorage()
    value = {"x": [1]}
    storage.put("k", value)
    value["x"].append(2)  # caller mutation must not leak in
    assert storage.get("k") == {"x": [1]}
    out = storage.get("k")
    out["x"].append(3)  # reader mutation must not leak back
    assert storage.get("k") == {"x": [1]}


def test_file_storage_persists_across_instances(tmp_path):
    root = str(tmp_path / "stable")
    FileStableStorage(root).put("k", [1, 2])
    assert FileStableStorage(root).get("k") == [1, 2]


def test_file_storage_rejects_unserialisable(tmp_path):
    storage = FileStableStorage(str(tmp_path / "stable"))
    with pytest.raises(StableStorageError):
        storage.put("k", object())


def test_file_storage_detects_corruption(tmp_path):
    root = str(tmp_path / "stable")
    storage = FileStableStorage(root)
    storage.put("k", 1)
    path = os.path.join(root, "k.json")
    with open(path, "w") as handle:
        handle.write("{not json")
    with pytest.raises(StableStorageError):
        storage.get("k")


def test_file_storage_no_tmp_leftovers(tmp_path):
    root = str(tmp_path / "stable")
    storage = FileStableStorage(root)
    for k in range(20):
        storage.put(f"key{k}", k)
    leftovers = [n for n in os.listdir(root) if n.startswith(".tmp-")]
    assert leftovers == []
