"""Unit tests for the copy-on-write snapshot engine."""

import copy
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StableStorageError
from repro.stable import (
    ChunkStore,
    FrozenDict,
    FrozenList,
    SnapshotEngine,
    diff,
    digest,
    freeze,
    patch,
    thaw,
)

# ----------------------------------------------------------------------
# freeze / thaw
# ----------------------------------------------------------------------

def test_freeze_converts_nested_containers():
    frozen = freeze({"a": [1, {"b": 2}], "c": (3, [4])})
    assert isinstance(frozen, FrozenDict)
    assert isinstance(frozen["a"], FrozenList)
    assert isinstance(frozen["a"][1], FrozenDict)
    assert isinstance(frozen["c"], tuple)  # tuples stay tuples
    assert isinstance(frozen["c"][1], FrozenList)


def test_frozen_equals_plain():
    value = {"a": [1, 2], "b": {"c": None}}
    assert freeze(value) == value
    assert value == freeze(value)


def test_frozen_dict_mutators_raise():
    frozen = freeze({"a": 1})
    for attempt in [
        lambda: frozen.__setitem__("b", 2),
        lambda: frozen.__delitem__("a"),
        lambda: frozen.pop("a"),
        lambda: frozen.popitem(),
        lambda: frozen.clear(),
        lambda: frozen.update({"b": 2}),
        lambda: frozen.setdefault("b", 2),
    ]:
        with pytest.raises(TypeError, match="frozen"):
            attempt()
    assert frozen == {"a": 1}


def test_frozen_list_mutators_raise():
    frozen = freeze([1, 2, 3])
    for attempt in [
        lambda: frozen.append(4),
        lambda: frozen.extend([4]),
        lambda: frozen.insert(0, 0),
        lambda: frozen.__setitem__(0, 9),
        lambda: frozen.__delitem__(0),
        lambda: frozen.pop(),
        lambda: frozen.remove(1),
        lambda: frozen.reverse(),
        lambda: frozen.sort(),
        lambda: frozen.clear(),
    ]:
        with pytest.raises(TypeError, match="frozen"):
            attempt()
    assert frozen == [1, 2, 3]


def test_freeze_is_identity_on_frozen_nodes():
    frozen = freeze({"a": [1, 2]})
    assert freeze(frozen) is frozen  # the O(1) copy-on-write fast path
    assert freeze(frozen["a"]) is frozen["a"]


def test_freeze_does_not_alias_mutable_input():
    original = {"a": [1]}
    frozen = freeze(original)
    original["a"].append(2)
    assert frozen == {"a": [1]}


def test_freeze_rejects_non_json_shapes():
    with pytest.raises(StableStorageError):
        freeze(object())
    with pytest.raises(StableStorageError):
        freeze({"a": {1, 2}})


def test_thaw_gives_independent_mutable_copy():
    frozen = freeze({"a": [1, {"b": 2}]})
    melted = thaw(frozen)
    melted["a"].append(3)
    melted["a"][1]["b"] = 9
    assert frozen == {"a": [1, {"b": 2}]}
    assert type(melted) is dict and type(melted["a"]) is list


def test_frozen_json_serialisable():
    frozen = freeze({"a": [1, 2], "b": None})
    assert json.loads(json.dumps(frozen)) == {"a": [1, 2], "b": None}


def test_frozen_dict_unpacks_with_double_star():
    frozen = freeze({"a": 1, "b": 2})
    assert dict(**frozen) == {"a": 1, "b": 2}


def test_copy_of_frozen_is_self():
    frozen = freeze({"a": [1]})
    assert copy.copy(frozen) is frozen
    assert copy.deepcopy(frozen) is frozen


# ----------------------------------------------------------------------
# Hashing / interning
# ----------------------------------------------------------------------

def test_equal_values_hash_equal():
    assert hash(freeze({"a": [1, 2]})) == hash(freeze({"a": [1, 2]}))
    assert hash(freeze([1, 2])) == hash(freeze([1, 2]))


def test_chunk_store_interns_equal_chunks():
    chunks = ChunkStore()
    first = chunks.intern(freeze({"a": [1, 2]}))
    second = chunks.intern(freeze({"a": [1, 2]}))
    assert second is first
    assert chunks.hits == 1 and chunks.misses == 1
    assert len(chunks) == 1


def test_digest_is_structural_and_order_independent():
    assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})
    assert digest(freeze({"a": [1]})) == digest({"a": [1]})
    assert digest({"a": 1}) != digest({"a": 2})


# ----------------------------------------------------------------------
# diff / patch
# ----------------------------------------------------------------------

def test_diff_unchanged_is_tiny():
    value = {"a": list(range(100))}
    assert diff(value, value) == ("=",)


def test_diff_patch_dict_edit():
    base = {"keep": [1, 2], "edit": {"x": 1}, "drop": 3}
    target = {"keep": [1, 2], "edit": {"x": 2}, "new": 4}
    delta = diff(base, target)
    assert patch(base, delta) == target


def test_diff_patch_list_middle_replacement():
    base = [1, 2, 3, 4, 5]
    target = [1, 2, 9, 4, 5]
    op, prefix, suffix, middle = diff(base, target)
    assert (op, prefix, suffix, middle) == ("l", 2, 2, [9])
    assert patch(base, diff(base, target)) == target


def test_delta_is_json_encodable():
    delta = diff({"a": [1, 2, 3]}, {"a": [1, 9, 3], "b": None})
    json.dumps(delta)  # must not raise


json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-1000, 1000) | st.text(max_size=8),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=4), children, max_size=4),
    max_leaves=20,
)


@settings(max_examples=60, deadline=None)
@given(base=json_values, target=json_values)
def test_patch_of_diff_reconstructs_target(base, target):
    assert patch(base, diff(base, target)) == target


@settings(max_examples=60, deadline=None)
@given(value=json_values)
def test_freeze_thaw_roundtrip(value):
    assert thaw(freeze(value)) == value
    assert json.loads(json.dumps(freeze(value))) == json.loads(json.dumps(value))


# ----------------------------------------------------------------------
# SnapshotEngine
# ----------------------------------------------------------------------

def test_engine_returns_frozen_canonical_values():
    engine = SnapshotEngine()
    stored = engine.store("k", {"a": [1]})
    assert isinstance(stored, FrozenDict)
    assert engine.store("j", {"a": [1]}) is stored  # interned across keys


def test_engine_delta_accounting():
    engine = SnapshotEngine(track_deltas=True)
    base = {"blocks": {str(i): list(range(8)) for i in range(32)}, "hot": 0}
    frozen = engine.store("k", base)
    engine.store("k", {"blocks": frozen["blocks"], "hot": 1})
    stats = engine.stats()
    assert 0 < stats["delta_bytes"] < stats["full_bytes"]


def test_engine_forget_resets_delta_base():
    engine = SnapshotEngine(track_deltas=True)
    engine.store("k", {"a": 1})
    engine.forget("k")
    engine.store("k", {"a": 2})
    assert engine.stats()["delta_bytes"] == 0  # no base to diff against
