"""Tests for the workload generators."""

from repro.analysis import check_c1, check_quiescent
from repro.core import CheckpointProcess
from repro.net import FixedDelay
from repro.sim import Simulation
from repro.testing import build_sim
from repro.workloads import (
    BurstyWorkload,
    ClientServerWorkload,
    PipelineWorkload,
    RandomPeerWorkload,
    RingWorkload,
    ScriptedWorkload,
    exponential_arrivals,
)


def test_exponential_arrivals_within_window():
    sim, _ = build_sim(n=1)
    times = exponential_arrivals(sim, ("t",), rate=2.0, duration=50.0, start=5.0)
    assert all(5.0 <= t < 55.0 for t in times)
    assert 40 < len(times) < 170  # ~100 expected


def test_exponential_arrivals_zero_rate():
    sim, _ = build_sim(n=1)
    assert exponential_arrivals(sim, ("t",), rate=0.0, duration=50.0) == []


def test_exponential_arrivals_deterministic_per_seed():
    sim_a, _ = build_sim(n=1, seed=9)
    sim_b, _ = build_sim(n=1, seed=9)
    a = exponential_arrivals(sim_a, ("t",), 1.0, 20.0)
    b = exponential_arrivals(sim_b, ("t",), 1.0, 20.0)
    assert a == b


def test_random_peer_generates_traffic():
    sim, procs = build_sim(n=4, seed=2)
    RandomPeerWorkload(message_rate=1.0, duration=20.0).install(sim, procs)
    sim.run()
    assert sim.network.normal_sent > 20
    total_consumed = sum(p.app.consumed for p in procs.values())
    assert total_consumed == sim.network.normal_sent  # all delivered


def test_client_server_request_response():
    sim, procs = build_sim(n=4, seed=2)
    ClientServerWorkload(servers=[0], request_rate=1.0, duration=20.0).install(sim, procs)
    sim.run()
    server = procs[0]
    assert server.app.replies_sent > 5
    client_consumed = sum(procs[i].app.consumed for i in (1, 2, 3))
    assert client_consumed == server.app.replies_sent


def test_pipeline_items_flow_to_the_end():
    sim, procs = build_sim(n=4, seed=2)
    PipelineWorkload(stages=[0, 1, 2, 3], item_rate=1.0, duration=20.0).install(sim, procs)
    sim.run()
    # Every stage except the source consumed items; the sink forwarded none.
    assert procs[1].app.consumed > 5
    assert procs[3].app.consumed > 5
    assert procs[3].app.forwarded == 0
    assert procs[1].app.forwarded == procs[1].app.consumed


def test_ring_token_circulates():
    sim, procs = build_sim(n=4, seed=2)
    RingWorkload(tokens=1, hold_time=0.2, duration=20.0).install(sim, procs)
    sim.run()
    # The token visited every process repeatedly.
    assert all(p.app.consumed >= 3 for p in procs.values())


def test_bursty_traffic_is_modulated():
    sim, procs = build_sim(n=4, seed=2)
    BurstyWorkload(burst_rate=5.0, idle_rate=0.1, burst_length=10.0,
                   idle_length=10.0, duration=40.0).install(sim, procs)
    sim.run()
    sends = sim.trace.of_kind("send")
    busy = [e for e in sends if e.time % 20.0 < 10.0]
    idle = [e for e in sends if e.time % 20.0 >= 10.0]
    assert len(busy) > 5 * max(len(idle), 1)


def test_scripted_workload_steps():
    sim, procs = build_sim(n=2, seed=2)
    called = []
    ScriptedWorkload([
        (1.0, "send", 0, 1, "m"),
        (2.0, "step", 0),
        (3.0, "checkpoint", 1),
        (9.0, "rollback", 0),
        (12.0, "call", lambda: called.append(True)),
    ]).install(sim, procs)
    sim.run()
    assert procs[0].app.steps == 1
    assert procs[1].store.oldchkpt.seq >= 2
    assert called == [True]


def test_scripted_workload_rejects_unknown_step():
    import pytest

    from repro.errors import WorkloadError

    sim, procs = build_sim(n=1)
    with pytest.raises(WorkloadError):
        ScriptedWorkload([(1.0, "dance", 0)]).install(sim, procs)


def test_workloads_keep_protocol_consistent():
    """Each workload shape runs under checkpointing without violations."""
    for workload in (
        ClientServerWorkload(servers=[0], request_rate=0.8, duration=25.0),
        PipelineWorkload(stages=[0, 1, 2, 3], item_rate=0.8, duration=25.0),
        RingWorkload(tokens=2, hold_time=0.3, duration=25.0),
    ):
        sim, procs = build_sim(n=4, seed=4)
        workload.install(sim, procs)
        sim.scheduler.at(12.0, lambda: procs[2].initiate_checkpoint())
        sim.run(max_events=200000)
        check_quiescent(procs.values())
        check_c1(procs.values())
