"""Unit tests for per-instance tree state and the registry."""

import pytest

from repro.core.trees import ChkptTreeState, RollTreeState, TreeRegistry
from repro.errors import ProtocolError
from repro.types import TreeId

T1 = TreeId(0, 0)
T2 = TreeId(1, 0)


def test_chkpt_ack_collection():
    tree = ChkptTreeState(tree=T1, parent=None, pending_acks={1, 2, 3})
    tree.record_ack(1, positive=True)
    tree.record_ack(2, positive=False)
    assert tree.true_children == {1}
    assert tree.pending_acks == {3}
    assert not tree.subtree_ready
    tree.record_ack(3, positive=True)
    assert not tree.subtree_ready  # child 1 and 3 must still respond
    tree.record_ready(1)
    tree.record_ready(3)
    assert tree.subtree_ready


def test_chkpt_duplicate_acks_ignored():
    tree = ChkptTreeState(tree=T1, parent=None, pending_acks={1})
    tree.record_ack(1, True)
    tree.record_ack(1, False)  # late duplicate, ignored
    assert tree.true_children == {1}


def test_chkpt_ready_overtaking_ack():
    """Non-FIFO: ready_to_commit can arrive before the pos_ack."""
    tree = ChkptTreeState(tree=T1, parent=None, pending_acks={1})
    tree.record_ready(1)
    assert 1 in tree.true_children and 1 in tree.ready_children
    tree.record_ack(1, True)  # late ack ignored
    assert tree.subtree_ready


def test_chkpt_drop_child():
    tree = ChkptTreeState(tree=T1, parent=None, pending_acks={1, 2})
    tree.record_ack(1, True)
    tree.drop_child(1)
    tree.drop_child(2)
    assert tree.subtree_ready


def test_chkpt_rounds_chain_oldest_first():
    old = ChkptTreeState(tree=T1, parent=3)
    mid = ChkptTreeState(tree=T1, parent=4, older=old)
    new = ChkptTreeState(tree=T1, parent=5, older=mid)
    assert [s.parent for s in new.chain()] == [3, 4, 5]


def test_roll_completion_collection():
    tree = RollTreeState(tree=T1, parent=0, pending_acks={1, 2})
    tree.record_ack(1, True)
    tree.record_ack(2, False)
    assert not tree.subtree_complete
    tree.record_complete(1)
    assert tree.subtree_complete


def test_roll_complete_overtaking_ack():
    tree = RollTreeState(tree=T1, parent=0, pending_acks={1})
    tree.record_complete(1)
    assert tree.subtree_complete


def test_registry_membership_and_open():
    reg = TreeRegistry()
    assert not reg.chkpt_member(T1)
    reg.open_chkpt(T1, parent=None)
    assert reg.chkpt_member(T1)
    with pytest.raises(ProtocolError):
        reg.open_chkpt(T1, parent=2)
    reg.open_roll(T2, parent=1)
    assert reg.roll_member(T2)
    with pytest.raises(ProtocolError):
        reg.open_roll(T2, parent=3)


def test_registry_rounds():
    reg = TreeRegistry()
    first = reg.open_chkpt(T1, parent=None)
    second = reg.open_chkpt_round(T1, parent=2)
    assert second.older is first
    assert reg.chkpt[T1] is second
    assert [s.parent for s in reg.chkpt_rounds(T1)] == [None, 2]
    # A closed previous round is dropped, not chained.
    second.closed = True
    third = reg.open_chkpt_round(T1, parent=3)
    assert third.older is None


def test_registry_all_chkpt_rounds():
    reg = TreeRegistry()
    reg.open_chkpt(T1, parent=None)
    reg.open_chkpt_round(T1, parent=2)
    reg.open_chkpt(T2, parent=1)
    assert len(reg.all_chkpt_rounds()) == 3


def test_registry_clear_volatile():
    reg = TreeRegistry()
    reg.open_chkpt(T1, parent=None)
    reg.open_roll(T2, parent=0)
    reg.clear_volatile()
    assert not reg.chkpt and not reg.roll
