"""Property: interval labels n_i are strictly monotone per process.

The Leu-Bhargava correctness arguments (Lemmas 1-2, the true-child test,
the rollback label comparison) all lean on interval labels never running
backwards: every checkpoint or rollback instance advances ``n_i``, and each
tentative checkpoint's sequence number strictly exceeds every label the
process used before it.  Hypothesis drives a kernel-less three-engine
cluster through arbitrary event sequences — sends, deliveries in any
(non-FIFO) order, autonomous checkpoint and rollback initiations — and
checks monotonicity after every single event.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tracekinds as T
from repro.core import effects as FX
from repro.core import events as EV
from repro.errors import ProtocolError
from repro.mc.harness import ClusterHarness
from repro.mc.scenario import Scenario

N = 3

# One op = (kind, pid, arg):  kind 0 — app send from pid (arg picks the
# peer); 1 — initiate checkpoint at pid; 2 — initiate rollback at pid;
# 3 — deliver the arg-th in-flight message (to whichever dst it has).
ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=N - 1),
        st.integers(min_value=0, max_value=11),
    ),
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy)
def test_interval_labels_strictly_monotone(ops):
    scenario = Scenario(name="prop", n=N, setup=(), actions=())
    harness = ClusterHarness(scenario)
    engines = harness.engines

    last_n = {pid: engines[pid].ledger.n for pid in engines}
    last_tentative = {pid: engines[pid].store.oldchkpt.seq for pid in engines}

    for kind, pid, arg in ops:
        harness.step += 1
        at = float(harness.step)
        if kind == 0:
            dst = (pid + 1 + arg % (N - 1)) % N
            event = EV.AppSend(dst=dst, payload="x", at=at)
        elif kind == 1:
            event = EV.InitiateCheckpoint(at=at)
        elif kind == 2:
            event = EV.InitiateRollback(at=at)
        else:
            keys = sorted(harness.in_flight)
            if not keys:
                continue
            envelope = harness.in_flight.pop(keys[arg % len(keys)])
            pid = envelope.dst
            event = EV.Deliver(envelope=envelope, at=at)

        harness._sink_pid = pid
        try:
            effects = engines[pid].handle(event)
        except ProtocolError:
            continue  # op illegal in this state; labels must still hold

        # n_i never decreases, at any process, after any event.
        for p, engine in engines.items():
            assert engine.ledger.n >= last_n[p], (
                f"ledger.n ran backwards at P{p}: {engine.ledger.n} < {last_n[p]}"
            )
            last_n[p] = engine.ledger.n

        # Every tentative checkpoint's seq strictly exceeds the previous
        # checkpoint label at that process — even across aborted instances.
        for eff in effects:
            if isinstance(eff, FX.EmitTrace) and eff.kind == T.K_CHKPT_TENTATIVE:
                seq = eff.fields["seq"]
                assert seq > last_tentative[pid], (
                    f"tentative seq not strictly increasing at P{pid}: "
                    f"{seq} <= {last_tentative[pid]}"
                )
                last_tentative[pid] = seq

    # Committed history is strictly increasing in seq at every process.
    for pid, engine in engines.items():
        seqs = [record.seq for record in engine.committed_history]
        assert seqs == sorted(set(seqs)), f"committed seqs not strictly increasing at P{pid}"
