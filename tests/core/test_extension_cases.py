"""The Section 3.5.3 case analysis, exercised scenario by scenario."""

from repro.analysis import check_no_dangling_receives, check_recovery_line
from repro.core import ExtendedCheckpointProcess
from repro.sim import trace as T
from repro.testing import build_sim


def build(n=3, seed=0):
    return build_sim(n=n, seed=seed, cls=ExtendedCheckpointProcess)


def at(sim, t, fn):
    sim.scheduler.at(t, fn)


def test_case1_message_before_oldchkpt_rejected():
    """Checkpoint case 1: max_ij < oldchkpt.seq -> not a true child."""
    sim, procs = build()
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    # P0 commits its own checkpoint covering the send...
    at(sim, 3.0, lambda: procs[0].initiate_checkpoint())
    sim.run()
    assert procs[0].multi_store.oldchkpt.seq == 2
    # ...so P1's later instance gets a neg_ack from P0.
    at(sim, 6.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    negs = [e for e in sim.trace.of_kind("ctrl_send")
            if e.pid == 0 and e.fields["msg_type"] == "chkpt_ack"
            and not e.fields["positive"]]
    assert negs
    assert procs[0].multi_store.oldchkpt.seq == 2  # unchanged


def test_case2_pending_checkpoint_reused():
    """Checkpoint case 2: an existing pending checkpoint covers the
    referenced message -> reused, no new checkpoint."""
    sim, procs = build()
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "to-p1"))
    at(sim, 1.0, lambda: procs[0].send_app_message(2, "to-p2"))
    # Both receivers checkpoint ~simultaneously: P0 is recruited twice for
    # messages both covered by its first pending checkpoint.
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    at(sim, 3.0, lambda: procs[2].initiate_checkpoint())
    sim.run()
    tentatives = sim.trace.for_process(0, T.K_CHKPT_TENTATIVE)
    assert len(tentatives) == 1  # reused, not duplicated
    check_recovery_line(procs.values())


def test_case3_post_checkpoint_send_needs_new_checkpoint():
    """Checkpoint case 3: the referenced message was sent in the current
    interval (after every pending checkpoint) -> a fresh checkpoint."""
    sim, procs = build()
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "early"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())   # P0 takes ckpt A
    # The extension lets P0 keep sending: this one postdates checkpoint A.
    at(sim, 3.6, lambda: procs[0].send_app_message(2, "late"))
    at(sim, 4.6, lambda: procs[2].initiate_checkpoint())   # needs ckpt B
    sim.run()
    tentatives = sim.trace.for_process(0, T.K_CHKPT_TENTATIVE)
    assert len(tentatives) == 2
    seqs = [e.fields["seq"] for e in tentatives]
    assert seqs[1] > seqs[0]
    check_recovery_line(procs.values())
    check_no_dangling_receives(procs.values())


def test_rollback_case3_undoes_to_newest_pending():
    """Rollback case 3: the doomed receive is in the current interval ->
    roll back to the newest pending checkpoint (which survives)."""
    sim, procs = build(n=4)
    # P3 -> P0 gives P0 a child of its own, keeping its checkpoint pending
    # long enough for the rollback to land inside the window.
    at(sim, 0.5, lambda: procs[3].send_app_message(0, "dep"))
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "pre"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())   # P0 pending ckpt
    # P2 sends P0 a message *after* P0's pending checkpoint, then undoes it.
    at(sim, 3.6, lambda: procs[2].send_app_message(0, "doomed"))
    at(sim, 4.2, lambda: procs[2].initiate_rollback())
    sim.run()
    rolls = [e for e in sim.trace.of_kind(T.K_ROLLBACK) if e.pid == 0]
    assert rolls and rolls[0].fields["target"] == "newchkpt"
    check_no_dangling_receives(procs.values())


def test_rollback_case2_discards_pending_suffix():
    """Rollback cases 2.x: a doomed receive predates a pending checkpoint;
    that checkpoint and everything newer is discarded."""
    sim, procs = build()
    # P2's message lands first; P0 then checkpoints (covering it); P2 then
    # rolls back, undoing the message that the pending checkpoint captured.
    at(sim, 1.0, lambda: procs[2].send_app_message(0, "captured"))
    at(sim, 2.0, lambda: procs[0].send_app_message(1, "x"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())   # P0 pending ckpt
    at(sim, 3.4, lambda: procs[2].initiate_rollback())
    sim.run()
    aborts = sim.trace.for_process(0, T.K_CHKPT_ABORT)
    assert aborts, "the doomed pending checkpoint must be discarded"
    check_no_dangling_receives(procs.values())
    check_recovery_line(procs.values())


def test_marker_dedup_one_checkpoint_per_instance():
    """"All subsequent markers with the same timestamp t' are ignored."""
    sim, procs = build()
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    # P1 sends P2 several messages while its checkpoint is pending; each
    # carries the same marker, but P2 checkpoints only once for it.
    for k, t in enumerate((3.1, 3.2, 3.3)):
        at(sim, t, lambda i=k: procs[1].send_app_message(2, f"mk{i}"))
    sim.run()
    tentatives = sim.trace.for_process(2, T.K_CHKPT_TENTATIVE)
    assert len(tentatives) == 1
    assert procs[2].app.consumed == 3  # all messages still consumed
