"""Unit tests for the LabelLedger (message labels and interval bookkeeping)."""

import pytest

from repro.core.labels import LabelLedger
from repro.errors import ProtocolError
from repro.types import MessageId


def ledger():
    led = LabelLedger(0)
    led.n = 1  # processes start at interval 1 (paper Fig. 2 numbering)
    return led


def test_sends_carry_current_counter_as_label():
    led = ledger()
    assert led.record_send(MessageId(0, 0), dst=1) == 1
    led.advance()
    assert led.record_send(MessageId(0, 1), dst=1) == 2


def test_figure2_label_sequence():
    """Paper Fig. 2: labels of m, l, x, y, z are 1, 2, 3, 3, 4."""
    led = ledger()
    labels = []
    labels.append(led.record_send(MessageId(0, 0), 1))  # m
    led.advance()  # checkpoint 2
    labels.append(led.record_send(MessageId(0, 1), 1))  # l
    led.advance()  # checkpoint 3
    labels.append(led.record_send(MessageId(0, 2), 1))  # x
    labels.append(led.record_send(MessageId(0, 3), 1))  # y
    led.advance()  # rollback point 4
    labels.append(led.record_send(MessageId(0, 4), 1))  # z
    assert labels == [1, 2, 3, 3, 4]


def test_receives_record_current_interval():
    led = ledger()
    led.record_receive(MessageId(5, 0), src=5, label=3)
    led.advance()
    led.record_receive(MessageId(5, 1), src=5, label=4)
    assert [r.interval for r in led.received] == [1, 2]


def test_max_label_from_per_interval():
    led = ledger()
    led.record_receive(MessageId(5, 0), src=5, label=2)
    led.record_receive(MessageId(5, 1), src=5, label=7)
    led.record_receive(MessageId(6, 0), src=6, label=4)
    assert led.max_label_from(5, interval=1) == 7
    assert led.max_label_from(6, interval=1) == 4
    assert led.max_label_from(5, interval=2) == 0  # sentinel: nothing
    assert led.max_label_from(9, interval=1) == 0


def test_senders_in_interval():
    led = ledger()
    led.record_receive(MessageId(5, 0), src=5, label=2)
    led.record_receive(MessageId(6, 0), src=6, label=9)
    led.advance()
    led.record_receive(MessageId(7, 0), src=7, label=1)
    assert led.senders_in_interval(1) == {5: 2, 6: 9}
    assert led.senders_in_interval(2) == {7: 1}


def test_senders_in_range_spans_intervals():
    led = ledger()
    led.record_receive(MessageId(5, 0), src=5, label=2)
    led.advance()
    led.record_receive(MessageId(6, 0), src=6, label=9)
    assert led.senders_in_range(1, 2) == {5: 2, 6: 9}
    assert led.senders_in_range(2, 2) == {6: 9}


def test_undo_for_rollback_marks_and_returns():
    led = ledger()
    led.record_send(MessageId(0, 0), 1)        # label 1
    led.record_receive(MessageId(5, 0), 5, 1)  # interval 1
    led.advance()                              # checkpoint seq 2
    led.record_send(MessageId(0, 1), 2)        # label 2
    led.record_receive(MessageId(5, 1), 5, 3)  # interval 2

    sends, receives = led.undo_for_rollback(restored_seq=2)
    assert [r.msg_id.send_index for r in sends] == [1]
    assert [r.msg_id.send_index for r in receives] == [1]
    # Pre-checkpoint records survive.
    assert not led.sent[0].undone
    assert not led.received[0].undone


def test_undo_is_idempotent():
    led = ledger()
    led.record_send(MessageId(0, 0), 1)
    first, _ = led.undo_for_rollback(1)
    second, _ = led.undo_for_rollback(1)
    assert len(first) == 1 and len(second) == 0


def test_undo_summary():
    led = ledger()
    led.advance()  # n=2
    r1 = led.record_send(MessageId(0, 0), 1)
    led.advance()  # n=3
    led.record_send(MessageId(0, 1), 2)
    sends, _ = led.undo_for_rollback(2)
    bad_seq, children = LabelLedger.undo_summary(sends, fallback=99)
    assert bad_seq == 2  # minimum undone label
    assert children == {1, 2}


def test_undo_summary_fallback_when_nothing_undone():
    bad_seq, children = LabelLedger.undo_summary([], fallback=7)
    assert bad_seq == 7 and children == set()


def test_has_live_receive_from():
    led = ledger()
    led.record_receive(MessageId(5, 0), 5, label=3)
    assert led.has_live_receive_from(5, min_label=3)
    assert led.has_live_receive_from(5, min_label=1)
    assert not led.has_live_receive_from(5, min_label=4)
    led.undo_for_rollback(1)
    assert not led.has_live_receive_from(5, min_label=1)


def test_undone_send_queries():
    led = ledger()
    led.record_send(MessageId(0, 0), dst=1)  # label 1
    assert not led.has_undone_send_with_label(1, 1)
    sends, _ = led.undo_for_rollback(1)
    sends[0].undone_by = ("tree", 1, 1)
    assert led.has_undone_send_with_label(1, 1)
    assert led.undone_send_info(1, 1) == ("tree", 1, 1)
    assert led.undone_send_info(2, 1) is None


def test_discard_filters():
    led = ledger()
    led.install_discard_filter(5, lo=3, hi=6)
    assert led.should_discard(5, 3)
    assert led.should_discard(5, 6)
    assert not led.should_discard(5, 7)
    assert not led.should_discard(5, 2)
    assert not led.should_discard(6, 4)


def test_discard_filter_rejects_bad_range():
    led = ledger()
    with pytest.raises(ProtocolError):
        led.install_discard_filter(5, lo=6, hi=3)


def test_live_views_and_counts():
    led = ledger()
    led.record_send(MessageId(0, 0), 1)
    led.record_receive(MessageId(5, 0), 5, 1)
    led.undo_for_rollback(1)
    assert led.live_sends() == []
    assert led.live_receives() == []
    counts = led.snapshot_counts()
    assert counts["sent_undone"] == 1
    assert counts["received_undone"] == 1
