"""Scenario tests for the checkpoint half of the algorithm (b1-b4)."""

from repro.testing import build_sim

from repro.analysis import check_c1, check_quiescent, reconstruct_trees
from repro.sim import trace as T


def at(sim, t, fn):
    sim.scheduler.at(t, fn)


def test_lone_initiator_commits_immediately():
    sim, procs = build_sim(n=3)
    at(sim, 1.0, lambda: procs[0].initiate_checkpoint())
    sim.run()
    assert procs[0].store.oldchkpt.seq == 2
    assert procs[0].store.newchkpt is None
    assert procs[1].store.oldchkpt.seq == 1  # untouched


def test_b1_guard_rejects_second_initiation_while_pending():
    sim, procs = build_sim(n=2)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.run(until=3.0)
    assert procs[1].initiate_checkpoint() is not None
    # newchkpt pending (awaiting P0's participation): b1 guard refuses.
    assert procs[1].store.newchkpt is not None
    assert procs[1].initiate_checkpoint() is None
    sim.run()


def test_sender_is_forced_to_checkpoint():
    """The receiver's checkpoint recruits the sender (Definition 2)."""
    sim, procs = build_sim(n=2)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    assert procs[1].store.oldchkpt.seq == 2
    assert procs[0].store.oldchkpt.seq == 2  # forced
    check_c1(procs.values())


def test_receiver_is_not_forced():
    """Only senders of consumed messages join; pure receivers do not force
    their peers' senders... the reverse direction never recruits."""
    sim, procs = build_sim(n=2)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[0].initiate_checkpoint())  # the SENDER initiates
    sim.run()
    assert procs[0].store.oldchkpt.seq == 2
    assert procs[1].store.oldchkpt.seq == 1  # receiver not recruited
    check_c1(procs.values())


def test_chain_recruitment_transitive():
    """P0 -> P1 -> P2 message chain; P2's checkpoint recruits both."""
    sim, procs = build_sim(n=3)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "a"))
    at(sim, 2.0, lambda: procs[1].send_app_message(2, "b"))
    at(sim, 4.0, lambda: procs[2].initiate_checkpoint())
    sim.run()
    assert all(procs[i].store.oldchkpt.seq == 2 for i in range(3))
    trees = reconstruct_trees(sim.trace)
    tree = next(iter(trees.values()))
    assert tree.edges == [(1, 0), (2, 1)]
    assert tree.depth() == 2


def test_old_message_does_not_recruit():
    """A message already covered by the sender's committed checkpoint
    does not force a new one (neg_ack via seqof(C_i) > max_ij)."""
    sim, procs = build_sim(n=2)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[0].initiate_checkpoint())  # covers the send
    at(sim, 6.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    assert procs[0].store.oldchkpt.seq == 2  # only its own
    assert procs[1].store.oldchkpt.seq == 2
    trees = reconstruct_trees(sim.trace)
    p1_tree = [t for t in trees.values() if t.root == 1][0]
    assert p1_tree.participants == set()


def test_shared_checkpoint_between_two_instances():
    """Example 2 mechanics: one uncommitted checkpoint serves two trees."""
    sim, procs = build_sim(n=3)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m1"))
    at(sim, 1.0, lambda: procs[0].send_app_message(2, "m2"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    at(sim, 3.0, lambda: procs[2].initiate_checkpoint())
    sim.run()
    # P0 is recruited by both instances but takes ONE checkpoint.
    tentatives = sim.trace.for_process(0, T.K_CHKPT_TENTATIVE)
    assert len(tentatives) == 1
    commits = sim.trace.for_process(0, T.K_CHKPT_COMMIT)
    assert len(commits) == 1
    assert procs[0].store.oldchkpt.seq == 2
    check_quiescent(procs.values())
    check_c1(procs.values())


def test_commit_resumes_suspended_sends():
    sim, procs = build_sim(n=2)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    # Queue a message while P1 is suspended (tentative pending).
    at(sim, 3.1, lambda: procs[1].send_app_message(0, "queued"))
    sim.run()
    assert not procs[1].send_suspended
    # The queued message was eventually delivered.
    received = [r for r in procs[0].ledger.received if r.src == 1]
    assert len(received) == 1
    check_quiescent(procs.values())


def test_suspension_blocks_sends_but_not_receives():
    sim, procs = build_sim(n=3)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    # While P1's instance is in flight, P2 sends it a message: received.
    at(sim, 3.2, lambda: procs[2].send_app_message(1, "while-suspended"))
    sim.run()
    assert any(r.src == 2 for r in procs[1].ledger.live_receives())


def test_instance_latency_traced():
    sim, procs = build_sim(n=2)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    start = sim.trace.last(T.K_INSTANCE_START)
    commit = sim.trace.last(T.K_INSTANCE_COMMIT)
    assert commit.time > start.time


def test_commit_set_cleared_after_commit():
    sim, procs = build_sim(n=2)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    assert procs[0].chkpt_commit_set == set()
    assert procs[1].chkpt_commit_set == set()


def test_manifest_records_live_messages():
    sim, procs = build_sim(n=2)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    recv = procs[1].store.oldchkpt.meta["recv"]
    assert [tuple(x) for x in recv] == [(0, 0)]
    sent = procs[0].store.oldchkpt.meta["sent"]
    assert [tuple(x) for x in sent] == [(1, 0)]
