"""Tests for pessimistic partition handling with weighted voting."""

from repro.analysis import check_app_states, check_recovery_line
from repro.core import CheckpointProcess, PartitionCoordinator, ProtocolConfig
from repro.failure import VoteRegistry
from repro.testing import build_sim, run_random_workload


def build(n=5, seed=0):
    sim, procs = build_sim(
        n=n,
        seed=seed,
        config=ProtocolConfig(failure_resilience=True),
        detector_latency=1.0,
        spoolers=True,
    )
    coord = PartitionCoordinator(sim, VoteRegistry.uniform(range(n)))
    return sim, procs, coord


def test_minority_goes_dormant_majority_continues():
    sim, procs, coord = build()
    sim.scheduler.at(5.0, lambda: coord.split([{0, 1, 2}, {3, 4}]))
    sim.scheduler.at(6.0, lambda: procs[0].send_app_message(1, "maj"))
    sim.scheduler.at(6.0, lambda: procs[3].send_app_message(4, "min"))
    sim.run(until=20.0)
    assert coord.dormant == {3, 4}
    assert procs[3].crashed and procs[4].crashed  # regarded as failed
    # Majority-side traffic flows.
    assert procs[1].app.consumed == 1
    # Minority traffic went nowhere (dormant processes do not send).
    assert procs[4].app.consumed == 0


def test_majority_checkpointing_continues_during_partition():
    sim, procs, coord = build()
    sim.scheduler.at(2.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(5.0, lambda: coord.split([{0, 1, 2}, {3, 4}]))
    sim.scheduler.at(8.0, lambda: procs[1].initiate_checkpoint())
    sim.run(until=40.0)
    assert procs[1].store.oldchkpt.seq >= 2
    assert procs[0].store.oldchkpt.seq >= 2


def test_merge_wakes_minority_via_rule3():
    sim, procs, coord = build()
    sim.scheduler.at(2.0, lambda: procs[3].send_app_message(4, "m"))
    sim.scheduler.at(5.0, lambda: coord.split([{0, 1, 2}, {3, 4}]))
    sim.scheduler.at(20.0, lambda: coord.heal())
    sim.run(until=120.0)
    assert coord.dormant == set()
    assert not procs[3].crashed and not procs[4].crashed
    # The woken processes performed their rule-3 recovery rollback.
    rolls = [e for e in sim.trace.of_kind("rollback") if e.pid in (3, 4)]
    assert rolls
    check_recovery_line(procs.values())
    check_app_states(procs.values())


def test_no_majority_everyone_dormant():
    sim, procs, coord = build(n=4)
    sim.scheduler.at(5.0, lambda: coord.split([{0, 1}, {2, 3}]))
    sim.run(until=20.0)
    assert coord.dormant == {0, 1, 2, 3}


def test_relative_majority_after_second_split():
    sim, procs, coord = build(n=5)
    sim.scheduler.at(5.0, lambda: coord.split([{0, 1, 2}, {3, 4}]))
    sim.scheduler.at(10.0, lambda: coord.heal())
    sim.run(until=12.0)
    # The previous major {0,1,2} splits; {0,1} holds 2 of its 3 votes.
    # (Re-splitting without healing would need nested partitions; the
    # registry's relative rule is what we exercise here.)
    reg = coord.votes
    labels = reg.classify([{0, 1}, {2}, {3, 4}])
    # After the heal the reference is everyone again: no fragment has an
    # absolute majority, and none has a relative one either.
    assert set(labels.values()) == {"minor"}


def test_partition_then_workload_consistency():
    for seed in range(3):
        sim, procs, coord = build(n=5, seed=seed)
        coord.schedule_split(15.0, [{0, 1, 2}, {3, 4}])
        coord.schedule_heal(35.0)
        run_random_workload(
            sim, procs, duration=50.0, checkpoint_rate=0.04,
            error_rate=0.01, horizon=300.0,
        )
        alive = [p for p in procs.values() if not p.crashed]
        for p in alive:
            assert not p.comm_suspended and not p.send_suspended
        check_recovery_line(alive)
        check_app_states(alive)
