"""Unit tests for CheckpointProcess plumbing: suspension, queueing, app."""

from repro.core import CounterApp
from repro.sim import trace as T
from repro.testing import build_sim


def at(sim, t, fn):
    sim.scheduler.at(t, fn)


def test_birth_checkpoint_and_counter_start_at_one():
    sim, procs = build_sim(n=1)
    p = procs[0]
    assert p.store.oldchkpt.seq == 1
    assert p.ledger.n == 1


def test_message_labels_start_at_one():
    sim, procs = build_sim(n=2)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.run()
    assert procs[0].ledger.sent[0].label == 1


def test_local_step_updates_app():
    sim, procs = build_sim(n=1)
    procs[0].local_step()
    procs[0].local_step()
    assert procs[0].app.steps == 2


def test_app_consumes_delivered_messages():
    sim, procs = build_sim(n=2)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "hello"))
    sim.run()
    assert procs[1].app.consumed == 1
    assert procs[1].app.log == ["hello"]


def test_counter_app_digest_is_order_insensitive():
    a, b = CounterApp(0), CounterApp(0)
    a.handle_message(1, "x")
    a.handle_message(2, "y")
    b.handle_message(2, "y")
    b.handle_message(1, "x")
    assert a.digest == b.digest


def test_counter_app_snapshot_restore_roundtrip():
    app = CounterApp(0)
    app.handle_message(1, "x")
    app.local_step()
    snap = app.snapshot()
    app.handle_message(2, "y")
    app.restore(snap)
    assert app.consumed == 1 and app.steps == 1
    assert app.snapshot() == snap


def test_checkpoint_timer_fires_periodically():
    from repro.core import ProtocolConfig

    sim, procs = build_sim(n=2, config=ProtocolConfig(checkpoint_interval=5.0))
    sim.run(until=22.0)
    starts = [e for e in sim.trace.of_kind(T.K_INSTANCE_START)
              if e.fields["instance"] == "checkpoint"]
    assert len(starts) >= 6  # both processes, ~4 rounds each


def test_send_while_crashed_is_dropped():
    sim, procs = build_sim(n=2)
    sim.crash(0)
    procs[0].send_app_message(1, "ghost")
    sim.run()
    assert procs[1].app.consumed == 0
    assert procs[0].ledger.sent == []


def test_tree_ids_are_unique_and_ordered():
    sim, procs = build_sim(n=1)
    p = procs[0]
    t1, t2 = p._new_tree_id(), p._new_tree_id()
    assert t1 != t2 and t1 < t2
    assert t1.initiator == 0


def test_persisted_commit_set_roundtrip():
    sim, procs = build_sim(n=1)
    p = procs[0]
    from repro.types import TreeId

    p.chkpt_commit_set = {TreeId(0, 5), TreeId(3, 1)}
    p._persist_commit_set()
    assert p._load_commit_set() == {TreeId(0, 5), TreeId(3, 1)}


def test_trace_records_suspend_resume_pairs():
    sim, procs = build_sim(n=2)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    suspends = sim.trace.for_process(1, T.K_SUSPEND_SEND)
    resumes = sim.trace.for_process(1, T.K_RESUME_SEND)
    assert len(suspends) == len(resumes) == 1
    assert suspends[0].time <= resumes[0].time


def test_quiesce_switch_stops_autonomous_initiation():
    # The host-settable quiesce switch: once off, the checkpoint timer
    # keeps re-arming but opens no new trees — this is how a live cluster
    # drains every in-flight 2PC round before cutting a run.  Flipping it
    # back on resumes initiation from the still-armed timer.
    from repro.core import ProtocolConfig

    sim, procs = build_sim(n=2, config=ProtocolConfig(checkpoint_interval=5.0))

    def starts():
        return sum(1 for e in sim.trace.events if e.kind == T.K_INSTANCE_START)

    sim.run(until=12.0)
    before = starts()
    assert before > 0

    for p in procs.values():
        p.engine.autonomous_checkpoints = False
    sim.run(until=40.0)
    assert starts() == before

    for p in procs.values():
        p.engine.autonomous_checkpoints = True
    sim.run(until=60.0)
    assert starts() > before
