"""Scenario tests for the Section 6 failure-resilience rules."""

from repro.analysis import (
    check_app_states,
    check_no_dangling_receives,
    check_recovery_line,
)
from repro.core import CheckpointProcess, ProtocolConfig
from repro.sim import trace as T
from repro.testing import build_sim


def build(n=4, seed=0):
    return build_sim(
        n=n,
        seed=seed,
        config=ProtocolConfig(failure_resilience=True),
        detector_latency=1.0,
        spoolers=True,
    )


def at(sim, t, fn):
    sim.scheduler.at(t, fn)


def quiesced(procs):
    for p in procs.values():
        if p.crashed:
            continue
        assert not p.comm_suspended, f"P{p.node_id} comm stuck"
        assert not p.send_suspended, f"P{p.node_id} send stuck"


def test_rule1_dead_child_aborts_instance_and_rolls_back():
    sim, procs = build()
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 2.0, lambda: sim.crash(0))          # the would-be child dies
    at(sim, 4.0, lambda: procs[1].initiate_checkpoint())
    sim.run(until=60.0)
    # The instance cannot complete without P0; rule 1 aborts it and P1
    # rolls back.
    assert procs[1].store.newchkpt is None
    aborts = sim.trace.for_process(1, T.K_CHKPT_ABORT)
    assert aborts
    rolls = [e for e in sim.trace.of_kind(T.K_INSTANCE_START)
             if e.fields["instance"] == "rollback" and e.pid == 1]
    assert rolls
    quiesced(procs)


def test_rule2_dead_roll_child_excluded():
    sim, procs = build()
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: sim.crash(1))           # receiver dies
    at(sim, 5.0, lambda: procs[0].initiate_rollback())
    sim.run(until=60.0)
    # P0's rollback completes despite P1 being down.
    assert not procs[0].comm_suspended
    assert not procs[0].roll_restart_set


def test_rule3_recovering_process_rolls_back():
    sim, procs = build()
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: sim.crash(1))
    at(sim, 10.0, lambda: sim.recover(1))
    sim.run(until=60.0)
    rolls = [e for e in sim.trace.of_kind(T.K_ROLLBACK) if e.pid == 1]
    assert rolls and rolls[0].time >= 10.0
    quiesced(procs)
    check_recovery_line([p for p in procs.values() if not p.crashed])


def test_rule3_recovering_initiator_aborts_own_tentative():
    sim, procs = build()
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    # P1 initiates; crash it immediately so its instance stays undecided.
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    at(sim, 3.05, lambda: sim.crash(1))
    at(sim, 20.0, lambda: sim.recover(1))
    sim.run(until=80.0)
    assert procs[1].store.newchkpt is None
    quiesced(procs)
    check_recovery_line(procs.values())
    check_no_dangling_receives(procs.values())


def test_rule3_spooled_messages_replayed_after_recovery():
    sim, procs = build()
    at(sim, 2.0, lambda: sim.crash(1))
    at(sim, 5.0, lambda: procs[0].send_app_message(1, "while-down"))
    at(sim, 20.0, lambda: sim.recover(1))
    sim.run(until=80.0)
    # The spooled message was consumed after the recovery rollback.
    assert any(r.src == 0 for r in procs[1].ledger.live_receives())
    check_app_states([p for p in procs.values() if not p.crashed])


def test_voted_child_waits_for_dead_initiator_then_resolves():
    """The initiator dies after our vote: the decision may exist (perhaps
    only in the dead process's stable storage), so the child must WAIT —
    the paper's explicit rule — and resolve once the initiator recovers
    (rule 3 makes a restarting initiator abort its own instance)."""
    sim, procs = build()
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    at(sim, 3.2, lambda: sim.crash(1))   # initiator dies mid-instance
    sim.run(until=30.0)
    # While the initiator is down, P0 holds its tentative and keeps asking.
    assert procs[0].store.newchkpt is not None
    assert sim.trace.of_kind("ctrl_send")  # inquiries in flight
    sim.scheduler.at(31.0, lambda: sim.recover(1))
    sim.run(until=120.0)
    # The recovered initiator aborted its own instance; P0's inquiry found
    # the abort and the tentative is gone.
    assert procs[0].store.newchkpt is None
    quiesced(procs)
    check_recovery_line([p for p in procs.values() if not p.crashed])


def test_unvoted_child_aborts_when_initiator_dies():
    """Rule 4 proper: the initiator dies while we are still collecting our
    own subtree's acks (not yet voted) — it cannot have committed, so the
    instance aborts under the children's control without waiting."""
    sim, procs = build()
    # P2 -> P0 gives P0 a potential child of its own, so P0's vote waits.
    at(sim, 0.5, lambda: procs[2].send_app_message(0, "dep"))
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    # P2 is slow to answer (we crash the initiator before acks complete).
    at(sim, 3.2, lambda: sim.crash(1))
    sim.run(until=120.0)
    assert procs[0].store.newchkpt is None
    quiesced(procs)


def test_rule5_substitute_restarts_subtree_when_roll_initiator_dies():
    sim, procs = build()
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "a"))
    at(sim, 1.5, lambda: procs[1].send_app_message(2, "b"))
    at(sim, 4.0, lambda: procs[0].initiate_rollback())
    at(sim, 4.3, lambda: sim.crash(0))   # initiator dies before restart
    sim.run(until=80.0)
    # P1 and P2 must still resume (substitution, rule 5).
    assert not procs[1].comm_suspended
    assert not procs[2].comm_suspended
    check_no_dangling_receives([p for p in procs.values() if not p.crashed])


def test_rule6_decision_found_by_inquiry():
    """An intermediate parent dies after the commit was decided; the
    orphaned child finds the decision by asking around."""
    sim, procs = build()
    # Chain: P2's instance recruits P1 (via message P1->P2) which recruits
    # P0 (via message P0->P1).
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "a"))
    at(sim, 1.5, lambda: procs[1].send_app_message(2, "b"))
    at(sim, 4.0, lambda: procs[2].initiate_checkpoint())
    # Kill the intermediate parent just after the decision leaves the root.
    at(sim, 6.2, lambda: sim.crash(1) if sim.is_alive(1) else None)
    sim.run(until=120.0)
    # P0 eventually resolves its checkpoint one way or the other.
    assert procs[0].store.newchkpt is None
    quiesced(procs)
    check_recovery_line([p for p in procs.values() if not p.crashed])


def test_decisions_persist_across_crash():
    sim, procs = build()
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    sim.run(until=10.0)
    decided = dict(procs[1].decisions_seen)
    assert decided
    sim.crash(1)
    sim.recover(1)
    sim.run(until=60.0)
    for tree, decision in decided.items():
        assert procs[1].decisions_seen.get(tree) == decision


def test_multiple_failures_system_stays_consistent():
    for seed in range(5):
        sim, procs = build(n=5, seed=seed)
        from repro.testing import run_random_workload
        from repro.failure import FailureInjector

        inj = FailureInjector(sim)
        inj.crash_at(15.0, pid=seed % 5)
        inj.crash_at(18.0, pid=(seed + 2) % 5)
        inj.recover_at(35.0, pid=seed % 5)
        inj.recover_at(40.0, pid=(seed + 2) % 5)
        run_random_workload(
            sim, procs, duration=50.0, checkpoint_rate=0.05,
            error_rate=0.01, horizon=300.0,
        )
        alive = [p for p in procs.values() if not p.crashed]
        quiesced(procs)
        check_recovery_line(alive)
        check_app_states(alive)
