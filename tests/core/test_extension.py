"""Tests for the Section 3.5.3 extension (sending while uncommitted)."""

from repro.analysis import (
    check_app_states,
    check_no_dangling_receives,
    check_recovery_line,
)
from repro.core import ExtendedCheckpointProcess
from repro.core.messages import NormalBody
from repro.sim import trace as T
from repro.testing import build_sim, run_random_workload


def at(sim, t, fn):
    sim.scheduler.at(t, fn)


def build(n=3, seed=0, delay=None):
    return build_sim(n=n, seed=seed, delay=delay, cls=ExtendedCheckpointProcess)


def test_sends_not_suspended_while_uncommitted():
    sim, procs = build(n=3)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    # While P1's instance is pending, P1 can still send.
    at(sim, 3.1, lambda: procs[1].send_app_message(2, "not-blocked"))
    sim.run(until=3.2)
    live = [r for r in procs[1].ledger.sent if r.dst == 2]
    assert live, "extension must transmit immediately while uncommitted"
    assert not procs[1].send_suspended
    sim.run()
    check_recovery_line(procs.values())


def test_uncommitted_sends_carry_markers():
    sim, procs = build(n=3)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    markers = []
    original = procs[2]._before_consume_normal

    def spy(src, body: NormalBody):
        markers.append(body.markers)
        original(src, body)

    procs[2]._before_consume_normal = spy
    at(sim, 3.1, lambda: procs[1].send_app_message(2, "marked"))
    sim.run()
    assert any(m for m in markers), "markers must ride on uncommitted-era sends"


def test_marker_triggers_receiver_checkpoint_before_consume():
    """Chandy-Lamport-style: the receiver checkpoints before consuming a
    marked message, so the message lands after the receiver's checkpoint."""
    sim, procs = build(n=3)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    at(sim, 3.1, lambda: procs[1].send_app_message(2, "marked"))
    sim.run()
    tentative = sim.trace.for_process(2, T.K_CHKPT_TENTATIVE)
    receive = [e for e in sim.trace.for_process(2, T.K_RECEIVE)
               if e.fields["src"] == 1]
    assert tentative and receive
    assert tentative[0].index < receive[0].index
    # The marked message is therefore NOT in the new checkpoint's interval.
    record = procs[2].ledger.received[-1]
    assert record.interval >= tentative[0].seq


def test_multiple_pending_checkpoints_stack():
    sim, procs = build(n=2)
    at(sim, 1.0, lambda: procs[0].initiate_checkpoint())
    # Nothing commits these instantly? A lone initiator commits at once, so
    # force pendings by keeping a dependency open: P1 sends, then P0
    # checkpoints twice before P1's participation resolves... simplest:
    # P0 initiates twice in a row with traffic in between.
    sim.run()
    at(sim, 5.0, lambda: procs[1].send_app_message(0, "a"))
    at(sim, 7.0, lambda: procs[0].initiate_checkpoint())
    at(sim, 7.05, lambda: procs[1].send_app_message(0, "b"))
    sim.run(until=7.4)
    at(sim, 7.5, lambda: procs[0].initiate_checkpoint())
    peak = []
    at(sim, 7.55, lambda: peak.append(len(procs[0].multi_store.pending)))
    sim.run()
    assert peak and peak[0] >= 1
    check_recovery_line(procs.values())
    check_no_dangling_receives(procs.values())


def test_extension_randomized_consistency():
    for seed in range(6):
        sim, procs = build(n=4, seed=seed)
        run_random_workload(
            sim, procs, duration=30.0, checkpoint_rate=0.08, error_rate=0.03
        )
        for p in procs.values():
            assert not p.comm_suspended and not p.roll_restart_set
            assert not p.commit_sets, f"pending instances: {p.commit_sets}"
        check_recovery_line(procs.values())
        check_app_states(procs.values())


def test_extension_blocking_time_is_zero_for_checkpoints():
    """The headline claim: no send-blocking from checkpointing."""
    sim, procs = build(n=4, seed=3)
    run_random_workload(sim, procs, duration=30.0, checkpoint_rate=0.1)
    assert not sim.trace.of_kind(T.K_SUSPEND_SEND)
