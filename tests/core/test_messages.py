"""Unit tests for the control-message vocabulary."""

import dataclasses

import pytest

from repro.core import messages as M
from repro.sim.event import PRIORITY_CHECKPOINT, PRIORITY_NORMAL, PRIORITY_ROLLBACK
from repro.types import TreeId

T1 = TreeId(0, 0)


def test_rollback_messages_have_highest_priority():
    """Paper: roll_initiation/roll_request_propagation have the highest
    priority — their inputs must be processed first at equal instants."""
    for cls in (M.RollReq, M.RollAck, M.RollComplete, M.Restart):
        assert cls.priority == PRIORITY_ROLLBACK
    for cls in (M.ChkptReq, M.ChkptAck, M.ReadyToCommit, M.Commit, M.Abort):
        assert cls.priority == PRIORITY_CHECKPOINT
    assert M.NormalBody.priority == PRIORITY_NORMAL


def test_control_messages_are_frozen():
    req = M.ChkptReq(tree=T1, max_label=3)
    with pytest.raises(dataclasses.FrozenInstanceError):
        req.max_label = 4


def test_every_control_kind_is_unique():
    kinds = [cls.kind for cls in M.CONTROL_KINDS]
    assert len(kinds) == len(set(kinds))


def test_roll_req_carries_discard_range():
    req = M.RollReq(tree=T1, undo_seq=3, undone_upto=7)
    assert (req.undo_seq, req.undone_upto) == (3, 7)


def test_chkpt_ack_piggyback_defaults_to_none():
    ack = M.ChkptAck(tree=T1, positive=False)
    assert ack.undone_notice is None
    loaded = M.ChkptAck(tree=T1, positive=False, undone_notice=(T1, 1, 2))
    assert loaded.undone_notice == (T1, 1, 2)


def test_normal_body_defaults():
    body = M.NormalBody(payload="x")
    assert body.markers == ()
    assert body.incarnation == 0


def test_decision_messages():
    inquiry = M.DecisionInquiry(tree=T1, decision_kind="checkpoint")
    reply = M.DecisionReply(tree=T1, decision_kind="checkpoint", decision="commit")
    assert inquiry.kind == "decision_inquiry"
    assert reply.decision == "commit"


def test_tree_id_ordering_and_repr():
    a, b, c = TreeId(0, 1), TreeId(0, 2), TreeId(1, 0)
    assert a < b < c
    assert str(a) == "T(P0@1)"
