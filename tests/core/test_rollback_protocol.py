"""Scenario tests for the rollback half of the algorithm (b5-b8)."""

from repro.analysis import (
    check_app_states,
    check_no_dangling_receives,
    check_quiescent,
    reconstruct_trees,
)
from repro.net import AdversarialReorderDelay
from repro.sim import trace as T
from repro.testing import build_sim


def at(sim, t, fn):
    sim.scheduler.at(t, fn)


def test_solo_rollback_renumbers_interval():
    sim, procs = build_sim(n=2)
    at(sim, 1.0, lambda: procs[0].initiate_rollback())
    sim.run()
    assert procs[0].ledger.n == 2  # rollback point numbered
    assert not procs[0].comm_suspended
    assert sim.trace.last(T.K_RESTART, pid=0).new_interval == 2


def test_receiver_of_undone_message_rolls_back():
    sim, procs = build_sim(n=2)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[0].initiate_rollback())
    sim.run()
    assert procs[1].app.consumed == 0  # receive undone
    rolls = sim.trace.of_kind(T.K_ROLLBACK)
    assert {e.pid for e in rolls} == {0, 1}
    check_no_dangling_receives(procs.values())
    check_app_states(procs.values())


def test_rollback_cascades_transitively():
    sim, procs = build_sim(n=3)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "a"))
    at(sim, 2.0, lambda: procs[1].send_app_message(2, "b"))
    at(sim, 4.0, lambda: procs[0].initiate_rollback())
    sim.run()
    rolls = sim.trace.of_kind(T.K_ROLLBACK)
    assert {e.pid for e in rolls} == {0, 1, 2}
    trees = reconstruct_trees(sim.trace)
    tree = next(t for t in trees.values() if t.kind == "rollback")
    assert tree.edges == [(0, 1), (1, 2)]
    check_no_dangling_receives(procs.values())


def test_uninvolved_process_not_rolled():
    sim, procs = build_sim(n=3)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "a"))
    at(sim, 1.0, lambda: procs[2].send_app_message(1, "c"))
    at(sim, 4.0, lambda: procs[0].initiate_rollback())
    sim.run()
    rolls = sim.trace.of_kind(T.K_ROLLBACK)
    assert 2 not in {e.pid for e in rolls}
    # P1 rolled back, undoing BOTH receives (it restored an older state);
    # but P2's send survives, so the system stays consistent: P2's message
    # was undone at P1 as collateral, which C2 permits (no dangling receive).
    check_no_dangling_receives(procs.values())


def test_rollback_to_newchkpt_preserves_instance():
    """b6 branch 1: all doomed receives postdate newchkpt -> instance lives."""
    sim, procs = build_sim(n=4)
    # A chain P3 -> P0 -> P1 makes P1's instance deep (slow to decide).
    at(sim, 0.5, lambda: procs[3].send_app_message(0, "x"))
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())
    # After P1's tentative exists (t=3.0) but before the deep instance
    # decides (~t=5), P1 receives a message that its sender then undoes.
    at(sim, 3.2, lambda: procs[2].send_app_message(1, "late"))
    at(sim, 3.8, lambda: procs[2].initiate_rollback())
    sim.run()
    # P1's checkpoint instance still committed (rolled to newchkpt).
    assert procs[1].store.oldchkpt.seq == 2
    roll = [e for e in sim.trace.of_kind(T.K_ROLLBACK) if e.pid == 1]
    assert roll and roll[0].fields["target"] == "newchkpt"
    check_no_dangling_receives(procs.values())
    check_quiescent(procs.values())


def test_rollback_to_oldchkpt_aborts_instance():
    """b6 branch 2: a doomed receive predates newchkpt -> abort the shared
    tentative and fall back to oldchkpt."""
    sim, procs = build_sim(n=3)
    at(sim, 1.0, lambda: procs[2].send_app_message(1, "early"))
    # P1 checkpoints, covering the receive; P2 is recruited but its tentative
    # is still pending when P2 detects an error and rolls back to... we
    # instead roll back the *other* sender P2 before the instance completes.
    at(sim, 2.0, lambda: procs[1].initiate_checkpoint())
    at(sim, 2.2, lambda: procs[2].initiate_rollback())
    sim.run()
    check_no_dangling_receives(procs.values())
    check_app_states(procs.values())
    check_quiescent(procs.values())


class ScriptedDelay:
    """Per-channel queue of predetermined delays (then a 0.2 default)."""

    def __init__(self, delays):
        self.delays = {k: list(v) for k, v in delays.items()}

    def sample(self, rng, src, dst):
        queue = self.delays.get((src, dst))
        return queue.pop(0) if queue else 0.2


def test_in_transit_undone_message_discarded():
    """The discard filter drops a message whose send was undone while it
    was still in flight: the roll_req (and even the whole rollback 2PC)
    completes before the slow normal message finally lands."""
    # Channel 0->1 delivery order: fast normal, SLOW normal, roll_req,
    # restart; everything else takes the 0.2 default.
    sim, procs = build_sim(
        n=2, delay=ScriptedDelay({(0, 1): [0.2, 9.0, 0.2, 0.2]})
    )
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "fast"))
    at(sim, 1.5, lambda: procs[0].send_app_message(1, "slow"))
    at(sim, 2.0, lambda: procs[0].initiate_rollback())
    sim.run()
    discards = [
        e for e in sim.trace.of_kind(T.K_DISCARD)
        if e.fields.get("reason") == "undone_in_transit"
    ]
    assert discards, "the in-transit undone message must be discarded"
    check_no_dangling_receives(procs.values())
    check_app_states(procs.values())


def test_concurrent_rollbacks_both_terminate():
    sim, procs = build_sim(n=4)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "a"))
    at(sim, 1.0, lambda: procs[3].send_app_message(2, "b"))
    at(sim, 3.0, lambda: procs[0].initiate_rollback())
    at(sim, 3.0, lambda: procs[3].initiate_rollback())
    sim.run()
    check_quiescent(procs.values())
    check_no_dangling_receives(procs.values())
    assert all(not p.roll_restart_set for p in procs.values())


def test_comm_suspension_discards_incoming():
    """While awaiting restart, incoming normal messages are discarded."""
    sim, procs = build_sim(n=3)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "a"))
    at(sim, 3.0, lambda: procs[0].initiate_rollback())
    # P2 fires a message timed to land while P1 is roll-suspended.
    at(sim, 3.4, lambda: procs[2].send_app_message(1, "during"))
    sim.run()
    discards = [
        e for e in sim.trace.of_kind(T.K_DISCARD)
        if e.fields.get("reason") == "roll_suspended" and e.pid == 1
    ]
    assert discards
    check_app_states(procs.values())


def test_output_queue_cleared_by_rollback():
    sim, procs = build_sim(n=2)
    at(sim, 1.0, lambda: procs[0].send_app_message(1, "m"))
    at(sim, 3.0, lambda: procs[1].initiate_checkpoint())      # suspends P1 sends
    at(sim, 3.1, lambda: procs[1].send_app_message(0, "q"))    # queued
    at(sim, 3.2, lambda: procs[1].initiate_rollback())         # clears queue
    sim.run()
    # The queued message must never have been transmitted.
    assert all(r.dst != 0 or r.undone for r in procs[1].ledger.sent)
    check_no_dangling_receives(procs.values())


def test_restart_advances_exactly_once_for_multiple_instances():
    sim, procs = build_sim(n=3)
    at(sim, 1.0, lambda: procs[0].send_app_message(2, "a"))
    at(sim, 1.0, lambda: procs[1].send_app_message(2, "b"))
    at(sim, 3.0, lambda: procs[0].initiate_rollback())
    at(sim, 3.0, lambda: procs[1].initiate_rollback())
    sim.run()
    restarts = sim.trace.for_process(2, T.K_RESTART)
    assert len(restarts) == 1  # one rollback point despite two instances
    check_quiescent(procs.values())
