"""ProtocolConfig is frozen and rejects nonsense at construction."""

import dataclasses

import pytest

from repro.core import ProtocolConfig


def test_defaults_are_valid():
    config = ProtocolConfig()
    assert config.checkpoint_interval is None
    assert config.failure_resilience is False


def test_none_interval_disables_timer_and_zero_is_legal():
    assert ProtocolConfig(checkpoint_interval=None).checkpoint_interval is None
    assert ProtocolConfig(checkpoint_interval=0.0).checkpoint_interval == 0.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"checkpoint_interval": -1.0},
        {"ack_timeout": -0.5},
        {"decision_timeout": -30.0},
        {"inquiry_retry_interval": -1e-9},
    ],
    ids=lambda kw: next(iter(kw)),
)
def test_negative_timeouts_rejected(kwargs):
    with pytest.raises(ValueError, match="must be >= 0"):
        ProtocolConfig(**kwargs)


def test_config_is_frozen():
    config = ProtocolConfig(checkpoint_interval=10.0)
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.checkpoint_interval = 5.0
