"""Lint: the sans-IO engine must not import the kernel or the live runtime.

The whole point of the engine/adapter split is that ``repro.core.engine``
(and the protocol modules it composes) can be driven by *any* host — the
discrete-event simulator, the asyncio runtime, or the model-checking
harness — so importing it must not drag in ``repro.sim`` or
``repro.runtime``.  The check runs in a fresh interpreter because this
test process has long since imported everything.
"""

import os
import subprocess
import sys

PURE_MODULES = (
    "repro.core.engine",
    "repro.core.checkpoint_protocol",
    "repro.core.rollback_protocol",
    "repro.core.recovery",
    "repro.core.events",
    "repro.core.effects",
    "repro.core.messages",
)

FORBIDDEN_PREFIXES = ("repro.sim", "repro.runtime")

PROBE = """
import sys
for name in {modules!r}:
    __import__(name)
bad = sorted(
    m for m in sys.modules
    if m.startswith({forbidden!r})
)
if bad:
    raise SystemExit("sans-IO purity violated; kernel modules imported: %s" % bad)
print("pure")
"""


def test_engine_modules_import_no_kernel_or_runtime():
    code = PROBE.format(modules=PURE_MODULES, forbidden=FORBIDDEN_PREFIXES)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, env=env
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "pure"


def test_mc_package_imports_no_runtime():
    # The model checker needs repro.sim only for the Trace container; it
    # must never touch the asyncio runtime.
    code = PROBE.format(modules=("repro.mc",), forbidden=("repro.runtime",))
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, env=env
    )
    assert proc.returncode == 0, proc.stderr
