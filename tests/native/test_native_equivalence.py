"""The native build's contract: same bytes, same traces, honest fallback.

Three layers:

* loader/build units — always run, toolchain or not;
* native-vs-interpreted equality — byte-identical frames, equal snapshot
  values — skipped with a reason when the extensions are not built;
* whole-run equivalence — the golden figure 2/3/4 workloads produce
  JSON-identical summaries under ``REPRO_NATIVE=0`` and the native build,
  exercised through subprocesses because the backend is import-time.
"""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import _native
from repro._native import build as B
from repro.core import messages as M
from repro.net.message import normal
from repro.runtime import wire
from repro.stable import snapshot as snap
from repro.types import MessageId

needs_native = pytest.mark.skipif(
    not (wire.native_active() and snap.native_active()),
    reason="native extensions not built (no C toolchain); interpreted fallback in use",
)

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _child_env(native: bool) -> dict:
    env = dict(os.environ)
    env["REPRO_NATIVE"] = "auto" if native else "0"
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_child(code: str, native: bool) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env=_child_env(native), capture_output=True, text=True, check=True,
    )
    return proc.stdout


# ----------------------------------------------------------------------
# Loader / build units (toolchain-independent)
# ----------------------------------------------------------------------
def test_status_reports_every_hot_path_and_engine_is_honest():
    report = _native.status()
    assert set(report) == {"engine", "wirecodec", "snapshot"}
    # The engine is never compiled in this environment; the loader must say
    # so rather than pretend.
    assert report["engine"]["backend"] == "interpreted"
    assert "mypyc" in report["engine"]["reason"]
    for name in ("wirecodec", "snapshot"):
        assert report[name]["backend"] in ("cext", "interpreted")
        if report[name]["backend"] == "cext":
            assert report[name]["abi"] == _native.NATIVE_ABI
        else:
            assert report[name]["reason"]


def test_build_paths_and_command_shape():
    path = B.artifact_path("wirecodec")
    assert path.endswith(B.ext_suffix())
    assert os.path.dirname(path) == os.path.dirname(os.path.abspath(B.__file__))
    assert B.source_path("wirecodec").endswith("_wirecodec.c")
    compiler = B.find_compiler()
    if compiler is not None:
        cmd = B.compile_command(
            compiler, B.source_path("snapshot"), B.artifact_path("snapshot")
        )
        assert "-O2" in cmd and "-shared" in cmd and "-fPIC" in cmd
        assert cmd[-1] == B.artifact_path("snapshot")


def test_env_knob_forces_interpreted_mode_in_subprocess():
    out = _run_child(
        "from repro.runtime import wire\n"
        "from repro.stable import snapshot\n"
        "print(wire.native_active(), snapshot.native_active())",
        native=False,
    )
    assert out.split() == ["False", "False"]


@needs_native
def test_require_mode_activates_native_in_subprocess():
    env = _child_env(native=True)
    env["REPRO_NATIVE"] = "require"
    proc = subprocess.run(
        [sys.executable, "-m", "repro._native", "status", "--require", "--json"],
        env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout)
    assert report["wirecodec"]["backend"] == "cext"
    assert report["snapshot"]["backend"] == "cext"


# ----------------------------------------------------------------------
# Byte-for-byte codec equality
# ----------------------------------------------------------------------
@needs_native
def test_probe_corpus_frames_are_byte_identical():
    # The import-time self-check corpus, re-asserted explicitly: native and
    # interpreted encoders produce the same bytes, and cross-decoding agrees.
    for env in wire._probe_corpus():
        py_frame = wire._py_dumps_frame(env, version=wire.WIRE_V2)
        nat_frame = wire.dumps_frame(env, version=wire.WIRE_V2)
        assert nat_frame == py_frame
        blob = py_frame[wire.HEADER_SIZE:]
        nat = wire.loads_frame(blob)
        py = wire._py_loads_frame(blob)
        for attr in ("src", "dst", "category", "msg_id", "label", "send_time", "body"):
            assert getattr(nat, attr) == getattr(py, attr)
        assert type(nat.body) is type(py.body)


_payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**70), max_value=2**70),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=16),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
        st.sets(st.one_of(st.integers(-100, 100), st.text(max_size=6)), max_size=4),
    ),
    max_leaves=8,
)


@needs_native
@settings(max_examples=100, deadline=None)
@given(payload=_payloads, label=st.integers(0, 2**40), send_time=st.floats(0, 1e6))
def test_native_and_python_encoders_agree_on_arbitrary_payloads(
    payload, label, send_time
):
    env = normal(1, 2, MessageId(1, 7), label=label, body=M.NormalBody(payload=payload))
    env.send_time = send_time
    assert wire.dumps_frame(env, version=wire.WIRE_V2) == wire._py_dumps_frame(
        env, version=wire.WIRE_V2
    )
    blob = wire.dumps_frame(env, version=wire.WIRE_V2)[wire.HEADER_SIZE:]
    assert wire.loads_frame(blob).body == wire._py_loads_frame(blob).body


# ----------------------------------------------------------------------
# Snapshot value equality + hash interop
# ----------------------------------------------------------------------
@needs_native
def test_native_snapshot_values_equal_interpreted_ones():
    state = {
        "a": [1, 2, {"x": (True, None)}],
        "b": {"nested": {"deep": [3.5, "s"]}},
        "c": "plain",
    }
    nat, py = snap.freeze(state), snap._py_freeze(state)
    assert nat == py
    assert type(nat) is type(py) is snap.FrozenDict
    assert snap.content_hash(nat) == snap._py_content_hash(py)
    # The cached hash lives in the same slot either way, so native-frozen and
    # python-frozen values interoperate as dict keys / set members.
    assert hash(nat) == hash(py)
    assert {nat: 1}[py] == 1

    changed = {"a": [1, 2, {"x": (True, None)}], "b": {"nested": {}}, "c": "plain"}
    target = snap._py_freeze(changed)
    assert snap.diff(nat, target) == snap._py_diff(py, target)
    assert snap.thaw(nat) == snap._py_thaw(py) == state


# ----------------------------------------------------------------------
# Whole-run equivalence: golden figure workloads, subprocess A/B
# ----------------------------------------------------------------------
_GOLDEN_CHILD = r"""
import json
from repro.core import CheckpointProcess
from repro.net import FixedDelay
from repro.sim import Simulation
from repro.workloads import (
    ScriptedWorkload, figure2_steps, figure3_steps, figure4_steps,
)

out = {}
for name, (steps, pids) in {
    "figure2": (figure2_steps, (0, 1)),
    "figure3": (figure3_steps, (1, 4)),
    "figure4": (figure4_steps, (1, 4)),
}.items():
    sim = Simulation(seed=1, delay_model=FixedDelay(0.5))
    procs = {i: sim.add_node(CheckpointProcess(i)) for i in range(pids[0], pids[1] + 1)}
    ScriptedWorkload(steps()).install(sim, procs)
    sim.run(until=40.0)
    out[name] = {
        "events": [
            [e.time, e.kind, e.pid, sorted(e.fields.items(), key=repr)]
            for e in sim.trace
        ],
        "final_seq": {pid: proc.store.oldchkpt.seq for pid, proc in procs.items()},
        "normal_sent": sim.network.normal_sent,
        "control_sent": sim.network.control_sent,
        "delivered": sim.network.delivered,
    }
print(json.dumps(out, sort_keys=True, default=repr))
"""


@needs_native
def test_golden_figures_are_bit_identical_across_backends():
    interpreted = _run_child(_GOLDEN_CHILD, native=False)
    native = _run_child(_GOLDEN_CHILD, native=True)
    assert json.loads(native) == json.loads(interpreted)
    # Byte-level too: same serialization of the same trace, no float drift.
    assert native == interpreted
