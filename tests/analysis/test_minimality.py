"""Unit tests for the Theorem 3/4 minimality checkers."""

import pytest

from repro.analysis import (
    check_checkpoint_minimality,
    check_rollback_minimality,
    reconstruct_trees,
)
from repro.errors import ConsistencyViolation
from repro.testing import build_sim


def committed_instance():
    sim, procs = build_sim(n=3, seed=1)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "a"))
    sim.scheduler.at(2.0, lambda: procs[1].send_app_message(2, "b"))
    sim.scheduler.at(4.0, lambda: procs[2].initiate_checkpoint())
    sim.run()
    trees = reconstruct_trees(sim.trace)
    tree_id = next(iter(trees))
    return sim, procs, tree_id


def test_checkpoint_minimality_holds_for_chain():
    sim, procs, tree_id = committed_instance()
    check_checkpoint_minimality(sim.trace, procs.values(), tree_id)


def test_checkpoint_minimality_rejects_padded_instance():
    """Fabricate an unnecessary participant: the checker must flag it."""
    sim, procs, tree_id = committed_instance()
    # Give P0 a fake extra committed checkpoint that nothing depends on.
    extra = procs[0].committed_history[-1].copy()
    extra.seq += 1
    extra.meta = {"recv": [], "sent": []}
    procs[0].committed_history.append(extra)
    with pytest.raises(ConsistencyViolation, match="T3"):
        check_checkpoint_minimality(sim.trace, procs.values(), tree_id)


def test_checkpoint_minimality_requires_commit():
    sim, procs, tree_id = committed_instance()
    from repro.types import TreeId

    with pytest.raises(ConsistencyViolation, match="T3"):
        check_checkpoint_minimality(sim.trace, procs.values(), TreeId(9, 9))


def completed_rollback():
    sim, procs = build_sim(n=3, seed=1)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "a"))
    sim.scheduler.at(2.0, lambda: procs[1].send_app_message(2, "b"))
    sim.scheduler.at(4.0, lambda: procs[0].initiate_rollback())
    sim.run()
    trees = reconstruct_trees(sim.trace)
    tree_id = next(t for t, v in trees.items() if v.kind == "rollback")
    return sim, procs, tree_id


def test_rollback_minimality_holds_for_cascade():
    sim, procs, tree_id = completed_rollback()
    check_rollback_minimality(sim.trace, tree_id)


def test_rollback_minimality_rejects_unjustified_member():
    """Append a fabricated positive ack from an uninvolved process."""
    sim, procs, tree_id = completed_rollback()
    # Nothing P9... use a process with no undone receives: forge an edge by
    # recording a fake positive roll ack in the trace.
    sim.trace.record(
        99.0, "ctrl_send", pid=2, dst=0, msg_type="roll_ack",
        tree=tree_id, positive=True,
    )
    # P2 genuinely rolled back (cascade), so instead forge a new process id.
    sim.trace.record(
        99.0, "ctrl_send", pid=7, dst=0, msg_type="roll_ack",
        tree=tree_id, positive=True,
    )
    with pytest.raises(ConsistencyViolation, match="T4"):
        check_rollback_minimality(sim.trace, tree_id)
