"""Unit tests for the run-statistics collector."""

from repro.analysis import collect
from repro.testing import build_sim, run_random_workload


def test_counts_match_network_counters():
    sim, procs = build_sim(n=4, seed=5)
    run_random_workload(sim, procs, duration=30.0, checkpoint_rate=0.05)
    stats = collect(sim)
    assert stats.normal_messages == sim.network.normal_sent
    assert stats.control_messages == sim.network.control_sent
    assert stats.processes == 4


def test_instance_accounting_consistent():
    sim, procs = build_sim(n=4, seed=5)
    run_random_workload(sim, procs, duration=30.0, checkpoint_rate=0.05)
    stats = collect(sim)
    assert stats.instances_started >= 1
    assert stats.instances_committed <= stats.instances_started
    assert stats.checkpoints_committed >= stats.instances_committed > 0


def test_blocking_time_positive_when_suspended():
    sim, procs = build_sim(n=2, seed=1)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    stats = collect(sim)
    assert stats.send_blocked_time > 0


def test_forced_counts_per_instance():
    sim, procs = build_sim(n=3, seed=1)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "a"))
    sim.scheduler.at(2.0, lambda: procs[1].send_app_message(2, "b"))
    sim.scheduler.at(4.0, lambda: procs[2].initiate_checkpoint())
    sim.run()
    stats = collect(sim)
    assert stats.forced_per_instance == [2]
    assert stats.mean_forced == 2.0
    assert stats.max_forced == 2
    assert stats.tree_depths == [2]


def test_latency_measured():
    sim, procs = build_sim(n=2, seed=1)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    stats = collect(sim)
    assert len(stats.instance_latencies) == 1
    assert stats.mean_latency > 0


def test_open_suspension_charged_to_end():
    sim, procs = build_sim(n=2, seed=1)
    procs[0]._suspend_send()
    sim.scheduler.at(10.0, lambda: None)
    sim.run()
    stats = collect(sim)
    assert stats.send_blocked_time == 10.0


def test_as_row_is_flat_and_rounded():
    sim, procs = build_sim(n=2, seed=1)
    sim.run()
    row = collect(sim).as_row()
    assert set(row) >= {"processes", "normal_msgs", "control_msgs",
                        "committed", "mean_forced", "send_blocked"}
