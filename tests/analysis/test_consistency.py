"""Unit tests for the consistency oracles (C1, C2, quiescence, app state)."""

import pytest

from repro.analysis import (
    check_app_states,
    check_c1,
    check_no_dangling_receives,
    check_quiescent,
)
from repro.errors import ConsistencyViolation
from repro.stable import thaw
from repro.testing import build_sim


def run_consistent_pair():
    sim, procs = build_sim(n=2, seed=3)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    return sim, procs


def test_checkers_pass_on_consistent_run():
    sim, procs = run_consistent_pair()
    check_c1(procs.values())
    check_no_dangling_receives(procs.values())
    check_quiescent(procs.values())
    check_app_states(procs.values())


def test_c1_detects_orphan_receive():
    """Tamper with the sender's manifest: the checker must flag it."""
    sim, procs = run_consistent_pair()
    record = procs[0].store.oldchkpt
    meta = thaw(record.meta)  # stored records are frozen snapshots
    meta["sent"] = []
    # Write the tampered record back through the store's own storage.
    procs[0].storage.put("ckpt.old", {
        "seq": record.seq, "state": record.state, "committed": True,
        "made_at": record.made_at, "meta": meta,
    })
    with pytest.raises(ConsistencyViolation, match="C1"):
        check_c1(procs.values())


def test_c2_detects_dangling_receive():
    sim, procs = run_consistent_pair()
    # Forcibly undo the send while keeping the receive: dangling.
    procs[0].ledger.sent[0].undone = True
    with pytest.raises(ConsistencyViolation, match="C2"):
        check_no_dangling_receives(procs.values())


def test_quiescence_detects_suspension():
    sim, procs = run_consistent_pair()
    procs[0].send_suspended = True
    with pytest.raises(ConsistencyViolation, match="termination"):
        check_quiescent(procs.values())


def test_quiescence_detects_open_instance():
    sim, procs = run_consistent_pair()
    from repro.types import TreeId

    procs[0].chkpt_commit_set = {TreeId(0, 9)}
    with pytest.raises(ConsistencyViolation, match="termination"):
        check_quiescent(procs.values())


def test_quiescence_skips_crashed():
    sim, procs = run_consistent_pair()
    procs[0].send_suspended = True
    procs[0].crashed = True
    check_quiescent(procs.values())  # crashed processes exempt


def test_app_state_detects_drift():
    sim, procs = run_consistent_pair()
    procs[1].app.consumed += 1
    with pytest.raises(ConsistencyViolation, match="state"):
        check_app_states(procs.values())


def test_self_messages_ignored_by_c1():
    sim, procs = build_sim(n=1, seed=0)
    procs[0].send_app_message(0, "self")
    sim.run()
    procs[0].initiate_checkpoint()
    sim.run()
    check_c1(procs.values())
