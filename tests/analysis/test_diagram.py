"""Tests for the ASCII space-time diagram renderer."""

from repro.analysis.diagram import space_time
from repro.testing import build_sim


def run_checkpoint_scenario():
    sim, procs = build_sim(n=3, seed=1)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "a"))
    sim.scheduler.at(3.0, lambda: procs[1].initiate_checkpoint())
    sim.run()
    return sim, procs


def test_diagram_has_one_lane_per_traced_process():
    sim, _ = run_checkpoint_scenario()
    text = space_time(sim.trace, width=40)
    lines = text.splitlines()
    # P2 never acted, so it has no lane by default; pass pids to force one.
    assert lines[0].startswith("P0 |")
    assert lines[1].startswith("P1 |")
    assert not lines[2].startswith("P2")
    assert len(lines[0]) == len(lines[1])
    forced = space_time(sim.trace, pids=[0, 1, 2], width=40)
    assert forced.splitlines()[2].startswith("P2 |")


def test_diagram_symbols_present():
    sim, _ = run_checkpoint_scenario()
    text = space_time(sim.trace, width=60, legend=False)
    p0, p1 = text.splitlines()[0], text.splitlines()[1]
    assert "s" in p0 and "@" in p0          # sender forced and committed
    assert "r" in p1 and "@" in p1          # receiver committed
    assert "=" in p1                        # send-suspension span visible


def test_rollback_symbols():
    sim, procs = build_sim(n=2, seed=1)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "a"))
    sim.scheduler.at(3.0, lambda: procs[0].initiate_rollback())
    sim.run()
    text = space_time(sim.trace, width=60, legend=False)
    p1 = text.splitlines()[1]
    assert "x" in p1 and ">" in p1 and "~" in p1


def test_pid_selection_and_window():
    sim, _ = run_checkpoint_scenario()
    text = space_time(sim.trace, pids=[1], width=30, start=2.0, end=5.0)
    lanes = [l for l in text.splitlines() if l.startswith("P")]
    assert len(lanes) == 1
    assert "t=2.0" in text and "t=5.0" in text


def test_legend_toggle():
    sim, _ = run_checkpoint_scenario()
    assert "legend:" in space_time(sim.trace)
    assert "legend:" not in space_time(sim.trace, legend=False)


def test_empty_trace():
    from repro.sim.trace import Trace

    assert space_time(Trace()) == "(empty trace)"


def test_unresumed_suspension_extends_to_edge():
    sim, procs = build_sim(n=2, seed=1)
    procs[0]._suspend_send()
    sim.scheduler.at(5.0, lambda: procs[0].local_step())
    sim.scheduler.at(6.0, lambda: procs[1].send_app_message(0, "m"))
    sim.run()
    text = space_time(sim.trace, width=30, legend=False)
    p0 = text.splitlines()[0]
    assert p0.rstrip("|").endswith("=") or "=" in p0[-6:]
