"""Analysis battery over traces whose membership changes mid-stream.

The observability stack assumed a frozen pid set only implicitly (every
pid present from event 0); with the membership plane a pid can first
appear mid-trace (a join) or stop appearing (a leave, with a handoff to a
successor).  These tests pin that :class:`TraceIndex`, the consistency
checkers and :func:`audit_jobs` treat such traces as first-class — no
KeyError on late pids, no phantom violations from departed ones.
"""

from repro.analysis import audit_jobs, check_c1, check_c1_from_trace
from repro.analysis.consistency import check_recovery_line_from_trace
from repro.analysis.index import TraceIndex
from repro.core.process import CheckpointProcess
from repro.sim import trace as T
from repro.sim.trace import JsonlStreamSink, TraceEvent
from repro.testing import build_sim


def test_merged_join_leave_trace_supports_the_full_battery():
    sim, procs = build_sim(n=3, seed=1, fifo=True)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "a"))
    sim.scheduler.at(2.0, lambda: sim.join(CheckpointProcess(3, None)))
    sim.scheduler.at(3.0, lambda: procs[1].send_app_message(3, "b"))
    sim.scheduler.at(4.0, lambda: sim.nodes[3].send_app_message(0, "c"))
    sim.scheduler.at(6.0, lambda: procs[0].initiate_checkpoint())
    sim.scheduler.at(12.0, lambda: sim.leave(1, successor=0))
    sim.scheduler.at(14.0, lambda: sim.nodes[3].send_app_message(0, "d"))
    sim.scheduler.at(16.0, lambda: procs[0].initiate_checkpoint())
    sim.run(until=60.0)

    index = sim.trace.index
    # P3 first appears mid-trace; P1 stops appearing after its leave.
    assert 3 in index.pids()
    assert index.count(T.K_JOIN) == 1
    assert index.count(T.K_LEAVE) == 1
    assert index.count(T.K_HANDOFF) == 1
    assert index.count(T.K_CHKPT_COMMIT) > 0
    # The consistency battery holds over the merged churn trace: the
    # joiner's manifests reconstruct from its first event, the departed
    # pid's from its last committed checkpoint before leaving.
    check_c1_from_trace(sim.trace)
    check_recovery_line_from_trace(sim.trace)
    # And over the live membership (joiner in, departed pid out).
    check_c1(sim.nodes.values())


def _ev(index, time, kind, pid, **fields):
    return TraceEvent(index=index, time=time, kind=kind, pid=pid, fields=fields)


def _write_shard(path, events):
    sink = JsonlStreamSink(str(path))
    for event in events:
        sink.emit(event)
    sink.close()
    return str(path)


def test_shard_merge_tolerates_pids_first_appearing_mid_trace(tmp_path):
    # Node 2's shard begins at t=10 — it joined long after 0 started.
    shard_a = _write_shard(
        tmp_path / "node-0.jsonl",
        [
            _ev(0, 1.0, "compute", 0, note="a0"),
            _ev(1, 12.0, "compute", 0, note="a1"),
        ],
    )
    shard_b = _write_shard(
        tmp_path / "node-2.jsonl",
        [
            _ev(0, 10.0, "join", 2, epoch=2),
            _ev(1, 11.0, "compute", 2, note="b0"),
        ],
    )
    index = TraceIndex.from_jsonl_files([shard_a, shard_b])
    assert index.pids() == [0, 2]
    merged = index.by_kind("compute")
    assert [e.fields["note"] for e in merged] == ["a0", "b0", "a1"]
    # Manifest queries about the late pid answer (empty birth manifest)
    # rather than raising.
    assert index.last_committed_manifest(2).recv == frozenset()


def test_audit_jobs_handles_a_host_that_joined_mid_trace(tmp_path):
    # A job hosted on a pid whose first trace event is far from index 0.
    shard = _write_shard(
        tmp_path / "node-5.jsonl",
        [
            _ev(0, 20.0, "join", 5, epoch=3),
            _ev(1, 21.0, "job_submit", 5, job="jX"),
            _ev(2, 22.0, "job_unit", 5, job="jX", stage=0),
            _ev(3, 23.0, "job_stage", 5, job="jX", stage=0),
            _ev(4, 24.0, "job_done", 5, job="jX"),
        ],
    )
    index = TraceIndex.from_jsonl_files([shard])
    audit = audit_jobs(index)
    assert audit["hosts"] == 1
    assert audit["jobs_submitted"] == 1
    assert audit["jobs_done"] == 1
    assert audit["committed_stage_reexecutions"] == 0
