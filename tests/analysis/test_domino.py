"""Unit tests for recovery-line computation and domino metrics."""

from repro.analysis.domino import (
    CheckpointView,
    domino_metrics,
    recovery_line,
    rollback_distance,
    views_from_history,
)
from repro.baselines import UncoordinatedProcess
from repro.testing import build_sim, run_random_workload


def test_consistent_start_is_fixpoint():
    histories = {
        0: [CheckpointView(1, set(), set()), CheckpointView(2, set(), {(0, 0)})],
        1: [CheckpointView(1, set(), set()), CheckpointView(2, {(0, 0)}, set())],
    }
    start = {0: 1, 1: 1}
    assert recovery_line(histories, start) == start


def test_orphan_demotes_receiver():
    histories = {
        0: [CheckpointView(1, set(), set())],                     # send not recorded
        1: [CheckpointView(1, set(), set()), CheckpointView(2, {(0, 0)}, set())],
    }
    line = recovery_line(histories, {0: 0, 1: 1})
    assert line == {0: 0, 1: 0}  # receiver dragged back


def test_cascade_demotion():
    """0's rollback orphans 1, whose demotion orphans 2 — the domino."""
    histories = {
        0: [CheckpointView(1, set(), set()), CheckpointView(2, set(), {(0, 0)})],
        1: [CheckpointView(1, set(), set()),
            CheckpointView(2, {(0, 0)}, set()),
            CheckpointView(3, {(0, 0)}, {(1, 0)})],
        2: [CheckpointView(1, set(), set()), CheckpointView(2, {(1, 0)}, set())],
    }
    # 0 restarts from its birth checkpoint (index 0): its send is undone.
    line = recovery_line(histories, {0: 0, 1: 2, 2: 1})
    assert line == {0: 0, 1: 0, 2: 0}
    distances = rollback_distance(histories, {0: 0, 1: 2, 2: 1}, line)
    assert distances == {0: 0, 1: 2, 2: 1}


def test_domino_metrics_on_uncoordinated_run():
    sim, procs = build_sim(n=4, seed=7, cls=UncoordinatedProcess)
    run_random_workload(sim, procs, duration=40.0, checkpoint_rate=0.1)
    metrics = domino_metrics(procs.values(), initiator=0)
    assert metrics["max_distance"] >= 0
    assert set(metrics["line"]) == {0, 1, 2, 3}


def test_views_from_history():
    sim, procs = build_sim(n=2, seed=7, cls=UncoordinatedProcess)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "m"))
    sim.scheduler.at(3.0, lambda: procs[0].initiate_checkpoint())
    sim.run()
    views = views_from_history(procs[0])
    assert len(views) == 2  # birth + taken
    assert (0, 0) in views[1].sent
