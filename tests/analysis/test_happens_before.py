"""Unit tests for vector-clock happens-before analysis."""

from repro.analysis import HappensBefore
from repro.sim import trace as T
from repro.sim.trace import Trace
from repro.types import MessageId


def build_trace():
    """P0 sends m to P1; P1 then sends m2 to P2; P2 acts independently first."""
    tr = Trace()
    m1, m2 = MessageId(0, 0), MessageId(1, 0)
    e_local = tr.record(0.5, T.K_CHKPT_TENTATIVE, pid=2, seq=2, tree=None)
    e_send1 = tr.record(1.0, T.K_SEND, pid=0, msg_id=m1, dst=1, label=1)
    e_recv1 = tr.record(2.0, T.K_RECEIVE, pid=1, msg_id=m1, src=0, label=1)
    e_send2 = tr.record(3.0, T.K_SEND, pid=1, msg_id=m2, dst=2, label=1)
    e_recv2 = tr.record(4.0, T.K_RECEIVE, pid=2, msg_id=m2, src=1, label=1)
    return tr, (e_local, e_send1, e_recv1, e_send2, e_recv2)


def test_local_order():
    tr, (e_local, _, _, _, e_recv2) = build_trace()
    hb = HappensBefore(tr)
    assert hb.happens_before(e_local, e_recv2)
    assert not hb.happens_before(e_recv2, e_local)


def test_send_receive_edge():
    tr, (_, e_send1, e_recv1, _, _) = build_trace()
    hb = HappensBefore(tr)
    assert hb.happens_before(e_send1, e_recv1)
    assert not hb.happens_before(e_recv1, e_send1)


def test_transitivity_across_processes():
    tr, (_, e_send1, _, _, e_recv2) = build_trace()
    hb = HappensBefore(tr)
    assert hb.happens_before(e_send1, e_recv2)


def test_concurrency():
    tr, (e_local, e_send1, e_recv1, _, _) = build_trace()
    hb = HappensBefore(tr)
    # P2's early local event is concurrent with P0's send.
    assert hb.concurrent(e_local, e_send1)
    assert hb.concurrent(e_local, e_recv1)


def test_irreflexive():
    tr, events = build_trace()
    hb = HappensBefore(tr)
    for e in events:
        assert not hb.happens_before(e, e)


def test_find_send_and_receive():
    tr, (_, e_send1, e_recv1, _, _) = build_trace()
    hb = HappensBefore(tr)
    assert hb.find_send(MessageId(0, 0)) is e_send1
    assert hb.find_receive(MessageId(0, 0)) is e_recv1
    assert hb.find_send(MessageId(9, 9)) is None


def test_real_run_hb_matches_message_flow():
    from repro.testing import build_sim

    sim, procs = build_sim(n=3, seed=2)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "x"))
    sim.scheduler.at(2.0, lambda: procs[1].send_app_message(2, "y"))
    sim.run()
    hb = HappensBefore(sim.trace)
    sends = sim.trace.of_kind(T.K_SEND)
    receives = sim.trace.of_kind(T.K_RECEIVE)
    assert hb.happens_before(sends[0], receives[-1])
