"""Unit tests for instance-tree reconstruction and rendering."""

from repro.analysis import reconstruct_trees
from repro.analysis.tree_view import InstanceTree
from repro.testing import build_sim
from repro.types import TreeId


def test_reconstruct_chain_tree():
    sim, procs = build_sim(n=3, seed=1)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "a"))
    sim.scheduler.at(2.0, lambda: procs[1].send_app_message(2, "b"))
    sim.scheduler.at(4.0, lambda: procs[2].initiate_checkpoint())
    sim.run()
    trees = reconstruct_trees(sim.trace)
    assert len(trees) == 1
    tree = next(iter(trees.values()))
    assert tree.root == 2
    assert tree.kind == "checkpoint"
    assert tree.decided == "commit"
    assert tree.nodes == {0, 1, 2}
    assert tree.participants == {0, 1}
    assert tree.parent_of(0) == 1
    assert tree.parent_of(2) is None
    assert tree.children_of(2) == [1]
    assert tree.depth() == 2


def test_reconstruct_rollback_tree():
    sim, procs = build_sim(n=2, seed=1)
    sim.scheduler.at(1.0, lambda: procs[0].send_app_message(1, "a"))
    sim.scheduler.at(3.0, lambda: procs[0].initiate_rollback())
    sim.run()
    trees = reconstruct_trees(sim.trace)
    tree = next(iter(trees.values()))
    assert tree.kind == "rollback"
    assert tree.edges == [(0, 1)]


def test_lone_instance_has_empty_tree():
    sim, procs = build_sim(n=2, seed=1)
    sim.scheduler.at(1.0, lambda: procs[0].initiate_checkpoint())
    sim.run()
    trees = reconstruct_trees(sim.trace)
    tree = next(iter(trees.values()))
    assert tree.participants == set()
    assert tree.depth() == 0


def test_render():
    tree = InstanceTree(tree=TreeId(2, 0), kind="checkpoint", root=2,
                        edges=[(2, 3), (3, 4)])
    assert tree.render() == "P2\n  P3\n    P4"


def test_depth_handles_diamond():
    tree = InstanceTree(tree=TreeId(0, 0), kind="checkpoint", root=0,
                        edges=[(0, 1), (0, 2), (1, 3), (2, 3)])
    assert tree.depth() == 2
    assert tree.nodes == {0, 1, 2, 3}
