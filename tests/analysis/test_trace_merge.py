"""Merging per-node JSONL trace shards into one TraceIndex.

A live cluster writes one JSONL file per process, so no single file is
globally ordered: each shard is locally time-sorted but their timestamps
interleave arbitrarily.  ``TraceIndex.from_jsonl_files`` must produce the
stream one global trace would have recorded — time-ordered, densely
renumbered, with cross-file send/receive matching intact.
"""

from repro.analysis.index import TraceIndex
from repro.sim import trace as T
from repro.sim.trace import JsonlStreamSink, TraceEvent
from repro.types import MessageId


def write_shard(path, events):
    sink = JsonlStreamSink(str(path))
    for event in events:
        sink.emit(event)
    sink.close()
    return str(path)


def ev(index, time, kind, pid, **fields):
    return TraceEvent(index=index, time=time, kind=kind, pid=pid, fields=fields)


def test_merge_orders_by_time_across_files(tmp_path):
    # P0's shard covers t=1..5, P1's t=0.5..4.5: every adjacent pair in the
    # merged stream comes from alternating files.
    shard_a = write_shard(
        tmp_path / "node-0.jsonl",
        [
            ev(0, 1.0, "compute", 0, note="a0"),
            ev(1, 3.0, "compute", 0, note="a1"),
            ev(2, 5.0, "compute", 0, note="a2"),
        ],
    )
    shard_b = write_shard(
        tmp_path / "node-1.jsonl",
        [
            ev(0, 0.5, "compute", 1, note="b0"),
            ev(1, 2.5, "compute", 1, note="b1"),
            ev(2, 4.5, "compute", 1, note="b2"),
        ],
    )
    index = TraceIndex.from_jsonl_files([shard_a, shard_b])
    merged = index.by_kind("compute")
    assert [e.fields["note"] for e in merged] == ["b0", "a0", "b1", "a1", "b2", "a2"]
    assert [e.index for e in merged] == list(range(6))
    times = [e.time for e in merged]
    assert times == sorted(times)


def test_merge_breaks_time_ties_by_original_index(tmp_path):
    # Same timestamp in both files: the original emit index decides, so two
    # shards cut from ONE trace reassemble in their exact original order.
    shard_a = write_shard(
        tmp_path / "a.jsonl",
        [ev(4, 2.0, "compute", 0, note="later"), ev(7, 2.0, "compute", 0, note="latest")],
    )
    shard_b = write_shard(
        tmp_path / "b.jsonl",
        [ev(1, 2.0, "compute", 1, note="earliest")],
    )
    merged = TraceIndex.from_jsonl_files([shard_a, shard_b]).by_kind("compute")
    assert [e.fields["note"] for e in merged] == ["earliest", "later", "latest"]


def test_merge_matches_sends_to_receives_across_files(tmp_path):
    # The send lives in P0's shard, the receive in P1's, and the receive's
    # timestamp lands between two of the sender's events.
    msg = MessageId(0, 3)
    shard_a = write_shard(
        tmp_path / "node-0.jsonl",
        [
            ev(0, 1.0, T.K_SEND, 0, msg_id=msg, dst=1, label=1, payload="m"),
            ev(1, 4.0, "compute", 0),
        ],
    )
    shard_b = write_shard(
        tmp_path / "node-1.jsonl",
        [ev(0, 2.2, T.K_RECEIVE, 1, msg_id=msg, src=0, label=1)],
    )
    index = TraceIndex.from_jsonl_files([shard_a, shard_b])
    send, receive = index.send_of(msg), index.receive_of(msg)
    assert send is not None and receive is not None
    assert send.pid == 0 and receive.pid == 1
    assert send.index < receive.index  # merged order reflects causality here
    assert index.events_indexed == 3


def test_merge_of_empty_and_missing_overlap_is_graceful(tmp_path):
    shard = write_shard(tmp_path / "only.jsonl", [ev(0, 0.0, "compute", 0)])
    empty = write_shard(tmp_path / "empty.jsonl", [])
    index = TraceIndex.from_jsonl_files([shard, empty])
    assert index.events_indexed == 1
    assert TraceIndex.from_jsonl_files([]).events_indexed == 0


def test_merge_of_overlapping_time_ranges_interleaves_densely(tmp_path):
    # Three shards covering fully overlapping windows (the multi-process
    # cluster's shape: every shard traces the whole run's time range).
    shards = []
    for s in range(3):
        shards.append(write_shard(
            tmp_path / f"shard-{s}.jsonl",
            [ev(k, 0.25 * s + k, "compute", s, note=f"s{s}e{k}") for k in range(4)],
        ))
    index = TraceIndex.from_jsonl_files(shards)
    merged = index.by_kind("compute")
    assert index.events_indexed == 12
    assert [e.index for e in merged] == list(range(12))
    times = [e.time for e in merged]
    assert times == sorted(times)
    # Every shard contributed, and adjacency mixes shards (true interleave).
    assert {e.pid for e in merged} == {0, 1, 2}
    assert any(a.pid != b.pid for a, b in zip(merged, merged[1:]))


def test_merge_accepts_out_of_order_file_argument_order(tmp_path):
    # The caller's glob order must not matter: handing files newest-first
    # yields the same merged stream as oldest-first.
    early = write_shard(tmp_path / "b.jsonl", [ev(0, 1.0, "compute", 0, note="early")])
    late = write_shard(tmp_path / "a.jsonl", [ev(0, 2.0, "compute", 1, note="late")])
    forward = TraceIndex.from_jsonl_files([early, late]).by_kind("compute")
    backward = TraceIndex.from_jsonl_files([late, early]).by_kind("compute")
    assert [e.fields["note"] for e in forward] == ["early", "late"]
    assert [e.fields["note"] for e in backward] == ["early", "late"]


def test_merge_tolerates_truncated_final_line(tmp_path):
    # A shard from a crashed/unflushed worker typically ends mid-record.
    # The merge must salvage every complete line, count the lost tail on
    # the index, and still merge the other shards fully.
    intact = write_shard(tmp_path / "ok.jsonl", [ev(0, 0.5, "compute", 1, note="ok")])
    torn = write_shard(
        tmp_path / "torn.jsonl",
        [ev(0, 1.0, "compute", 0, note="kept"), ev(1, 2.0, "compute", 0, note="torn")],
    )
    with open(torn) as handle:
        lines = handle.readlines()
    with open(torn, "w") as handle:
        handle.write(lines[0])
        handle.write(lines[1][: len(lines[1]) // 2])  # crash mid-write

    index = TraceIndex.from_jsonl_files([intact, torn])
    assert index.truncated_lines == 1
    assert [e.fields["note"] for e in index.by_kind("compute")] == ["ok", "kept"]


def test_merge_still_rejects_interior_corruption(tmp_path):
    # Only a *final* torn line is crash debris; garbage in the middle of a
    # shard means something else is wrong and must not be silently eaten.
    import pytest

    shard = write_shard(
        tmp_path / "bad.jsonl",
        [ev(0, 1.0, "compute", 0), ev(1, 2.0, "compute", 0)],
    )
    with open(shard) as handle:
        lines = handle.readlines()
    with open(shard, "w") as handle:
        handle.write(lines[0][: len(lines[0]) // 2])  # torn line...
        handle.write("\n")
        handle.write(lines[1])  # ...with a valid record after it

    with pytest.raises(Exception):
        TraceIndex.from_jsonl_files([shard])


def test_merge_handles_partially_flushed_shard_pair(tmp_path):
    # A partially flushed shard (buffered sink killed mid-run) simply has
    # fewer records; send/receive matching degrades gracefully — the
    # receive side still indexes even when the send was never flushed.
    msg_flushed, msg_lost = MessageId(0, 1), MessageId(0, 2)
    sender = write_shard(
        tmp_path / "sender.jsonl",
        [ev(0, 1.0, T.K_SEND, 0, msg_id=msg_flushed, dst=1, label=1, payload="m")],
    )  # the send of msg_lost was still buffered at the crash
    receiver = write_shard(
        tmp_path / "receiver.jsonl",
        [
            ev(0, 2.0, T.K_RECEIVE, 1, msg_id=msg_flushed, src=0, label=1),
            ev(1, 3.0, T.K_RECEIVE, 1, msg_id=msg_lost, src=0, label=1),
        ],
    )
    index = TraceIndex.from_jsonl_files([sender, receiver])
    assert index.events_indexed == 3
    assert index.send_of(msg_flushed) is not None
    assert index.receive_of(msg_flushed) is not None
    assert index.send_of(msg_lost) is None
    assert index.receive_of(msg_lost) is not None
