"""Unit tests for the incremental TraceIndex (index layer)."""

import pytest

from repro.analysis import collect, reconstruct_trees
from repro.analysis.index import BIRTH_SEQ, TraceIndex, as_index
from repro.net import UniformDelay
from repro.sim import JsonlStreamSink, trace as T
from repro.testing import build_sim, run_random_workload


def run_workload(n=5, seed=11, duration=20.0, error_rate=0.05, sinks=None):
    sim, procs = build_sim(n=n, seed=seed, delay=UniformDelay(0.3, 0.9), sinks=sinks)
    run_random_workload(sim, procs, duration=duration, checkpoint_rate=0.1,
                        error_rate=error_rate)
    return sim, procs


def test_index_attaches_lazily_and_backfills():
    sim, _ = run_workload()
    index = sim.trace.index
    assert index.events_indexed == len(sim.trace)
    assert sim.trace.index is index  # cached, not rebuilt


def test_by_kind_matches_full_scan():
    sim, _ = run_workload()
    index = sim.trace.index
    events = sim.trace.events
    for kind in index.kinds():
        assert index.by_kind(kind) == [e for e in events if e.kind == kind]
        assert index.count(kind) == sum(1 for e in events if e.kind == kind)
    merged = index.by_kind(T.K_SEND, T.K_RECEIVE)
    assert merged == [e for e in events if e.kind in (T.K_SEND, T.K_RECEIVE)]


def test_for_process_matches_full_scan():
    sim, procs = run_workload()
    index = sim.trace.index
    events = sim.trace.events
    assert index.pids() == sorted({e.pid for e in events if e.pid is not None})
    for pid in procs:
        assert index.for_process(pid) == [e for e in events if e.pid == pid]
        assert index.for_process(pid, T.K_SEND) == [
            e for e in events if e.pid == pid and e.kind == T.K_SEND
        ]
        assert index.for_process(pid, T.K_SEND, T.K_RECEIVE) == [
            e for e in events if e.pid == pid and e.kind in (T.K_SEND, T.K_RECEIVE)
        ]


def test_last_of_matches_scan():
    sim, procs = run_workload()
    index = sim.trace.index
    events = sim.trace.events
    sends = [e for e in events if e.kind == T.K_SEND]
    assert index.last_of(T.K_SEND) is sends[-1]
    pid = sends[-1].pid
    assert index.last_of(T.K_SEND, pid) is sends[-1]
    assert index.last_of("no_such_kind") is None


def test_send_receive_matching():
    sim, _ = run_workload()
    index = sim.trace.index
    for event in sim.trace.of_kind(T.K_RECEIVE):
        send = index.send_of(event.fields["msg_id"])
        assert send is not None and send.kind == T.K_SEND
        assert send.fields["msg_id"] == event.fields["msg_id"]
        assert index.receive_of(event.fields["msg_id"]) is event


def test_ledger_shadow_tracks_live_records():
    sim, procs = run_workload()
    index = sim.trace.index
    for pid, proc in procs.items():
        expected = sorted(
            (r.src, r.msg_id.send_index) for r in proc.ledger.live_receives()
        )
        assert index.live_receives(pid) == expected
        for record in proc.ledger.sent:
            live = index.send_is_live(pid, record.msg_id.send_index)
            assert live == (not record.undone)


def test_committed_manifests_match_process_history():
    sim, procs = run_workload()
    index = sim.trace.index
    for pid, proc in procs.items():
        views = index.committed_manifests(pid)
        history = proc.committed_history
        assert len(views) == len(history)
        assert views[0].seq == BIRTH_SEQ
        for view, record in zip(views, history):
            assert view.seq == record.seq
            assert set(view.recv) == {tuple(p) for p in record.meta.get("recv", [])}
            assert set(view.sent) == {tuple(p) for p in record.meta.get("sent", [])}
        assert index.last_committed_manifest(pid) == views[-1]


def test_tree_events_cover_every_stamped_event():
    sim, _ = run_workload()
    index = sim.trace.index
    stamped = [e for e in sim.trace.events if e.fields.get("tree") is not None]
    by_tree = {}
    for event in stamped:
        by_tree.setdefault(event.fields["tree"], []).append(event)
    assert set(index.tree_ids()) == set(by_tree)
    for tree, events in by_tree.items():
        assert index.tree_events(tree) == events


def test_reconstruct_trees_from_reloaded_stream(tmp_path):
    """Tree reconstruction works on an index fed from a jsonl file."""
    path = str(tmp_path / "run.jsonl")
    sim, _ = run_workload(sinks=None)
    live_trees = reconstruct_trees(sim.trace)

    # Same seed, streamed to disk; rebuild the index offline.
    from repro.sim.trace import load_jsonl

    stream = JsonlStreamSink(path)
    sim2, _ = run_workload(sinks=[stream])
    sim2.trace.close()
    offline = TraceIndex()
    for event in load_jsonl(path):
        offline.emit(event)
    offline_trees = reconstruct_trees(offline)

    assert set(offline_trees) == set(live_trees)
    for tree_id, tree in live_trees.items():
        other = offline_trees[tree_id]
        assert other.root == tree.root
        assert other.kind == tree.kind
        assert other.edges == tree.edges
        assert other.decided == tree.decided


def test_as_index_passthrough_and_coercion():
    sim, _ = run_workload()
    index = sim.trace.index
    assert as_index(index) is index
    assert as_index(sim.trace) is index


def test_collect_counts_match_scan():
    sim, _ = run_workload()
    stats = collect(sim)
    events = sim.trace.events
    by_kind = {}
    for event in events:
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
    assert stats.checkpoints_committed == by_kind.get(T.K_CHKPT_COMMIT, 0)
    assert stats.rollbacks == by_kind.get(T.K_ROLLBACK, 0)
    assert stats.instances_started == by_kind.get(T.K_INSTANCE_START, 0)
    assert stats.instances_committed == by_kind.get(T.K_INSTANCE_COMMIT, 0)
    assert len(stats.instance_latencies) <= stats.instances_committed


def test_index_on_streaming_trace_must_attach_up_front():
    index = TraceIndex()
    sim, procs = run_workload(sinks=[index])
    assert sim.trace.index is index
    assert sim.trace.retained_events == 0
    # Queries still work without any in-memory event list.
    assert sim.trace.of_kind(T.K_SEND) == index.by_kind(T.K_SEND)
    assert len(index.by_kind(T.K_SEND)) > 0
    with pytest.raises(RuntimeError):
        sim.trace.events
