"""Pre/post-refactor equivalence on the paper's scripted figure workloads.

The goldens in this directory were captured from the pre-sans-IO code (the
mixin-on-Node implementation) on the discrete-event kernel: full trace
event stream, committed checkpoint ledgers, final sequence numbers, and
network counters.  The engine/adapter split must reproduce them bit for bit
— same events in the same order at the same virtual times — proving the
refactor changed the architecture and nothing observable.
"""

import json
from pathlib import Path

import pytest

from repro.core import CheckpointProcess
from repro.net import FixedDelay
from repro.sim import Simulation
from repro.workloads import (
    ScriptedWorkload,
    figure2_steps,
    figure3_steps,
    figure4_steps,
)

GOLDEN_DIR = Path(__file__).parent
SEED = 1
HORIZON = 40.0

SCENARIOS = {
    "figure2": (figure2_steps, (0, 1)),
    "figure3": (figure3_steps, (1, 4)),
    "figure4": (figure4_steps, (1, 4)),
}


def capture(steps, pids):
    sim = Simulation(seed=SEED, delay_model=FixedDelay(0.5))
    procs = {i: sim.add_node(CheckpointProcess(i)) for i in range(pids[0], pids[1] + 1)}
    ScriptedWorkload(steps()).install(sim, procs)
    sim.run(until=HORIZON)
    summary = {
        "seed": SEED,
        "horizon": HORIZON,
        "pids": [pids[0], pids[1]],
        "events": [
            {"time": e.time, "kind": e.kind, "pid": e.pid, "fields": e.fields}
            for e in sim.trace
        ],
        "ledgers": {
            pid: [
                [r.seq, r.meta.get("recv", []), r.meta.get("sent", [])]
                for r in proc.committed_history
            ]
            for pid, proc in procs.items()
        },
        "final_seq": {pid: proc.store.oldchkpt.seq for pid, proc in procs.items()},
        "normal_sent": sim.network.normal_sent,
        "control_sent": sim.network.control_sent,
        "delivered": sim.network.delivered,
        "dropped": sim.network.dropped,
    }
    # Identical normalisation to the capture script: JSON round-trip with
    # str() for the identifier types (MessageId, TreeId).
    return json.loads(json.dumps(summary, default=str))


@pytest.mark.parametrize("name", sorted(SCENARIOS), ids=sorted(SCENARIOS))
def test_refactored_stack_reproduces_golden_trace(name):
    steps, pids = SCENARIOS[name]
    golden = json.loads((GOLDEN_DIR / f"{name}_trace.json").read_text())
    assert capture(steps, pids) == golden
