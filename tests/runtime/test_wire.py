"""Wire codec: every protocol body round-trips losslessly; frames are sane."""

import asyncio
import json
import struct

import pytest

from repro.core import messages as M
from repro.errors import WireError
from repro.net.message import control, normal
from repro.runtime import wire
from repro.types import MessageId, TreeId

T1 = TreeId(2, 5)
T2 = TreeId(0, 1)

BODIES = [
    M.NormalBody(payload="hello", markers=(T1, T2), marker_seq=3, incarnation=1),
    M.NormalBody(),
    M.ChkptReq(tree=T1, max_label=7),
    M.ChkptAck(tree=T1, positive=True),
    M.ChkptAck(tree=T1, positive=False, undone_notice=(T2, 3, 5)),
    M.ReadyToCommit(tree=T1),
    M.Commit(tree=T1),
    M.Abort(tree=T1),
    M.RollReq(tree=T2, undo_seq=2, undone_upto=4),
    M.RollAck(tree=T2, positive=False),
    M.RollComplete(tree=T2),
    M.Restart(tree=T2),
    M.DecisionInquiry(tree=T1, decision_kind="checkpoint"),
    M.DecisionReply(tree=T1, decision_kind="rollback", decision="restart"),
    M.DecisionReply(tree=T1, decision_kind="checkpoint", decision=None),
]


@pytest.mark.parametrize("body", BODIES, ids=lambda b: type(b).__name__)
def test_body_roundtrip(body):
    decoded = wire.decode_body(json.loads(json.dumps(wire.encode_body(body))))
    assert decoded == body
    assert type(decoded) is type(body)


def test_every_control_kind_is_registered():
    for cls in M.CONTROL_KINDS:
        assert wire.BODY_REGISTRY[cls.kind] is cls
    assert wire.BODY_REGISTRY[wire.NORMAL_KIND] is M.NormalBody


def test_envelope_roundtrip_normal():
    env = normal(0, 1, MessageId(0, 4), label=3, body=M.NormalBody(payload={"k": [1, 2]}))
    env.send_time = 12.5
    back = wire.roundtrip(env)
    assert back.src == 0 and back.dst == 1
    assert back.category == env.category
    assert back.msg_id == MessageId(0, 4)
    assert back.label == 3
    assert back.send_time == 12.5
    assert back.body == env.body


def test_envelope_roundtrip_control():
    env = control(2, 3, M.ChkptReq(tree=T1, max_label=9))
    back = wire.roundtrip(env)
    assert back.body == env.body
    assert back.msg_id is None and back.label is None


def test_unregistered_body_raises():
    class Rogue:
        kind = "rogue"

    with pytest.raises(WireError):
        wire.encode_body(Rogue())
    with pytest.raises(WireError):
        wire.decode_body({"kind": "rogue", "fields": {}})


def test_malformed_body_fields_raise():
    with pytest.raises(WireError):
        wire.decode_body({"kind": "commit", "fields": {"not_a_field": 1}})


def test_frame_layout_and_roundtrip():
    env = control(0, 1, M.Commit(tree=T1))
    frame = wire.dumps_frame(env)
    (length,) = struct.unpack(">I", frame[: wire.HEADER_SIZE])
    assert length == len(frame) - wire.HEADER_SIZE
    assert wire.loads_frame(frame[wire.HEADER_SIZE:]).body == env.body


def test_oversized_incoming_frame_rejected():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(struct.pack(">I", wire.MAX_FRAME + 1))
        with pytest.raises(WireError, match="exceeds"):
            await wire.read_frame(reader)

    asyncio.run(asyncio.wait_for(scenario(), 10))


def test_read_frame_clean_eof_and_truncation():
    async def scenario():
        # Clean EOF between frames -> None.
        reader = asyncio.StreamReader()
        reader.feed_eof()
        assert await wire.read_frame(reader) is None

        # EOF mid-header -> error.
        reader = asyncio.StreamReader()
        reader.feed_data(b"\x00\x00")
        reader.feed_eof()
        with pytest.raises(WireError, match="mid-header"):
            await wire.read_frame(reader)

        # EOF mid-frame -> error.
        reader = asyncio.StreamReader()
        reader.feed_data(struct.pack(">I", 10) + b"abc")
        reader.feed_eof()
        with pytest.raises(WireError, match="mid-frame"):
            await wire.read_frame(reader)

    asyncio.run(asyncio.wait_for(scenario(), 10))


def test_read_frame_reassembles_split_frames():
    env = control(1, 0, M.Abort(tree=T2))
    frame = wire.dumps_frame(env)

    async def scenario():
        reader = asyncio.StreamReader()
        task = asyncio.get_running_loop().create_task(wire.read_frame(reader))
        for i in range(len(frame)):  # dribble one byte at a time
            reader.feed_data(frame[i : i + 1])
            await asyncio.sleep(0)
        blob = await task
        assert wire.loads_frame(blob).body == env.body

    asyncio.run(asyncio.wait_for(scenario(), 10))


# ----------------------------------------------------------------------
# v2 binary codec: negotiation, byte-stability, JSON agreement
# ----------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


def test_negotiate_picks_min_of_preference_and_advert():
    assert wire.negotiate(wire.WIRE_V2, wire.WIRE_V2) == wire.WIRE_V2
    assert wire.negotiate(wire.WIRE_V2, wire.WIRE_V1) == wire.WIRE_V1
    assert wire.negotiate(wire.WIRE_V1, wire.WIRE_V2) == wire.WIRE_V1
    # A future peer advertising v99 still talks our maximum, not theirs.
    assert wire.negotiate(wire.WIRE_V2, 99) == wire.WIRE_V2
    # Garbage adverts clamp up to v1, never to zero.
    assert wire.negotiate(wire.WIRE_V2, 0) == wire.WIRE_V1


def test_read_hello_happy_path_and_fallbacks():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(wire.pack_hello(wire.WIRE_V2))
        assert await wire.read_hello(reader) == wire.WIRE_V2

        # Wrong magic (a pre-hello peer's first frame) -> treat as v1.
        reader = asyncio.StreamReader()
        reader.feed_data(b"XX\x02\x00")
        assert await wire.read_hello(reader) == wire.WIRE_V1

        # Silence (old server never sends a hello) -> v1 after the timeout.
        reader = asyncio.StreamReader()
        assert await wire.read_hello(reader, timeout=0.05) == wire.WIRE_V1

        # Immediate EOF -> v1 (the connection teardown path reports later).
        reader = asyncio.StreamReader()
        reader.feed_eof()
        assert await wire.read_hello(reader) == wire.WIRE_V1

    asyncio.run(asyncio.wait_for(scenario(), 10))


def test_loads_frame_sniffs_format_per_frame():
    env = control(0, 1, M.Commit(tree=T1))
    json_blob = wire.dumps_frame(env, version=wire.WIRE_V1)[wire.HEADER_SIZE:]
    binary_blob = wire.dumps_frame(env, version=wire.WIRE_V2)[wire.HEADER_SIZE:]
    assert json_blob[0] == ord("{") and binary_blob[0] == wire.BINARY_TAG
    assert wire.loads_frame(json_blob).body == env.body
    assert wire.loads_frame(binary_blob).body == env.body
    assert len(binary_blob) < len(json_blob)


_tree_ids = st.builds(TreeId, st.integers(0, 9), st.integers(0, 999))
_msg_ids = st.builds(MessageId, st.integers(0, 9), st.integers(0, 9999))
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    _tree_ids,
    _msg_ids,
)
_payloads = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=3).map(tuple),
        st.dictionaries(
            st.one_of(st.integers(-100, 100), st.text(max_size=8), _tree_ids),
            children,
            max_size=4,
        ),
        st.sets(st.one_of(st.integers(-100, 100), st.text(max_size=8)), max_size=4),
    ),
    max_leaves=10,
)
_bodies = st.one_of(
    st.builds(
        M.NormalBody,
        payload=_payloads,
        markers=st.lists(_tree_ids, max_size=3).map(tuple),
        marker_seq=st.integers(0, 50),
        incarnation=st.integers(0, 5),
    ),
    st.builds(M.ChkptReq, tree=_tree_ids, max_label=st.integers(-1, 10**6)),
    st.builds(
        M.ChkptAck,
        tree=_tree_ids,
        positive=st.booleans(),
        undone_notice=st.one_of(
            st.none(), st.tuples(_tree_ids, st.integers(0, 99), st.integers(0, 99))
        ),
    ),
    st.builds(M.ReadyToCommit, tree=_tree_ids),
    st.builds(M.Commit, tree=_tree_ids),
    st.builds(M.Abort, tree=_tree_ids),
    st.builds(
        M.RollReq,
        tree=_tree_ids,
        undo_seq=st.integers(0, 99),
        undone_upto=st.integers(0, 99),
    ),
    st.builds(M.RollAck, tree=_tree_ids, positive=st.booleans()),
    st.builds(M.RollComplete, tree=_tree_ids),
    st.builds(M.Restart, tree=_tree_ids),
    st.builds(
        M.DecisionInquiry,
        tree=_tree_ids,
        decision_kind=st.sampled_from(["checkpoint", "rollback"]),
    ),
    st.builds(
        M.DecisionReply,
        tree=_tree_ids,
        decision_kind=st.sampled_from(["checkpoint", "rollback"]),
        decision=st.one_of(st.none(), st.sampled_from(["commit", "abort", "restart"])),
    ),
)


@settings(max_examples=150, deadline=None)
@given(
    body=_bodies,
    src=st.integers(0, 31),
    dst=st.integers(0, 31),
    send_time=st.floats(0, 1e6, allow_nan=False),
    label=st.integers(0, 2**40),
    idx=st.integers(0, 2**40),
)
def test_binary_frames_are_byte_stable_and_agree_with_json(
    body, src, dst, send_time, label, idx
):
    """The PR's codec property: for every registered body kind,

    * decode(encode(env)) re-encodes to the *identical* bytes, and
    * the binary path decodes to the same envelope the JSON path does.
    """
    if isinstance(body, M.NormalBody):
        env = normal(src, dst, MessageId(src, idx), label=label, body=body)
    else:
        env = control(src, dst, body)
    env.send_time = send_time

    blob = wire.dumps_frame(env, version=wire.WIRE_V2)[wire.HEADER_SIZE:]
    assert blob[0] == wire.BINARY_TAG
    decoded = wire.loads_frame(blob)
    assert wire.dumps_frame(decoded, version=wire.WIRE_V2)[wire.HEADER_SIZE:] == blob

    via_json = wire.roundtrip(env, version=wire.WIRE_V1)
    for attr in ("src", "dst", "category", "msg_id", "label", "send_time", "body"):
        assert getattr(decoded, attr) == getattr(via_json, attr) == getattr(env, attr)
    assert type(decoded.body) is type(env.body)
