"""Wire codec: every protocol body round-trips losslessly; frames are sane."""

import asyncio
import json
import struct

import pytest

from repro.core import messages as M
from repro.errors import WireError
from repro.net.message import control, normal
from repro.runtime import wire
from repro.types import MessageId, TreeId

T1 = TreeId(2, 5)
T2 = TreeId(0, 1)

BODIES = [
    M.NormalBody(payload="hello", markers=(T1, T2), marker_seq=3, incarnation=1),
    M.NormalBody(),
    M.ChkptReq(tree=T1, max_label=7),
    M.ChkptAck(tree=T1, positive=True),
    M.ChkptAck(tree=T1, positive=False, undone_notice=(T2, 3, 5)),
    M.ReadyToCommit(tree=T1),
    M.Commit(tree=T1),
    M.Abort(tree=T1),
    M.RollReq(tree=T2, undo_seq=2, undone_upto=4),
    M.RollAck(tree=T2, positive=False),
    M.RollComplete(tree=T2),
    M.Restart(tree=T2),
    M.DecisionInquiry(tree=T1, decision_kind="checkpoint"),
    M.DecisionReply(tree=T1, decision_kind="rollback", decision="restart"),
    M.DecisionReply(tree=T1, decision_kind="checkpoint", decision=None),
]


@pytest.mark.parametrize("body", BODIES, ids=lambda b: type(b).__name__)
def test_body_roundtrip(body):
    decoded = wire.decode_body(json.loads(json.dumps(wire.encode_body(body))))
    assert decoded == body
    assert type(decoded) is type(body)


def test_every_control_kind_is_registered():
    for cls in M.CONTROL_KINDS:
        assert wire.BODY_REGISTRY[cls.kind] is cls
    assert wire.BODY_REGISTRY[wire.NORMAL_KIND] is M.NormalBody


def test_envelope_roundtrip_normal():
    env = normal(0, 1, MessageId(0, 4), label=3, body=M.NormalBody(payload={"k": [1, 2]}))
    env.send_time = 12.5
    back = wire.roundtrip(env)
    assert back.src == 0 and back.dst == 1
    assert back.category == env.category
    assert back.msg_id == MessageId(0, 4)
    assert back.label == 3
    assert back.send_time == 12.5
    assert back.body == env.body


def test_envelope_roundtrip_control():
    env = control(2, 3, M.ChkptReq(tree=T1, max_label=9))
    back = wire.roundtrip(env)
    assert back.body == env.body
    assert back.msg_id is None and back.label is None


def test_unregistered_body_raises():
    class Rogue:
        kind = "rogue"

    with pytest.raises(WireError):
        wire.encode_body(Rogue())
    with pytest.raises(WireError):
        wire.decode_body({"kind": "rogue", "fields": {}})


def test_malformed_body_fields_raise():
    with pytest.raises(WireError):
        wire.decode_body({"kind": "commit", "fields": {"not_a_field": 1}})


def test_frame_layout_and_roundtrip():
    env = control(0, 1, M.Commit(tree=T1))
    frame = wire.dumps_frame(env)
    (length,) = struct.unpack(">I", frame[: wire.HEADER_SIZE])
    assert length == len(frame) - wire.HEADER_SIZE
    assert wire.loads_frame(frame[wire.HEADER_SIZE:]).body == env.body


def test_oversized_incoming_frame_rejected():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(struct.pack(">I", wire.MAX_FRAME + 1))
        with pytest.raises(WireError, match="exceeds"):
            await wire.read_frame(reader)

    asyncio.run(asyncio.wait_for(scenario(), 10))


def test_read_frame_clean_eof_and_truncation():
    async def scenario():
        # Clean EOF between frames -> None.
        reader = asyncio.StreamReader()
        reader.feed_eof()
        assert await wire.read_frame(reader) is None

        # EOF mid-header -> error.
        reader = asyncio.StreamReader()
        reader.feed_data(b"\x00\x00")
        reader.feed_eof()
        with pytest.raises(WireError, match="mid-header"):
            await wire.read_frame(reader)

        # EOF mid-frame -> error.
        reader = asyncio.StreamReader()
        reader.feed_data(struct.pack(">I", 10) + b"abc")
        reader.feed_eof()
        with pytest.raises(WireError, match="mid-frame"):
            await wire.read_frame(reader)

    asyncio.run(asyncio.wait_for(scenario(), 10))


def test_read_frame_reassembles_split_frames():
    env = control(1, 0, M.Abort(tree=T2))
    frame = wire.dumps_frame(env)

    async def scenario():
        reader = asyncio.StreamReader()
        task = asyncio.get_running_loop().create_task(wire.read_frame(reader))
        for i in range(len(frame)):  # dribble one byte at a time
            reader.feed_data(frame[i : i + 1])
            await asyncio.sleep(0)
        blob = await task
        assert wire.loads_frame(blob).body == env.body

    asyncio.run(asyncio.wait_for(scenario(), 10))
