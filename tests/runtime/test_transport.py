"""Transport semantics: loopback and TCP carry the same traffic contract."""

import asyncio

import pytest

from repro.errors import TransportError
from repro.net.delay import FixedDelay, UniformDelay
from repro.net.message import normal
from repro.runtime import AsyncRuntime, LoopbackTransport, TcpTransport
from repro.sim.node import Node
from repro.types import MessageId


def run(coro, timeout=60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class Sink(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_envelope(self, envelope):
        self.received.append(envelope)


def build(transport, n=2, delay=None, seed=0):
    runtime = AsyncRuntime(
        seed=seed, transport=transport, delay_model=delay or FixedDelay(0.5),
        time_scale=0.01,
    )
    nodes = {i: runtime.add_node(Sink(i)) for i in range(n)}
    return runtime, nodes


def envelope(src, dst, idx, label=1):
    return normal(src, dst, MessageId(src, idx), label=label, body=None)


# ----------------------------------------------------------------------
# Loopback
# ----------------------------------------------------------------------

def test_loopback_delivers_and_counts():
    runtime, nodes = build(LoopbackTransport())

    async def scenario():
        await runtime.start()
        nodes[0].send(envelope(0, 1, 0))
        nodes[0].send(envelope(0, 1, 1))
        await runtime.join(timeout=30.0)
        await runtime.shutdown()

    run(scenario())
    assert [e.msg_id.send_index for e in nodes[1].received] == [0, 1]
    assert runtime.network.normal_sent == 2
    assert runtime.network.delivered == 2
    assert runtime.transport.in_flight == 0
    # The network stamped transit times on the way through.
    assert all(e.deliver_time >= e.send_time for e in nodes[1].received)


def test_loopback_send_before_start_rejected():
    runtime, nodes = build(LoopbackTransport())
    with pytest.raises(TransportError):
        nodes[0].send(envelope(0, 1, 0))


def test_loopback_delivery_respects_crash_policy():
    runtime, nodes = build(LoopbackTransport())

    async def scenario():
        await runtime.start()
        runtime.crash(1)
        nodes[0].send(envelope(0, 1, 0))
        await runtime.join(timeout=30.0)
        await runtime.shutdown()

    run(scenario())
    assert nodes[1].received == []
    assert runtime.network.dropped == 1
    kinds = [e.kind for e in runtime.trace.events]
    assert "discard" in kinds


def test_loopback_codec_roundtrips_bodies():
    # codec=True (default) pushes every envelope through the JSON wire
    # codec; a non-serializable body must fail loudly at send time.
    from repro.errors import WireError

    runtime, nodes = build(LoopbackTransport())

    class Opaque:
        pass

    async def scenario():
        await runtime.start()
        bad = envelope(0, 1, 0)
        bad.body = Opaque()
        with pytest.raises(WireError):
            nodes[0].send(bad)
        await runtime.shutdown()

    run(scenario())


def test_loopback_nonfifo_reordering_happens():
    # With a wide uniform delay and many messages, at least one pair must
    # arrive out of send order (the paper's non-FIFO channel model).  The
    # seed makes the delay draws deterministic.
    runtime, nodes = build(LoopbackTransport(), delay=UniformDelay(0.1, 3.0), seed=7)

    async def scenario():
        await runtime.start()
        for i in range(20):
            nodes[0].send(envelope(0, 1, i))
        await runtime.join(timeout=60.0)
        await runtime.shutdown()

    run(scenario())
    order = [e.msg_id.send_index for e in nodes[1].received]
    assert sorted(order) == list(range(20))
    assert order != sorted(order)


# ----------------------------------------------------------------------
# TCP
# ----------------------------------------------------------------------

def test_tcp_delivers_over_real_sockets():
    transport = TcpTransport()
    runtime, nodes = build(transport, n=3)

    async def scenario():
        await runtime.start()
        assert len(transport.ports) == 3
        assert len(set(transport.ports.values())) == 3
        nodes[0].send(envelope(0, 1, 0))
        nodes[2].send(envelope(2, 1, 0))
        nodes[1].send(envelope(1, 0, 0))
        await runtime.wait_until(
            lambda: runtime.network.delivered == 3, timeout=60.0, what="3 deliveries"
        )
        await runtime.shutdown()

    run(scenario())
    assert transport.frames_sent == 3
    assert transport.frames_received == 3
    assert {e.msg_id.sender for e in nodes[1].received} == {0, 2}
    assert len(nodes[0].received) == 1


def test_tcp_disconnect_drops_then_reconnect_delivers():
    transport = TcpTransport()
    runtime, nodes = build(transport, n=2)

    async def scenario():
        await runtime.start()
        port_before = transport.ports[1]

        runtime.crash(1)
        transport.disconnect(1)
        nodes[0].send(envelope(0, 1, 0))
        await runtime.wait_until(
            lambda: runtime.network.dropped == 1, timeout=60.0, what="the drop"
        )

        await transport.reconnect(1)
        runtime.recover(1)
        assert transport.ports[1] == port_before  # endpoint identity survives

        nodes[0].send(envelope(0, 1, 1))
        await runtime.wait_until(
            lambda: len(nodes[1].received) == 1, timeout=60.0, what="redelivery"
        )
        await runtime.shutdown()

    run(scenario())
    assert [e.msg_id.send_index for e in nodes[1].received] == [1]


def test_tcp_unreachable_peer_goes_to_spoolers():
    transport = TcpTransport()
    runtime, nodes = build(transport, n=3)
    runtime.network.install_spoolers(1, [0, 2])

    async def scenario():
        await runtime.start()
        runtime.crash(1)
        transport.disconnect(1)
        nodes[0].send(envelope(0, 1, 0))
        await runtime.wait_until(
            lambda: runtime.network.spooled == 1, timeout=60.0, what="the spool"
        )
        await runtime.shutdown()

    run(scenario())
    group = runtime.network.spooler_for(1)
    salvaged = group.drain(runtime.is_alive)
    assert [e.msg_id.send_index for e in salvaged] == [0]
    assert runtime.network.dropped == 0


def test_tcp_batched_drain_coalesces_writes():
    # A queued burst to one destination drains as a handful of writev-style
    # batches, not one syscall per frame — while every frame still arrives.
    transport = TcpTransport(max_batch=64)
    runtime, nodes = build(transport, n=2, delay=FixedDelay(0.0))

    async def scenario():
        await runtime.start()
        for i in range(64):
            nodes[0].send(envelope(0, 1, i))
        await runtime.wait_until(
            lambda: len(nodes[1].received) == 64, timeout=60.0, what="the burst"
        )
        await runtime.shutdown()

    run(scenario())
    assert transport.frames_sent == 64
    assert transport.frames_received == 64
    assert transport.batches_sent < transport.frames_sent
    assert {e.msg_id.send_index for e in nodes[1].received} == set(range(64))


def test_tcp_negotiates_down_to_json_only_peer():
    # Node 1's server advertises v1 (a JSON-only peer); node 2's speaks v2.
    # The same binary-preferring sender must talk JSON to one and binary to
    # the other, transparently.
    from repro.runtime import wire

    transport = TcpTransport(codec="binary", server_versions={1: wire.WIRE_V1})
    runtime, nodes = build(transport, n=3, delay=FixedDelay(0.0))

    async def scenario():
        await runtime.start()
        nodes[0].send(envelope(0, 1, 0))
        nodes[0].send(envelope(0, 2, 0))
        await runtime.wait_until(
            lambda: runtime.network.delivered == 2, timeout=60.0, what="deliveries"
        )
        await runtime.shutdown()

    run(scenario())
    assert transport.negotiated[1] == wire.WIRE_V1
    assert transport.negotiated[2] == wire.WIRE_V2
    assert len(nodes[1].received) == 1 and len(nodes[2].received) == 1


def test_tcp_rejects_bad_knobs():
    with pytest.raises(TransportError):
        TcpTransport(max_batch=0)
    with pytest.raises(TransportError):
        TcpTransport(codec=None)
    with pytest.raises(TransportError):
        LoopbackTransport(codec="morse")


def test_tcp_rapid_restart_cycles_reuse_the_endpoint():
    # Ten kill/restart cycles of the same pid, each rebinding the same
    # port immediately.  Without SO_REUSEADDR the rebind intermittently
    # hits EADDRINUSE while the previous socket lingers in TIME_WAIT.
    transport = TcpTransport()
    runtime, nodes = build(transport, n=2, delay=FixedDelay(0.0))

    async def scenario():
        await runtime.start()
        port = transport.ports[1]
        for cycle in range(10):
            runtime.crash(1)
            transport.disconnect(1)
            await transport.reconnect(1)
            runtime.recover(1)
            assert transport.ports[1] == port  # endpoint identity survives
            nodes[0].send(envelope(0, 1, cycle))
            await runtime.wait_until(
                lambda want=cycle + 1: len(nodes[1].received) == want,
                timeout=60.0, what=f"delivery after restart {cycle}",
            )
        await runtime.shutdown()

    run(scenario())
    assert [e.msg_id.send_index for e in nodes[1].received] == list(range(10))


def test_tcp_generation_counters_reset_per_restart():
    # Wire counters are per node generation: a restart closes the current
    # generation's row, and the open tail row plus the closed rows always
    # sum to the cumulative totals — nothing accumulates silently across
    # generations.
    transport = TcpTransport(max_batch=8)
    runtime, nodes = build(transport, n=2, delay=FixedDelay(0.0))

    async def scenario():
        await runtime.start()
        for i in range(4):
            nodes[0].send(envelope(0, 1, i))
        await runtime.wait_until(
            lambda: len(nodes[1].received) == 4, timeout=60.0, what="first burst"
        )

        runtime.crash(1)
        transport.disconnect(1)
        await transport.reconnect(1)
        runtime.recover(1)

        for i in range(4, 6):
            nodes[0].send(envelope(0, 1, i))
        await runtime.wait_until(
            lambda: len(nodes[1].received) == 6, timeout=60.0, what="second burst"
        )
        await runtime.shutdown()

    run(scenario())
    generations = transport.generation_summary()
    assert [g["generation"] for g in generations] == [0, 1]
    closed, tail = generations
    assert closed["restarted_pid"] == 1
    assert tail["restarted_pid"] is None
    assert closed["frames_sent"] == 4
    assert tail["frames_sent"] == 2
    for key in ("frames_sent", "batches_sent", "bytes_sent", "frames_received"):
        assert sum(g[key] for g in generations) == getattr(
            transport, key if key != "frames_received" else "frames_received"
        )
    assert closed["bytes_sent"] > 0 and tail["bytes_sent"] > 0


def test_tcp_counters_reset_on_transport_restart():
    # Stopping and starting the whole transport is a fresh deployment:
    # cumulative counters and the generation ledger restart from zero.
    transport = TcpTransport()
    runtime, nodes = build(transport, n=2, delay=FixedDelay(0.0))

    async def scenario():
        await runtime.start()
        nodes[0].send(envelope(0, 1, 0))
        await runtime.wait_until(
            lambda: len(nodes[1].received) == 1, timeout=60.0, what="delivery"
        )
        runtime.crash(1)
        transport.disconnect(1)
        await transport.reconnect(1)
        runtime.recover(1)
        assert transport.generation == 1
        await transport.stop()
        await transport.start()
        await transport.stop()

    run(scenario())
    assert transport.frames_sent == 0
    assert transport.bytes_sent == 0
    assert transport.generation == 0
    assert transport.generation_summary()[-1]["frames_sent"] == 0
