"""Membership churn on the sharded runtime (real worker OS processes).

Two claims under test: (1) satellite efficiency — however many transitions
a churn batch carries, the parent sends exactly ONE pipe message per
shard, not a per-pid fan-out; (2) end-to-end correctness — a join, a
graceful leave with cross-process handoff, and a kill/restart can all
land mid-run and the merged trace still passes the (churn-tolerant)
recovery-line battery.
"""

import pytest

from repro.analysis import check_c1_from_trace
from repro.core import ProtocolConfig
from repro.errors import SimulationError
from repro.runtime.shard import ShardedCluster
from repro.tracekinds import K_HANDOFF, K_JOIN, K_LEAVE


def build(tmp_path, n=6, shards=2, seed=5, **kwargs):
    kwargs.setdefault("config", ProtocolConfig(
        checkpoint_interval=5.0, failure_resilience=True
    ))
    kwargs.setdefault("workload", dict(message_rate=1.0, step_rate=0.5, duration=20.0))
    kwargs.setdefault("time_scale", 0.01)
    return ShardedCluster(
        n=n, root=str(tmp_path / "sharded"), shards=shards, seed=seed, **kwargs
    )


def spy_on_posts(cluster):
    """Wrap every worker handle's pipe-post with a command recorder."""
    posted = []

    def wrap(worker):
        original = worker.post

        def spy(command, payload=None):
            posted.append((worker.shard, command, payload))
            original(command, payload)

        worker.post = spy

    for worker in cluster._workers:
        wrap(worker)
    return posted


def test_churn_batch_costs_one_pipe_message_per_shard(tmp_path):
    cluster = build(tmp_path, n=8, shards=4, workload=None, config=None,
                    detector_latency=None, spoolers=False, delay=0.0,
                    time_scale=0.005)
    try:
        cluster.start()
        posted = spy_on_posts(cluster)
        # Six transitions in one batch: still exactly one post per worker.
        cluster.churn([
            {"kind": "kill", "pid": 0},
            {"kind": "kill", "pid": 1},
            {"kind": "kill", "pid": 2},
            {"kind": "restart", "pid": 0},
            {"kind": "restart", "pid": 1},
            {"kind": "restart", "pid": 2},
        ])
        churn_posts = [p for p in posted if p[1] == "churn"]
        assert len(churn_posts) == cluster.shards
        assert {shard for shard, _, _ in churn_posts} == set(range(cluster.shards))
        # Every worker received the full batch (it splits locally).
        assert all(len(payload) == 6 for _, _, payload in churn_posts)
        # The convenience front doors are one-op batches over the same
        # path: one post per shard each, never per-pid fan-out beyond it.
        del posted[:]
        cluster.kill(3)
        cluster.restart(3)
        assert [p[1] for p in posted] == ["churn"] * (2 * cluster.shards)
        cluster.shutdown()
    finally:
        cluster.close()


def test_churn_validates_before_posting_anything(tmp_path):
    cluster = build(tmp_path, n=4, shards=2, workload=None, config=None,
                    detector_latency=None, spoolers=False, delay=0.0,
                    time_scale=0.005)
    try:
        cluster.start()
        posted = spy_on_posts(cluster)
        with pytest.raises(KeyError, match="unknown pid"):
            cluster.churn([{"kind": "kill", "pid": 0}, {"kind": "kill", "pid": 99}])
        with pytest.raises(SimulationError, match="already a cluster member"):
            cluster.churn([{"kind": "join", "pid": 2}])
        with pytest.raises(KeyError, match="unknown successor"):
            cluster.churn([{"kind": "leave", "pid": 0, "successor": 42}])
        with pytest.raises(SimulationError, match="unknown churn op"):
            cluster.churn([{"kind": "detonate", "pid": 0}])
        # A rejected batch must not have reached any worker.
        assert [p for p in posted if p[1] == "churn"] == []
        cluster.shutdown()
    finally:
        cluster.close()


def test_join_leave_handoff_and_restart_across_shards(tmp_path):
    cluster = build(tmp_path)
    try:
        cluster.start()
        cluster.wait_until_committed(1, timeout=1200.0)
        # Grow by one, retire one with a handoff, and bounce one — as a
        # single batch where possible.
        cluster.join(6)
        cluster.churn([
            {"kind": "leave", "pid": 1, "successor": 0},
            {"kind": "kill", "pid": 2},
        ])
        cluster.restart(2)
        cluster.wait_until_committed(2, timeout=1200.0)
        cluster.quiesce()
        cluster.shutdown()
    finally:
        cluster.close()

    summary = cluster.summary()
    errors = [e for s in summary["per_shard"] for e in s["timer_errors"]]
    assert errors == []

    index = cluster.merged_index()
    assert index.count(K_JOIN) == 1
    assert index.count(K_LEAVE) == 1
    assert index.count(K_HANDOFF) == 1
    joins = index.by_kind(K_JOIN)
    assert joins[0].pid == 6
    leaves = index.by_kind(K_LEAVE)
    assert leaves[0].pid == 1 and leaves[0].fields["successor"] == 0
    # The churn-tolerant battery: P6 first appears mid-trace, P1 departs.
    check_c1_from_trace(index)
