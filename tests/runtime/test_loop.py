"""AsyncScheduler / AsyncRuntime kernel-contract tests.

Every test wraps its coroutine in ``asyncio.wait_for`` so a deadlock can
never hang the suite (there is no pytest-asyncio/pytest-timeout dependency).
"""

import asyncio

import pytest

from repro.errors import SimulationError
from repro.kernel import KernelLike, SchedulerLike, TimerHandle
from repro.runtime.loop import AsyncRuntime, AsyncScheduler
from repro.sim import Simulation
from repro.sim.node import Node
from repro.sim.scheduler import Scheduler


def run(coro, timeout=30.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class Recorder(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.events = []

    def on_start(self):
        self.events.append("start")


# ----------------------------------------------------------------------
# Contract conformance
# ----------------------------------------------------------------------

def test_both_kernels_satisfy_the_protocols():
    assert isinstance(Simulation(), KernelLike)
    assert isinstance(AsyncRuntime(), KernelLike)
    assert isinstance(Scheduler(), SchedulerLike)
    assert isinstance(AsyncScheduler(), SchedulerLike)


def test_sim_and_async_timer_handles_share_the_contract():
    sim_handle = Scheduler().at(1.0, lambda: None)
    async_handle = AsyncScheduler().at(1.0, lambda: None)
    assert isinstance(sim_handle, TimerHandle)
    assert isinstance(async_handle, TimerHandle)


# ----------------------------------------------------------------------
# Scheduler semantics
# ----------------------------------------------------------------------

def test_preloop_timers_fire_after_start():
    fired = []
    scheduler = AsyncScheduler(time_scale=0.01)
    scheduler.at(1.0, lambda: fired.append("a"))
    scheduler.after(2.0, lambda: fired.append("b"))
    assert scheduler.pending == 2
    assert fired == []

    async def scenario():
        scheduler.attach(asyncio.get_running_loop())
        await asyncio.sleep(0.05)

    run(scenario())
    assert fired == ["a", "b"]
    assert scheduler.pending == 0


def test_cancel_works_before_and_after_attach():
    fired = []
    scheduler = AsyncScheduler(time_scale=0.01)
    early = scheduler.at(1.0, lambda: fired.append("early"))
    early.cancel()
    early.cancel()  # idempotent
    assert early.cancelled

    async def scenario():
        scheduler.attach(asyncio.get_running_loop())
        late = scheduler.at(scheduler.now + 1.0, lambda: fired.append("late"))
        late.cancel()
        await asyncio.sleep(0.05)

    run(scenario())
    assert fired == []
    assert scheduler.timers_cancelled == 2
    assert scheduler.pending == 0


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        AsyncScheduler().after(-1.0, lambda: None)


def test_scheduling_in_the_past_clamps_to_now():
    fired = []
    scheduler = AsyncScheduler(time_scale=0.01)

    async def scenario():
        scheduler.attach(asyncio.get_running_loop())
        await asyncio.sleep(0.03)  # now is well past 0
        scheduler.at(0.0, lambda: fired.append(scheduler.now))
        await asyncio.sleep(0.03)

    run(scenario())
    assert len(fired) == 1
    assert fired[0] >= 0.0


def test_callback_errors_are_collected_not_fatal():
    def boom():
        raise ValueError("protocol bug")

    runtime = AsyncRuntime(time_scale=0.01)
    runtime.scheduler.at(0.5, boom, label="boom")

    async def scenario():
        await runtime.start()
        await runtime.run_for(2.0)
        with pytest.raises(SimulationError, match="boom"):
            await runtime.shutdown()

    run(scenario())


# ----------------------------------------------------------------------
# Runtime lifecycle
# ----------------------------------------------------------------------

def test_now_advances_in_protocol_units_and_freezes_at_shutdown():
    runtime = AsyncRuntime(time_scale=0.01)

    async def scenario():
        await runtime.start()
        assert runtime.now < 1.0
        await runtime.run_for(5.0)
        assert runtime.now >= 5.0
        await runtime.shutdown()

    run(scenario())
    frozen = runtime.now
    assert frozen >= 5.0
    assert runtime.now == frozen  # clock no longer ticks


def test_on_start_fires_and_double_start_rejected():
    runtime = AsyncRuntime(time_scale=0.01)
    node = runtime.add_node(Recorder(0))

    async def scenario():
        await runtime.start()
        with pytest.raises(SimulationError):
            await runtime.start()
        await runtime.shutdown()

    run(scenario())
    assert node.events == ["start"]


def test_join_reaches_quiescence():
    runtime = AsyncRuntime(time_scale=0.01)
    fired = []
    runtime.scheduler.at(1.0, lambda: fired.append(1))
    runtime.scheduler.at(2.0, lambda: fired.append(2))

    async def scenario():
        await runtime.start()
        await runtime.join(timeout=30.0)
        assert runtime.scheduler.pending == 0
        await runtime.shutdown()

    run(scenario())
    assert fired == [1, 2]


def test_wait_until_times_out():
    runtime = AsyncRuntime(time_scale=0.01)

    async def scenario():
        await runtime.start()
        with pytest.raises(SimulationError, match="timed out"):
            await runtime.wait_until(lambda: False, timeout=1.0)
        await runtime.shutdown()

    run(scenario())


def test_sync_run_facade():
    runtime = AsyncRuntime(time_scale=0.01)
    runtime.add_node(Recorder(0))
    final = runtime.run(2.0, join=True)
    assert final >= 2.0


def test_crash_cancels_timers_like_the_sim():
    runtime = AsyncRuntime(time_scale=0.01)
    node = runtime.add_node(Recorder(0))
    fired = []

    async def scenario():
        await runtime.start()
        node.set_timer("t", 5.0, lambda: fired.append("t"))
        runtime.crash(0)
        assert not runtime.is_alive(0)
        runtime.recover(0)
        assert runtime.is_alive(0)
        await runtime.run_for(7.0)
        await runtime.shutdown()

    run(scenario())
    assert fired == []  # crash cancelled the timer
    kinds = [e.kind for e in runtime.trace.events]
    assert "crash" in kinds and "recover" in kinds
