"""The sharded runtime: many worker kernels, one protocol, one trace.

The acceptance scenario for multi-process operation: pids placed by
consistent hashing across worker OS processes, intra-shard traffic on the
loopback fast path, inter-shard traffic on wire-v2 TCP links — and the
merged per-shard traces still satisfy the paper's C1 recovery-line
consistency after a mid-run kill and restart, exactly as a single-kernel
run does.
"""

import pytest

from repro.analysis import check_c1_from_trace
from repro.core import ProtocolConfig
from repro.errors import SimulationError
from repro.runtime.shard import HashRing, ShardedCluster


# ----------------------------------------------------------------------
# HashRing: the pid -> shard agreement protocol
# ----------------------------------------------------------------------

def test_ring_is_deterministic_across_instances():
    # Two independently built rings (as parent and worker build them) must
    # agree on every placement — the map is shipped as (shards, replicas),
    # never as a table.
    a, b = HashRing(4), HashRing(4)
    assert [a.shard_of(pid) for pid in range(500)] == [
        b.shard_of(pid) for pid in range(500)
    ]


def test_ring_covers_every_shard_reasonably():
    assignment = HashRing(4).assignment(list(range(256)))
    sizes = [len(pids) for pids in assignment.values()]
    assert sum(sizes) == 256
    assert min(sizes) > 0  # no empty shard at this population
    assert max(sizes) < 256 // 4 * 3  # no shard hoards the ring


def test_ring_remap_is_incremental():
    # Consistent hashing's defining property: growing 4 -> 5 shards moves
    # only the pids whose arcs the new shard's points claim; everything
    # else keeps its owner.  (Modulo hashing would reshuffle nearly all.)
    before, after = HashRing(4), HashRing(5)
    pids = range(1000)
    moved = sum(1 for pid in pids if before.shard_of(pid) != after.shard_of(pid))
    assert 0 < moved < 500  # far from a full reshuffle


def test_ring_rejects_degenerate_shapes():
    with pytest.raises(SimulationError):
        HashRing(0)
    with pytest.raises(SimulationError):
        HashRing(2, replicas=0)


# ----------------------------------------------------------------------
# The sharded cluster (spawns real worker processes)
# ----------------------------------------------------------------------

def build(tmp_path, n=6, shards=2, seed=5, **kwargs):
    kwargs.setdefault("config", ProtocolConfig(
        checkpoint_interval=5.0, failure_resilience=True
    ))
    kwargs.setdefault("workload", dict(message_rate=1.0, step_rate=0.5, duration=20.0))
    kwargs.setdefault("time_scale", 0.01)
    return ShardedCluster(
        n=n, root=str(tmp_path / "sharded"), shards=shards, seed=seed, **kwargs
    )


def test_two_shard_cluster_commits_and_merged_trace_passes_c1(tmp_path):
    cluster = build(tmp_path)
    try:
        cluster.start()
        cluster.wait_until_committed(2, timeout=1200.0)
        # Quiesce before the cut: autonomous initiation stops, open 2PC
        # rounds drain, so no tree is cut between root and cohort commits.
        cluster.quiesce()
        polls = cluster.wait_until(lambda polls: True, what="one more poll")
        assert sum(p["open_instances"] for p in polls) == 0
        cluster.shutdown()
    finally:
        cluster.close()

    summary = cluster.summary()
    errors = [e for s in summary["per_shard"] for e in s["timer_errors"]]
    assert errors == []
    assert summary["misrouted"] == 0
    # Traffic really crossed the process boundary AND used the fast path.
    # (Shutdown is staggered, so a frame written to an already-stopped
    # peer may go unread — received can trail sent by the tail in flight.)
    assert summary["frames_sent"] > 0
    assert 0 < summary["frames_received"] <= summary["frames_sent"]
    assert summary["intra_delivered"] > 0
    assert summary["batches_sent"] <= summary["frames_sent"]

    index = cluster.merged_index()
    # The merged index holds every event every shard recorded.
    assert index.events_indexed == summary["trace_events"]
    assert index.truncated_lines == 0
    check_c1_from_trace(index, pids=list(range(cluster.n)))


def test_sharded_kill_restart_recovers_and_stays_consistent(tmp_path):
    cluster = build(tmp_path)
    victim = 1
    try:
        cluster.start()
        cluster.run_for(6.0)
        cluster.kill(victim)
        # Only the owning shard's poll lists the victim; it must go down.
        polls = cluster.wait_until(
            lambda polls: not any(p["alive"].get(victim, False) for p in polls),
            timeout=60.0, what="the kill",
        )
        assert any(victim in p["alive"] for p in polls)
        cluster.run_for(4.0)
        cluster.restart(victim)
        cluster.wait_until_committed(2, timeout=1200.0)
        cluster.shutdown()
    finally:
        cluster.close()

    summary = cluster.summary()
    errors = [e for s in summary["per_shard"] for e in s["timer_errors"]]
    assert errors == []
    assert all(count >= 2 for count in summary["committed"].values())
    check_c1_from_trace(cluster.merged_index(), pids=list(range(cluster.n)))


def test_bench_mode_drains_mixed_intra_and_inter_shard_traffic(tmp_path):
    cluster = build(
        tmp_path, n=8, shards=2,
        config=None, workload=None, bench=True,
        detector_latency=None, spoolers=False, delay=0.0, time_scale=0.005,
    )
    try:
        cluster.start()
        t_first = cluster.burst(16)
        t_last = cluster.wait_drained(8 * 16, timeout=60.0)
        assert t_last >= t_first  # perf_counter is cross-process comparable
        summary = cluster.summary()
        assert summary["delivered"] == 8 * 16
        assert summary["frames_sent"] > 0  # some pairs crossed shards
        assert summary["intra_delivered"] > 0  # some stayed local
        assert summary["frames_sent"] + summary["intra_delivered"] == 8 * 16
        assert summary["misrouted"] == 0
        cluster.shutdown()
    finally:
        cluster.close()


def test_worker_errors_surface_in_the_parent(tmp_path):
    cluster = build(
        tmp_path, n=4, shards=2, config=None, workload=None, bench=True,
        detector_latency=None, spoolers=False, delay=0.0, time_scale=0.005,
    )
    try:
        cluster.start()
        # Recovering a process that never crashed raises inside the worker
        # kernel; the pipe protocol must carry that back as an exception
        # naming the shard, not hang or silently drop it.
        with pytest.raises(SimulationError, match="worker failed"):
            cluster.restart(0)
        # Unknown pids fail at the front door with a KeyError naming the
        # pid and the ring's population — never deep inside HashRing.
        with pytest.raises(KeyError, match=r"unknown pid P99.*pids 0\.\.3"):
            cluster.kill(99)
        with pytest.raises(KeyError, match="unknown pid P-1"):
            cluster.schedule_kill(-1, at=1.0)
        with pytest.raises(KeyError, match="unknown pid P4"):
            cluster.schedule_restart(4, at=1.0)
        cluster.shutdown()
    finally:
        cluster.close()


def test_front_door_routes_by_pid_without_caller_knowing_shards(tmp_path):
    cluster = build(
        tmp_path, n=6, shards=3, config=None, workload=None, bench=True,
        detector_latency=None, spoolers=False, delay=0.0, time_scale=0.005,
    )
    try:
        # Every pid has exactly one owner and the owners partition the pids.
        seen = []
        for pid in range(cluster.n):
            owner = cluster.owner(pid)
            assert pid in owner.pids
            seen.append(owner.shard)
        assert set(seen) == set(range(3))
        all_pids = sorted(pid for w in cluster._workers for pid in w.pids)
        assert all_pids == list(range(cluster.n))
        cluster.shutdown()
    finally:
        cluster.close()
