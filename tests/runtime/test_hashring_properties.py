"""Property tests for the consistent-hash ring (Hypothesis).

The membership plane leans on three ring properties: growth remaps only a
bounded fraction of pids (elastic scale-out stays cheap), placement is a
pure function of the spec (parent and every worker agree without shipping
a table), and *every* pid always has exactly one owner in *every* view
(no pid is ever unowned mid-view-change, so misrouted traffic always has
a salvage destination).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.shard import HashRing

pids = st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                max_size=300, unique=True)


@settings(max_examples=50, deadline=None)
@given(pids=pids, shards=st.integers(min_value=1, max_value=12),
       added=st.integers(min_value=1, max_value=4))
def test_grow_remaps_a_bounded_fraction(pids, shards, added):
    # Growing K shards to K+a moves each pid only if an added point claims
    # its arc: expectation a/(K+a).  With 64 vnodes per shard the variance
    # is small; assert a generous 2x envelope plus slack for tiny samples.
    ring = HashRing(shards)
    grown = ring.grown(added)
    assert grown.shards == shards + added
    fraction = ring.remap_fraction(grown, pids)
    bound = 2.0 * added / (shards + added) + 3.0 / len(pids)
    assert 0.0 <= fraction <= min(1.0, bound)


@settings(max_examples=50, deadline=None)
@given(pids=pids, shards=st.integers(min_value=1, max_value=12),
       replicas=st.integers(min_value=1, max_value=128))
def test_placement_is_deterministic_across_independent_rings(pids, shards, replicas):
    # Two rings built from the same spec — as the parent and a worker in
    # another OS process would — must agree on every placement.
    a = HashRing(shards, replicas=replicas)
    b = HashRing(shards, replicas=replicas)
    for pid in pids:
        owner = a.shard_of(pid)
        assert owner == b.shard_of(pid)
        assert 0 <= owner < shards


@settings(max_examples=50, deadline=None)
@given(pids=pids, shards=st.integers(min_value=1, max_value=12),
       added=st.integers(min_value=1, max_value=4))
def test_no_pid_is_ever_unowned_during_a_view_change(pids, shards, added):
    # Mid-transition, traffic may be routed by either the old or the new
    # ring; both must name a valid owner for every pid, and a pid that
    # does not move keeps the same owner in both views (so only actually
    # remapped pids can ever be misrouted).
    old = HashRing(shards)
    new = old.grown(added)
    for pid in pids:
        before = old.shard_of(pid)
        after = new.shard_of(pid)
        assert 0 <= before < old.shards
        assert 0 <= after < new.shards
        if after < shards and before != after:
            # Moved between pre-existing shards: only legal if an added
            # shard's point shifted the arc — i.e. never, because points
            # of pre-existing shards are identical in both rings.
            raise AssertionError(
                f"pid {pid} moved {before}->{after} between pre-existing shards"
            )


@settings(max_examples=30, deadline=None)
@given(shards=st.integers(min_value=1, max_value=8),
       added=st.integers(min_value=1, max_value=3))
def test_grown_ring_equals_fresh_ring_of_same_size(shards, added):
    grown = HashRing(shards).grown(added)
    fresh = HashRing(shards + added)
    assert grown._hashes == fresh._hashes
    assert grown._owners == fresh._owners
