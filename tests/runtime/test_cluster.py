"""The Cluster harness: real sockets, real storage dirs, a real crash.

The acceptance scenario for the live runtime: a TCP cluster under a random
workload loses a node mid-run, brings it back on the same endpoint from its
on-disk storage, and still reaches a committed, consistency-checked global
checkpoint — verified from the merged per-node JSONL traces, the way an
operator of a real deployment would have to.
"""

import asyncio
import os

import pytest

from repro.analysis import check_c1_from_trace
from repro.core import ProtocolConfig
from repro.runtime import Cluster
from repro.workloads import RandomPeerWorkload


def run(coro, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def build(tmp_path, transport, n=3, seed=5, time_scale=0.02):
    cluster = Cluster(
        n=n,
        root=str(tmp_path / "cluster"),
        seed=seed,
        transport=transport,
        config=ProtocolConfig(checkpoint_interval=6.0, failure_resilience=True),
        time_scale=time_scale,
        detector_latency=2.0,
    )
    RandomPeerWorkload(message_rate=1.0, duration=20.0).install(
        cluster.runtime, cluster.procs
    )
    return cluster


def everyone_committed_twice(cluster):
    # Birth checkpoint is #1; a second entry means a full b1-b4 instance
    # (request, acks, ready, commit) completed on the live kernel.
    return all(count >= 2 for count in cluster.committed_counts().values())


def test_loopback_cluster_reaches_committed_consistent_state(tmp_path):
    cluster = build(tmp_path, transport="loopback")

    async def scenario():
        await cluster.start()
        await cluster.wait_until(
            lambda: everyone_committed_twice(cluster), timeout=120.0, what="committed checkpoints"
        )
        await cluster.shutdown()

    run(scenario())
    check_c1_from_trace(cluster.merged_index(), pids=list(cluster.procs))
    assert cluster.summary()["timer_errors"] == 0


def test_tcp_cluster_survives_kill_and_restart(tmp_path):
    cluster = build(tmp_path, transport="tcp")
    cluster.schedule_kill(1, at=7.0)
    cluster.schedule_restart(1, at=13.0)

    async def scenario():
        await cluster.start()
        ports_before = dict(cluster.transport.ports)
        await cluster.wait_until(
            lambda: not cluster.runtime.is_alive(1), timeout=60.0, what="the kill"
        )
        await cluster.wait_until(
            lambda: cluster.runtime.is_alive(1), timeout=60.0, what="the restart"
        )
        await cluster.wait_until(
            lambda: everyone_committed_twice(cluster), timeout=240.0, what="committed checkpoints"
        )
        await cluster.shutdown()
        return ports_before

    ports_before = run(scenario(), timeout=240.0)

    # The node came back on its original endpoint ...
    assert cluster.transport.ports == ports_before
    # ... recovered from a storage directory that really exists on disk ...
    assert os.path.isdir(os.path.join(cluster.root, "node-1"))
    # ... and the merged per-node traces certify a C1-consistent line.
    index = cluster.merged_index()
    check_c1_from_trace(index, pids=list(cluster.procs))
    assert "crash" in index.kinds() and "recover" in index.kinds()
    assert cluster.summary()["timer_errors"] == 0


def test_cluster_traces_are_sharded_per_node(tmp_path):
    cluster = build(tmp_path, transport="loopback")

    async def scenario():
        await cluster.start()
        await cluster.run_for(8.0)
        await cluster.shutdown()

    run(scenario())
    names = {os.path.basename(path) for path in cluster.router.paths}
    assert {"node-0.jsonl", "node-1.jsonl", "node-2.jsonl"} <= names
    index = cluster.merged_index()
    # Dense renumbering and non-decreasing time after the merge.
    events = index.by_kind(*index.kinds())
    assert [event.index for event in events] == list(range(len(events)))
    times = [event.time for event in events]
    assert times == sorted(times)
    assert len(events) == cluster.runtime.trace.events_recorded


def test_quiesce_drains_open_rounds_under_sustained_traffic(tmp_path):
    # quiesce() is called while the workload is still actively sending
    # (duration far beyond the quiesce point): autonomous initiation stops,
    # open 2PC rounds drain to zero even as normal traffic keeps flowing,
    # and the merged trace's recovery line is C1-clean.
    cluster = Cluster(
        n=3,
        root=str(tmp_path / "cluster"),
        seed=5,
        transport="loopback",
        config=ProtocolConfig(checkpoint_interval=4.0, failure_resilience=True),
        time_scale=0.01,
        detector_latency=2.0,
    )
    RandomPeerWorkload(message_rate=2.0, step_rate=0.5, duration=1000.0).install(
        cluster.runtime, cluster.procs
    )

    async def scenario():
        await cluster.start()
        await cluster.wait_until(
            lambda: everyone_committed_twice(cluster),
            timeout=120.0, what="committed checkpoints",
        )
        sent_before = cluster.runtime.network.normal_sent
        await cluster.quiesce()
        assert cluster.open_instances() == 0
        # The workload was still live across the quiesce window.
        assert cluster.runtime.network.normal_sent > sent_before
        # Initiation stayed off: nothing reopened after the drain.
        await cluster.run_for(3.0)
        assert cluster.open_instances() == 0
        await cluster.shutdown()
        return sent_before

    run(scenario())
    check_c1_from_trace(cluster.merged_index(), pids=list(cluster.procs))
    assert cluster.summary()["timer_errors"] == 0


def test_cluster_requires_two_nodes(tmp_path):
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        Cluster(n=1, root=str(tmp_path / "solo"))


def test_live_cluster_grows_and_shrinks_mid_run(tmp_path):
    # The membership front doors on the live kernel: a brand-new node joins
    # a running TCP cluster on its own endpoint, becomes a full protocol
    # participant (its checkpoint instance commits), then another node
    # gracefully leaves, handing its obligations to a successor — and the
    # merged trace still certifies a C1-consistent recovery line.
    cluster = build(tmp_path, transport="tcp")

    async def scenario():
        await cluster.start()
        await cluster.wait_until(
            lambda: everyone_committed_twice(cluster),
            timeout=120.0, what="committed checkpoints",
        )
        node = await cluster.join(3)
        assert 3 in cluster.transport.ports
        node.send_app_message(0, "hello")
        cluster.procs[0].send_app_message(3, "back")
        await cluster.run_for(2.0)
        node.initiate_checkpoint()
        await cluster.wait_until(
            lambda: cluster.committed_counts().get(3, 0) >= 2,
            timeout=120.0, what="the joiner's first committed instance",
        )
        await cluster.leave(1, successor=0)
        # The handoff travels to the successor as an ordinary control
        # message over real TCP — wait for acceptance, don't race it.
        await cluster.wait_until(
            lambda: 1 in cluster.procs[0].engine.adopted,
            timeout=120.0, what="the successor adopting P1's obligations",
        )
        await cluster.run_for(2.0)
        await cluster.shutdown()

    run(scenario(), timeout=240.0)

    assert 1 not in cluster.procs and 3 in cluster.procs
    index = cluster.merged_index()
    joins = index.by_kind("join")
    assert [e.pid for e in joins] == [3]
    leaves = index.by_kind("leave")
    assert [e.pid for e in leaves] == [1]
    assert leaves[0].fields["successor"] == 0
    handoffs = index.by_kind("handoff")
    assert [e.pid for e in handoffs] == [0]
    # Survivors know P1 is settled history, not a future recruit.
    for pid in (0, 2, 3):
        assert 1 in cluster.procs[pid].engine.departed_peers
    check_c1_from_trace(index)
    assert cluster.summary()["timer_errors"] == 0


def test_mixed_version_cluster_commits_consistent_checkpoint(tmp_path):
    # A rolling-upgrade cluster: node 0's endpoint only speaks the JSON v1
    # wire format while the others advertise binary v2.  Senders negotiate
    # per connection, so traffic to node 0 goes as JSON and everything else
    # as binary — and the mixed cluster still commits a C1-consistent line.
    from repro.runtime import wire
    from repro.runtime.transport import TcpTransport

    transport = TcpTransport(codec="binary", server_versions={0: wire.WIRE_V1})
    cluster = build(tmp_path, transport=transport)

    async def scenario():
        await cluster.start()
        await cluster.wait_until(
            lambda: everyone_committed_twice(cluster),
            timeout=120.0,
            what="committed checkpoints",
        )
        await cluster.shutdown()

    run(scenario())
    check_c1_from_trace(cluster.merged_index(), pids=list(cluster.procs))
    # Both formats were genuinely on the wire.
    negotiated = cluster.summary()["negotiated"]
    assert negotiated["0"] == wire.WIRE_V1
    assert all(v == wire.WIRE_V2 for pid, v in negotiated.items() if pid != "0")
    assert cluster.summary()["timer_errors"] == 0
