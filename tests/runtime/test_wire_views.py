"""Zero-copy framing: memoryview decode, FrameDecoder, batch assembly.

The TCP receive path decodes each frame straight from a ``memoryview``
slice of the socket buffer and the send path coalesces a batch into one
buffer with ``encode_batch`` — these tests pin both to the byte-exact
behaviour of the plain ``bytes`` / join-of-frames paths they replaced.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import messages as M
from repro.errors import WireError
from repro.net.message import control, normal
from repro.runtime import wire
from repro.types import MessageId, TreeId

T1 = TreeId(2, 5)
T2 = TreeId(0, 1)

# One envelope per registered body kind (all 12), plus payload variety.
CORPUS = [
    normal(0, 1, MessageId(0, 4), label=3, body=M.NormalBody(payload={"k": [1, 2]})),
    normal(
        1, 0, MessageId(1, 9), label=7,
        body=M.NormalBody(
            payload={"☃": [2**66, -0.0, ("t", None)], 5: {True, "s"}},
            markers=(T1, T2), marker_seq=3, incarnation=1,
        ),
    ),
    control(0, 1, M.ChkptReq(tree=T1, max_label=7)),
    control(0, 1, M.ChkptAck(tree=T1, positive=False, undone_notice=(T2, 3, 5))),
    control(0, 1, M.ReadyToCommit(tree=T1)),
    control(0, 1, M.Commit(tree=T1)),
    control(0, 1, M.Abort(tree=T1)),
    control(1, 0, M.RollReq(tree=T2, undo_seq=2, undone_upto=4)),
    control(1, 0, M.RollAck(tree=T2, positive=True)),
    control(1, 0, M.RollComplete(tree=T2)),
    control(1, 0, M.Restart(tree=T2)),
    control(0, 1, M.DecisionInquiry(tree=T1, decision_kind="checkpoint")),
    control(0, 1, M.DecisionReply(tree=T1, decision_kind="rollback", decision="restart")),
]
for _env in CORPUS:
    _env.send_time = 1.5


def _equal(a, b):
    for attr in ("src", "dst", "category", "msg_id", "label", "send_time", "body"):
        assert getattr(a, attr) == getattr(b, attr)
    assert type(a.body) is type(b.body)


@pytest.mark.parametrize("version", [wire.WIRE_V1, wire.WIRE_V2])
@pytest.mark.parametrize("env", CORPUS, ids=lambda e: type(e.body).__name__)
def test_view_and_bytes_decode_agree(env, version):
    blob = wire.dumps_frame(env, version=version)[wire.HEADER_SIZE:]
    via_bytes = wire.loads_frame(blob)
    via_view = wire.loads_frame(memoryview(blob))
    _equal(via_bytes, via_view)
    _equal(via_bytes, env)
    # And a view over a *larger* buffer (the receive-buffer shape).
    padded = memoryview(b"\xff" * 3 + blob + b"\xff" * 5)[3 : 3 + len(blob)]
    _equal(wire.loads_frame(padded), env)


@pytest.mark.parametrize("env", CORPUS[:3], ids=lambda e: type(e.body).__name__)
def test_truncated_view_and_bytes_raise_the_same_error(env):
    blob = wire.dumps_frame(env, version=wire.WIRE_V2)[wire.HEADER_SIZE:]
    for cut in (1, 5, len(blob) // 2, len(blob) - 1):
        with pytest.raises(WireError):
            wire.loads_frame(blob[:cut])
        with pytest.raises(WireError):
            wire.loads_frame(memoryview(blob)[:cut])


_payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**70), max_value=2**70),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=16),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
    ),
    max_leaves=8,
)


@settings(max_examples=75, deadline=None)
@given(payload=_payloads, label=st.integers(0, 2**40))
def test_view_decode_matches_bytes_decode_for_arbitrary_payloads(payload, label):
    env = normal(3, 4, MessageId(3, 11), label=label, body=M.NormalBody(payload=payload))
    env.send_time = 2.25
    blob = wire.dumps_frame(env, version=wire.WIRE_V2)[wire.HEADER_SIZE:]
    via_view = wire.loads_frame(memoryview(blob))
    _equal(via_view, wire.loads_frame(blob))
    # Re-encoding what the view path decoded reproduces the exact bytes.
    assert wire.dumps_frame(via_view, version=wire.WIRE_V2)[wire.HEADER_SIZE:] == blob


# ----------------------------------------------------------------------
# FrameDecoder: the sans-IO splitter behind the TCP receive loop
# ----------------------------------------------------------------------
def _frames_bytes(envs, version=wire.WIRE_V2):
    return b"".join(wire.dumps_frame(e, version=version) for e in envs)


@pytest.mark.parametrize("chunk", [1, 3, 7, 64, 10**6])
def test_frame_decoder_reassembles_across_reads(chunk):
    stream = _frames_bytes(CORPUS)
    decoder = wire.FrameDecoder()
    decoded = []
    for i in range(0, len(stream), chunk):
        decoder.feed(stream[i : i + chunk])
        for view in decoder.frames():
            assert isinstance(view, memoryview)
            decoded.append(wire.loads_frame(view))
    decoder.eof()  # clean close between frames
    assert decoder.pending() == 0
    assert len(decoded) == len(CORPUS)
    for got, want in zip(decoded, CORPUS):
        _equal(got, want)


def test_frame_decoder_eof_contract_matches_read_frame():
    decoder = wire.FrameDecoder()
    decoder.eof()  # empty stream: clean

    decoder = wire.FrameDecoder()
    decoder.feed(b"\x00\x00")
    with pytest.raises(WireError, match="mid-header"):
        decoder.eof()

    decoder = wire.FrameDecoder()
    decoder.feed(struct.pack(">I", 10) + b"abc")
    with pytest.raises(WireError, match="mid-frame"):
        decoder.eof()


def test_frame_decoder_rejects_oversized_header():
    decoder = wire.FrameDecoder()
    decoder.feed(struct.pack(">I", wire.MAX_FRAME + 1))
    with pytest.raises(WireError, match="exceeds"):
        list(decoder.frames())


def test_frame_decoder_abandoned_iteration_releases_views():
    stream = _frames_bytes(CORPUS[:4])
    decoder = wire.FrameDecoder()
    decoder.feed(stream)
    for view in decoder.frames():
        break  # abandon mid-iteration: the view must still be released
    decoder.feed(stream)  # would raise BufferError if an export leaked
    assert sum(1 for _ in decoder.frames()) == 3 + 4  # 3 left over + 4 fed


# ----------------------------------------------------------------------
# encode_batch: the coalesced send buffer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("version", [wire.WIRE_V1, wire.WIRE_V2])
def test_encode_batch_is_byte_identical_to_joined_frames(version):
    assert wire.encode_batch([], version=version) == b""
    batch = CORPUS
    joined = _frames_bytes(batch, version=version)
    assert wire.encode_batch(batch, version=version) == joined
    # And the buffer reuse does not corrupt a second batch.
    assert wire.encode_batch(batch[:5], version=version) == _frames_bytes(
        batch[:5], version=version
    )


def test_encode_batch_splits_back_into_the_same_envelopes():
    buffer = wire.encode_batch(CORPUS, version=wire.WIRE_V2)
    decoder = wire.FrameDecoder()
    decoder.feed(buffer)
    decoded = [wire.loads_frame(view) for view in decoder.frames()]
    decoder.eof()
    for got, want in zip(decoded, CORPUS):
        _equal(got, want)
