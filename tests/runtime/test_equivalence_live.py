"""Satellite (a): the live kernel is observationally equivalent to the sim.

The same scripted scenario (the paper's Figures 2/3/4) on the same seed and
delay model must commit the identical checkpoint ledger — sequence numbers
plus the recv/sent manifests the consistency checkers read — whether the
protocol runs under the discrete-event :class:`Simulation` or the real
asyncio :class:`AsyncRuntime` with the loopback transport (wire codec on).
Timestamps are deliberately excluded from the comparison: wall-clock jitter
moves them, but it must never move a protocol decision.
"""

import pytest

from repro.analysis import check_c1
from repro.core import CheckpointProcess
from repro.net import FixedDelay
from repro.runtime import AsyncRuntime, LoopbackTransport
from repro.sim import Simulation
from repro.workloads import (
    ScriptedWorkload,
    figure2_steps,
    figure3_steps,
    figure4_steps,
)

SEED = 1
HORIZON = 40.0

SCENARIOS = {
    "figure2": (figure2_steps, (0, 1)),
    "figure3": (figure3_steps, (1, 4)),
    "figure4": (figure4_steps, (1, 4)),
}


def ledger_of(proc):
    """Protocol-visible view of one committed checkpoint ledger."""
    return [
        (record.seq, tuple(record.meta.get("recv", ())), tuple(record.meta.get("sent", ())))
        for record in proc.committed_history
    ]


def observe_sim(steps, pids):
    sim = Simulation(seed=SEED, delay_model=FixedDelay(0.5))
    procs = {i: sim.add_node(CheckpointProcess(i)) for i in range(pids[0], pids[1] + 1)}
    ScriptedWorkload(steps()).install(sim, procs)
    sim.run(until=HORIZON)
    return summarize(sim, procs)


def observe_live(steps, pids):
    runtime = AsyncRuntime(
        seed=SEED,
        transport=LoopbackTransport(),          # codec on: full wire round-trip
        delay_model=FixedDelay(0.5),
        time_scale=0.01,
    )
    procs = {
        i: runtime.add_node(CheckpointProcess(i)) for i in range(pids[0], pids[1] + 1)
    }
    ScriptedWorkload(steps()).install(runtime, procs)
    runtime.run(HORIZON, join=True, timeout=60.0)
    return summarize(runtime, procs)


def summarize(kernel, procs):
    check_c1(procs.values())  # both kernels must land on a consistent line
    return {
        "ledgers": {pid: ledger_of(proc) for pid, proc in procs.items()},
        "final_seq": {pid: proc.store.oldchkpt.seq for pid, proc in procs.items()},
        "normal_sent": kernel.network.normal_sent,
        "control_sent": kernel.network.control_sent,
        "delivered": kernel.network.delivered,
        "dropped": kernel.network.dropped,
    }


@pytest.mark.parametrize("name", sorted(SCENARIOS), ids=sorted(SCENARIOS))
def test_sim_and_live_kernel_commit_identical_ledgers(name):
    steps, pids = SCENARIOS[name]
    assert observe_sim(steps, pids) == observe_live(steps, pids)
