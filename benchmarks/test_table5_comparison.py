"""E-T5 — the Section 5 comparison table, measured on a shared workload."""

from repro.bench.experiments import experiment_table5
from repro.bench.harness import format_table, print_experiment


def test_table5_comparison(run_once):
    rows = run_once(experiment_table5, n=8, seeds=4, duration=50.0)
    print_experiment("E-T5", format_table(rows))
    by_name = {r["algorithm"]: r for r in rows}
    lb = by_name["leu-bhargava"]
    ext = by_name["leu-bhargava-ext"]
    kt = by_name["koo-toueg"]
    ts = by_name["tamir-sequin"]
    bs = by_name["barigazzi-strigini"]

    # Scope: Tamir-Sequin forces the whole system (n-1); the minimal
    # algorithms force strictly fewer on average.
    assert ts["mean_forced"] == 7.0
    assert lb["mean_forced"] < ts["mean_forced"]
    assert kt["mean_forced"] < ts["mean_forced"]

    # Concurrency: Leu-Bhargava never rejects; Koo-Toueg does.
    assert lb["rejected"] == 0
    assert kt["rejected"] > 0

    # Blocking: the extension eliminates checkpoint send-blocking; the
    # blocking baselines pay much more than the base algorithm.
    assert ext["send_blocked"] == 0.0
    assert bs["send_blocked"] > lb["send_blocked"]

    # Everybody that ran instances committed some.
    assert all(r["committed"] > 0 for r in rows)
