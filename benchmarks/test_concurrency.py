"""E-CONC — concurrency scaling: Leu-Bhargava vs. Koo-Toueg rejection."""

from repro.bench.experiments import experiment_concurrency
from repro.bench.harness import format_table, print_experiment


def test_concurrency(run_once):
    rows = run_once(experiment_concurrency, max_k=5, seeds=3)
    print_experiment("E-CONC", format_table(rows))
    lb = {r["k_initiators"]: r for r in rows if r["algorithm"] == "leu-bhargava"}
    kt = {r["k_initiators"]: r for r in rows if r["algorithm"] == "koo-toueg"}

    # Leu-Bhargava: never a rejection, at any contention level.
    assert all(r["rejected"] == 0 for r in lb.values())
    # Koo-Toueg rejects once contention appears, and rejections grow with k.
    assert kt[1]["rejected"] <= kt[max(kt)]["rejected"]
    assert sum(r["rejected"] for r in kt.values()) > 0
    # Both still commit instances eventually (Koo-Toueg via retries).
    assert all(r["committed"] > 0 for r in rows)
