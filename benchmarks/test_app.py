"""E-APP — checkpoint-as-a-service rows + ``BENCH_APP.json``.

Runs the :mod:`repro.bench.app` sweep (checkpoint interval × job count ×
kills, plus one live-kernel witness row) and gates the subsystem's core
claims on every row:

* the job-outcome audit reports **zero** committed-stage re-executions —
  a stage acknowledged as committed never runs twice, at any sweep point;
* with kills enabled, checkpointed runs re-execute **strictly less** work
  than the from-scratch baseline (birth checkpoint only): the measured
  resume savings the paper's incremental checkpoints exist to buy;
* kills-disabled rows re-execute nothing at all.

The rows merge into ``BENCH_APP.json`` under the ``eapp`` key.  CI runs
this with ``EAPP_QUICK=1``; the committed artifact comes from the full
sweep (jobs up to 1000).
"""

import json
import pathlib

from repro.bench.app import experiment_app, quick_mode
from repro.bench.harness import format_table, print_experiment, rows_to_json

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_APP.json"


def merge_artifact(key, payload):
    data = {}
    if ARTIFACT.exists():
        data = json.loads(ARTIFACT.read_text())
    data[key] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2) + "\n")


def test_app_service_sweep(run_once):
    rows = run_once(experiment_app)
    print_experiment("E-APP", format_table(rows))

    assert rows, "eapp rows missing"
    for row in rows:
        # The headline invariant, at every sweep point on both kernels:
        # no committed stage ever re-executed.
        assert row["stage_reexec_violations"] == 0, row
        # Every submitted job completed and its completion became durable
        # (covered by a committed checkpoint) before the run was cut.
        assert row["jobs_done"] == row["jobs"], row
        assert row["jobs_durable"] == row["jobs"], row
        if row["kills"] == 0:
            # No failures -> no re-execution, nothing to salvage.
            assert row["reexec"] == 0, row
        if row["kernel"] == "live":
            assert row["c1"] is True, row

    kill_rows = [r for r in rows if r["kernel"] == "sim" and r["kills"] > 0]
    assert kill_rows, "no kills-enabled sweep point"
    for row in kill_rows:
        # Restarts salvaged checkpointed progress...
        assert row["salvaged"] > 0, row
        # ...and re-executed strictly less than a from-scratch rerun of the
        # same kill scenario: the measured resume savings.
        assert row["reexec"] < row["reexec_scratch"], row
    if not quick_mode():
        # The full sweep must include the >=1000-concurrent-job audit point.
        assert any(r["jobs"] >= 1000 for r in kill_rows)

    merge_artifact(
        "eapp",
        {
            "title": "E-APP — checkpoint-as-a-service job workload",
            "rows": rows_to_json(rows),
        },
    )
