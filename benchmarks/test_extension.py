"""E-EXT — Section 3.5.3: the extension removes checkpoint send-blocking."""

from repro.bench.experiments import experiment_extension
from repro.bench.harness import format_table, print_experiment


def test_extension(run_once):
    rows = run_once(experiment_extension, seeds=4)
    print_experiment("E-EXT", format_table(rows))
    base, ext = rows
    assert base["send_blocked_time_per_run"] > 0
    assert ext["send_blocked_time_per_run"] == 0.0
    assert ext["instances_committed"] > 0
