"""Benchmark-suite conventions.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round): the artifacts are reproduction tables, not microbenchmarks, and the
timing column simply records how long each reproduction takes.  Each
benchmark also prints its artifact so ``pytest benchmarks/ --benchmark-only
-s`` shows the rows EXPERIMENTS.md records.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` once under the benchmark timer and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
