"""E-FIG4 — Figure 4 / Example 2: interfering instances share checkpoints."""

from repro.bench.experiments import experiment_fig4
from repro.bench.harness import format_table, print_experiment


def test_fig4_example2(run_once):
    result = run_once(experiment_fig4)
    print_experiment("E-FIG4", format_table([result]))
    assert result["both_committed"] is True
    # The shared members took exactly one tentative checkpoint each,
    # reused by both trees — the paper's shared-checkpoint mechanism.
    assert result["tentatives_taken_by_shared_members"] == {3: 1, 4: 1}
    assert len(result["instances"]) == 2
