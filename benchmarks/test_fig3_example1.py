"""E-FIG3 — Figure 3 / Example 1: the chain checkpoint tree P2 -> P3 -> P4."""

from repro.bench.experiments import experiment_fig3
from repro.bench.harness import format_table, print_experiment


def test_fig3_example1(run_once):
    result = run_once(experiment_fig3)
    print_experiment("E-FIG3", format_table([result]))
    assert result["edges"] == [(2, 3), (3, 4)]
    assert result["decided"] == "commit"
    assert result["participants_beyond_initiator"] == [3, 4]
    assert result["p1_left_out"] is True
    assert result["committed_seqs"] == {1: 2, 2: 2, 3: 2, 4: 2}
