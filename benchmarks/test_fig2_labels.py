"""E-FIG2 — Figure 2: checkpoint/rollback-point numbering and labels."""

from repro.bench.experiments import experiment_fig2
from repro.bench.harness import format_table, print_experiment


def test_fig2_labels(run_once):
    rows = run_once(experiment_fig2)
    print_experiment("E-FIG2", format_table(rows))
    assert [r["label"] for r in rows] == [r["paper_label"] for r in rows]
    assert [r["label"] for r in rows] == [1, 2, 3, 3, 4]
