"""E-FAIL — Section 6: resilience to multiple process failures."""

from repro.bench.experiments import experiment_failures
from repro.bench.harness import format_table, print_experiment


def test_failures(run_once):
    result = run_once(experiment_failures, seeds=8)
    print_experiment("E-FAIL", format_table([result]))
    assert result["consistent_runs"] == result["runs"] == 8
