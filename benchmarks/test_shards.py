"""E-SCALE shards axis — scaling gates + ``BENCH_SCALE.json`` rows.

Records the sharded runtime's aggregate-throughput table and gates the
scaling claim **only where it can honestly hold**: shards cannot beat one
kernel on one visible CPU (the workers time-slice a single core and every
inter-shard hop is pure overhead), so the ≥2.5x at shards=4 gate applies
only on a ≥4-CPU runner with the full sweep.  Every row records the CPU
count it was measured under, so the artifact is interpretable either way.

The rows merge into ``BENCH_SCALE.json`` under the ``escale_shards`` key,
preserving whatever other experiments already recorded there.
"""

import json
import pathlib

from repro.bench.harness import format_table, print_experiment, rows_to_json
from repro.bench.scale import quick_mode
from repro.bench.shards import experiment_shards
from repro.runtime.shard import visible_cpus

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_SCALE.json"


def merge_artifact(key, payload):
    data = {}
    if ARTIFACT.exists():
        data = json.loads(ARTIFACT.read_text())
    data[key] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2) + "\n")


def test_sharded_runtime_scaling(run_once):
    rows = run_once(experiment_shards)
    print_experiment("E-SCALE shards", format_table(rows))

    assert rows, "shards rows missing"
    for row in rows:
        # Every burst fully drained and produced a finite, positive rate.
        assert row["env_s"] > 0
        assert row["last_delivery_ms"] > 0
        assert row["cpus"] >= 1
        # A single shard never crosses the wire; more shards always do.
        if row["shards"] == 1:
            assert row["inter_shard_frac"] == 0.0
        else:
            assert row["inter_shard_frac"] > 0.0

    cpus = visible_cpus()
    if cpus >= 4 and not quick_mode():
        # The scaling gate, only where parallelism physically exists.
        for n in sorted({row["n"] for row in rows}):
            base = next(r for r in rows if r["n"] == n and r["shards"] == 1)
            four = next(r for r in rows if r["n"] == n and r["shards"] == 4)
            speedup = four["env_s"] / base["env_s"]
            assert speedup >= 2.5, (
                f"shards=4 only {speedup:.2f}x over shards=1 at n={n} "
                f"on {cpus} CPUs"
            )

    merge_artifact(
        "escale_shards",
        {"title": "E-SCALE — sharded runtime scaling", "rows": rows_to_json(rows)},
    )
