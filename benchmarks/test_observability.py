"""E-OBSERVABILITY — the trace pipeline at scale (DESIGN.md observability).

Runs the same seeded workload at n=32 and n=64 (2x the E-SCALE maximum)
under both pipeline configurations and asserts the refactor's two claims:

* **memory boundedness** — the streaming configuration retains zero events
  in process while writing exactly the event stream the in-memory run kept
  (determinism makes the two streams identical, line for line);
* **query speed** — the incremental ``TraceIndex`` answers the analysis
  layer's by-kind query mix at least 3x faster than naive full-trace scans
  (in practice far more; the margin keeps the assertion timing-robust).
"""

from repro.bench.ablations import experiment_observability
from repro.bench.harness import format_table, print_experiment


def test_streaming_is_bounded_and_index_is_faster(run_once):
    rows = run_once(experiment_observability, sizes=(32, 64))
    print_experiment("E-OBSERVABILITY", format_table(rows))
    assert [r["n"] for r in rows] == [32, 64]
    for row in rows:
        assert row["events"] > 0
        # Memory boundedness: the in-memory run retains everything, the
        # streaming run nothing — yet it wrote the identical stream.
        assert row["inmemory_retained"] == row["events"]
        assert row["stream_retained"] == 0
        assert row["stream_written"] == row["events"]
        # Query speed: the index beats the scan with a wide margin.
        assert row["indexed_ms"] < row["scan_ms"]
        assert row["speedup"] > 3.0
