"""E-FIG1 — Figure 1: the inconsistent global checkpoint is never created."""

from repro.bench.experiments import experiment_fig1
from repro.bench.harness import format_table, print_experiment


def test_fig1_inconsistency(run_once):
    result = run_once(experiment_fig1)
    print_experiment("E-FIG1", format_table([result]))
    # The algorithm forced the sender forward instead of committing the
    # naive (inconsistent) line.
    assert result["sender_forced_to_seq"] == result["receiver_checkpoint_seq"] == 2
