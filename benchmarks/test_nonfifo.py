"""E-NONFIFO — correctness on adversarially reordering channels."""

from repro.bench.experiments import experiment_nonfifo
from repro.bench.harness import format_table, print_experiment


def test_nonfifo(run_once):
    result = run_once(experiment_nonfifo, seeds=6)
    print_experiment("E-NONFIFO", format_table([result]))
    assert result["consistent_runs"] == result["runs"] == 6
    # The channel genuinely reordered messages in most runs — correctness
    # was not an artifact of accidentally-FIFO behaviour.
    assert result["runs_with_observed_reordering"] >= result["runs"] // 2
