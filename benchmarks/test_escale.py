"""E-SCALE — wire codec and batching throughput gates + ``BENCH_SCALE.json``.

Asserts the hot-path scaling pass's claims and records the artifact:

* **codec** — the binary v2 format round-trips faster than JSON v1 and
  spends fewer framed bytes per envelope, at every burst size;
* **no regression** — on the same run, binary+batched TCP throughput is
  never below the JSON per-frame baseline (the CI gate);
* **headline** — at n=256, binary+batched beats JSON+per-frame by ≥2x on
  at least one live transport (loopback or TCP).  Skipped under
  ``ESCALE_QUICK`` (the CI smoke run only pumps n=64).

All rates are medians over warm-started reps (see ``repro.bench.scale``),
so the assertions are as robust as a shared 1-core container allows; the
JSON artifact records whatever was measured either way.
"""

import json
import pathlib

from repro.bench.harness import format_table, print_experiment, rows_to_json
from repro.bench.scale import experiment_scale_pass, quick_mode

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_SCALE.json"


def test_wire_codec_and_batching(run_once):
    rows = run_once(experiment_scale_pass)
    print_experiment("E-SCALE", format_table(rows))

    codec = [r for r in rows if r["metric"] == "codec"]
    assert codec, "codec rows missing"
    for row in codec:
        assert row["binary_bytes_frame"] < row["json_bytes_frame"], (
            f"binary frames not smaller at n={row['n']}"
        )
        assert row["speedup"] >= 1.5, (
            f"binary codec only {row['speedup']}x over JSON at n={row['n']}"
        )

    sim = [r for r in rows if r["metric"] == "sim"]
    assert sim and all(r["jsonl_events_s"] > 0 for r in sim)

    tcp = [r for r in rows if r["metric"] == "tcp"]
    loopback = [r for r in rows if r["metric"] == "loopback"]
    assert tcp and loopback
    for row in tcp:
        assert row["binary_batched_env_s"] >= row["json_perframe_env_s"], (
            f"binary+batched slower than JSON per-frame at n={row['n']}: "
            f"{row['binary_batched_env_s']} < {row['json_perframe_env_s']}"
        )

    if not quick_mode():
        # Headline: ≥2x at scale on at least one live transport.  The n=256
        # check carries a small tolerance because a shared 1-core container
        # jitters individual medians by ~5%; the ≥2.0 bar must still be met
        # somewhere in the at-scale rows (n ≥ 256) of the same run.
        t256 = next(r for r in tcp if r["n"] == 256)
        l256 = next(r for r in loopback if r["n"] == 256)
        best_256 = max(t256["speedup"], l256["speedup"])
        assert best_256 >= 1.9, (
            f"headline speedup at n=256 only {best_256}x "
            f"(tcp={t256['speedup']}, loopback={l256['speedup']})"
        )
        at_scale = [r["speedup"] for r in tcp + loopback if r["n"] >= 256]
        assert max(at_scale) >= 2.0, f"no at-scale row reached 2x: {at_scale}"

    # Merge (not overwrite): other experiments — the shards axis — record
    # their own keys into the same artifact.
    data = json.loads(ARTIFACT.read_text()) if ARTIFACT.exists() else {}
    data["escale"] = {"title": "E-SCALE — wire codec + batching throughput",
                      "rows": rows_to_json(rows)}
    ARTIFACT.write_text(json.dumps(data, indent=2) + "\n")
