"""E-MIN — Theorems 3 and 4: minimality of isolated instances."""

from repro.bench.experiments import experiment_minimality
from repro.bench.harness import format_table, print_experiment


def test_minimality(run_once):
    result = run_once(experiment_minimality, seeds=8)
    print_experiment("E-MIN", format_table([result]))
    assert result["violations"] == 0
    assert result["checkpoint_instances_verified_minimal"] == 8
    assert result["rollback_instances_verified_minimal"] == 8
