"""E-PERF — snapshot engine throughput and parallel sweep speedup.

Asserts the PR's two performance claims and writes ``BENCH_PERF.json``:

* **checkpoint throughput** — the snapshot-backed storage runs the
  take→read→commit→read checkpoint cycle at least 3x faster than the
  deep-copy baseline at n=64 and n=128 (in practice the margin is 10x+;
  3x keeps the assertion robust on loaded machines);
* **delta encoding** — successive checkpoints delta-encode to a fraction
  of their full-snapshot bytes;
* **parallel sweeps** — fanning the standard sweep over 2 workers beats
  the serial loop by ≥1.5x *when the machine has ≥2 CPUs*.  On a
  single-core container that is physically impossible, so the assertion
  is gated on the visible core count; the measured numbers (and the core
  count) are recorded in the JSON artifact either way.
"""

import json
import os
import pathlib

from repro.bench.harness import format_table, print_experiment, rows_to_json
from repro.bench.perf import experiment_perf

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PERF.json"


def test_snapshot_engine_and_parallel_sweeps(run_once):
    rows = run_once(experiment_perf, sizes=(64, 128))
    print_experiment("E-PERF", format_table(rows))

    ops = [r for r in rows if r["metric"] == "checkpoint_ops"]
    assert [r["n"] for r in ops] == [64, 128]
    for row in ops:
        assert row["speedup"] >= 3.0, (
            f"snapshot backend only {row['speedup']}x over deep-copy at n={row['n']}"
        )

    deltas = [r for r in rows if r["metric"] == "delta_encoding"]
    assert deltas and all(r["delta_bytes"] < r["full_bytes"] for r in deltas)
    assert all(r["savings"] > 0.5 for r in deltas)

    (sweep,) = [r for r in rows if r["metric"] == "parallel_sweep"]
    assert sweep["deterministic"], "parallel sweep diverged from the serial run"
    if (os.cpu_count() or 1) >= 2:
        assert sweep["speedup"] >= 1.5, (
            f"2-worker sweep only {sweep['speedup']}x on {sweep['cpus']} CPUs"
        )

    ARTIFACT.write_text(
        json.dumps(
            {"perf": {"title": "E-PERF — snapshot engine + parallel sweeps",
                      "rows": rows_to_json(rows)}},
            indent=2,
        )
        + "\n"
    )
