"""E-SCALE — per-instance cost vs. system size (DESIGN.md's n=4..32 sweep)."""

from repro.bench.ablations import experiment_scale
from repro.bench.harness import format_table, print_experiment


def test_scale(run_once):
    rows = run_once(experiment_scale, sizes=(4, 8, 16, 32), seeds=2)
    print_experiment("E-SCALE", format_table(rows))
    by_n = {r["n"]: r for r in rows}
    # Bounded dependency window: the tree tracks the neighbourhood, so the
    # instance cost stays far below the all-process (n-1) line as n grows.
    assert by_n[32]["burst_mean_forced"] < 31 * 0.5
    assert by_n[32]["burst_mean_forced"] <= by_n[4]["burst_mean_forced"] + 31 * 0.4
    # Long unchecked windows percolate: dependencies approach everyone —
    # minimality is about recruiting no MORE than the true dependency set.
    assert by_n[32]["long_window_mean_forced"] > by_n[32]["burst_mean_forced"]
