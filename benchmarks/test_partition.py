"""E-PART — Section 6: pessimistic network partitioning with voting."""

from repro.bench.experiments import experiment_partition
from repro.bench.harness import format_table, print_experiment


def test_partition(run_once):
    result = run_once(experiment_partition, seeds=5)
    print_experiment("E-PART", format_table([result]))
    assert result["reintegrated_runs"] == result["runs"] == 5
