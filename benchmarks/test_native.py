"""E-NATIVE — compiled-hot-path gates + ``BENCH_SCALE.json`` rows.

Records the interpreted-vs-native speedup matrix and gates the PR's
headline claim **only where the native build is actually active**: with
the extensions compiled, every codec row must show >= 5x over the
interpreted wire-v2 round-trip.  Without a C toolchain the rows are
recorded as clearly-marked ``interpreted-fallback`` (no speedup column)
and no gate applies — the artifact stays honest either way.

The snapshot and sim rows are recorded un-gated: both backends spend most
of their snapshot time building the same Python ``FrozenDict`` objects,
so those deltas are small by design and reported as measured.

The rows merge into ``BENCH_SCALE.json`` under the ``enative`` key,
preserving whatever other experiments already recorded there.
"""

import json
import pathlib

from repro.bench.harness import format_table, print_experiment, rows_to_json
from repro.bench.native import experiment_native, quick_mode
from repro.runtime import wire
from repro.stable import snapshot as snap

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_SCALE.json"

CODEC_GATE = 5.0


def merge_artifact(key, payload):
    data = {}
    if ARTIFACT.exists():
        data = json.loads(ARTIFACT.read_text())
    data[key] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2) + "\n")


def test_native_speedup_matrix(run_once):
    rows = run_once(experiment_native)
    print_experiment("E-NATIVE", format_table(rows))

    codec = [r for r in rows if r["metric"] == "codec"]
    snapshot = [r for r in rows if r["metric"] == "snapshot"]
    sim = [r for r in rows if r["metric"] == "sim"]
    assert codec and snapshot and sim, "E-NATIVE row families missing"

    native = wire.native_active() and snap.native_active()
    for row in codec:
        assert row["interp_env_s"] > 0
        if native:
            assert row["backend"] == "cext"
            assert row["speedup"] >= CODEC_GATE, (
                f"codec speedup only {row['speedup']}x at n={row['n']} "
                f"(gate: >= {CODEC_GATE}x with the native build active)"
            )
        else:
            # No toolchain: the fallback row must say so and claim nothing.
            assert row["backend"] == "interpreted-fallback"
            assert row["speedup"] is None and row["native_env_s"] is None

    for row in snapshot + sim:
        expected = "cext" if native else "interpreted-fallback"
        assert row["backend"].startswith(expected)
        if not native:
            for key, value in row.items():
                assert not key.endswith("speedup") or value is None

    if not quick_mode():
        # The full sweep covers the sizes EXPERIMENTS.md quotes.
        assert sorted({r["n"] for r in codec}) == [64, 256, 1024]

    merge_artifact(
        "enative",
        {"title": "E-NATIVE — compiled vs interpreted hot paths",
         "rows": rows_to_json(rows)},
    )
