"""E-ABL-* — ablations over design/deployment dimensions (DESIGN.md §4)."""

from repro.bench.ablations import (
    experiment_checkpoint_frequency,
    experiment_detection_latency,
    experiment_topology,
)
from repro.bench.harness import format_table, print_experiment


def test_checkpoint_frequency_tradeoff(run_once):
    rows = run_once(experiment_checkpoint_frequency,
                    intervals=(5.0, 10.0, 20.0, 40.0), seeds=3)
    print_experiment("E-ABL-FREQ", format_table(rows))
    # Sparser checkpoints -> more work lost per rollback, fewer checkpoints.
    lost = [r["mean_work_lost_per_rollback"] for r in rows]
    count = [r["checkpoints_committed_per_seed"] for r in rows]
    assert lost[-1] > lost[0]
    assert count[0] > count[-1]


def test_detection_latency_blocking(run_once):
    rows = run_once(experiment_detection_latency,
                    latencies=(0.5, 2.0, 8.0, 20.0), seeds=3)
    print_experiment("E-ABL-DETECT", format_table(rows))
    # Slower detection -> survivors blocked longer before rules 1-6 fire.
    blocked = [r["blocked_time_per_run"] for r in rows]
    assert blocked[-1] > blocked[0]


def test_topology_shapes_trees(run_once):
    rows = run_once(experiment_topology, seeds=3)
    print_experiment("E-ABL-TOPOLOGY", format_table(rows))
    by_name = {r["workload"]: r for r in rows}
    # A pipeline stage's checkpoint drags its upstream chain: the deepest
    # trees; the ring's all-to-neighbour dependence recruits the most
    # processes; client-server stays shallow (depth through the hub).
    assert by_name["pipeline"]["max_depth"] >= 2
    assert by_name["ring"]["mean_forced"] >= by_name["client-server"]["mean_forced"]
