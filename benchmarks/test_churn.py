"""E-CHURN — membership-churn rows + ``BENCH_CHURN.json``.

Runs the :mod:`repro.bench.churn` sweep (LB 2PC vs cooperative partial
snapshots, with and without join/leave churn) and gates the membership
plane's core claims on every row:

* every row's merged trace passed the churn-tolerant C1 battery
  (mid-trace joiner manifests, departed pids as settled history);
* churn does not wedge checkpointing: nonzero-churn rows still commit
  instances, for both algorithms;
* dependency scoping survives scale: mean checkpoint scope stays well
  below the cluster size (the reason either algorithm beats a global
  snapshot at n >= 256).

The rows merge into ``BENCH_CHURN.json`` under the ``echurn`` key.  CI
runs this with ``ECHURN_QUICK=1``; the committed artifact comes from the
full sweep (n=256, churn 8+8, three seeds).
"""

import json
import pathlib

from repro.bench.churn import experiment_churn, quick_mode
from repro.bench.harness import format_table, print_experiment, rows_to_json

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_CHURN.json"


def merge_artifact(key, payload):
    data = {}
    if ARTIFACT.exists():
        data = json.loads(ARTIFACT.read_text())
    data[key] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2) + "\n")


def test_churn_sweep(run_once):
    rows = run_once(experiment_churn)
    print_experiment("E-CHURN", format_table(rows))

    assert rows, "echurn rows missing"
    algorithms = {row["algorithm"] for row in rows}
    assert algorithms == {"leu-bhargava", "cooperative"}
    for row in rows:
        # Every sweep point ran the trace-based consistency battery.
        assert row["c1_ok"] is True, row
        # Checkpointing made progress at every churn level.
        assert row["committed"] > 0, row
        # Dependency scoping held: no instance swept the whole cluster.
        assert row["mean_scope"] < row["n"], row

    churned = [r for r in rows if r["joins"] > 0]
    assert churned, "no nonzero-churn sweep point"
    if not quick_mode():
        # The headline point: both algorithms under churn at n >= 256.
        assert {r["algorithm"] for r in churned if r["n"] >= 256} == {
            "leu-bhargava", "cooperative"
        }

    merge_artifact(
        "echurn",
        {
            "title": "E-CHURN — checkpointing under membership churn",
            "rows": rows_to_json(rows),
        },
    )
