"""E-DOMINO — uncoordinated checkpointing's rollback distances (Section 1)."""

from repro.bench.experiments import experiment_domino
from repro.bench.harness import format_table, print_experiment


def test_domino(run_once):
    rows = run_once(experiment_domino, seeds=4)
    print_experiment("E-DOMINO", format_table(rows))
    # Coordinated checkpointing never recedes: the committed line is the
    # recovery line by construction.
    assert all(r["coordinated_mean_distance"] == 0.0 for r in rows)
    # The uncoordinated cascade grows with communication density.
    unco = [r["uncoordinated_mean_distance"] for r in rows]
    assert unco[-1] > unco[0]
    assert max(r["uncoordinated_max_distance"] for r in rows) >= 2
