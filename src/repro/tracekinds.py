"""Trace event kinds shared by the pure protocol core and the trace pipeline.

These string constants name every kind of protocol event the tracer records.
They live in a dependency-free module so that :mod:`repro.core.engine` can
emit ``EmitTrace`` effects without importing :mod:`repro.sim`;
:mod:`repro.sim.trace` re-exports them for backward compatibility.

The comment after each constant lists the fields recorded with it.
"""

# -- normal-message lifecycle ------------------------------------------------
K_SEND = "send"                    # pid, msg_id, dst, label, payload
K_RECEIVE = "receive"              # pid, msg_id, src, label
K_DISCARD = "discard"              # pid, msg_id, src, label, reason
K_UNDO_SEND = "undo_send"          # pid, msg_id, dst, label
K_UNDO_RECEIVE = "undo_receive"    # pid, msg_id, src, label

# -- control-message lifecycle ----------------------------------------------
K_CTRL_SEND = "ctrl_send"          # pid, dst, msg_type, tree
K_CTRL_RECEIVE = "ctrl_receive"    # pid, src, msg_type, tree

# -- checkpoint state transitions -------------------------------------------
K_CHKPT_TENTATIVE = "chkpt_tentative"   # pid, seq, tree
K_CHKPT_COMMIT = "chkpt_commit"         # pid, seq, tree
K_CHKPT_ABORT = "chkpt_abort"           # pid, seq, tree

# -- rollback state transitions ---------------------------------------------
K_ROLLBACK = "rollback"            # pid, to_seq, tree, target ("newchkpt"/"oldchkpt")
K_RESTART = "restart"              # pid, new_interval

# -- send/receive suspension ------------------------------------------------
K_SUSPEND_SEND = "suspend_send"    # pid
K_RESUME_SEND = "resume_send"      # pid
K_SUSPEND_ALL = "suspend_all"      # pid (send + receive)
K_RESUME_ALL = "resume_all"        # pid

# -- instance outcomes -------------------------------------------------------
K_INSTANCE_START = "instance_start"        # pid, tree, instance ("checkpoint"/"rollback")
K_INSTANCE_COMMIT = "instance_commit"      # pid, tree
K_INSTANCE_ABORT = "instance_abort"        # pid, tree
K_INSTANCE_REJECTED = "instance_rejected"  # pid, tree (baseline algorithms)

# -- application jobs (repro.app) --------------------------------------------
K_JOB_SUBMIT = "job_submit"        # pid, job, stages
K_JOB_UNIT = "job_unit"            # pid, job, stage, unit
K_JOB_STAGE = "job_stage"          # pid, job, stage (stage completed)
K_JOB_DONE = "job_done"            # pid, job

# -- failures and topology ---------------------------------------------------
K_CRASH = "crash"                  # pid
K_RECOVER = "recover"              # pid
K_PARTITION = "partition"          # groups
K_MERGE = "merge"                  # groups

# -- dynamic membership (repro.membership) ------------------------------------
K_JOIN = "join"                    # pid, epoch
K_LEAVE = "leave"                  # pid, epoch, successor
K_HANDOFF = "handoff"              # pid (successor), source, spooled, trees

__all__ = [name for name in dict(vars()) if name.startswith("K_")]
