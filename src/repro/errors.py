"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
being able to discriminate on the specific failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly.

    Examples: scheduling an event in the past, running a simulation that was
    already exhausted, registering two nodes with the same identifier.
    """


class NetworkError(ReproError):
    """Message routing failed (unknown destination, malformed envelope)."""


class StableStorageError(ReproError):
    """Stable storage violated its contract or was misused.

    Raised for reads of never-written slots, corrupted file-backed records,
    or commits of a checkpoint slot that does not exist.
    """


class ProtocolError(ReproError):
    """A checkpoint/rollback protocol invariant was violated.

    These indicate a bug in a protocol implementation (ours or a baseline's),
    never an expected runtime condition: the algorithms under study are
    supposed to make these states unreachable.
    """


class ConsistencyViolation(ReproError):
    """An analysis checker found a violated consistency constraint.

    Carries the offending messages / checkpoints so tests and benchmarks can
    report exactly which constraint (C1, C2, or Definition 4) failed and why.
    """

    def __init__(self, constraint: str, detail: str):
        self.constraint = constraint
        self.detail = detail
        super().__init__(f"{constraint} violated: {detail}")


class WireError(ReproError):
    """A live-runtime wire frame could not be encoded or decoded.

    Raised for unregistered body types, oversized frames, and truncated or
    malformed payloads read off a socket.
    """


class TransportError(ReproError):
    """A live-runtime transport was misused or failed to start.

    Distinct from :class:`NetworkError` (routing policy): this covers the
    socket/loopback machinery itself — double starts, unknown endpoints,
    sends on a stopped transport.
    """


class WorkloadError(ReproError):
    """A workload script referenced an unknown process or malformed step."""


class BenchmarkError(ReproError):
    """An experiment harness was configured inconsistently."""
