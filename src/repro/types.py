"""Shared primitive types used across the :mod:`repro` packages.

The protocol literature indexes everything by process, interval and instance;
these aliases and small value types keep signatures readable and give the
type-checker something to hold on to.

Terminology (paper Section 2 and 3):

* ``ProcessId`` — the index *i* of a process ``P_i``.
* ``Label`` — the interval number ``n_i`` attached to each outgoing normal
  message; a message sent within the interval ``[n, n+1]`` carries label ``n``.
* ``Seq`` — the sequence number of a checkpoint or rollback point
  (``seqof(C_i)`` in the paper).
* ``TreeId`` — the globally unique timestamp ``t = (i, initiation time)`` of a
  checkpoint tree or rollback tree ``T(t)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

ProcessId = int
Label = int
Seq = int
SimTime = float


@dataclass(frozen=True, order=True)
class TreeId:
    """Globally unique timestamp of a checkpoint or rollback tree ``T(t)``.

    The paper identifies each instance by the pair *(initiator index,
    initiation time)*.  In the simulator two initiations could share a wall
    clock instant, so we use a per-process monotonically increasing
    ``initiation_seq`` instead of raw time: the pair is still unique and
    still totally ordered per initiator, which is all the algorithm needs.
    """

    initiator: ProcessId
    initiation_seq: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"T(P{self.initiator}@{self.initiation_seq})"


@dataclass(frozen=True)
class MessageId:
    """Unique identity of a single normal-message send event.

    ``sender``/``send_index`` make the id stable and readable in traces; the
    happens-before analysis keys its send/receive matching on this.
    """

    sender: ProcessId
    send_index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"m(P{self.sender}#{self.send_index})"


class IdAllocator:
    """Deterministic allocator for per-process monotone counters.

    Used for message ids and tree initiation sequence numbers.  Keeping the
    allocation here (rather than ``itertools.count`` scattered in nodes) makes
    snapshots/rollbacks simpler: the counters deliberately do *not* roll back,
    so undone message ids are never reused.
    """

    def __init__(self) -> None:
        self._counters: Dict[Any, "itertools.count[int]"] = {}

    def next(self, key: Any) -> int:
        """Return the next integer for ``key`` (starting at 0)."""
        if key not in self._counters:
            self._counters[key] = itertools.count()
        return next(self._counters[key])


@dataclass
class CheckpointRecord:
    """A single saved checkpoint: application state plus its sequence number.

    ``state`` is an opaque, already-copied snapshot of the application state.
    ``seq`` is ``seqof(C)`` from the paper.  ``committed`` distinguishes the
    tentative ``newchkpt`` from the durable ``oldchkpt``; ``made_at`` is the
    simulation time of the checkpoint event (used only by analysis/plots).
    """

    seq: Seq
    state: Any
    committed: bool = False
    made_at: SimTime = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)

    def copy(self) -> "CheckpointRecord":
        """Return a shallow copy (state snapshots are immutable by contract)."""
        return CheckpointRecord(
            seq=self.seq,
            state=self.state,
            committed=self.committed,
            made_at=self.made_at,
            meta=dict(self.meta),
        )


def format_process(pid: ProcessId) -> str:
    """Human-readable name of a process, matching the paper's ``P_i``."""
    return f"P{pid}"
