"""Channel ordering disciplines.

A channel policy decides *when* a message handed to the network is delivered,
given a raw transit delay from the :class:`~repro.net.delay.DelayModel`:

* :class:`NonFifoChannel` — deliver after the raw delay; messages freely
  overtake each other.  This is the paper's channel model.
* :class:`FifoChannel` — per ``(src, dst)`` pair, clamp each delivery to occur
  strictly after the previous one, preserving send order.  Used by the
  Koo-Toueg and Chandy-Lamport baselines, which require FIFO.

Both are stateless apart from the FIFO clamp; partition/crash filtering
happens in :class:`repro.net.network.Network`, not here.
"""

from __future__ import annotations

from typing import Dict, Protocol, Tuple, runtime_checkable

from repro.types import ProcessId, SimTime


@runtime_checkable
class Channel(Protocol):
    """Ordering discipline contract shared by the simulator and the runtime.

    Given the send time and a raw transit delay, a channel decides *when*
    the message is delivered.  :class:`repro.net.network.Network` consults it
    to schedule simulated deliveries; the live runtime's
    :class:`repro.runtime.transport.LoopbackTransport` consults the same
    object to schedule real-timer deliveries, so one policy object defines
    the ordering contract in both worlds.  ``fifo`` advertises whether the
    policy guarantees per-pair send order (the paper's algorithm must work
    with ``fifo = False``).
    """

    fifo: bool

    def delivery_time(
        self, src: ProcessId, dst: ProcessId, send_time: SimTime, delay: SimTime
    ) -> SimTime:
        """Absolute delivery time for a message handed over at ``send_time``."""
        ...

    def reset(self) -> None:
        """Forget any per-channel state (between independent runs)."""
        ...


class NonFifoChannel:
    """Messages are delivered after their raw delay; reordering allowed."""

    fifo = False

    def delivery_time(self, src: ProcessId, dst: ProcessId, send_time: SimTime, delay: SimTime) -> SimTime:
        return send_time + delay

    def reset(self) -> None:
        """No per-channel state to clear."""


class FifoChannel:
    """Per-channel delivery order equals send order.

    Implemented by remembering the last delivery time per directed channel
    and clamping each new delivery to be at least ``epsilon`` later.  The
    clamp models a FIFO transport's head-of-line blocking: a fast message
    behind a slow one waits.
    """

    fifo = True

    def __init__(self, epsilon: SimTime = 1e-9):
        self.epsilon = epsilon
        self._last_delivery: Dict[Tuple[ProcessId, ProcessId], SimTime] = {}

    def delivery_time(self, src: ProcessId, dst: ProcessId, send_time: SimTime, delay: SimTime) -> SimTime:
        key = (src, dst)
        arrival = send_time + delay
        previous = self._last_delivery.get(key)
        if previous is not None and arrival <= previous:
            arrival = previous + self.epsilon
        self._last_delivery[key] = arrival
        return arrival

    def reset(self) -> None:
        """Forget delivery history (used between independent runs)."""
        self._last_delivery.clear()
