"""Simulated network: envelopes, delay models, channels, routing, spooling.

Attribute access is lazy (PEP 562): the pure :mod:`repro.net.message` module
is importable from the sans-IO engine without this package's eager re-exports
pulling in the delay/channel/network machinery (which imports repro.sim).
"""

from typing import Any, List

_EXPORTS = {
    "AdversarialReorderDelay": ("repro.net.delay", "AdversarialReorderDelay"),
    "CONTROL": ("repro.net.message", "CONTROL"),
    "DelayModel": ("repro.net.delay", "DelayModel"),
    "Envelope": ("repro.net.message", "Envelope"),
    "ExponentialDelay": ("repro.net.delay", "ExponentialDelay"),
    "FifoChannel": ("repro.net.channel", "FifoChannel"),
    "FixedDelay": ("repro.net.delay", "FixedDelay"),
    "LossyDelay": ("repro.net.delay", "LossyDelay"),
    "NORMAL": ("repro.net.message", "NORMAL"),
    "Network": ("repro.net.network", "Network"),
    "NonFifoChannel": ("repro.net.channel", "NonFifoChannel"),
    "SpoolerGroup": ("repro.net.spooler", "SpoolerGroup"),
    "SpoolerReplica": ("repro.net.spooler", "SpoolerReplica"),
    "UniformDelay": ("repro.net.delay", "UniformDelay"),
    "control": ("repro.net.message", "control"),
    "normal": ("repro.net.message", "normal"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))
