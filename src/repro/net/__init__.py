"""Simulated network: envelopes, delay models, channels, routing, spooling."""

from repro.net.channel import FifoChannel, NonFifoChannel
from repro.net.delay import (
    AdversarialReorderDelay,
    DelayModel,
    ExponentialDelay,
    FixedDelay,
    LossyDelay,
    UniformDelay,
)
from repro.net.message import CONTROL, NORMAL, Envelope, control, normal
from repro.net.network import Network
from repro.net.spooler import SpoolerGroup, SpoolerReplica

__all__ = [
    "AdversarialReorderDelay",
    "CONTROL",
    "DelayModel",
    "Envelope",
    "ExponentialDelay",
    "FifoChannel",
    "FixedDelay",
    "LossyDelay",
    "NORMAL",
    "Network",
    "NonFifoChannel",
    "SpoolerGroup",
    "SpoolerReplica",
    "UniformDelay",
    "control",
    "normal",
]
