"""Message spoolers for failed processes (paper Section 6, assumption e).

When a process is down, messages addressed to it are redirected to its
spoolers; on restart the process drains them.  The paper uses spoolers for
two things we reproduce:

1. normal messages in transit to a failed process are not lost, and
2. a restarting process asks its spoolers whether a ``commit``/``abort``
   decision for its uncommitted checkpoint was broadcast while it was down
   (recovery rule 3).

Spoolers can be replicated; a :class:`SpoolerGroup` survives as long as at
least one replica is alive.  Replicas live on host processes — if the host
crashes, its replica is unavailable until the host recovers (contents are in
stable storage, so nothing is lost, matching the paper's reliability claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.net.message import Envelope
from repro.types import ProcessId


@dataclass
class SpoolerReplica:
    """One replica of a process's spool, hosted on ``host`` process."""

    host: ProcessId
    envelopes: List[Envelope] = field(default_factory=list)
    decisions: List[Any] = field(default_factory=list)

    def spool(self, envelope: Envelope) -> None:
        self.envelopes.append(envelope)

    def observe_decision(self, decision: Any) -> None:
        self.decisions.append(decision)


class SpoolerGroup:
    """The replicated spool of a single (possibly failed) process."""

    def __init__(self, owner: ProcessId, hosts: List[ProcessId]):
        self.owner = owner
        self.replicas = [SpoolerReplica(host=h) for h in hosts]

    def spool(self, envelope: Envelope, is_host_alive: Callable[[ProcessId], bool]) -> bool:
        """Record ``envelope`` on all live replicas.

        Returns ``True`` if at least one replica accepted it (i.e. the
        message survives the owner's failure).
        """
        accepted = False
        for replica in self.replicas:
            if is_host_alive(replica.host):
                replica.spool(envelope)
                accepted = True
        return accepted

    def observe_decision(self, decision: Any, is_host_alive: Callable[[ProcessId], bool]) -> None:
        """Record a protocol decision (commit/abort/restart) for rule 3."""
        for replica in self.replicas:
            if is_host_alive(replica.host):
                replica.observe_decision(decision)

    def drain(self, is_host_alive: Callable[[ProcessId], bool]) -> List[Envelope]:
        """Return and clear the spooled envelopes, deduplicated across replicas.

        Only live replicas contribute (a dead replica's spool is temporarily
        unreachable, exactly like the paper's "if all its spoolers fail").
        """
        seen: Dict[int, Envelope] = {}
        for replica in self.replicas:
            if not is_host_alive(replica.host):
                continue
            for envelope in replica.envelopes:
                seen[id(envelope)] = envelope
            replica.envelopes = []
        return list(seen.values())

    def decisions_seen(self, is_host_alive: Callable[[ProcessId], bool]) -> Optional[List[Any]]:
        """All decisions recorded by live replicas, or ``None`` if all replicas
        are currently dead (caller must fall back to inquiring all processes,
        per rule 3)."""
        live = [r for r in self.replicas if is_host_alive(r.host)]
        if not live:
            return None
        decisions: List[Any] = []
        for replica in live:
            decisions.extend(replica.decisions)
        return decisions
