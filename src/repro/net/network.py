"""The simulated network: routing, partitions, crash filtering, spooling.

The :class:`Network` sits between nodes and the scheduler.  On
:meth:`transmit` it samples a transit delay, applies the channel ordering
policy, and schedules delivery.  At delivery time it re-checks the world:

* destination crashed → the envelope is redirected to the destination's
  spoolers (if configured) or dropped;
* source and destination in different partitions → dropped (an end-to-end
  transport cannot cross a partition; the protocols' partition handling
  takes over);
* otherwise → delivered via ``node.on_envelope``.

The network also owns the global message counters used by the Section 5
comparison benchmarks (normal/control messages sent, drops, spools).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set

from repro.errors import NetworkError
from repro.net.channel import NonFifoChannel
from repro.net.delay import DelayModel, UniformDelay
from repro.net.message import CONTROL, Envelope
from repro.net.spooler import SpoolerGroup
from repro.sim import trace as T
from repro.sim.event import PRIORITY_NORMAL
from repro.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulation import Simulation


class Network:
    """Routes envelopes between the nodes of one simulation."""

    def __init__(
        self,
        delay_model: Optional[DelayModel] = None,
        channel: Optional[object] = None,
    ):
        self.delay_model: DelayModel = delay_model or UniformDelay()
        self.channel = channel or NonFifoChannel()
        self._sim: Optional["Simulation"] = None
        self._partition: Optional[List[FrozenSet[ProcessId]]] = None
        self._spoolers: Dict[ProcessId, SpoolerGroup] = {}
        # Counters for the comparison benchmarks.
        self.normal_sent = 0
        self.control_sent = 0
        self.delivered = 0
        self.dropped = 0
        self.spooled = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, sim: "Simulation") -> None:
        if self._sim is not None:
            raise NetworkError("network already bound to a simulation")
        self._sim = sim

    @property
    def sim(self) -> "Simulation":
        if self._sim is None:
            raise NetworkError("network not bound to a simulation")
        return self._sim

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, groups: List[Set[ProcessId]]) -> None:
        """Split the network into ``groups``; cross-group traffic is dropped.

        Every process must appear in exactly one group.
        """
        flattened = [pid for group in groups for pid in group]
        if len(flattened) != len(set(flattened)):
            raise NetworkError("partition groups overlap")
        missing = set(self.sim.nodes) - set(flattened)
        if missing:
            raise NetworkError(f"partition omits processes {sorted(missing)}")
        self._partition = [frozenset(g) for g in groups]
        self.sim.trace.record(self.sim.now, T.K_PARTITION, groups=[sorted(g) for g in groups])

    def merge(self) -> None:
        """Heal all partitions: every process can reach every other again."""
        self._partition = None
        self.sim.trace.record(self.sim.now, T.K_MERGE, groups=[sorted(self.sim.nodes)])

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def group_of(self, pid: ProcessId) -> FrozenSet[ProcessId]:
        """The partition group containing ``pid`` (all processes if healed)."""
        if self._partition is None:
            return frozenset(self.sim.nodes)
        for group in self._partition:
            if pid in group:
                return group
        raise NetworkError(f"process {pid} not in any partition group")

    def reachable(self, src: ProcessId, dst: ProcessId) -> bool:
        """True if ``src`` and ``dst`` are currently in the same partition."""
        if self._partition is None:
            return True
        return dst in self.group_of(src)

    # ------------------------------------------------------------------
    # Spoolers
    # ------------------------------------------------------------------
    def install_spoolers(self, owner: ProcessId, hosts: List[ProcessId]) -> SpoolerGroup:
        """Create the replicated spooler group for ``owner`` on ``hosts``."""
        group = SpoolerGroup(owner, hosts)
        self._spoolers[owner] = group
        return group

    def spooler_for(self, owner: ProcessId) -> Optional[SpoolerGroup]:
        return self._spoolers.get(owner)

    def observe_decision(self, decision: object) -> None:
        """Let every spooler group record a broadcast protocol decision.

        Recovery rule 3 needs restarting processes to learn commit/abort and
        restart decisions that were propagated while they were down; spoolers
        are the paper's mechanism for that.
        """
        alive = self.sim.is_alive
        for group in self._spoolers.values():
            group.observe_decision(decision, alive)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, envelope: Envelope) -> None:
        """Accept an envelope from ``envelope.src`` and schedule its delivery."""
        sim = self.sim
        if envelope.dst not in sim.nodes:
            raise NetworkError(f"unknown destination P{envelope.dst}")
        envelope.send_time = sim.now

        if envelope.category == CONTROL:
            self.control_sent += 1
        else:
            self.normal_sent += 1

        delay = self.delay_model.sample(sim.rng, envelope.src, envelope.dst)
        deliver_at = self.channel.delivery_time(envelope.src, envelope.dst, sim.now, delay)
        priority = getattr(envelope.body, "priority", PRIORITY_NORMAL)
        sim.scheduler.at(
            deliver_at,
            lambda: self._deliver(envelope),
            priority=priority,
            label=f"deliver P{envelope.src}->P{envelope.dst}",
        )

    def _deliver(self, envelope: Envelope) -> None:
        sim = self.sim
        envelope.deliver_time = sim.now
        dst_node = sim.nodes[envelope.dst]

        if not self.reachable(envelope.src, envelope.dst):
            self.dropped += 1
            sim.trace.record(
                sim.now,
                T.K_DISCARD,
                pid=envelope.dst,
                msg_id=envelope.msg_id,
                src=envelope.src,
                label=envelope.label,
                reason="partitioned",
            )
            return

        if dst_node.crashed:
            spooler = self._spoolers.get(envelope.dst)
            if spooler is not None and spooler.spool(envelope, sim.is_alive):
                self.spooled += 1
            else:
                self.dropped += 1
                sim.trace.record(
                    sim.now,
                    T.K_DISCARD,
                    pid=envelope.dst,
                    msg_id=envelope.msg_id,
                    src=envelope.src,
                    label=envelope.label,
                    reason="crashed",
                )
            return

        self.delivered += 1
        dst_node.on_envelope(envelope)

    def redeliver(self, envelope: Envelope) -> None:
        """Deliver a spooled envelope to its (now recovered) destination.

        Bypasses delay sampling: the spool drain is local to the recovering
        process.
        """
        sim = self.sim
        dst_node = sim.nodes[envelope.dst]
        if dst_node.crashed:
            raise NetworkError(f"cannot redeliver to crashed P{envelope.dst}")
        envelope.deliver_time = sim.now
        self.delivered += 1
        dst_node.on_envelope(envelope)
