"""The simulated network: routing, partitions, crash filtering, spooling.

The :class:`Network` sits between nodes and the scheduler.  On
:meth:`transmit` it samples a transit delay, applies the channel ordering
policy, and schedules delivery.  At delivery time it re-checks the world:

* destination crashed → the envelope is redirected to the destination's
  spoolers (if configured) or dropped;
* source and destination in different partitions → dropped (an end-to-end
  transport cannot cross a partition; the protocols' partition handling
  takes over);
* otherwise → delivered via ``node.on_envelope``.

The network also owns the global message counters used by the Section 5
comparison benchmarks (normal/control messages sent, drops, spools).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set

from repro.errors import NetworkError
from repro.net.channel import Channel, NonFifoChannel
from repro.net.delay import DelayModel, UniformDelay
from repro.net.message import CONTROL, Envelope
from repro.net.spooler import SpoolerGroup
from repro.sim import trace as T
from repro.sim.event import PRIORITY_NORMAL
from repro.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel import KernelLike


class Network:
    """Routes envelopes between the nodes of one kernel.

    Bound to any :class:`repro.kernel.KernelLike` substrate — historically a
    :class:`~repro.sim.simulation.Simulation` (the attribute is still called
    ``sim``), but the live runtime's
    :class:`repro.runtime.network.RuntimeNetwork` subclasses this and reuses
    everything except :meth:`transmit` (partition policy, spooler registry,
    crash filtering, counters, and the delivery-time bookkeeping).
    """

    def __init__(
        self,
        delay_model: Optional[DelayModel] = None,
        channel: Optional[Channel] = None,
    ):
        self.delay_model: DelayModel = delay_model or UniformDelay()
        self.channel: Channel = channel or NonFifoChannel()
        self._sim: Optional["KernelLike"] = None
        self._partition: Optional[List[FrozenSet[ProcessId]]] = None
        self._spoolers: Dict[ProcessId, SpoolerGroup] = {}
        # Counters for the comparison benchmarks.
        self.normal_sent = 0
        self.control_sent = 0
        self.delivered = 0
        self.dropped = 0
        self.spooled = 0
        # Envelopes addressed to a gracefully-departed pid that were
        # salvaged (spooled or counted-and-dropped) instead of raising.
        self.salvaged_departed = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, sim: "KernelLike") -> None:
        if self._sim is not None:
            raise NetworkError("network already bound to a kernel")
        self._sim = sim

    @property
    def sim(self) -> "KernelLike":
        if self._sim is None:
            raise NetworkError("network not bound to a kernel")
        return self._sim

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, groups: List[Set[ProcessId]]) -> None:
        """Split the network into ``groups``; cross-group traffic is dropped.

        Every process must appear in exactly one group.
        """
        flattened = [pid for group in groups for pid in group]
        if len(flattened) != len(set(flattened)):
            raise NetworkError("partition groups overlap")
        missing = set(self.sim.nodes) - set(flattened)
        if missing:
            raise NetworkError(f"partition omits processes {sorted(missing)}")
        self._partition = [frozenset(g) for g in groups]
        self.sim.trace.record(self.sim.now, T.K_PARTITION, groups=[sorted(g) for g in groups])

    def merge(self) -> None:
        """Heal all partitions: every process can reach every other again."""
        self._partition = None
        self.sim.trace.record(self.sim.now, T.K_MERGE, groups=[sorted(self.sim.nodes)])

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def group_of(self, pid: ProcessId) -> FrozenSet[ProcessId]:
        """The partition group containing ``pid`` (all processes if healed)."""
        if self._partition is None:
            return frozenset(self.sim.nodes)
        for group in self._partition:
            if pid in group:
                return group
        raise NetworkError(f"process {pid} not in any partition group")

    def reachable(self, src: ProcessId, dst: ProcessId) -> bool:
        """True if ``src`` and ``dst`` are currently in the same partition."""
        if self._partition is None:
            return True
        return dst in self.group_of(src)

    # ------------------------------------------------------------------
    # Spoolers
    # ------------------------------------------------------------------
    def install_spoolers(self, owner: ProcessId, hosts: List[ProcessId]) -> SpoolerGroup:
        """Create the replicated spooler group for ``owner`` on ``hosts``."""
        group = SpoolerGroup(owner, hosts)
        self._spoolers[owner] = group
        return group

    def spooler_for(self, owner: ProcessId) -> Optional[SpoolerGroup]:
        return self._spoolers.get(owner)

    def observe_decision(self, decision: object) -> None:
        """Let every spooler group record a broadcast protocol decision.

        Recovery rule 3 needs restarting processes to learn commit/abort and
        restart decisions that were propagated while they were down; spoolers
        are the paper's mechanism for that.
        """
        alive = self.sim.is_alive
        for group in self._spoolers.values():
            group.observe_decision(decision, alive)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _accept(self, envelope: Envelope) -> None:
        """Stamp the send time and bump the sent counters.

        Shared by the simulated :meth:`transmit` and the runtime transports,
        so the Section 5 message-count comparisons mean the same thing in
        both worlds.
        """
        envelope.send_time = self.sim.now
        if envelope.category == CONTROL:
            self.control_sent += 1
        else:
            self.normal_sent += 1

    def _is_departed(self, pid: ProcessId) -> bool:
        membership = getattr(self.sim, "membership", None)
        return membership is not None and membership.is_departed(pid)

    def transmit(self, envelope: Envelope) -> None:
        """Accept an envelope from ``envelope.src`` and schedule its delivery."""
        sim = self.sim
        if envelope.dst not in sim.nodes:
            if self._is_departed(envelope.dst):
                # A member left gracefully while this sender still held a
                # stale view; salvage rather than treat as a routing error.
                self._accept(envelope)
                self.salvaged_departed += 1
                self.spool_or_drop(envelope, "departed")
                return
            raise NetworkError(f"unknown destination P{envelope.dst}")
        self._accept(envelope)
        delay = self.delay_model.sample(sim.rng, envelope.src, envelope.dst)
        deliver_at = self.channel.delivery_time(envelope.src, envelope.dst, sim.now, delay)
        priority = getattr(envelope.body, "priority", PRIORITY_NORMAL)
        sim.scheduler.at(
            deliver_at,
            lambda: self._deliver(envelope),
            priority=priority,
            label=f"deliver P{envelope.src}->P{envelope.dst}",
        )

    def _deliver(self, envelope: Envelope) -> None:
        sim = self.sim
        envelope.deliver_time = sim.now
        dst_node = sim.nodes.get(envelope.dst)
        if dst_node is None:
            # The destination departed while this envelope was in flight.
            self.salvaged_departed += 1
            self.spool_or_drop(envelope, "departed")
            return

        if not self.reachable(envelope.src, envelope.dst):
            self.dropped += 1
            sim.trace.record(
                sim.now,
                T.K_DISCARD,
                pid=envelope.dst,
                msg_id=envelope.msg_id,
                src=envelope.src,
                label=envelope.label,
                reason="partitioned",
            )
            return

        if dst_node.crashed:
            self.spool_or_drop(envelope, "crashed")
            return

        self.delivered += 1
        dst_node.on_envelope(envelope)

    def spool_or_drop(self, envelope: Envelope, reason: str) -> None:
        """Salvage an undeliverable envelope via spoolers, else drop it.

        Used for deliveries to a crashed destination and by runtime
        transports whose peer endpoint is unreachable — in both cases the
        paper's model says the destination's spooler hosts (if any are alive)
        capture the message for redelivery at recovery.
        """
        sim = self.sim
        spooler = self._spoolers.get(envelope.dst)
        if spooler is not None and spooler.spool(envelope, sim.is_alive):
            self.spooled += 1
        else:
            self.dropped += 1
            sim.trace.record(
                sim.now,
                T.K_DISCARD,
                pid=envelope.dst,
                msg_id=envelope.msg_id,
                src=envelope.src,
                label=envelope.label,
                reason=reason,
            )

    def deliver_local(self, envelope: Envelope) -> None:
        """Hand an envelope that has finished transit to the destination.

        Public entry point for runtime transports: once the wire (or the
        loopback delay timer) has carried the envelope to the destination's
        kernel, this applies the exact same partition/crash/spool policy as
        a simulated delivery.
        """
        self._deliver(envelope)

    def note_transport_drop(self, envelope: Envelope, reason: str) -> None:
        """Record an envelope the transport itself had to drop.

        E.g. the TCP transport cannot connect to a killed peer's socket.  The
        paper's channel model allows arbitrary loss windows around failures;
        we count and trace the drop so live-run analysis sees it.
        """
        sim = self.sim
        self.dropped += 1
        sim.trace.record(
            sim.now,
            T.K_DISCARD,
            pid=envelope.dst,
            msg_id=envelope.msg_id,
            src=envelope.src,
            label=envelope.label,
            reason=reason,
        )

    def redeliver(self, envelope: Envelope) -> None:
        """Deliver a spooled envelope to its (now recovered) destination.

        Bypasses delay sampling: the spool drain is local to the recovering
        process.
        """
        sim = self.sim
        dst_node = sim.nodes[envelope.dst]
        if dst_node.crashed:
            raise NetworkError(f"cannot redeliver to crashed P{envelope.dst}")
        envelope.deliver_time = sim.now
        self.delivered += 1
        dst_node.on_envelope(envelope)
