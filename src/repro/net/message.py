"""Message envelopes carried by the simulated network.

The paper distinguishes *normal messages* (application traffic, labelled with
the sender's interval counter ``n_i``) from *control messages* (protocol
traffic, stamped with a tree timestamp).  The :class:`Envelope` carries either
kind; the ``category`` field selects which, and the protocol-level body lives
in ``body``.

Envelopes are value objects: the network copies nothing, so senders must not
mutate a body after sending (all protocol bodies are frozen dataclasses).
"""

from __future__ import annotations

from dataclasses import field
from typing import Any, Optional

from repro.compat import slotted_dataclass
from repro.types import Label, MessageId, ProcessId, SimTime

NORMAL = "normal"
CONTROL = "control"


@slotted_dataclass()
class Envelope:
    """A single message in flight from ``src`` to ``dst``.

    ``msg_id`` and ``label`` are set for normal messages only; control
    messages are identified by their body (which carries the tree timestamp).
    ``send_time`` is stamped by the network on transmit; ``deliver_time`` on
    delivery (both for analysis only — protocols never read clocks).
    """

    src: ProcessId
    dst: ProcessId
    category: str
    body: Any
    msg_id: Optional[MessageId] = None
    label: Optional[Label] = None
    send_time: SimTime = field(default=0.0)
    deliver_time: SimTime = field(default=0.0)

    @property
    def is_normal(self) -> bool:
        return self.category == NORMAL

    @property
    def is_control(self) -> bool:
        return self.category == CONTROL

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_normal:
            return (
                f"<normal {self.msg_id} P{self.src}->P{self.dst} "
                f"label={self.label} body={self.body!r}>"
            )
        return f"<control P{self.src}->P{self.dst} {self.body!r}>"


def normal(
    src: ProcessId,
    dst: ProcessId,
    msg_id: MessageId,
    label: Label,
    body: Any = None,
) -> Envelope:
    """Build a normal-message envelope (application payload in ``body``)."""
    return Envelope(src=src, dst=dst, category=NORMAL, body=body, msg_id=msg_id, label=label)


def control(src: ProcessId, dst: ProcessId, body: Any) -> Envelope:
    """Build a control-message envelope (protocol message in ``body``)."""
    return Envelope(src=src, dst=dst, category=CONTROL, body=body)
