"""Message-delay models.

Delays determine whether channels behave FIFO-ish or aggressively reorder.
The Leu-Bhargava algorithm must be correct under *any* of these (it assumes
non-FIFO channels); the Koo-Toueg and Chandy-Lamport baselines assume FIFO
and are run either on a FIFO channel (see :mod:`repro.net.channel`) or — for
the E-NONFIFO experiment — deliberately on a reordering one to show the
assumption is load-bearing.

All models draw exclusively from the named :class:`repro.sim.rng.Rng` stream
``("delay", src, dst)`` so delays are reproducible and independent of other
randomness in the run.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import NetworkError
from repro.sim.rng import Rng
from repro.types import ProcessId, SimTime


class DelayModel(Protocol):
    """Strategy interface: sample the transit delay for one message."""

    def sample(self, rng: Rng, src: ProcessId, dst: ProcessId) -> SimTime:
        """Return a non-negative transit delay for a ``src -> dst`` message."""
        ...


class FixedDelay:
    """Every message takes exactly ``delay`` time units (perfectly FIFO)."""

    def __init__(self, delay: SimTime = 1.0):
        if delay < 0:
            raise NetworkError(f"negative delay {delay}")
        self.delay = delay

    def sample(self, rng: Rng, src: ProcessId, dst: ProcessId) -> SimTime:
        return self.delay


class UniformDelay:
    """Delays drawn uniformly from ``[low, high]`` — mild natural reordering."""

    def __init__(self, low: SimTime = 0.5, high: SimTime = 1.5):
        if not 0 <= low <= high:
            raise NetworkError(f"invalid uniform delay range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: Rng, src: ProcessId, dst: ProcessId) -> SimTime:
        return rng.stream("delay", src, dst).uniform(self.low, self.high)


class ExponentialDelay:
    """Exponentially distributed delays with mean ``mean`` (heavy reordering).

    A small ``floor`` keeps delays strictly positive so a message never
    arrives at its own send instant.
    """

    def __init__(self, mean: SimTime = 1.0, floor: SimTime = 0.01):
        if mean <= 0:
            raise NetworkError(f"non-positive mean delay {mean}")
        self.mean = mean
        self.floor = floor

    def sample(self, rng: Rng, src: ProcessId, dst: ProcessId) -> SimTime:
        return self.floor + rng.stream("delay", src, dst).expovariate(1.0 / self.mean)


class AdversarialReorderDelay:
    """Alternates short and very long delays per channel.

    Guarantees that consecutive messages on the same channel are delivered
    out of order (message ``k`` sent before ``k+1`` arrives after it whenever
    ``k`` drew the long delay).  This is the worst case for protocols that
    assume FIFO and the stress case for label-based bookkeeping.
    """

    def __init__(self, short: SimTime = 0.1, long: SimTime = 5.0):
        if not 0 <= short < long:
            raise NetworkError(f"need 0 <= short < long, got {short}, {long}")
        self.short = short
        self.long = long
        self._toggle: dict = {}

    def sample(self, rng: Rng, src: ProcessId, dst: ProcessId) -> SimTime:
        key = (src, dst)
        use_long = self._toggle.get(key, False)
        self._toggle[key] = not use_long
        return self.long if use_long else self.short


class LossyDelay:
    """Wraps another model and adds retransmission latency for lost messages.

    The paper assumes lost messages are retransmitted by an end-to-end
    protocol; from the algorithm's viewpoint loss is just extra delay.  Each
    loss adds one ``retransmit_timeout`` plus a fresh base-model delay, and a
    message can be lost several times in a row.
    """

    def __init__(
        self,
        base: DelayModel,
        loss_probability: float = 0.1,
        retransmit_timeout: SimTime = 3.0,
        max_losses: int = 20,
    ):
        if not 0 <= loss_probability < 1:
            raise NetworkError(f"loss probability {loss_probability} not in [0, 1)")
        self.base = base
        self.loss_probability = loss_probability
        self.retransmit_timeout = retransmit_timeout
        self.max_losses = max_losses

    def sample(self, rng: Rng, src: ProcessId, dst: ProcessId) -> SimTime:
        stream = rng.stream("loss", src, dst)
        delay = self.base.sample(rng, src, dst)
        losses = 0
        while losses < self.max_losses and stream.random() < self.loss_probability:
            delay += self.retransmit_timeout + self.base.sample(rng, src, dst)
            losses += 1
        return delay
