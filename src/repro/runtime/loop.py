"""The live kernel: the paper's protocols on a real asyncio event loop.

:class:`AsyncRuntime` is the second implementation of the
:class:`repro.kernel.KernelLike` contract (the first being the
discrete-event :class:`repro.sim.simulation.Simulation`).  The same
:class:`~repro.sim.node.Node` subclasses — checkpoint/rollback processes,
failure detectors, spoolers, workloads — run unmodified on either; only the
substrate changes:

==================  ===========================  ==========================
contract piece      Simulation                   AsyncRuntime
==================  ===========================  ==========================
clock (``now``)     virtual heap time            ``loop.time()`` rescaled
timers              heap events                  own heap + one ``call_at``
transmit            heap-scheduled delivery      a :class:`~repro.runtime.
                                                 transport.Transport`
serialized exec     single-threaded loop         single-threaded loop
same-instant order  ``(time, priority, seq)``    ``(time, priority, seq)``
==================  ===========================  ==========================

Time scaling: protocol code thinks in the paper's abstract time units
(message delays ~0.5 units, detector latency ~2 units).  ``time_scale`` maps
one protocol unit to that many real seconds, so a scripted scenario spanning
40 units finishes in 2 wall seconds at ``time_scale=0.05``.  ``now`` always
reports protocol units; only the kernel touches real seconds.

Callbacks never propagate exceptions into the loop: they are collected in
:attr:`AsyncScheduler.errors` and re-raised at :meth:`AsyncRuntime.shutdown`,
so a protocol bug fails the run loudly instead of killing one timer quietly.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.kernel import KernelCore
from repro.sim.rng import Rng
from repro.sim.trace import Trace
from repro.types import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.channel import Channel
    from repro.net.delay import DelayModel
    from repro.runtime.network import RuntimeNetwork
    from repro.runtime.transport import Transport
    from repro.sim.trace import TraceSink


def install_uvloop() -> bool:
    """Install ``uvloop`` as the asyncio event-loop policy, if importable.

    Returns whether uvloop is now driving new event loops.  The dependency
    is strictly optional — the interpreted and compiled builds both run on
    stock asyncio — so an absent package is a normal ``False``, never an
    error.  Protocol behaviour is loop-implementation independent (the
    scheduler orders same-instant callbacks itself); uvloop only changes
    how fast the TCP transport moves bytes.
    """
    try:
        import uvloop  # optional accelerator; strictly a gated import
    except ImportError:
        return False
    uvloop.install()
    return True


class AsyncTimer:
    """A :class:`repro.kernel.TimerHandle` on the scheduler's timer heap.

    Created before the loop starts, the timer sits in the scheduler's
    pre-loop queue and is armed when the runtime boots; cancellation works
    in both states (lazily — the heap entry is skipped when it surfaces).
    """

    __slots__ = ("when", "priority", "label", "action", "cancelled", "fired", "seq", "_scheduler")

    def __init__(
        self,
        scheduler: "AsyncScheduler",
        when: SimTime,
        action: Callable[[], None],
        priority: int,
        label: str,
        seq: int,
    ) -> None:
        self.when = when
        self.priority = priority
        self.label = label
        self.action = action
        self.cancelled = False
        self.fired = False
        self.seq = seq  # creation order: the same-instant tie-break
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        self._scheduler._note_cancel()

    def _fire(self) -> None:
        if self.cancelled:  # pragma: no cover - the pump skips cancelled entries
            return
        self.fired = True
        self._scheduler._note_fired()
        try:
            self.action()
        except Exception as exc:  # noqa: BLE001 - kernel boundary
            self._scheduler._note_error(self.label, exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "armed")
        return f"<AsyncTimer t={self.when:.4f} {self.label or 'action'} {state}>"


class AsyncScheduler:
    """:class:`repro.kernel.SchedulerLike` over a real asyncio loop.

    ``now`` is ``(loop.time() - epoch) / time_scale``: kernel time 0 is the
    moment the runtime attached to the loop, and time advances continuously
    — there is no "current event's timestamp" as in the virtual-time
    scheduler.  Timers requested before the loop exists (workload installs,
    test setup) queue up and are armed at attach.

    Scheduling "in the past" clamps to *now* instead of raising: with a real
    clock, time may legitimately advance between computing a deadline and
    arming the timer.

    Same-instant determinism: timers live on the scheduler's own heap keyed
    ``(when, priority, seq)`` — exactly the virtual-time scheduler's key —
    and a single ``loop.call_at`` pump drains every due entry in heap order.
    Two timers armed for the same protocol instant therefore fire in the
    same relative order under both kernels, which is what makes scripted
    scenarios (two sends at t=2.0, say) bit-identical across them.
    """

    def __init__(self, time_scale: float = 0.05) -> None:
        if time_scale <= 0:
            raise SimulationError(f"time_scale must be positive, got {time_scale}")
        self.time_scale = time_scale
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._epoch = 0.0
        self._frozen_now: SimTime = 0.0
        self._heap: List[Tuple[SimTime, int, int, AsyncTimer]] = []
        self._seq = 0
        self._pump_handle: Optional[asyncio.TimerHandle] = None
        self._armed_when: Optional[SimTime] = None
        self._pending = 0
        self.timers_fired = 0
        self.timers_cancelled = 0
        self.errors: List[Tuple[str, Exception]] = []

    # ------------------------------------------------------------------
    # Loop lifecycle (driven by AsyncRuntime)
    # ------------------------------------------------------------------
    def attach(self, loop: asyncio.AbstractEventLoop) -> None:
        """Bind to ``loop`` and start pumping the queued timers."""
        if self._loop is not None:
            raise SimulationError("scheduler already attached to a loop")
        self._loop = loop
        self._epoch = loop.time() - self._frozen_now * self.time_scale
        self._rearm_pump()

    def detach(self) -> None:
        """Freeze the clock and release the loop (runtime shutdown)."""
        if self._loop is not None:
            self._frozen_now = self.now
            self._loop = None
        if self._pump_handle is not None:
            self._pump_handle.cancel()
            self._pump_handle = None
            self._armed_when = None

    @property
    def attached(self) -> bool:
        return self._loop is not None

    # ------------------------------------------------------------------
    # SchedulerLike
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """Current kernel time in protocol units (frozen while detached)."""
        if self._loop is None:
            return self._frozen_now
        return (self._loop.time() - self._epoch) / self.time_scale

    @property
    def pending(self) -> int:
        """Timers armed or queued and not yet fired/cancelled."""
        return self._pending

    def at(
        self,
        time: SimTime,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> AsyncTimer:
        """Run ``action`` at absolute kernel time ``time`` (clamped to now)."""
        timer = AsyncTimer(self, time, action, priority, label, self._seq)
        self._seq += 1
        self._pending += 1
        heapq.heappush(self._heap, (timer.when, timer.priority, timer.seq, timer))
        # Re-arm only when this timer beats the armed wakeup: cancelling and
        # re-issuing ``call_at`` per timer is the scheduler's hot-path cost,
        # and a timer at or after the armed deadline will be drained by the
        # existing pump anyway (it drains *every* due entry in heap order).
        if self._loop is not None and (
            self._armed_when is None or timer.when < self._armed_when
        ):
            self._rearm_pump()
        return timer

    def after(
        self,
        delay: SimTime,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> AsyncTimer:
        """Run ``action`` ``delay`` protocol units from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, action, priority=priority, label=label)

    # ------------------------------------------------------------------
    # The pump: one call_at wakeup drains all due timers in heap order
    # ------------------------------------------------------------------
    def _rearm_pump(self) -> None:
        assert self._loop is not None
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        if self._pump_handle is not None:
            self._pump_handle.cancel()
            self._pump_handle = None
        # Always clear the armed deadline: after the pump drains the heap
        # empty there is no wakeup, and a stale deadline here would make
        # ``at`` skip re-arming for any later timer — which would never fire.
        self._armed_when = None
        if self._heap:
            self._armed_when = self._heap[0][0]
            real_when = self._epoch + self._armed_when * self.time_scale
            self._pump_handle = self._loop.call_at(
                max(real_when, self._loop.time()), self._pump
            )

    def _pump(self) -> None:
        if self._loop is None:  # pragma: no cover - detach races the wakeup
            return
        self._pump_handle = None
        while self._heap:
            when, _, _, timer = self._heap[0]
            if timer.cancelled:
                heapq.heappop(self._heap)
                continue
            if self._epoch + when * self.time_scale > self._loop.time():
                break
            heapq.heappop(self._heap)
            timer._fire()  # may push new (possibly already-due) timers
        self._rearm_pump()

    # ------------------------------------------------------------------
    # Internal bookkeeping (called by AsyncTimer)
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._pending -= 1
        self.timers_cancelled += 1

    def _note_fired(self) -> None:
        self._pending -= 1
        self.timers_fired += 1

    def _note_error(self, label: str, exc: Exception) -> None:
        self.errors.append((label, exc))


class AsyncRuntime(KernelCore):
    """A live cluster kernel: one asyncio loop hosting N protocol nodes.

    Construction mirrors :class:`~repro.sim.simulation.Simulation` (seed,
    delay model, channel, sinks) plus a :class:`~repro.runtime.transport.
    Transport` that physically carries envelopes — in-process loopback
    timers or length-prefixed TCP frames.  The asyncio loop provides the
    paper's "execution of any procedure is exclusive" exactly as the
    simulator's event loop does: at most one node callback runs at a time.

    Usage (async)::

        runtime = AsyncRuntime(seed=1, transport=LoopbackTransport())
        for pid in range(4):
            runtime.add_node(CheckpointProcess(pid, config))
        await runtime.start()
        await runtime.run_for(40.0)       # protocol time units
        await runtime.shutdown()

    or synchronously via :meth:`run`, which wraps the sequence above in
    ``asyncio.run``.
    """

    def __init__(
        self,
        seed: int = 0,
        transport: Optional["Transport"] = None,
        delay_model: Optional["DelayModel"] = None,
        channel: Optional["Channel"] = None,
        sinks: Optional[Sequence["TraceSink"]] = None,
        trace: Optional[Trace] = None,
        time_scale: float = 0.05,
        network: Optional["RuntimeNetwork"] = None,
        use_uvloop: bool = False,
    ) -> None:
        super().__init__()
        from repro.runtime.network import RuntimeNetwork
        from repro.runtime.transport import LoopbackTransport

        self.rng = Rng(seed)
        self.scheduler = AsyncScheduler(time_scale=time_scale)
        if trace is not None and sinks is not None:
            raise SimulationError("pass either trace= or sinks=, not both")
        self.trace = trace if trace is not None else Trace(sinks=sinks)
        self.transport: "Transport" = transport or LoopbackTransport()
        if network is not None:
            # A pre-built facade (e.g. the sharded runtime's, which accepts
            # remote destinations) owns its delay model and channel.
            if delay_model is not None or channel is not None:
                raise SimulationError("pass delay_model/channel on the network, not both")
            self.network = network
        else:
            self.network = RuntimeNetwork(
                self.transport, delay_model=delay_model, channel=channel
            )
        self.network.bind(self)
        self.transport.bind(self)
        self._started = False
        # ``use_uvloop`` applies when *this runtime* owns the loop (the
        # synchronous :meth:`run` facade); callers driving their own loop
        # call :func:`install_uvloop` before creating it instead.
        self.use_uvloop = use_uvloop
        #: Whether uvloop actually drove the last :meth:`run` (False when
        #: the knob is off or the package is not installed).
        self.uvloop_active = False

    # ------------------------------------------------------------------
    # KernelLike
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        return self.scheduler.now

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Attach to the running loop, start the transport, fire on_start."""
        if self._started:
            raise SimulationError("runtime already started")
        self._started = True
        # Transport first: attaching the scheduler arms queued workload
        # timers, and the very first one may fire (and send) during any
        # later await — endpoints must already exist by then.
        await self.transport.start()
        self.scheduler.attach(asyncio.get_running_loop())
        # Iterate hosted nodes, not process_ids: a sharded kernel reports
        # the whole cluster's pids but only hosts (and starts) its slice.
        for pid in sorted(self.nodes):
            self.nodes[pid].on_start()

    async def run_for(self, duration: SimTime) -> SimTime:
        """Let the cluster run for ``duration`` protocol time units."""
        await asyncio.sleep(duration * self.scheduler.time_scale)
        return self.now

    async def join(self, timeout: SimTime = 60.0) -> SimTime:
        """Wait for quiescence: no armed timers, nothing in flight.

        Only meaningful for workloads whose timers drain (no periodic
        checkpoint timer); ``timeout`` is in protocol units.
        """
        return await self.wait_until(
            lambda: self.scheduler.pending == 0 and self.transport.in_flight == 0,
            timeout=timeout,
            what="quiescence",
        )

    async def wait_until(
        self,
        predicate: Callable[[], bool],
        timeout: SimTime = 60.0,
        what: str = "condition",
    ) -> SimTime:
        """Poll ``predicate`` until true; ``timeout`` is in protocol units.

        The live-cluster analogue of "run the simulation until X happened":
        real runs cannot fast-forward, so tests wait on observable state
        (e.g. every process committed a checkpoint) with a hard deadline.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout * self.scheduler.time_scale
        poll = max(0.001, min(0.05, self.scheduler.time_scale / 4))
        while not predicate():
            if loop.time() > deadline:
                raise SimulationError(f"timed out after {timeout} time units awaiting {what}")
            await asyncio.sleep(poll)
        return self.now

    async def shutdown(self, raise_errors: bool = True) -> None:
        """Stop the transport, freeze the clock, re-raise callback errors."""
        await self.transport.stop()
        self.scheduler.detach()
        if raise_errors:
            self.check()

    def check(self) -> None:
        """Raise the first collected callback error, if any."""
        if self.scheduler.errors:
            label, exc = self.scheduler.errors[0]
            raise SimulationError(
                f"{len(self.scheduler.errors)} kernel callback(s) failed; "
                f"first: {label or 'action'}: {exc!r}"
            ) from exc

    # ------------------------------------------------------------------
    # Synchronous facade
    # ------------------------------------------------------------------
    def run(self, duration: SimTime, join: bool = False, timeout: SimTime = 60.0) -> SimTime:
        """Boot, run for ``duration`` units, optionally join, shut down."""
        if self.use_uvloop:
            self.uvloop_active = install_uvloop()
        return asyncio.run(self._session(duration, join, timeout))

    async def _session(self, duration: SimTime, join: bool, timeout: SimTime) -> SimTime:
        await self.start()
        await self.run_for(duration)
        if join:
            await self.join(timeout=timeout)
        await self.shutdown()
        return self.now
