"""Live deployment runtime: the paper's protocols outside the simulator.

The subsystem mirrors the simulator's layering:

* :mod:`repro.runtime.loop` — :class:`AsyncRuntime`, the second
  :class:`repro.kernel.KernelLike` kernel (real asyncio timers and clock);
* :mod:`repro.runtime.transport` — in-process loopback and
  length-prefixed-JSON TCP transports;
* :mod:`repro.runtime.wire` — the wire codec and framing;
* :mod:`repro.runtime.network` — the :class:`repro.net.network.Network`
  subclass that transmits via a transport;
* :mod:`repro.runtime.cluster` — the N-node harness with per-node stable
  storage, per-node JSONL traces, and kill/restart;
* :mod:`repro.runtime.shard` — the multi-process sharded runtime: one
  :class:`AsyncRuntime` per worker core, consistent-hash pid placement,
  wire-v2 inter-shard links, and the :class:`ShardedCluster` front door;
* ``python -m repro.runtime`` — a demo CLI that boots a cluster (optionally
  sharded via ``--shards``), injects a failure, and consistency-checks the
  merged trace.
"""

from repro.runtime.cluster import Cluster, PidRouterSink
from repro.runtime.loop import AsyncRuntime, AsyncScheduler, AsyncTimer
from repro.runtime.network import RuntimeNetwork
from repro.runtime.shard import HashRing, ShardedCluster, ShardNetwork, ShardTransport
from repro.runtime.transport import LoopbackTransport, TcpTransport, Transport

__all__ = [
    "AsyncRuntime",
    "AsyncScheduler",
    "AsyncTimer",
    "Cluster",
    "HashRing",
    "LoopbackTransport",
    "PidRouterSink",
    "RuntimeNetwork",
    "ShardNetwork",
    "ShardTransport",
    "ShardedCluster",
    "TcpTransport",
    "Transport",
]
