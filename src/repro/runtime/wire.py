"""Wire codecs and framing for the live runtime's transports.

One frame = one envelope.  Framing is the classic length-prefix: a 4-byte
big-endian unsigned length followed by that many payload bytes.  Two payload
codecs share that framing:

* **v1 — JSON** (the original format): UTF-8 JSON reusing the trace
  pipeline's lossless field codec (:func:`repro.sim.trace.encode_field`), so
  :class:`~repro.types.TreeId`, :class:`~repro.types.MessageId`, tuples and
  nested containers round-trip exactly.
* **v2 — binary**: a struct-packed header (format tag, body-kind code,
  flags, src/dst, send time, then the optional message id and label) followed
  by the body's fields as compact tagged values (varint ints, raw doubles,
  length-prefixed UTF-8).  Roughly a third the bytes of v1 and several times
  faster to encode/decode — E-SCALE (``BENCH_SCALE.json``) records the
  measured ratio.

The two formats are distinguishable from the first payload byte: JSON
documents open with ``{`` (0x7B) while binary frames open with
:data:`BINARY_TAG` (0xB2), so :func:`loads_frame` decodes either
transparently.  Which format a *sender* uses is negotiated per connection:
on accept, a server writes a 4-byte hello advertising its maximum supported
version, and the client speaks ``min(preferred, advertised)``.  A peer that
advertises v1 (or sends no hello at all — the pre-v2 transport) is fed pure
JSON frames, so old peers and trace tooling keep working unmodified.

Bodies are serialized by *kind*: every control dataclass in
:data:`repro.core.messages.CONTROL_KINDS` registers under its ``kind``
class attribute, and :class:`~repro.core.messages.NormalBody` under
``"normal"``.  Unknown kinds raise :class:`~repro.errors.WireError` on both
ends — a version-skewed peer fails loudly rather than corrupting protocol
state.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import struct
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Type, Union

from repro import _native
from repro.core.messages import CONTROL_KINDS, NormalBody
from repro.errors import WireError
from repro.net.message import CONTROL, NORMAL, Envelope
from repro.sim.trace import decode_field, encode_field
from repro.types import MessageId, TreeId

#: Anything the decoders accept: the zero-copy receive path hands them
#: ``memoryview`` slices of the socket buffer instead of ``bytes`` copies.
Buffer = Union[bytes, bytearray, memoryview]

_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size
MAX_FRAME = 16 * 1024 * 1024  # sanity bound; a control message is ~100 bytes

WIRE_V1 = 1  # length-prefixed JSON
WIRE_V2 = 2  # length-prefixed struct-packed binary
SUPPORTED_VERSIONS = (WIRE_V1, WIRE_V2)

NORMAL_KIND = "normal"

BODY_REGISTRY: Dict[str, Type[Any]] = {cls.kind: cls for cls in CONTROL_KINDS}
BODY_REGISTRY[NORMAL_KIND] = NormalBody


# ----------------------------------------------------------------------
# Body / envelope codec — v1 (JSON)
# ----------------------------------------------------------------------

def encode_body(body: Any) -> Dict[str, Any]:
    """Encode a protocol body (control dataclass or NormalBody) to JSON."""
    kind = NORMAL_KIND if isinstance(body, NormalBody) else getattr(body, "kind", None)
    cls = BODY_REGISTRY.get(kind)
    if cls is None or not isinstance(body, cls):
        raise WireError(f"unregistered body type {type(body).__name__!r}")
    fields = {
        f.name: encode_field(getattr(body, f.name)) for f in dataclasses.fields(body)
    }
    return {"kind": kind, "fields": fields}


def decode_body(payload: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_body`."""
    kind = payload.get("kind")
    cls = BODY_REGISTRY.get(kind)
    if cls is None:
        raise WireError(f"unknown wire body kind {kind!r}")
    fields = {key: decode_field(value) for key, value in payload["fields"].items()}
    try:
        return cls(**fields)
    except TypeError as exc:
        raise WireError(f"malformed {kind!r} body: {exc}") from exc


def encode_envelope(envelope: Envelope) -> Dict[str, Any]:
    """One JSON document for an envelope (lossless for protocol traffic).

    ``deliver_time`` is deliberately not carried: the receiving kernel
    stamps it at delivery, exactly as the simulated network does.
    """
    if envelope.body is None:
        body = None
    else:
        body = encode_body(envelope.body)
    return {
        "src": envelope.src,
        "dst": envelope.dst,
        "category": envelope.category,
        "body": body,
        "msg_id": encode_field(envelope.msg_id),
        "label": envelope.label,
        "send_time": envelope.send_time,
    }


def decode_envelope(payload: Dict[str, Any]) -> Envelope:
    """Inverse of :func:`encode_envelope`."""
    try:
        return Envelope(
            src=payload["src"],
            dst=payload["dst"],
            category=payload["category"],
            body=decode_body(payload["body"]) if payload["body"] is not None else None,
            msg_id=decode_field(payload["msg_id"]),
            label=payload["label"],
            send_time=payload["send_time"],
        )
    except KeyError as exc:
        raise WireError(f"wire envelope missing field {exc}") from exc


# ----------------------------------------------------------------------
# Body / envelope codec — v2 (binary)
# ----------------------------------------------------------------------

BINARY_TAG = 0xB2  # first payload byte; JSON frames start with '{' (0x7B)

# Stable kind codes: 0 = no body, 1 = normal, control kinds in registration
# order after that.  Both ends derive the table from the same CONTROL_KINDS
# tuple, so the codes agree by construction.
_KIND_CODE: Dict[str, int] = {NORMAL_KIND: 1}
_KIND_CODE.update({cls.kind: i + 2 for i, cls in enumerate(CONTROL_KINDS)})
_CODE_KIND: Dict[int, str] = {code: kind for kind, code in _KIND_CODE.items()}
_BODY_FIELDS: Dict[str, Tuple[str, ...]] = {
    kind: tuple(f.name for f in dataclasses.fields(cls))
    for kind, cls in BODY_REGISTRY.items()
}

# tag, kind_code, flags, src, dst, send_time
_V2_FIXED = struct.Struct(">BBBiid")
_V2_MSGID = struct.Struct(">iq")  # sender, send_index
_V2_LABEL = struct.Struct(">q")
_V2_DOUBLE = struct.Struct(">d")

# Bound pack/unpack methods hoisted to module level: the inner loops pay one
# global load instead of an attribute lookup per call, and every Struct is
# compiled exactly once at import.
_PACK_FIXED = _V2_FIXED.pack
_UNPACK_FIXED = _V2_FIXED.unpack_from
_PACK_MSGID = _V2_MSGID.pack
_UNPACK_MSGID = _V2_MSGID.unpack_from
_PACK_LABEL = _V2_LABEL.pack
_UNPACK_LABEL = _V2_LABEL.unpack_from
_PACK_HEADER = _HEADER.pack
_PACK_HEADER_INTO = _HEADER.pack_into
_UNPACK_HEADER_FROM = _HEADER.unpack_from

_F_MSGID = 0x01
_F_LABEL = 0x02
_F_CONTROL = 0x04

# Value tags for the payload section (a minimal schema-free binary codec
# covering exactly the vocabulary the JSON field codec handles, so the two
# paths decode to identical objects — including the repr degradation for
# unknown types).
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_TUPLE = 6
_T_LIST = 7
_T_SET = 8
_T_MAP = 9
_T_MID = 10
_T_TID = 11
_T_REPR = 12


def _pack_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _pack_zigzag(out: bytearray, value: int) -> None:
    _pack_uvarint(out, value * 2 if value >= 0 else -value * 2 - 1)


def _read_uvarint(blob: Buffer, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        try:
            byte = blob[pos]
        except IndexError:
            raise WireError("truncated varint in binary frame") from None
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _read_zigzag(blob: Buffer, pos: int) -> Tuple[int, int]:
    raw, pos = _read_uvarint(blob, pos)
    return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1), pos


def _pack_str(out: bytearray, value: str) -> None:
    encoded = value.encode()
    _pack_uvarint(out, len(encoded))
    out += encoded


def _pack_value(
    out: bytearray,
    value: Any,
    _pack_double: Callable[[float], bytes] = _V2_DOUBLE.pack,
) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        _pack_zigzag(out, value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _pack_double(value)
    elif isinstance(value, str):
        out.append(_T_STR)
        _pack_str(out, value)
    elif isinstance(value, MessageId):
        out.append(_T_MID)
        _pack_zigzag(out, value.sender)
        _pack_zigzag(out, value.send_index)
    elif isinstance(value, TreeId):
        out.append(_T_TID)
        _pack_zigzag(out, value.initiator)
        _pack_zigzag(out, value.initiation_seq)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        _pack_uvarint(out, len(value))
        for item in value:
            _pack_value(out, item)
    elif isinstance(value, list):
        out.append(_T_LIST)
        _pack_uvarint(out, len(value))
        for item in value:
            _pack_value(out, item)
    elif isinstance(value, (set, frozenset)):
        # Byte-stable: order members by their own encoding.
        members: List[bytes] = []
        for item in value:
            buf = bytearray()
            _pack_value(buf, item)
            members.append(bytes(buf))
        out.append(_T_SET)
        _pack_uvarint(out, len(members))
        for blob in sorted(members):
            out += blob
    elif isinstance(value, dict):
        out.append(_T_MAP)
        _pack_uvarint(out, len(value))
        for key, item in value.items():
            _pack_value(out, key)
            _pack_value(out, item)
    else:
        # Same lossy degradation as the JSON path's {"$repr": ...}: decodes
        # to the repr string on the other end.
        out.append(_T_REPR)
        _pack_str(out, repr(value))


def _read_str(blob: Buffer, pos: int) -> Tuple[str, int]:
    length, pos = _read_uvarint(blob, pos)
    end = pos + length
    if end > len(blob):
        raise WireError("truncated string in binary frame")
    # str(buffer, "utf-8") decodes bytes and memoryview slices alike, with
    # the same UnicodeDecodeError behaviour as bytes.decode().
    return str(blob[pos:end], "utf-8"), end


def _read_value(
    blob: Buffer,
    pos: int,
    _unpack_double: Callable[..., Tuple[float]] = _V2_DOUBLE.unpack_from,
) -> Tuple[Any, int]:
    try:
        tag = blob[pos]
    except IndexError:
        raise WireError("truncated value in binary frame") from None
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        return _read_zigzag(blob, pos)
    if tag == _T_FLOAT:
        end = pos + 8
        if end > len(blob):
            raise WireError("truncated float in binary frame")
        return _unpack_double(blob, pos)[0], end
    if tag in (_T_STR, _T_REPR):
        return _read_str(blob, pos)
    if tag == _T_MID:
        sender, pos = _read_zigzag(blob, pos)
        send_index, pos = _read_zigzag(blob, pos)
        return MessageId(sender, send_index), pos
    if tag == _T_TID:
        initiator, pos = _read_zigzag(blob, pos)
        initiation_seq, pos = _read_zigzag(blob, pos)
        return TreeId(initiator, initiation_seq), pos
    if tag in (_T_TUPLE, _T_LIST, _T_SET):
        count, pos = _read_uvarint(blob, pos)
        items = []
        for _ in range(count):
            item, pos = _read_value(blob, pos)
            items.append(item)
        if tag == _T_TUPLE:
            return tuple(items), pos
        if tag == _T_SET:
            return set(items), pos
        return items, pos
    if tag == _T_MAP:
        count, pos = _read_uvarint(blob, pos)
        mapping = {}
        for _ in range(count):
            key, pos = _read_value(blob, pos)
            item, pos = _read_value(blob, pos)
            mapping[key] = item
        return mapping, pos
    raise WireError(f"unknown binary value tag {tag}")


def _encode_envelope_into(out: bytearray, envelope: Envelope) -> None:
    """Append the v2 payload of ``envelope`` (no length prefix) to ``out``."""
    body = envelope.body
    if body is None:
        kind_code = 0
        field_names: Tuple[str, ...] = ()
    else:
        kind = NORMAL_KIND if isinstance(body, NormalBody) else getattr(body, "kind", None)
        cls = BODY_REGISTRY.get(kind)
        if cls is None or not isinstance(body, cls):
            raise WireError(f"unregistered body type {type(body).__name__!r}")
        kind_code = _KIND_CODE[kind]
        field_names = _BODY_FIELDS[kind]
    category = envelope.category
    if category == CONTROL:
        flags = _F_CONTROL
    elif category == NORMAL:
        flags = 0
    else:
        raise WireError(f"cannot binary-encode category {category!r}")
    msg_id = envelope.msg_id
    label = envelope.label
    if msg_id is not None:
        flags |= _F_MSGID
    if label is not None:
        flags |= _F_LABEL
    out += _PACK_FIXED(
        BINARY_TAG, kind_code, flags, envelope.src, envelope.dst, envelope.send_time
    )
    if msg_id is not None:
        out += _PACK_MSGID(msg_id.sender, msg_id.send_index)
    if label is not None:
        out += _PACK_LABEL(label)
    for name in field_names:
        _pack_value(out, getattr(body, name))


def _py_encode_envelope_binary(envelope: Envelope) -> bytes:
    """The v2 payload for an envelope (no length prefix)."""
    out = bytearray()
    _encode_envelope_into(out, envelope)
    return bytes(out)


def _py_decode_envelope_binary(blob: Buffer) -> Envelope:
    """Inverse of :func:`encode_envelope_binary`."""
    if len(blob) < _V2_FIXED.size:
        raise WireError("truncated binary envelope header")
    tag, kind_code, flags, src, dst, send_time = _UNPACK_FIXED(blob, 0)
    if tag != BINARY_TAG:
        raise WireError(f"bad binary frame tag 0x{tag:02X}")
    pos = _V2_FIXED.size
    msg_id = None
    if flags & _F_MSGID:
        end = pos + _V2_MSGID.size
        if end > len(blob):
            raise WireError("truncated binary message id")
        sender, send_index = _UNPACK_MSGID(blob, pos)
        msg_id = MessageId(sender, send_index)
        pos = end
    label = None
    if flags & _F_LABEL:
        end = pos + _V2_LABEL.size
        if end > len(blob):
            raise WireError("truncated binary label")
        (label,) = _UNPACK_LABEL(blob, pos)
        pos = end
    if kind_code == 0:
        body = None
    else:
        kind = _CODE_KIND.get(kind_code)
        if kind is None:
            raise WireError(f"unknown binary body kind code {kind_code}")
        values = []
        for _ in _BODY_FIELDS[kind]:
            value, pos = _read_value(blob, pos)
            values.append(value)
        try:
            body = BODY_REGISTRY[kind](*values)
        except TypeError as exc:
            raise WireError(f"malformed {kind!r} binary body: {exc}") from exc
    return Envelope(
        src=src,
        dst=dst,
        category=CONTROL if flags & _F_CONTROL else NORMAL,
        body=body,
        msg_id=msg_id,
        label=label,
        send_time=send_time,
    )


# Public codec entry points.  These aliases are rebound to the compiled
# implementations at the bottom of the module when the native codec is built
# and passes its probe; the ``_py_`` names always stay interpreted so the
# probe and E-NATIVE can compare backends inside one process.
encode_envelope_binary = _py_encode_envelope_binary
decode_envelope_binary = _py_decode_envelope_binary


# ----------------------------------------------------------------------
# Version negotiation (per TCP connection)
# ----------------------------------------------------------------------

HELLO_MAGIC = b"RW"
_HELLO = struct.Struct(">2sBB")  # magic, max supported version, reserved
HELLO_SIZE = _HELLO.size


def pack_hello(version: int) -> bytes:
    """The 4-byte hello a server writes on accept, advertising ``version``."""
    if version not in SUPPORTED_VERSIONS:
        raise WireError(f"cannot advertise unsupported wire version {version}")
    return _HELLO.pack(HELLO_MAGIC, version, 0)


async def read_hello(reader: asyncio.StreamReader, timeout: float = 5.0) -> int:
    """The server's advertised version; :data:`WIRE_V1` when there is none.

    A pre-v2 server writes nothing on accept, so a missing hello (timeout or
    EOF) means "JSON-only peer" — the transparent-fallback half of the
    negotiation.  The timeout is wall-clock seconds, deliberately generous:
    a live server writes its hello in the accept callback, microseconds
    after the connection lands.
    """
    try:
        blob = await asyncio.wait_for(reader.readexactly(HELLO_SIZE), timeout)
    except (asyncio.TimeoutError, asyncio.IncompleteReadError):
        return WIRE_V1
    magic, version, _ = _HELLO.unpack(blob)
    if magic != HELLO_MAGIC or version < WIRE_V1:
        return WIRE_V1
    return version


def negotiate(preferred: int, advertised: int) -> int:
    """The version a client speaks: its preference capped by the server's."""
    return max(WIRE_V1, min(preferred, advertised))


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def _py_dumps_frame(envelope: Envelope, version: int = WIRE_V2) -> bytes:
    """Encode an envelope into one length-prefixed wire frame."""
    if version == WIRE_V2:
        blob = _py_encode_envelope_binary(envelope)
    elif version == WIRE_V1:
        blob = json.dumps(encode_envelope(envelope), separators=(",", ":")).encode()
    else:
        raise WireError(f"unsupported wire version {version}")
    if len(blob) > MAX_FRAME:
        raise WireError(f"frame of {len(blob)} bytes exceeds MAX_FRAME={MAX_FRAME}")
    return _PACK_HEADER(len(blob)) + blob


def _py_loads_frame(blob: Buffer) -> Envelope:
    """Decode a frame *payload* (header already stripped) to an envelope.

    Sniffs the format from the first byte — binary frames open with
    :data:`BINARY_TAG`, JSON ones with ``{`` — so a receiver needs no
    per-connection state to decode a mixed stream.  Accepts any bytes-like
    object; the zero-copy receive path passes ``memoryview`` slices.
    """
    if not len(blob):
        raise WireError("empty wire frame")
    if blob[0] == BINARY_TAG:
        return _py_decode_envelope_binary(blob)
    try:
        payload = json.loads(str(blob, "utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable wire frame: {exc}") from exc
    return decode_envelope(payload)


def _py_roundtrip(envelope: Envelope, version: int = WIRE_V2) -> Envelope:
    """Serialize + deserialize an envelope through a full wire codec.

    The loopback transport runs every message through this by default, so
    even socket-free tests prove the traffic is wire-serializable.
    """
    return _py_loads_frame(_py_dumps_frame(envelope, version=version)[HEADER_SIZE:])


# Reused batch-assembly buffer: one allocation per process instead of one
# bytearray + one bytes per frame per batch.  Safe because encoding is
# synchronous and each process encodes on one thread; the returned value is
# an immutable copy, so the buffer can be cleared on the next call.
_BATCH_BUF = bytearray()


def _py_encode_batch(envelopes: Sequence[Envelope], version: int = WIRE_V2) -> bytes:
    """One contiguous buffer of length-prefixed frames for a whole batch.

    Byte-identical to ``b"".join(dumps_frame(e, version=version) ...)`` —
    the TCP transport's coalescing write path — without the per-frame bytes
    objects and the final join copy.
    """
    if version != WIRE_V2:
        return b"".join(_py_dumps_frame(env, version=version) for env in envelopes)
    out = _BATCH_BUF
    out.clear()
    for envelope in envelopes:
        header_at = len(out)
        out += b"\x00\x00\x00\x00"  # length backpatched below
        _encode_envelope_into(out, envelope)
        payload = len(out) - header_at - HEADER_SIZE
        if payload > MAX_FRAME:
            out.clear()
            raise WireError(f"frame of {payload} bytes exceeds MAX_FRAME={MAX_FRAME}")
        _PACK_HEADER_INTO(out, header_at, payload)
    return bytes(out)


dumps_frame = _py_dumps_frame
loads_frame = _py_loads_frame
roundtrip = _py_roundtrip
encode_batch = _py_encode_batch


class FrameDecoder:
    """Sans-IO incremental splitter for a stream of length-prefixed frames.

    The zero-copy receive path: feed raw socket reads in with :meth:`feed`,
    then drain every complete frame with :meth:`frames` — each payload is
    yielded as a ``memoryview`` slice of the internal buffer, so a coalesced
    TCP batch is decoded without one intermediate ``bytes`` copy per frame.

    Contract: decode each yielded view before advancing the iterator, and
    never call :meth:`feed` while a ``frames()`` iteration is live — views
    are released as the iterator advances (or closes), and the buffer is
    compacted on the next feed.  :meth:`eof` maps a connection closed
    mid-header/mid-frame onto the same :class:`~repro.errors.WireError`\\ s
    as :func:`read_frame`, so callers keep one error contract.
    """

    __slots__ = ("_buf", "_pos")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._pos = 0

    def feed(self, data: Buffer) -> None:
        """Append freshly received bytes (no yielded views may be live)."""
        buf = self._buf
        if self._pos:
            del buf[: self._pos]  # compact consumed frames away
            self._pos = 0
        buf += data

    def frames(self) -> Iterator[memoryview]:
        """Yield each complete frame payload as a zero-copy view."""
        buf = self._buf
        while True:
            pos = self._pos
            if len(buf) - pos < HEADER_SIZE:
                return
            (length,) = _UNPACK_HEADER_FROM(buf, pos)
            if length > MAX_FRAME:
                raise WireError(
                    f"incoming frame of {length} bytes exceeds MAX_FRAME={MAX_FRAME}"
                )
            start = pos + HEADER_SIZE
            if len(buf) - start < length:
                return
            self._pos = start + length
            view = memoryview(buf)[start : start + length]
            try:
                yield view
            finally:
                # Drop the buffer export even if the consumer abandons the
                # iterator mid-frame, so the next feed() can resize.
                view.release()

    def pending(self) -> int:
        """Unconsumed bytes currently buffered (partial frames included)."""
        return len(self._buf) - self._pos

    def eof(self) -> None:
        """Validate a close: raises unless the stream ended between frames."""
        remaining = len(self._buf) - self._pos
        if remaining == 0:
            return
        if remaining < HEADER_SIZE:
            raise WireError("connection closed mid-header")
        raise WireError("connection closed mid-frame")


async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one frame payload off ``reader``; None on clean EOF.

    A connection closed mid-frame raises :class:`~repro.errors.WireError`
    (the peer died between header and payload — the caller decides whether
    that is a tolerated crash or a bug).
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise WireError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"incoming frame of {length} bytes exceeds MAX_FRAME={MAX_FRAME}")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireError("connection closed mid-frame") from exc


# ----------------------------------------------------------------------
# Native codec selection (see repro._native and DESIGN.md §14)
# ----------------------------------------------------------------------

_NATIVE: Optional[Any] = None


def native_active() -> bool:
    """True when the compiled codec passed its probe and serves this module."""
    return _NATIVE is not None


def _fast_construct_safe() -> bool:
    """Whether the native decoder may build Envelope/MessageId/TreeId without
    running their ``__init__``.

    Safe exactly when those generated inits are plain field assignments: the
    field lists match what the C code writes, there is no ``__post_init__``,
    and the id types carry an instance ``__dict__`` for the C fast fill.
    The byte/object-level probe below re-verifies behaviourally either way.
    """
    envelope_fields = tuple(f.name for f in dataclasses.fields(Envelope))
    if envelope_fields != (
        "src", "dst", "category", "body", "msg_id", "label", "send_time", "deliver_time"
    ):
        return False
    for cls, names in (
        (MessageId, ("sender", "send_index")),
        (TreeId, ("initiator", "initiation_seq")),
    ):
        if tuple(f.name for f in dataclasses.fields(cls)) != names:
            return False
        if not hasattr(cls(0, 0), "__dict__"):
            return False
    return not any(
        hasattr(cls, "__post_init__") for cls in (Envelope, MessageId, TreeId)
    )


def _probe_corpus() -> List[Envelope]:
    """Envelopes exercising every value tag, both categories, all flag
    combinations and the big-int varint slow path."""
    rich_payload = {
        "ints": [0, 1, -1, 63, 64, -65, 2**40, -(2**40), 2**70, -(2**70) - 1],
        "floats": (0.0, -0.0, 2.5, -1e300, float("inf")),
        "text": ["", "ascii", "snowman ☃", "\U0001f600"],
        ("tuple", "key"): None,
        3: {"nested": {"deep": (1, (2, (3,)))}},
        "flags": [True, False, None],
        "ids": (MessageId(3, 2**40), TreeId(-2, 9)),
        "sets": [{5, -17, 2**66}, frozenset({"b", "a", "ab"})],
    }
    bodies = [
        None,
        NormalBody(),
        NormalBody(
            payload=rich_payload,
            markers=(TreeId(1, 2), TreeId(0, 0)),
            marker_seq=7,
            incarnation=1,
        ),
    ]
    corpus = []
    for i, body in enumerate(bodies):
        corpus.append(
            Envelope(
                src=i,
                dst=-i,
                category=NORMAL,
                body=body,
                msg_id=MessageId(i, 2**40 + i),
                label=-3 - i,
                send_time=0.25 * i,
            )
        )
        corpus.append(
            Envelope(src=-1, dst=2**31 - 1, category=CONTROL, body=body,
                     msg_id=None, label=None, send_time=-1.5)
        )
    return corpus


def _probe_native(module: Any) -> Optional[str]:
    """Self-check a compiled codec against the interpreted one; None = OK.

    Runs at import before the compiled module is trusted, so a stale or
    miscompiled build degrades to the interpreted codec instead of shipping
    different bytes than the rest of the fleet.
    """
    for envelope in _probe_corpus():
        expected = _py_encode_envelope_binary(envelope)
        if module.encode_envelope_binary(envelope) != expected:
            return f"encode mismatch for {envelope.category} envelope"
        decoded = module.decode_envelope_binary(expected)
        if type(decoded) is not Envelope or decoded != _py_decode_envelope_binary(expected):
            return "decode mismatch"
        if module.encode_envelope_binary(decoded) != expected:
            return "re-encode mismatch after native decode"
        if module.dumps_frame(envelope) != _py_dumps_frame(envelope):
            return "frame mismatch"
    sample = _probe_corpus()[:3]
    if module.encode_frames(sample) != _py_encode_batch(sample):
        return "batch mismatch"
    return None


def _native_dumps_frame(envelope: Envelope, version: int = WIRE_V2) -> bytes:
    """Encode an envelope into one length-prefixed wire frame."""
    if version == WIRE_V2:
        return _NATIVE.dumps_frame(envelope)
    return _py_dumps_frame(envelope, version=version)


def _native_loads_frame(blob: Buffer) -> Envelope:
    """Decode a frame payload (header stripped); native for binary frames."""
    if len(blob) and blob[0] == BINARY_TAG:
        return _NATIVE.decode_envelope_binary(blob)
    return _py_loads_frame(blob)


def _native_roundtrip(envelope: Envelope, version: int = WIRE_V2) -> Envelope:
    """Serialize + deserialize an envelope through a full wire codec."""
    if version == WIRE_V2:
        return _NATIVE.roundtrip(envelope)
    return _py_roundtrip(envelope, version=version)


def _native_encode_batch(envelopes: Sequence[Envelope], version: int = WIRE_V2) -> bytes:
    """One contiguous buffer of length-prefixed frames for a whole batch."""
    if version == WIRE_V2:
        return _NATIVE.encode_frames(envelopes)
    return _py_encode_batch(envelopes, version=version)


def _install_native() -> None:
    """Load, configure, probe and (on success) switch in the compiled codec."""
    global _NATIVE, encode_envelope_binary, decode_envelope_binary
    global dumps_frame, loads_frame, roundtrip, encode_batch
    module = _native.load("wirecodec")
    if module is None:
        return
    encode_types = {
        cls: (_KIND_CODE[kind], _BODY_FIELDS[kind])
        for kind, cls in BODY_REGISTRY.items()
    }
    # isinstance-fallback table for subclassed bodies; NormalBody first to
    # mirror the interpreted encoder's check order.
    registry = {NORMAL_KIND: (_KIND_CODE[NORMAL_KIND], NormalBody, _BODY_FIELDS[NORMAL_KIND])}
    for cls in CONTROL_KINDS:
        registry[cls.kind] = (_KIND_CODE[cls.kind], cls, _BODY_FIELDS[cls.kind])
    decode_table: List[Optional[Tuple[str, Type[Any], Tuple[str, ...]]]] = [
        None
    ] * (max(_KIND_CODE.values()) + 1)
    for kind, code in _KIND_CODE.items():
        decode_table[code] = (kind, BODY_REGISTRY[kind], _BODY_FIELDS[kind])
    try:
        module.configure(
            envelope=Envelope,
            message_id=MessageId,
            tree_id=TreeId,
            wire_error=WireError,
            struct_error=struct.error,
            control=CONTROL,
            normal=NORMAL,
            binary_tag=BINARY_TAG,
            max_frame=MAX_FRAME,
            encode_types=encode_types,
            registry=registry,
            decode=decode_table,
            fast_construct=_fast_construct_safe(),
        )
        problem = _probe_native(module)
    except Exception as exc:  # noqa: BLE001 - any probe failure means fallback
        problem = f"{type(exc).__name__}: {exc}"
    if problem is not None:
        _native.reject("wirecodec", problem)
        return
    _NATIVE = module
    encode_envelope_binary = module.encode_envelope_binary
    decode_envelope_binary = module.decode_envelope_binary
    dumps_frame = _native_dumps_frame
    loads_frame = _native_loads_frame
    roundtrip = _native_roundtrip
    encode_batch = _native_encode_batch


_install_native()
