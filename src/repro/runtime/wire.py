"""JSON wire codec and framing for the live runtime's TCP transport.

One frame = one envelope.  Framing is the classic length-prefix: a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON.  The
JSON payload reuses the trace pipeline's lossless field codec
(:func:`repro.sim.trace.encode_field`), so :class:`~repro.types.TreeId`,
:class:`~repro.types.MessageId`, tuples and nested containers round-trip
exactly — the decoded envelope compares equal to the sent one.

Bodies are serialized by *kind*: every control dataclass in
:data:`repro.core.messages.CONTROL_KINDS` registers under its ``kind``
class attribute, and :class:`~repro.core.messages.NormalBody` under
``"normal"``.  Unknown kinds raise :class:`~repro.errors.WireError` on both
ends — a version-skewed peer fails loudly rather than corrupting protocol
state.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import struct
from typing import Any, Dict, Optional, Type

from repro.core.messages import CONTROL_KINDS, NormalBody
from repro.errors import WireError
from repro.net.message import Envelope
from repro.sim.trace import decode_field, encode_field

_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size
MAX_FRAME = 16 * 1024 * 1024  # sanity bound; a control message is ~100 bytes

NORMAL_KIND = "normal"

BODY_REGISTRY: Dict[str, Type[Any]] = {cls.kind: cls for cls in CONTROL_KINDS}
BODY_REGISTRY[NORMAL_KIND] = NormalBody


# ----------------------------------------------------------------------
# Body / envelope codec
# ----------------------------------------------------------------------

def encode_body(body: Any) -> Dict[str, Any]:
    """Encode a protocol body (control dataclass or NormalBody) to JSON."""
    kind = NORMAL_KIND if isinstance(body, NormalBody) else getattr(body, "kind", None)
    cls = BODY_REGISTRY.get(kind)
    if cls is None or not isinstance(body, cls):
        raise WireError(f"unregistered body type {type(body).__name__!r}")
    fields = {
        f.name: encode_field(getattr(body, f.name)) for f in dataclasses.fields(body)
    }
    return {"kind": kind, "fields": fields}


def decode_body(payload: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_body`."""
    kind = payload.get("kind")
    cls = BODY_REGISTRY.get(kind)
    if cls is None:
        raise WireError(f"unknown wire body kind {kind!r}")
    fields = {key: decode_field(value) for key, value in payload["fields"].items()}
    try:
        return cls(**fields)
    except TypeError as exc:
        raise WireError(f"malformed {kind!r} body: {exc}") from exc


def encode_envelope(envelope: Envelope) -> Dict[str, Any]:
    """One JSON document for an envelope (lossless for protocol traffic).

    ``deliver_time`` is deliberately not carried: the receiving kernel
    stamps it at delivery, exactly as the simulated network does.
    """
    if envelope.body is None:
        body = None
    else:
        body = encode_body(envelope.body)
    return {
        "src": envelope.src,
        "dst": envelope.dst,
        "category": envelope.category,
        "body": body,
        "msg_id": encode_field(envelope.msg_id),
        "label": envelope.label,
        "send_time": envelope.send_time,
    }


def decode_envelope(payload: Dict[str, Any]) -> Envelope:
    """Inverse of :func:`encode_envelope`."""
    try:
        return Envelope(
            src=payload["src"],
            dst=payload["dst"],
            category=payload["category"],
            body=decode_body(payload["body"]) if payload["body"] is not None else None,
            msg_id=decode_field(payload["msg_id"]),
            label=payload["label"],
            send_time=payload["send_time"],
        )
    except KeyError as exc:
        raise WireError(f"wire envelope missing field {exc}") from exc


def roundtrip(envelope: Envelope) -> Envelope:
    """Serialize + deserialize an envelope through the full JSON codec.

    The loopback transport runs every message through this by default, so
    even socket-free tests prove the traffic is wire-serializable.
    """
    return decode_envelope(json.loads(json.dumps(encode_envelope(envelope))))


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def dumps_frame(envelope: Envelope) -> bytes:
    """Encode an envelope into one length-prefixed wire frame."""
    blob = json.dumps(encode_envelope(envelope), separators=(",", ":")).encode()
    if len(blob) > MAX_FRAME:
        raise WireError(f"frame of {len(blob)} bytes exceeds MAX_FRAME={MAX_FRAME}")
    return _HEADER.pack(len(blob)) + blob


def loads_frame(blob: bytes) -> Envelope:
    """Decode a frame *payload* (header already stripped) to an envelope."""
    try:
        payload = json.loads(blob.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable wire frame: {exc}") from exc
    return decode_envelope(payload)


async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one frame payload off ``reader``; None on clean EOF.

    A connection closed mid-frame raises :class:`~repro.errors.WireError`
    (the peer died between header and payload — the caller decides whether
    that is a tolerated crash or a bug).
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise WireError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"incoming frame of {length} bytes exceeds MAX_FRAME={MAX_FRAME}")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireError("connection closed mid-frame") from exc
