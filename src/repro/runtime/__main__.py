"""Demo CLI: boot a live cluster, stress it, verify consistency.

Usage::

    python -m repro.runtime                                  # 3-node TCP demo
    python -m repro.runtime --nodes 4 --transport loopback
    python -m repro.runtime --kill 1@8 --restart 1@18        # mid-run failure
    python -m repro.runtime --join 3@10 --leave 1@20:0       # grow + shrink
    python -m repro.runtime --duration 40 --time-scale 0.02 --out runs/live
    python -m repro.runtime --nodes 8 --shards 2             # multi-process

The run drives a Poisson peer workload with periodic autonomous checkpoints
and the Section 6 resilience machinery on, optionally killing and
restarting nodes mid-run.  ``--join``/``--leave`` exercise the membership
plane instead: a join provisions storage and an endpoint for a brand-new
pid and admits it as a full participant; a graceful leave hands the
departing node's checkpoint obligations to a successor and retires its
endpoint.  Afterwards the per-node JSONL traces are merged
into one :class:`~repro.analysis.index.TraceIndex` and the paper's C1
consistency definition is checked against the reconstructed recovery line —
the same oracle the simulated test suite uses, now applied to a live run.

With ``--shards K`` the same scenario runs on the multi-process
:class:`~repro.runtime.shard.ShardedCluster`: K worker kernels, pids placed
by consistent hashing, inter-shard traffic over wire-v2 TCP links — and the
identical C1 check on the merged per-shard traces.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, Dict, List, Tuple

from repro.analysis.consistency import check_c1_from_trace
from repro.core import ProtocolConfig
from repro.errors import ConsistencyViolation
from repro.runtime.cluster import Cluster
from repro.workloads import RandomPeerWorkload


def parse_events(specs: List[str]) -> List[Tuple[int, float]]:
    """Parse repeated ``PID@TIME`` arguments (e.g. ``--kill 1@8``)."""
    events = []
    for spec in specs:
        pid_text, _, time_text = spec.partition("@")
        try:
            events.append((int(pid_text), float(time_text)))
        except ValueError:
            raise SystemExit(f"bad event spec {spec!r}; expected PID@TIME") from None
    return events


def parse_leave_events(specs: List[str]) -> List[Tuple[int, float, Any]]:
    """Parse ``PID@TIME[:SUCCESSOR]`` arguments (e.g. ``--leave 1@20:0``)."""
    events = []
    for spec in specs:
        pid_text, _, rest = spec.partition("@")
        time_text, sep, succ_text = rest.partition(":")
        try:
            successor = int(succ_text) if sep else None
            events.append((int(pid_text), float(time_text), successor))
        except ValueError:
            raise SystemExit(
                f"bad leave spec {spec!r}; expected PID@TIME[:SUCCESSOR]"
            ) from None
    return events


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument("--nodes", type=int, default=3, help="cluster size (default 3)")
    parser.add_argument(
        "--transport", choices=("tcp", "loopback"), default="tcp",
        help="message transport (default tcp; ignored with --shards)",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="K",
        help="run K worker processes (sharded runtime); 0 = single-process",
    )
    parser.add_argument("--duration", type=float, default=30.0,
                        help="run length in protocol time units (default 30)")
    parser.add_argument("--time-scale", type=float, default=0.02,
                        help="real seconds per protocol time unit (default 0.02)")
    parser.add_argument("--seed", type=int, default=0, help="workload/delay seed")
    parser.add_argument("--kill", action="append", default=[], metavar="PID@TIME",
                        help="kill a node mid-run (repeatable)")
    parser.add_argument("--restart", action="append", default=[], metavar="PID@TIME",
                        help="restart a killed node (repeatable)")
    parser.add_argument("--join", action="append", default=[], metavar="PID@TIME",
                        help="admit a brand-new node mid-run (repeatable)")
    parser.add_argument("--leave", action="append", default=[],
                        metavar="PID@TIME[:SUCCESSOR]",
                        help="gracefully retire a node mid-run, handing its "
                             "obligations to SUCCESSOR (repeatable)")
    parser.add_argument("--out", default="runs/live",
                        help="output directory for storage + traces (default runs/live)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the summary as JSON")
    return parser


async def run_demo(args: argparse.Namespace) -> Dict[str, Any]:
    config = ProtocolConfig(
        checkpoint_interval=max(4.0, args.duration / 4),
        failure_resilience=True,
    )
    cluster = Cluster(
        n=args.nodes,
        root=args.out,
        seed=args.seed,
        transport=args.transport,
        config=config,
        time_scale=args.time_scale,
    )
    RandomPeerWorkload(
        message_rate=1.0, step_rate=0.5, duration=args.duration
    ).install(cluster.runtime, cluster.procs)
    for pid, at in parse_events(args.kill):
        cluster.schedule_kill(pid, at)
    for pid, at in parse_events(args.restart):
        cluster.schedule_restart(pid, at)
    for pid, at in parse_events(args.join):
        cluster.schedule_join(pid, at)
    for pid, at, successor in parse_leave_events(args.leave):
        cluster.schedule_leave(pid, at, successor)

    await cluster.start()
    await cluster.run_for(args.duration)
    # Quiesce before the cut, so the recovery line the trace records is a
    # settled one, not a mid-commit snapshot.
    await cluster.quiesce()
    await cluster.shutdown()

    summary = cluster.summary()
    summary["transport"] = args.transport
    summary["trace_files"] = cluster.router.paths
    summary["joins"] = len(args.join)
    summary["leaves"] = len(args.leave)

    index = cluster.merged_index()
    summary["merged_events"] = index.events_indexed
    try:
        check_c1_from_trace(index, sorted(cluster.procs))
        summary["recovery_line_consistent"] = True
    except ConsistencyViolation as violation:
        summary["recovery_line_consistent"] = False
        summary["violation"] = str(violation)
    return summary


def run_sharded_demo(args: argparse.Namespace) -> Dict[str, Any]:
    """The demo scenario on the multi-process sharded runtime."""
    from repro.runtime.shard import ShardedCluster

    config = ProtocolConfig(
        checkpoint_interval=max(4.0, args.duration / 4),
        failure_resilience=True,
    )
    cluster = ShardedCluster(
        n=args.nodes,
        root=args.out,
        shards=args.shards,
        seed=args.seed,
        config=config,
        time_scale=args.time_scale,
        workload=dict(message_rate=1.0, step_rate=0.5, duration=args.duration),
    )
    try:
        for pid, at in parse_events(args.kill):
            cluster.schedule_kill(pid, at)
        for pid, at in parse_events(args.restart):
            cluster.schedule_restart(pid, at)
        for pid, at in parse_events(args.join):
            cluster.schedule_join(pid, at)
        for pid, at, successor in parse_leave_events(args.leave):
            cluster.schedule_leave(pid, at, successor)
        cluster.start()
        cluster.run_for(args.duration)
        cluster.quiesce()  # drain open 2PC rounds before the cut
        cluster.run_for(2.0)
        cluster.shutdown()
    finally:
        cluster.close()

    summary = cluster.summary()
    summary["transport"] = f"wire-v2 tcp x{args.shards} shards"
    summary["trace_files"] = cluster.trace_paths()
    summary["joins"] = len(args.join)
    summary["leaves"] = len(args.leave)

    index = cluster.merged_index()
    summary["merged_events"] = index.events_indexed
    try:
        # Membership is derived from the trace itself (joiners appear,
        # graceful leavers are settled history), so no pid list here.
        check_c1_from_trace(index)
        summary["recovery_line_consistent"] = True
    except ConsistencyViolation as violation:
        summary["recovery_line_consistent"] = False
        summary["violation"] = str(violation)
    return summary


def render(summary: Dict[str, Any]) -> str:
    lines = [
        f"live cluster: {summary['nodes']} nodes over {summary['transport']}, "
        f"ran to t={summary['now']:.1f}",
        f"  normal sent    {summary['normal_sent']}",
        f"  control sent   {summary['control_sent']}",
        f"  delivered      {summary['delivered']}",
        f"  dropped        {summary['dropped']}",
        f"  spooled        {summary['spooled']}",
        f"  trace events   {summary['trace_events']} "
        f"(merged: {summary['merged_events']})",
        "  committed ckpts "
        + " ".join(f"P{pid}:{n}" for pid, n in sorted(summary["committed"].items())),
        f"  recovery line consistent (C1): {summary['recovery_line_consistent']}",
    ]
    if summary.get("joins") or summary.get("leaves"):
        lines.insert(
            -1,
            f"  membership     {summary['joins']} join(s), "
            f"{summary['leaves']} graceful leave(s)",
        )
    return "\n".join(lines)


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.shards:
        summary = run_sharded_demo(args)
    else:
        summary = asyncio.run(run_demo(args))
    print(render(summary))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"summary written to {args.json}")
    if summary.get("timer_errors"):
        return 1
    return 0 if summary["recovery_line_consistent"] else 1


if __name__ == "__main__":
    sys.exit(main())
