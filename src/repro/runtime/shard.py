"""Sharded multi-process cluster runtime: many cores, one protocol.

E-SCALE showed the whole system saturating a single core: one
:class:`~repro.runtime.loop.AsyncRuntime` drives every engine, so adding
processes adds contention, not throughput.  The paper's protocol is
decentralized — concurrent checkpoint/recovery instances across autonomous
processes — and the sans-IO engine makes hosts cheap, so the fix is to run
*many kernels*: partition the protocol processes across worker OS processes
(one ``AsyncRuntime`` per core) and let the byte-identical engine code run
everywhere.

Layout::

    ShardedCluster (front door, parent process)
      ├─ worker 0: AsyncRuntime ── ShardTransport ──┐
      ├─ worker 1: AsyncRuntime ── ShardTransport ──┼── one wire-v2 TCP
      └─ worker k: AsyncRuntime ── ShardTransport ──┘   link per shard pair

* **pid → shard assignment** is consistent hashing (:class:`HashRing`):
  every participant — parent and workers — derives the same map from
  ``(shards, replicas)`` alone, and future elastic membership remaps only
  ~1/shards of the pids per shard count change.
* **intra-shard** delivery uses the loopback fast path (the wire-codec
  round-trip plus the delay-model/channel pipeline — exactly
  :class:`~repro.runtime.transport.LoopbackTransport` semantics).
* **inter-shard** traffic rides the binary wire protocol v2 over one
  negotiated TCP connection per shard pair, with the batched coalescing
  drain from :class:`~repro.runtime.transport.TcpTransport`: frames stay
  whole and in queue order inside a batch, and the *receiving* shard
  samples the per-message delivery delay, so the non-FIFO channel contract
  is preserved across the process boundary.
* **traces** stream to per-shard :class:`~repro.runtime.cluster.
  PidRouterSink` JSONL shards; :meth:`ShardedCluster.merged_index` stitches
  them with :meth:`repro.analysis.index.TraceIndex.from_jsonl_files`, so
  the whole analysis battery (C1, recovery line, 2PC invariant) runs
  unchanged on multi-process runs.

Failure semantics: :meth:`ShardedCluster.kill` crashes the process on its
owning shard — the shard's link server stays up, so in-flight frames for
the dead pid still reach its kernel and take the Section 6
spool-or-drop salvage path there (spooler hosts are always shard-local,
because liveness checks and recovery drains are answered by the owning
kernel).  Crash/recovery *notices* are fanned out to remote shards through
the control plane with the same detection latency a local failure detector
applies; spool decision observation stays shard-local, which suffices
because a decision addressed to a down process arrives at its shard and is
spooled there as an ordinary envelope.
"""

from __future__ import annotations

import asyncio
import bisect
import glob
import hashlib
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.core import CheckpointProcess, ProtocolConfig
from repro.errors import NetworkError, SimulationError, TransportError, WireError
from repro.failure import FailureDetector
from repro.net.delay import FixedDelay
from repro.net.message import Envelope, normal
from repro.runtime import wire
from repro.runtime.cluster import PidRouterSink
from repro.runtime.loop import AsyncRuntime
from repro.runtime.network import RuntimeNetwork
from repro.runtime.transport import Transport, _codec_version, listening_socket
from repro.sim.event import PRIORITY_TIMER
from repro.sim.node import Node
from repro.stable.storage import WriteBehindFileStableStorage
from repro.types import MessageId, ProcessId, SimTime
from repro.workloads import RandomPeerWorkload

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection
    from multiprocessing.context import BaseContext

    from repro.analysis.index import TraceIndex


def visible_cpus() -> int:
    """CPUs the OS scheduler will actually grant this process."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# pid -> shard assignment
# ----------------------------------------------------------------------

class HashRing:
    """Consistent-hash assignment of protocol pids to shards.

    Each shard projects ``replicas`` virtual points onto a 64-bit ring and
    a pid lands on the first point clockwise of its own hash.  Two
    properties matter here:

    * **agreement without coordination** — the map is a pure function of
      ``(shards, replicas)``, so the parent and every worker compute the
      identical assignment from the spec alone; no table is shipped.
    * **stability** — changing the shard count remaps only the pids whose
      arcs the added/removed points claim (~1/shards of them), which is
      what makes the assignment future-proof for elastic membership, and
      the reason this is a ring rather than ``pid % shards``.
    """

    def __init__(self, shards: int, replicas: int = 64) -> None:
        if shards < 1:
            raise SimulationError(f"need at least 1 shard, got {shards}")
        if replicas < 1:
            raise SimulationError(f"need at least 1 replica point, got {replicas}")
        self.shards = shards
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append((self._hash(f"shard-{shard}/{replica}"), shard))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def shard_of(self, pid: ProcessId) -> int:
        """The shard hosting ``pid`` (clockwise successor on the ring)."""
        position = bisect.bisect_right(self._hashes, self._hash(f"pid-{pid}"))
        if position == len(self._hashes):
            position = 0  # wrap past the highest point
        return self._owners[position]

    def assignment(self, pids: List[ProcessId]) -> Dict[int, List[ProcessId]]:
        """``shard -> sorted local pids`` for the given population."""
        shards: Dict[int, List[ProcessId]] = {shard: [] for shard in range(self.shards)}
        for pid in sorted(pids):
            shards[self.shard_of(pid)].append(pid)
        return shards

    def grown(self, added_shards: int = 1) -> "HashRing":
        """The ring after adding ``added_shards`` shards (elastic grow).

        Existing shards keep their virtual points, so only the arcs the new
        shards' points claim move — ~``added/(shards+added)`` of the pids.
        """
        if added_shards < 1:
            raise SimulationError(f"must add at least 1 shard, got {added_shards}")
        return HashRing(self.shards + added_shards, replicas=self.replicas)

    def remap_fraction(self, other: "HashRing", pids: List[ProcessId]) -> float:
        """Fraction of ``pids`` whose owning shard differs under ``other``."""
        if not pids:
            return 0.0
        moved = sum(1 for pid in pids if self.shard_of(pid) != other.shard_of(pid))
        return moved / len(pids)


# ----------------------------------------------------------------------
# Worker-side network facade and transport
# ----------------------------------------------------------------------

class ShardNetwork(RuntimeNetwork):
    """A :class:`RuntimeNetwork` that accepts destinations on other shards.

    The base facade rejects destinations its kernel does not host; a shard
    hosts only its slice, so membership is checked against the *global*
    pid population instead.  Everything else — counters, partition policy,
    spooler registry, delivery-time enforcement — is inherited unchanged.
    """

    def __init__(
        self,
        transport: "ShardTransport",
        global_pids: List[ProcessId],
        delay_model: Optional[Any] = None,
        channel: Optional[Any] = None,
    ) -> None:
        super().__init__(transport, delay_model=delay_model, channel=channel)
        self.global_pids = set(global_pids)
        # Pids that left the cluster gracefully (any shard); traffic to them
        # is salvaged, not treated as a routing error.
        self.departed_pids: set = set()

    def transmit(self, envelope: "Envelope") -> None:
        if envelope.dst not in self.global_pids:
            if envelope.dst in self.departed_pids or self._is_departed(envelope.dst):
                self._accept(envelope)
                self.salvaged_departed += 1
                self.spool_or_drop(envelope, "departed")
                return
            raise NetworkError(f"unknown destination P{envelope.dst}")
        self._accept(envelope)
        self.transport.send(envelope)


class ShardRuntime(AsyncRuntime):
    """An :class:`AsyncRuntime` that reports the *global* cluster view.

    Engine code asks its kernel two population questions — ``process_ids``
    (who exists) and ``is_alive`` (who is up) — and the answers feed
    protocol-visible state: the ``Start`` event's peer list, broadcast
    fan-out (recovery inquiries!), and the failure-detector views stamped
    on every delivery.  A shard kernel *hosts* only its slice but must
    *answer* for the whole cluster, or a recovering process would inquire
    only shard-local peers and stall forever.

    Liveness of remote pids is tracked in a notice-driven map fed by the
    parent's control plane; local pids use the hosted node's true state.
    """

    def __init__(self, all_pids: List[ProcessId], **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._all_pids = sorted(all_pids)
        self._membership = frozenset(all_pids)
        self._remote_down: set = set()

    @property
    def process_ids(self) -> List[ProcessId]:
        return list(self._all_pids)

    def is_alive(self, pid: ProcessId) -> bool:
        node = self.nodes.get(pid)
        if node is not None:
            return not node.crashed
        return pid in self._membership and pid not in self._remote_down

    def set_remote_alive(self, pid: ProcessId, up: bool) -> None:
        """Record a control-plane report about a pid hosted elsewhere."""
        if up:
            self._remote_down.discard(pid)
        else:
            self._remote_down.add(pid)

    def admit_pid(self, pid: ProcessId) -> None:
        """Extend the global population view with a newly joined pid."""
        if pid not in self._membership:
            self._all_pids = sorted(set(self._all_pids) | {pid})
            self._membership = frozenset(self._all_pids)

    def retire_pid(self, pid: ProcessId) -> None:
        """Drop a gracefully departed pid from the global population view."""
        self._all_pids = [p for p in self._all_pids if p != pid]
        self._membership = frozenset(self._all_pids)
        self._remote_down.discard(pid)


class ShardFailureDetector(FailureDetector):
    """A failure detector that notifies only the nodes its shard hosts.

    Reports cover the whole cluster (local transitions from this kernel,
    remote ones relayed by the parent), so ``believed_down`` and
    ``status_snapshot`` are global — but the notice fan-out must stop at
    the shard boundary: every other shard's detector receives the same
    report and notifies its own residents.
    """

    def _notify_crash(self, pid: ProcessId) -> None:
        if self.sim.is_alive(pid):
            return  # raced with a recovery; the recovery notice supersedes
        for other in sorted(self.sim.nodes):
            node = self.sim.nodes[other]
            if other != pid and not node.crashed:
                node.on_failure_notice(pid)

    def _notify_recovery(self, pid: ProcessId) -> None:
        if not self.sim.is_alive(pid):
            return  # crashed again before the notice fired
        for other in sorted(self.sim.nodes):
            node = self.sim.nodes[other]
            if other != pid and not node.crashed:
                node.on_recovery_notice(pid)


class ShardTransport(Transport):
    """The data plane of one shard: loopback locally, wire-v2 links across.

    Each worker opens exactly one TCP server (its *shard endpoint*) via the
    ``SO_REUSEADDR`` listener helper.  Outbound envelopes are routed by the
    hash ring:

    * destination on this shard — the envelope takes the loopback fast
      path: optional wire-codec round-trip, then the delay-model/channel
      delivery pipeline on the local kernel;
    * destination remote — the envelope is queued per destination *shard*
      and a pump coalesces up to ``max_batch`` queued frames into one
      write/drain on the single connection this shard keeps to that peer
      (opened lazily, wire version negotiated from the peer's hello).

    Frames that cannot reach a peer shard go through
    :meth:`~repro.net.network.Network.spool_or_drop` exactly like the
    single-process TCP transport's unreachable-peer path.
    """

    def __init__(
        self,
        shard: int,
        ring: HashRing,
        host: str = "127.0.0.1",
        codec: str = "binary",
        max_batch: int = 64,
        loopback_codec: "bool | str" = "binary",
    ) -> None:
        super().__init__()
        if max_batch < 1:
            raise TransportError(f"max_batch must be >= 1, got {max_batch}")
        self.shard = shard
        self.ring = ring
        self.host = host
        version = _codec_version(codec)
        if version is None:
            raise TransportError("shard links require a codec ('binary' or 'json')")
        self.preferred_version = version
        self.loopback_version = _codec_version(loopback_codec)
        self.max_batch = max_batch
        self.port: Optional[int] = None
        self.peer_addrs: Dict[int, Tuple[str, int]] = {}
        self.negotiated: Dict[int, int] = {}  # peer shard -> version in use
        self._server: Optional[asyncio.AbstractServer] = None
        self._accepted: List[asyncio.StreamWriter] = []
        self._queues: Dict[int, "asyncio.Queue[Envelope]"] = {}
        self._writer_tasks: Dict[int, asyncio.Task] = {}
        self._peers_ready: Optional[asyncio.Event] = None
        self.frames_sent = 0
        self.frames_received = 0
        self.batches_sent = 0
        self.bytes_sent = 0
        self.intra_delivered = 0
        self.misrouted = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def listen(self) -> int:
        """Open this shard's link server; returns the bound port.

        Called *before* the runtime starts so the parent can broadcast the
        full shard address map while every kernel is still quiet.
        """
        if self._server is not None:
            raise TransportError(f"shard {self.shard} is already listening")
        self._peers_ready = asyncio.Event()
        self._server = await asyncio.start_server(
            self._serve_link, sock=listening_socket(self.host, 0)
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    def set_peers(self, addrs: Dict[int, Tuple[str, int]]) -> None:
        """Install the shard → (host, port) map; unblocks the link pumps."""
        self.peer_addrs = dict(addrs)
        if self._peers_ready is None:
            raise TransportError("set_peers before listen()")
        self._peers_ready.set()

    async def start(self) -> None:
        await super().start()
        if self._server is None:
            await self.listen()

    async def stop(self) -> None:
        await super().stop()
        for task in self._writer_tasks.values():
            task.cancel()
        for task in self._writer_tasks.values():
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._writer_tasks.clear()
        self._queues.clear()
        if self._server is not None:
            self._server.close()
            self._server = None
        for writer in self._accepted:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - already-broken socket
                pass
        self._accepted = []

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def send(self, envelope: Envelope) -> None:
        if not self.started:
            raise TransportError("shard transport is not running")
        dst_shard = self.ring.shard_of(envelope.dst)
        if dst_shard == self.shard:
            # Loopback fast path: same semantics as LoopbackTransport.
            if self.loopback_version is not None:
                envelope = wire.roundtrip(envelope, version=self.loopback_version)
            self.intra_delivered += 1
            self._deliver_after_delay(envelope)
            return
        queue = self._queues.get(dst_shard)
        if queue is None:
            queue = self._queues[dst_shard] = asyncio.Queue()
        queue.put_nowait(envelope)
        task = self._writer_tasks.get(dst_shard)
        if task is None or task.done():
            self._writer_tasks[dst_shard] = asyncio.get_running_loop().create_task(
                self._drain(dst_shard, queue)
            )

    async def _drain(self, dst_shard: int, queue: "asyncio.Queue[Envelope]") -> None:
        """Outbound pump for one peer shard: connect once, batch, write."""
        assert self._peers_ready is not None
        await self._peers_ready.wait()
        writer: Optional[asyncio.StreamWriter] = None
        try:
            while True:
                batch = [await queue.get()]
                while len(batch) < self.max_batch and not queue.empty():
                    batch.append(queue.get_nowait())
                writer = await self._write_with_retry(dst_shard, writer, batch)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - surface via runtime.check()
            self.runtime.scheduler._note_error(f"shard link ->S{dst_shard}", exc)
        finally:
            if writer is not None:
                writer.close()

    async def _connect(self, dst_shard: int) -> asyncio.StreamWriter:
        host, port = self.peer_addrs[dst_shard]
        reader, writer = await asyncio.open_connection(host, port)
        advertised = await wire.read_hello(reader)
        self.negotiated[dst_shard] = wire.negotiate(self.preferred_version, advertised)
        return writer

    async def _write_with_retry(
        self,
        dst_shard: int,
        writer: Optional[asyncio.StreamWriter],
        batch: List[Envelope],
    ) -> Optional[asyncio.StreamWriter]:
        """Write one batch as a single buffer, reconnecting once if stale."""
        for _attempt in (0, 1):
            if writer is None:
                try:
                    writer = await self._connect(dst_shard)
                except OSError:
                    break
            version = self.negotiated.get(dst_shard, self.preferred_version)
            buffer = b"".join(wire.dumps_frame(e, version=version) for e in batch)
            try:
                writer.write(buffer)
                await writer.drain()
                self.frames_sent += len(batch)
                self.batches_sent += 1
                self.bytes_sent += len(buffer)
                return writer
            except (ConnectionError, OSError):
                try:
                    writer.close()
                except Exception:  # noqa: BLE001
                    pass
                writer = None
        for envelope in batch:
            self.runtime.network.spool_or_drop(envelope, "shard unreachable")
        return None

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    async def _serve_link(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._accepted.append(writer)
        writer.write(wire.pack_hello(self.preferred_version))
        try:
            while True:
                try:
                    blob = await wire.read_frame(reader)
                except WireError:
                    break  # peer died mid-frame: a tolerated link loss
                if blob is None:
                    break
                envelope = wire.loads_frame(blob)
                self.frames_received += 1
                if envelope.dst not in self.runtime.nodes:
                    # A frame for a pid this shard does not host: the
                    # sender routed on a stale ring (mid view change) or
                    # the pid departed.  Count it, then salvage: re-forward
                    # via the *current* ring when it names another owner,
                    # else hand it to the spool-or-drop policy.
                    self.misrouted += 1
                    net = self.runtime.network
                    if (
                        self.ring.shard_of(envelope.dst) != self.shard
                        and envelope.dst in getattr(net, "global_pids", ())
                    ):
                        self.send(envelope)
                    else:
                        net.spool_or_drop(envelope, "misrouted")
                    continue
                self._deliver_after_delay(envelope)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                self._accepted.remove(writer)
            except ValueError:
                pass
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass


# ----------------------------------------------------------------------
# Bench nodes (the shards axis of E-SCALE)
# ----------------------------------------------------------------------

class ShardBenchNode(Node):
    """Closed-burst sender/receiver for aggregate-throughput measurement.

    Each burst sends ``count`` normal envelopes to peers chosen round-robin
    over the *global* pid population, so the traffic is a deterministic
    intra/inter-shard mix fixed by the hash ring, and every delivery stamps
    a wall-clock ``last_delivery`` (no poll slack in the measured window).
    """

    def __init__(self, pid: ProcessId, all_pids: List[ProcessId]) -> None:
        super().__init__(pid)
        self.peers = [p for p in all_pids if p != pid]
        self.sent = 0
        self.received = 0
        self.last_delivery: Optional[float] = None

    def burst(self, count: int) -> None:
        for i in range(count):
            dst = self.peers[(self.node_id + self.sent + i) % len(self.peers)]
            self.send(
                normal(self.node_id, dst, MessageId(self.node_id, self.sent + i),
                       label=1, body=None)
            )
        self.sent += count

    def on_envelope(self, envelope: Envelope) -> None:
        self.received += 1
        self.last_delivery = time.perf_counter()


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

@dataclass
class WorkerSpec:
    """Everything a worker needs to build its slice of the cluster.

    Picklable by construction (spawn-safe): plain values plus the frozen
    :class:`~repro.core.ProtocolConfig`.  The pid→shard map is *not*
    shipped — every worker re-derives it from ``(shards, ring_replicas)``
    via the hash ring, which is the agreement property the ring buys us.
    """

    shard: int
    shards: int
    n: int
    seed: int
    root: str
    time_scale: float
    host: str = "127.0.0.1"
    codec: str = "binary"
    max_batch: int = 64
    loopback_codec: "bool | str" = "binary"
    config: Optional[ProtocolConfig] = None
    detector_latency: Optional[SimTime] = 2.0
    spoolers: bool = True
    delay: float = 0.5
    flush_every: int = 8
    trace_flush_every: int = 64
    workload: Optional[Dict[str, Any]] = None
    app: Optional[Dict[str, Any]] = None
    bench: bool = False
    ring_replicas: int = 64


class ShardWorker:
    """One worker's kernel: an :class:`AsyncRuntime` hosting a pid slice."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.ring = HashRing(spec.shards, replicas=spec.ring_replicas)
        self.all_pids: List[ProcessId] = list(range(spec.n))
        self.local_pids = self.ring.assignment(self.all_pids)[spec.shard]
        os.makedirs(spec.root, exist_ok=True)
        self.router = PidRouterSink(
            os.path.join(spec.root, "trace"), flush_every=spec.trace_flush_every
        )
        self.transport = ShardTransport(
            spec.shard,
            self.ring,
            host=spec.host,
            codec=spec.codec,
            max_batch=spec.max_batch,
            loopback_codec=spec.loopback_codec,
        )
        self.runtime = ShardRuntime(
            self.all_pids,
            seed=spec.seed,
            transport=self.transport,
            sinks=[self.router],
            time_scale=spec.time_scale,
            network=ShardNetwork(
                self.transport, self.all_pids, delay_model=FixedDelay(spec.delay)
            ),
        )
        self.storages: Dict[ProcessId, WriteBehindFileStableStorage] = {}
        self.procs: Dict[ProcessId, Node] = {}
        self.app_traffic: Optional[Any] = None
        self.process_cls: Any = CheckpointProcess
        if spec.bench:
            for pid in self.local_pids:
                self.procs[pid] = self.runtime.add_node(
                    ShardBenchNode(pid, self.all_pids)
                )
        else:
            self._build_protocol_nodes()

    def _build_protocol_nodes(self) -> None:
        spec = self.spec
        process_cls: Any = CheckpointProcess
        if spec.app is not None:
            # Job-hosting nodes: same protocol process, AppHost application.
            from repro.app.state import AppProcess

            process_cls = AppProcess
        self.process_cls = process_cls
        for pid in self.local_pids:
            storage = WriteBehindFileStableStorage(
                os.path.join(spec.root, f"node-{pid}"), flush_every=spec.flush_every
            )
            self.storages[pid] = storage
            self.procs[pid] = self.runtime.add_node(
                process_cls(pid, spec.config, storage=storage)
            )
        if spec.detector_latency is not None:
            ShardFailureDetector(self.runtime, detection_latency=spec.detector_latency)
        if spec.spoolers and len(self.local_pids) >= 2:
            # Spooler hosts must be shard-local: the owning kernel answers
            # the liveness checks and the recovery drain.
            for position, pid in enumerate(self.local_pids):
                hosts = {
                    self.local_pids[(position + 1) % len(self.local_pids)],
                    self.local_pids[(position + 2) % len(self.local_pids)],
                }
                hosts.discard(pid)
                if hosts:
                    self.runtime.network.install_spoolers(pid, sorted(hosts))
        if spec.workload is not None:
            RandomPeerWorkload(**spec.workload).install(
                self.runtime, self.procs, peers=self.all_pids
            )
        if spec.app is not None:
            # Every worker plans the identical global arrival schedule from
            # its identically-seeded RNG and submits only its local slice.
            from repro.app.traffic import JobTraffic

            self.app_traffic = JobTraffic(**spec.app)
            self.app_traffic.install(self.runtime, self.procs, peers=self.all_pids)

    # ------------------------------------------------------------------
    # Cross-shard failure notices
    # ------------------------------------------------------------------
    def notice_remote(self, pid: ProcessId, up: bool, at: Optional[SimTime] = None) -> None:
        """Apply a control-plane report about a pid hosted on another shard.

        Mirrors what the owning kernel does locally: flip the liveness
        view at the transition time, then let this shard's detector fan
        the notice out to its residents after the detection latency.
        ``at`` is the transition's protocol time; ``None`` means "now".
        """
        def transition() -> None:
            self.runtime.set_remote_alive(pid, up)
            detector = self.runtime.failure_detector
            if detector is not None:
                if up:
                    detector.report_recovery(pid)
                else:
                    detector.report_crash(pid)

        if at is None:
            transition()
        else:
            label = f"remote {'recovery' if up else 'crash'} P{pid}"
            self.runtime.scheduler.at(
                at, transition, priority=PRIORITY_TIMER, label=label
            )

    # ------------------------------------------------------------------
    # Dynamic membership (churn)
    # ------------------------------------------------------------------
    def _at(self, at: Optional[SimTime], action: Callable[[], None], label: str) -> None:
        """Run ``action`` now, or at kernel time ``at`` when given."""
        if at is None:
            action()
        else:
            self.runtime.scheduler.at(at, action, priority=PRIORITY_TIMER, label=label)

    def join_local(self, pid: ProcessId, at: Optional[SimTime] = None) -> None:
        """Admit a new pid this shard owns: storage, node, membership."""
        spec = self.spec

        def transition() -> None:
            storage = WriteBehindFileStableStorage(
                os.path.join(spec.root, f"node-{pid}"), flush_every=spec.flush_every
            )
            self.storages[pid] = storage
            node = self.process_cls(pid, spec.config, storage=storage)
            self.procs[pid] = node
            self.runtime.admit_pid(pid)
            self.runtime.network.global_pids.add(pid)
            self.local_pids = sorted(set(self.local_pids) | {pid})
            self.runtime.join_node(node)

        self._at(at, transition, f"join P{pid}")

    def leave_local(
        self,
        pid: ProcessId,
        successor: Optional[ProcessId] = None,
        at: Optional[SimTime] = None,
    ) -> None:
        """Gracefully retire a hosted pid (handoff runs in the kernel)."""

        def transition() -> None:
            self.runtime.leave_node(pid, successor)
            self.runtime.retire_pid(pid)
            self.runtime.network.global_pids.discard(pid)
            self.runtime.network.departed_pids.add(pid)
            self.local_pids = [p for p in self.local_pids if p != pid]
            storage = self.storages.get(pid)
            if storage is not None:
                storage.flush()
            self.procs.pop(pid, None)

        self._at(at, transition, f"leave P{pid}")

    def notice_join(self, pid: ProcessId, at: Optional[SimTime] = None) -> None:
        """A pid joined on another shard: extend the view, tell residents."""

        def transition() -> None:
            self.runtime.admit_pid(pid)
            self.runtime.network.global_pids.add(pid)
            for other in sorted(self.runtime.nodes):
                node = self.runtime.nodes[other]
                if not node.crashed:
                    node.on_join_peer(pid)

        self._at(at, transition, f"remote join P{pid}")

    def notice_leave(
        self,
        pid: ProcessId,
        successor: Optional[ProcessId] = None,
        at: Optional[SimTime] = None,
    ) -> None:
        """A pid departed on another shard: shrink the view, tell residents."""

        def transition() -> None:
            self.runtime.retire_pid(pid)
            self.runtime.network.global_pids.discard(pid)
            self.runtime.network.departed_pids.add(pid)
            for other in sorted(self.runtime.nodes):
                node = self.runtime.nodes[other]
                if not node.crashed:
                    node.on_leave_peer(pid, successor)

        self._at(at, transition, f"remote leave P{pid}")

    def apply_churn(self, ops: List[Dict[str, Any]]) -> int:
        """Apply one batched churn command (satellite of the membership PR).

        ``ops`` is the *full* cluster-wide batch — every worker receives the
        identical list in one pipe message and splits it locally: ops whose
        pid this shard owns run as real transitions, the rest as remote
        notices.  Returns how many ops were applied locally.
        """
        local_applied = 0
        for op in ops:
            kind = op["kind"]
            pid = op["pid"]
            at = op.get("at")
            local = self.ring.shard_of(pid) == self.spec.shard
            if kind == "kill":
                if local:
                    self._at(
                        at, lambda pid=pid: self.runtime.crash(pid), f"kill P{pid}"
                    )
                else:
                    self.notice_remote(pid, up=False, at=at)
            elif kind == "restart":
                if local:
                    self._at(
                        at, lambda pid=pid: self.runtime.recover(pid), f"restart P{pid}"
                    )
                else:
                    self.notice_remote(pid, up=True, at=at)
            elif kind == "join":
                if local:
                    self.join_local(pid, at=at)
                else:
                    self.notice_join(pid, at=at)
            elif kind == "leave":
                successor = op.get("successor")
                if local:
                    self.leave_local(pid, successor=successor, at=at)
                else:
                    self.notice_leave(pid, successor=successor, at=at)
            else:
                raise SimulationError(f"unknown churn op kind {kind!r}")
            if local:
                local_applied += 1
        return local_applied

    def quiesce(self) -> int:
        """Stop autonomous checkpoint initiation on every hosted engine.

        In-flight instances finish normally; no new trees start.  Used by
        the front door before cutting a run, so no tree is ever cut between
        the root's commit and a cohort's (which would read as a transient
        C1 violation on the merged trace).  Returns how many engines were
        switched; bench nodes have none.
        """
        switched = 0
        for proc in self.procs.values():
            engine = getattr(proc, "engine", None)
            if engine is not None:
                engine.autonomous_checkpoints = False
                switched += 1
        return switched

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def committed_counts(self) -> Dict[ProcessId, int]:
        return {
            pid: len(getattr(proc, "committed_history", ()))
            for pid, proc in self.procs.items()
        }

    def open_instances(self) -> int:
        """Checkpoint/rollback tree rounds still open on hosted engines."""
        count = 0
        for proc in self.procs.values():
            engine = getattr(proc, "engine", None)
            if engine is None:
                continue
            count += sum(1 for s in engine.trees.all_chkpt_rounds() if not s.closed)
            count += sum(1 for s in engine.trees.roll.values() if not s.closed)
        return count

    def poll(self) -> Dict[str, Any]:
        payload = {
            "now": self.runtime.now,
            "committed": self.committed_counts(),
            "alive": {pid: self.runtime.is_alive(pid) for pid in self.local_pids},
            "open_instances": self.open_instances(),
            "timer_errors": len(self.runtime.scheduler.errors),
        }
        if self.app_traffic is not None:
            rolled = self.app_traffic.driver.metrics()
            payload["jobs"] = rolled["jobs"]
            payload["jobs_done"] = rolled["jobs_done"]
            payload["jobs_durable"] = rolled["jobs_durable"]
        return payload

    def app_status(self) -> Dict[str, Any]:
        """This shard's job ledger roll-up + state fingerprints (picklable)."""
        if self.app_traffic is None:
            raise SimulationError(f"shard {self.spec.shard} hosts no app traffic")
        return {
            "shard": self.spec.shard,
            "metrics": self.app_traffic.metrics(),
            "fingerprints": self.app_traffic.fingerprints(),
        }

    def bench_status(self) -> Dict[str, Any]:
        nodes = [self.procs[pid] for pid in self.local_pids]
        stamps = [n.last_delivery for n in nodes if n.last_delivery is not None]
        return {
            "sent": sum(n.sent for n in nodes),
            "received": sum(n.received for n in nodes),
            "last_delivery": max(stamps) if stamps else None,
            "timer_errors": len(self.runtime.scheduler.errors),
        }

    def summary(self) -> Dict[str, Any]:
        net = self.runtime.network
        return {
            "shard": self.spec.shard,
            "pids": list(self.local_pids),
            "now": self.runtime.now,
            "normal_sent": net.normal_sent,
            "control_sent": net.control_sent,
            "delivered": net.delivered,
            "dropped": net.dropped,
            "spooled": net.spooled,
            "committed": self.committed_counts(),
            "trace_events": self.runtime.trace.events_recorded,
            "trace_files": self.router.paths,
            "timer_errors": [
                f"{label or 'action'}: {exc!r}"
                for label, exc in self.runtime.scheduler.errors
            ],
            "frames_sent": self.transport.frames_sent,
            "frames_received": self.transport.frames_received,
            "batches_sent": self.transport.batches_sent,
            "bytes_sent": self.transport.bytes_sent,
            "intra_delivered": self.transport.intra_delivered,
            "misrouted": self.transport.misrouted,
            "negotiated": dict(self.transport.negotiated),
        }


async def _worker_async(spec: WorkerSpec, conn: "Connection") -> None:
    """The worker's command loop: one request in, one reply out, forever.

    The parent speaks a strict request/response protocol over the pipe, so
    the loop reads exactly one command at a time (in an executor thread —
    the kernel keeps running between commands) and always answers with
    ``("ok", payload)`` or ``("error", traceback)``.
    """
    worker = ShardWorker(spec)
    loop = asyncio.get_running_loop()
    port = await worker.transport.listen()
    conn.send(("ready", {"shard": spec.shard, "port": port, "pids": worker.local_pids}))
    running = True
    while running:
        command, payload = await loop.run_in_executor(None, conn.recv)
        try:
            result: Any = None
            if command == "peers":
                worker.transport.set_peers(payload)
            elif command == "start":
                await worker.runtime.start()
                result = {"t0": time.perf_counter()}
            elif command == "kill":
                worker.runtime.crash(payload)
            elif command == "restart":
                worker.runtime.recover(payload)
            elif command == "schedule_kill":
                pid, at = payload
                worker.runtime.scheduler.at(
                    at, lambda: worker.runtime.crash(pid), label=f"kill P{pid}"
                )
            elif command == "schedule_restart":
                pid, at = payload
                worker.runtime.scheduler.at(
                    at, lambda: worker.runtime.recover(pid), label=f"restart P{pid}"
                )
            elif command == "peer_down":
                worker.notice_remote(payload, up=False)
            elif command == "peer_up":
                worker.notice_remote(payload, up=True)
            elif command == "schedule_peer_down":
                pid, at = payload
                worker.notice_remote(pid, up=False, at=at)
            elif command == "schedule_peer_up":
                pid, at = payload
                worker.notice_remote(pid, up=True, at=at)
            elif command == "churn":
                result = worker.apply_churn(payload)
            elif command == "poll":
                result = worker.poll()
            elif command == "quiesce":
                result = worker.quiesce()
            elif command == "burst":
                result = {"t_first": None}
                if worker.local_pids:
                    result["t_first"] = time.perf_counter()
                    for pid in worker.local_pids:
                        worker.procs[pid].burst(payload)
            elif command == "bench_status":
                result = worker.bench_status()
            elif command == "app_status":
                result = worker.app_status()
            elif command == "summary":
                result = worker.summary()
            elif command == "shutdown":
                # Freeze the kernel before tearing the transport down: a
                # delivery timer firing during the transport's async
                # teardown would make its node reply on a stopped
                # transport and be recorded as a spurious callback error.
                worker.runtime.scheduler.detach()
                await worker.runtime.shutdown(raise_errors=False)
                for storage in worker.storages.values():
                    storage.flush()
                worker.runtime.trace.close()
                result = worker.summary()
                running = False
            else:
                raise SimulationError(f"unknown worker command {command!r}")
            conn.send(("ok", result))
        except Exception:  # noqa: BLE001 - every failure goes back to the parent
            conn.send(("error", traceback.format_exc()))
    conn.close()


def _worker_main(spec: WorkerSpec, conn: "Connection") -> None:
    """Entry point of a spawned shard worker process."""
    try:
        asyncio.run(_worker_async(spec, conn))
    except Exception:  # noqa: BLE001 - last-resort report before dying
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - parent already gone
            pass


# ----------------------------------------------------------------------
# Parent-side front door
# ----------------------------------------------------------------------

@dataclass
class _WorkerHandle:
    """The parent's view of one worker: process + request pipe."""

    shard: int
    process: Any
    conn: "Connection"
    port: Optional[int] = None
    pids: List[ProcessId] = field(default_factory=list)
    final_summary: Optional[Dict[str, Any]] = None

    def post(self, command: str, payload: Any = None) -> None:
        self.conn.send((command, payload))

    def wait(self, timeout: float = 120.0) -> Any:
        deadline = time.monotonic() + timeout
        while not self.conn.poll(0.05):
            if not self.process.is_alive():
                raise SimulationError(
                    f"shard {self.shard} worker died (exit {self.process.exitcode})"
                )
            if time.monotonic() > deadline:
                raise SimulationError(f"shard {self.shard} worker timed out")
        status, payload = self.conn.recv()
        if status == "error":
            raise SimulationError(f"shard {self.shard} worker failed:\n{payload}")
        return payload

    def request(self, command: str, payload: Any = None, timeout: float = 120.0) -> Any:
        self.post(command, payload)
        return self.wait(timeout=timeout)


class ShardedCluster:
    """N protocol processes sharded across worker OS kernels.

    The front door mirrors :class:`~repro.runtime.cluster.Cluster` — build,
    ``start``, ``run_for``, ``kill``/``restart`` (or their ``schedule_*``
    variants) by *pid* without knowing its shard, ``shutdown``,
    ``merged_index``, ``summary`` — but each method is synchronous: the
    cluster's kernels live in child processes and run in real time, so the
    parent only paces and observes.

    Construction performs the whole rendezvous: spawn workers, collect
    their link-server ports, broadcast the shard address map.  After
    ``start()`` every kernel is live and traffic flows; the parent's only
    runtime duties are failure injection and polling.
    """

    def __init__(
        self,
        n: int,
        root: str,
        shards: int,
        seed: int = 0,
        config: Optional[ProtocolConfig] = None,
        time_scale: float = 0.05,
        detector_latency: Optional[SimTime] = 2.0,
        spoolers: bool = True,
        delay: float = 0.5,
        codec: str = "binary",
        max_batch: int = 64,
        loopback_codec: "bool | str" = "binary",
        flush_every: int = 8,
        trace_flush_every: int = 64,
        workload: Optional[Dict[str, Any]] = None,
        app: Optional[Dict[str, Any]] = None,
        bench: bool = False,
        host: str = "127.0.0.1",
        ring_replicas: int = 64,
        start_method: str = "spawn",
    ) -> None:
        if n < 2:
            raise SimulationError("a cluster needs at least 2 nodes")
        self.n = n
        self.root = str(root)
        self.shards = shards
        self.time_scale = time_scale
        self.ring = HashRing(shards, replicas=ring_replicas)
        self.assignment = self.ring.assignment(list(range(n)))
        self._pids: set = set(range(n))
        self._departed: set = set()
        os.makedirs(self.root, exist_ok=True)
        context: "BaseContext" = get_context(start_method)
        self._workers: List[_WorkerHandle] = []
        self._started = False
        self._down: set = set()
        try:
            for shard in range(shards):
                parent_conn, child_conn = context.Pipe()
                spec = WorkerSpec(
                    shard=shard,
                    shards=shards,
                    n=n,
                    seed=seed,
                    root=os.path.join(self.root, f"shard-{shard}"),
                    time_scale=time_scale,
                    host=host,
                    codec=codec,
                    max_batch=max_batch,
                    loopback_codec=loopback_codec,
                    config=config,
                    detector_latency=detector_latency,
                    spoolers=spoolers,
                    delay=delay,
                    flush_every=flush_every,
                    trace_flush_every=trace_flush_every,
                    workload=workload,
                    app=app,
                    bench=bench,
                    ring_replicas=ring_replicas,
                )
                process = context.Process(
                    target=_worker_main, args=(spec, child_conn), daemon=True
                )
                process.start()
                child_conn.close()
                self._workers.append(_WorkerHandle(shard, process, parent_conn))
            for worker in self._workers:
                info = worker.wait(timeout=120.0)
                worker.port = info["port"]
                worker.pids = info["pids"]
            addrs = {w.shard: (host, w.port) for w in self._workers}
            self._broadcast("peers", lambda w: addrs)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Control-plane plumbing
    # ------------------------------------------------------------------
    def _broadcast(
        self,
        command: str,
        payload_for: Callable[[_WorkerHandle], Any] = lambda w: None,
        timeout: float = 120.0,
    ) -> List[Any]:
        """Post ``command`` to every worker, then gather every reply.

        Posting everything before waiting keeps the workers in lockstep —
        the start broadcast, notably, reaches all shards within a pipe
        write of each other, which bounds inter-shard clock skew.
        """
        for worker in self._workers:
            worker.post(command, payload_for(worker))
        return [worker.wait(timeout=timeout) for worker in self._workers]

    def owner(self, pid: ProcessId) -> _WorkerHandle:
        """The worker whose kernel hosts ``pid``.

        Every pid-routed front-door method (``kill``/``restart``/
        ``schedule_*``/``app_status``) funnels through here, so an unknown
        pid fails with one clear ``KeyError`` naming the ring's population
        instead of surfacing as a confusing ``HashRing`` placement deep in
        a worker.
        """
        if pid not in self._pids:
            lo, hi = (min(self._pids), max(self._pids)) if self._pids else (0, -1)
            if len(self._pids) == hi - lo + 1:
                population = f"pids {lo}..{hi}"
            else:
                population = f"{len(self._pids)} pid(s)"
            raise KeyError(
                f"unknown pid P{pid}: the ring hosts {population} "
                f"across {self.shards} shard(s)"
            )
        return self._workers[self.ring.shard_of(pid)]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot every kernel (near-)simultaneously."""
        if self._started:
            raise SimulationError("sharded cluster already started")
        self._started = True
        self._broadcast("start")

    def run_for(self, duration: SimTime) -> None:
        """Let the cluster run for ``duration`` protocol time units."""
        time.sleep(duration * self.time_scale)

    def wait_until(
        self,
        predicate: Callable[[List[Dict[str, Any]]], bool],
        timeout: SimTime = 120.0,
        what: str = "condition",
        poll_every: float = 0.05,
    ) -> List[Dict[str, Any]]:
        """Poll every worker until ``predicate(polls)`` holds.

        ``predicate`` sees the list of per-shard :meth:`ShardWorker.poll`
        payloads; ``timeout`` is in protocol units, as in ``Cluster``.
        """
        deadline = time.monotonic() + timeout * self.time_scale
        while True:
            polls = self._broadcast("poll")
            if predicate(polls):
                return polls
            if time.monotonic() > deadline:
                raise SimulationError(
                    f"timed out after {timeout} time units awaiting {what}"
                )
            time.sleep(poll_every)

    def wait_until_jobs_durable(self, timeout: SimTime = 120.0) -> None:
        """Block until every submitted app job completed *durably* (its
        completion is covered by a committed checkpoint on its host)."""
        def done(polls: List[Dict[str, Any]]) -> bool:
            return all(
                poll.get("jobs_durable", 0) >= poll.get("jobs", 0) for poll in polls
            )

        self.wait_until(done, timeout=timeout, what="app jobs to complete durably")

    def app_status(self) -> Dict[str, Any]:
        """Cluster-wide job ledger: merged counters + per-shard details.

        Fingerprints (``job -> (done, digest)``) merge disjointly — each
        job's ledger lives on the one shard hosting it.
        """
        per_shard = self._broadcast("app_status")
        merged: Dict[str, Any] = {
            key: sum(s["metrics"][key] for s in per_shard)
            for key in (
                "jobs", "jobs_done", "jobs_durable", "units_executed",
                "units_needed_done", "units_reexecuted", "retries", "resubmits",
            )
        }
        fingerprints: Dict[str, Any] = {}
        for shard_status in per_shard:
            fingerprints.update(shard_status["fingerprints"])
        weighted = [
            (s["metrics"]["latency_mean"], s["metrics"]["jobs_done"])
            for s in per_shard if s["metrics"]["latency_mean"] is not None
        ]
        merged["latency_mean"] = (
            sum(mean * n for mean, n in weighted) / sum(n for _, n in weighted)
            if weighted else None
        )
        merged["fingerprints"] = fingerprints
        merged["per_shard"] = [s["metrics"] for s in per_shard]
        return merged

    def wait_until_committed(self, count: int = 2, timeout: SimTime = 120.0) -> None:
        """Block until every live process has >= ``count`` committed checkpoints."""
        def done(polls: List[Dict[str, Any]]) -> bool:
            for poll in polls:
                for pid, committed in poll["committed"].items():
                    if poll["alive"].get(pid, True) and committed < count:
                        return False
            return True

        self.wait_until(done, timeout=timeout, what=f"{count} committed checkpoints")

    def quiesce(self, drain_timeout: SimTime = 60.0) -> None:
        """Stop autonomous initiation everywhere, then drain open instances.

        After this returns, no checkpoint/rollback tree is mid-2PC anywhere
        in the cluster, so a subsequent :meth:`shutdown` never cuts a run
        between the root's commit and a cohort's — the merged trace's
        recovery line is a settled one.  Bench-mode clusters (no engines)
        return immediately.
        """
        switched = self._broadcast("quiesce")
        if not any(switched):
            return
        self.wait_until(
            lambda polls: sum(p["open_instances"] for p in polls) == 0,
            timeout=drain_timeout,
            what="open instances to drain",
        )

    def shutdown(self) -> None:
        """Stop every kernel, collect final summaries, reap the workers."""
        for worker in self._workers:
            if worker.final_summary is None and worker.process.is_alive():
                worker.final_summary = worker.request("shutdown")
        for worker in self._workers:
            worker.process.join(timeout=30.0)
        self.close()

    def close(self) -> None:
        """Hard-stop any still-running workers (idempotent; error cleanup)."""
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=10.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    # ------------------------------------------------------------------
    # Failure injection and membership (by pid; the shard is the
    # cluster's business).  Every transition funnels through the batched
    # churn command: ONE pipe message per worker carries the whole batch,
    # however many kills/restarts/joins/leaves it contains, instead of a
    # per-pid fan-out of per-worker notices.
    # ------------------------------------------------------------------
    def churn(self, ops: List[Dict[str, Any]]) -> List[Any]:
        """Apply a batch of churn ops cluster-wide with one post per shard.

        Each op is ``{"kind": "kill"|"restart"|"join"|"leave", "pid": p}``
        plus optional ``"at"`` (kernel time; omit for "now") and, for
        leaves, ``"successor"``.  Validation and the parent's membership
        bookkeeping happen here; workers split the batch into local
        transitions and remote notices themselves (they share the ring).
        """
        for op in ops:
            kind, pid = op["kind"], op["pid"]
            if kind in ("kill", "restart", "leave"):
                self.owner(pid)  # raises KeyError for an unknown pid
            elif kind == "join":
                if pid in self._pids:
                    raise SimulationError(f"P{pid} is already a cluster member")
                if pid in self._departed:
                    raise SimulationError(f"P{pid} departed and cannot be reused")
            else:
                raise SimulationError(f"unknown churn op kind {kind!r}")
            successor = op.get("successor")
            if successor is not None and successor not in self._pids:
                raise KeyError(f"unknown successor P{successor}")
        results = self._broadcast("churn", lambda w: ops)
        for op in ops:
            kind, pid = op["kind"], op["pid"]
            if kind == "kill":
                self._down.add(pid)
            elif kind == "restart":
                self._down.discard(pid)
            elif kind == "join":
                self._pids.add(pid)
            elif kind == "leave":
                self._pids.discard(pid)
                self._down.discard(pid)
                self._departed.add(pid)
        return results

    def kill(self, pid: ProcessId) -> None:
        """Crash ``pid`` on its owning shard; notify every other shard."""
        self.churn([{"kind": "kill", "pid": pid}])

    def restart(self, pid: ProcessId) -> None:
        """Recover ``pid`` from its shard-local stable storage."""
        self.churn([{"kind": "restart", "pid": pid}])

    def schedule_kill(self, pid: ProcessId, at: SimTime) -> None:
        """Arrange a kill at kernel time ``at`` (call before :meth:`start`)."""
        self.churn([{"kind": "kill", "pid": pid, "at": at}])

    def schedule_restart(self, pid: ProcessId, at: SimTime) -> None:
        """Arrange a restart at kernel time ``at`` (call before :meth:`start`)."""
        self.churn([{"kind": "restart", "pid": pid, "at": at}])

    def join(self, pid: ProcessId) -> None:
        """Grow the cluster: admit brand-new ``pid`` on its ring-owner shard."""
        self.churn([{"kind": "join", "pid": pid}])

    def leave(self, pid: ProcessId, successor: Optional[ProcessId] = None) -> None:
        """Shrink the cluster: gracefully retire ``pid`` (handoff to
        ``successor`` when given)."""
        self.churn([{"kind": "leave", "pid": pid, "successor": successor}])

    def schedule_join(self, pid: ProcessId, at: SimTime) -> None:
        """Arrange a join at kernel time ``at`` (call before :meth:`start`)."""
        self.churn([{"kind": "join", "pid": pid, "at": at}])

    def schedule_leave(
        self, pid: ProcessId, at: SimTime, successor: Optional[ProcessId] = None
    ) -> None:
        """Arrange a leave at kernel time ``at`` (call before :meth:`start`)."""
        self.churn([{"kind": "leave", "pid": pid, "at": at, "successor": successor}])

    # ------------------------------------------------------------------
    # Bench drive (the E-SCALE shards axis)
    # ------------------------------------------------------------------
    def burst(self, count: int) -> float:
        """Make every bench node send ``count`` envelopes; returns the
        earliest send timestamp (``time.perf_counter`` domain, comparable
        across processes on Linux)."""
        stamps = [r["t_first"] for r in self._broadcast("burst", lambda w: count)]
        stamps = [s for s in stamps if s is not None]
        if not stamps:
            raise SimulationError("no bench nodes sent anything")
        return min(stamps)

    def wait_drained(self, expected_total: int, timeout: float = 120.0) -> float:
        """Block until ``expected_total`` deliveries happened cluster-wide;
        returns the latest delivery timestamp."""
        deadline = time.monotonic() + timeout
        while True:
            stats = self._broadcast("bench_status")
            received = sum(s["received"] for s in stats)
            if received >= expected_total:
                stamps = [s["last_delivery"] for s in stats if s["last_delivery"]]
                return max(stamps)
            if time.monotonic() > deadline:
                raise SimulationError(
                    f"bench drain stuck at {received}/{expected_total} envelopes"
                )
            time.sleep(0.01)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def trace_paths(self) -> List[str]:
        """Every per-node JSONL trace shard across all shard directories."""
        return sorted(glob.glob(os.path.join(self.root, "shard-*", "trace", "*.jsonl")))

    def merged_index(self) -> "TraceIndex":
        """Stitch every shard's trace files into one queryable index.

        Call after :meth:`shutdown` (the streams must be flushed); also
        usable on the debris of a crashed run — partial tail lines are
        tolerated and counted on the index.
        """
        from repro.analysis.index import TraceIndex

        return TraceIndex.from_jsonl_files(self.trace_paths())

    def committed_counts(self) -> Dict[ProcessId, int]:
        """Committed checkpoints per process, merged across shards."""
        counts: Dict[ProcessId, int] = {}
        for worker in self._workers:
            source = worker.final_summary
            poll = source if source is not None else worker.request("poll")
            counts.update(poll["committed"])
        return counts

    def summary(self) -> Dict[str, Any]:
        """Aggregated counters plus the per-shard sub-summaries."""
        per_shard = []
        for worker in self._workers:
            if worker.final_summary is not None:
                per_shard.append(worker.final_summary)
            else:
                per_shard.append(worker.request("summary"))
        totals = {
            key: sum(s[key] for s in per_shard)
            for key in (
                "normal_sent", "control_sent", "delivered", "dropped", "spooled",
                "trace_events", "frames_sent", "frames_received", "batches_sent",
                "bytes_sent", "intra_delivered", "misrouted",
            )
        }
        return {
            **totals,
            "nodes": self.n,
            "shards": self.shards,
            "cpus": visible_cpus(),
            "now": max(s["now"] for s in per_shard),
            "committed": {
                str(pid): count
                for s in per_shard for pid, count in s["committed"].items()
            },
            "timer_errors": sum(len(s["timer_errors"]) for s in per_shard),
            "per_shard": per_shard,
        }
