"""Transports that physically carry envelopes for the live runtime.

The :class:`~repro.runtime.network.RuntimeNetwork` stamps and counts an
outgoing envelope exactly as the simulated network does, then hands it to a
:class:`Transport`:

* :class:`LoopbackTransport` — in-process: the envelope (optionally pushed
  through the full wire codec, binary by default) is scheduled for delivery
  on the runtime's real-timer scheduler after a delay sampled from the
  network's :class:`~repro.net.delay.DelayModel` and ordered by its
  :class:`~repro.net.channel.Channel` policy — the *same* objects the
  simulator uses, so the non-FIFO contract carries over verbatim.  Fast,
  deterministic-ish, and precise about in-flight accounting (supports
  ``AsyncRuntime.join``).
* :class:`TcpTransport` — every node gets its own length-prefixed TCP
  server on localhost; sends go through per-destination client connections
  with real serialization, framing, and socket scheduling.  The payload
  codec (binary v2 vs JSON v1) is negotiated per connection — the server's
  accept handler writes a hello advertising its maximum version, the client
  speaks the minimum of that and its own preference (see
  :mod:`repro.runtime.wire`).  Outbound frames to one destination are
  *batched*: the per-destination pump collects every queued envelope (up to
  ``max_batch``), writes their frames as one buffer, and drains the socket
  once per batch instead of once per frame.  Batching cannot introduce
  orderings the model forbids: frames stay whole and in queue order inside
  a batch, and arrival order was never delivery order anyway — on arrival
  the receiving side applies the delay-model/channel pipeline *per message*
  before delivery, so protocol-level delays keep their configured
  magnitudes and messages genuinely reorder (TCP is FIFO per connection;
  the sampled post-arrival delay restores the paper's non-FIFO channel
  model).

Both preserve the delivery-time policy enforcement of
:meth:`repro.net.network.Network.deliver_local`: partition filtering, crash
spooling/dropping, and the delivered/dropped/spooled counters.

Unreachable peers (killed TCP endpoints) are routed through
:meth:`~repro.net.network.Network.spool_or_drop`: if the destination has
live spooler hosts the message is captured for redelivery at recovery —
the paper's Section 6 salvage path — otherwise it is counted and traced as
a drop, which the resilient protocol tolerates by design.
"""

from __future__ import annotations

import asyncio
import socket
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set

from repro.errors import TransportError, WireError
from repro.net.message import Envelope
from repro.runtime import wire
from repro.sim.event import PRIORITY_NORMAL

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.loop import AsyncRuntime
    from repro.types import ProcessId


class Transport:
    """Base class: lifecycle, runtime binding, in-flight accounting."""

    def __init__(self) -> None:
        self._runtime: Optional["AsyncRuntime"] = None
        self.in_flight = 0
        self.started = False

    def bind(self, runtime: "AsyncRuntime") -> None:
        if self._runtime is not None:
            raise TransportError("transport already bound to a runtime")
        self._runtime = runtime

    @property
    def runtime(self) -> "AsyncRuntime":
        if self._runtime is None:
            raise TransportError("transport not bound to a runtime")
        return self._runtime

    async def start(self) -> None:
        """Open endpoints; called by ``AsyncRuntime.start`` inside the loop."""
        if self.started:
            raise TransportError("transport already started")
        self.started = True

    async def stop(self) -> None:
        """Tear down endpoints; further sends raise."""
        self.started = False

    def send(self, envelope: Envelope) -> None:
        """Carry ``envelope`` to its destination (called from node callbacks)."""
        raise NotImplementedError

    def disconnect(self, pid: "ProcessId") -> None:
        """Make ``pid``'s endpoint unreachable (cluster kill).  Sync-safe."""

    async def reconnect(self, pid: "ProcessId") -> None:
        """Restore ``pid``'s endpoint after a :meth:`disconnect` (restart)."""

    async def connect(self, pid: "ProcessId") -> None:
        """Provision an endpoint for a newly joined node (membership join).

        No-op for in-process transports; the TCP transport opens a fresh
        listening server for ``pid``.
        """

    def _deliver_after_delay(self, envelope: Envelope) -> None:
        """Schedule policy-checked delivery after the modelled network delay.

        Shared tail of both transports: sample the transit delay from the
        network's delay model, order it through the channel policy, then
        hand the envelope to ``Network.deliver_local`` at that kernel time.
        """
        runtime = self.runtime
        net = runtime.network
        delay = net.delay_model.sample(runtime.rng, envelope.src, envelope.dst)
        deliver_at = net.channel.delivery_time(
            envelope.src, envelope.dst, runtime.now, delay
        )
        self.in_flight += 1

        def arrive() -> None:
            self.in_flight -= 1
            net.deliver_local(envelope)

        runtime.scheduler.at(
            deliver_at,
            arrive,
            priority=getattr(envelope.body, "priority", PRIORITY_NORMAL),
            label=f"deliver P{envelope.src}->P{envelope.dst}",
        )


def listening_socket(host: str, port: int) -> socket.socket:
    """A bound TCP listening socket with ``SO_REUSEADDR`` set.

    Every server endpoint in the runtime (per-pid TCP servers, shard link
    servers) binds through this helper.  ``SO_REUSEADDR`` matters for the
    kill/restart path: a restarted endpoint reopens its *original* port,
    and without the option the previous generation's connections lingering
    in ``TIME_WAIT`` make the bind fail intermittently with ``EADDRINUSE``
    — exactly the rapid-cycle shape sharded load produces.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.setblocking(False)
    except OSError:
        sock.close()
        raise
    return sock


def _codec_version(codec: "bool | str") -> Optional[int]:
    """Map a codec knob (bool or name) to a wire version (None = off)."""
    if codec is True or codec == "binary":
        return wire.WIRE_V2
    if codec == "json":
        return wire.WIRE_V1
    if codec is False or codec is None:
        return None
    raise TransportError(f"unknown codec {codec!r} (use 'binary', 'json', or False)")


class LoopbackTransport(Transport):
    """In-process transport: real timers, no sockets.

    With the codec on (default: the binary v2 format) every envelope is
    round-tripped through the full wire codec before delivery, so loopback
    tests also prove the traffic is wire-serializable; ``codec="json"``
    selects the v1 JSON format and ``codec=False`` skips serialization for
    raw kernel-overhead benchmarks.
    """

    def __init__(self, codec: "bool | str" = True) -> None:
        super().__init__()
        self.codec = codec
        self.wire_version = _codec_version(codec)

    def send(self, envelope: Envelope) -> None:
        if not self.started:
            raise TransportError("loopback transport is not running")
        if self.wire_version is not None:
            envelope = wire.roundtrip(envelope, version=self.wire_version)
        self._deliver_after_delay(envelope)


class TcpTransport(Transport):
    """Length-prefixed frames over TCP between per-node localhost servers.

    Topology: every pid gets an ``asyncio`` server on ``(host, ephemeral)``;
    the chosen port is remembered so a killed node's endpoint reopens on the
    *same* address at restart (peers reconnect transparently).  Outbound,
    the transport keeps one client connection per destination, fed by a
    queue so node callbacks never block on a socket; the pump coalesces up
    to ``max_batch`` queued envelopes into one buffer per write/drain.

    ``codec`` selects the *preferred* wire format ("binary" v2 by default,
    "json" for the v1 path); what a connection actually speaks is the
    minimum of that and the version the destination's server advertises in
    its hello.  ``server_versions`` overrides the advertised version per
    pid — a pid capped at :data:`~repro.runtime.wire.WIRE_V1` behaves
    exactly like a JSON-only node from an older build, so mixed-version
    clusters are testable in-process.

    ``disconnect``/``reconnect`` model a node dropping off the network: the
    server socket and its accepted connections close, cached client
    connections die on next use, and frames that cannot reach the peer go
    through the network's spool-or-drop salvage path.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        codec: str = "binary",
        max_batch: int = 64,
        server_versions: Optional[Dict["ProcessId", int]] = None,
    ) -> None:
        super().__init__()
        if max_batch < 1:
            raise TransportError(f"max_batch must be >= 1, got {max_batch}")
        self.host = host
        version = _codec_version(codec)
        if version is None:
            raise TransportError("tcp transport requires a codec ('binary' or 'json')")
        self.preferred_version = version
        self.max_batch = max_batch
        self.server_versions: Dict["ProcessId", int] = dict(server_versions or {})
        self._servers: Dict["ProcessId", asyncio.AbstractServer] = {}
        self.ports: Dict["ProcessId", int] = {}
        self._down: Set["ProcessId"] = set()
        self._accepted: Dict["ProcessId", Set[asyncio.StreamWriter]] = {}
        self._queues: Dict["ProcessId", "asyncio.Queue[Envelope]"] = {}
        self._writer_tasks: Dict["ProcessId", asyncio.Task] = {}
        self.negotiated: Dict["ProcessId", int] = {}  # dst -> version in use
        self.frames_sent = 0
        self.frames_received = 0
        self.batches_sent = 0
        self.bytes_sent = 0
        # A "generation" spans from one endpoint restart to the next; the
        # cumulative counters above are also snapshotted per generation so a
        # cluster summary can attribute traffic to node lifetimes instead of
        # silently accumulating across them.
        self.generation = 0
        self._generation_closed: List[Dict[str, Any]] = []
        self._generation_base = (0, 0, 0, 0)  # frames, batches, bytes, received

    def _advertised(self, pid: "ProcessId") -> int:
        """The wire version ``pid``'s server advertises in its hello."""
        return self.server_versions.get(pid, self.preferred_version)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await super().start()
        # A transport (re)start is a fresh deployment: zero the traffic
        # counters rather than letting a previous run's totals leak into
        # this one's summary.
        self.frames_sent = 0
        self.frames_received = 0
        self.batches_sent = 0
        self.bytes_sent = 0
        self.generation = 0
        self._generation_closed = []
        self._generation_base = (0, 0, 0, 0)
        for pid in self.runtime.process_ids:
            await self._open_server(pid)

    async def _open_server(self, pid: "ProcessId") -> None:
        port = self.ports.get(pid, 0)

        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
                         pid: "ProcessId" = pid) -> None:
            # Advertise this endpoint's wire version before anything else;
            # the client caps its codec preference at what we can decode.
            writer.write(wire.pack_hello(self._advertised(pid)))
            await self._serve_connection(pid, reader, writer)

        server = await asyncio.start_server(
            handle, sock=listening_socket(self.host, port)
        )
        self._servers[pid] = server
        self._accepted.setdefault(pid, set())
        self.ports[pid] = server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        await super().stop()
        for task in self._writer_tasks.values():
            task.cancel()
        for task in self._writer_tasks.values():
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._writer_tasks.clear()
        self._queues.clear()
        for pid in list(self._servers):
            self._close_server(pid)

    def _close_server(self, pid: "ProcessId") -> None:
        server = self._servers.pop(pid, None)
        if server is not None:
            server.close()
        for writer in self._accepted.pop(pid, set()):
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - already-broken socket
                pass
        self._accepted[pid] = set()

    # ------------------------------------------------------------------
    # Kill / restart
    # ------------------------------------------------------------------
    def disconnect(self, pid: "ProcessId") -> None:
        """Close ``pid``'s server and connections; its port is remembered."""
        self._down.add(pid)
        self._close_server(pid)
        # Sever the cached outbound connection *to* the dead peer so queued
        # frames fail fast instead of into a half-open socket; the wire
        # version is renegotiated when the endpoint comes back.
        self.negotiated.pop(pid, None)
        task = self._writer_tasks.pop(pid, None)
        if task is not None:
            task.cancel()

    async def reconnect(self, pid: "ProcessId") -> None:
        """Reopen ``pid``'s server on its original port."""
        if pid not in self._down:
            raise TransportError(f"P{pid} is not disconnected")
        self._down.discard(pid)
        self._close_generation(pid)
        await self._open_server(pid)

    async def connect(self, pid: "ProcessId") -> None:
        """Open a listening server for a freshly joined node."""
        if pid in self._servers:
            raise TransportError(f"P{pid} already has an endpoint")
        await self._open_server(pid)

    # ------------------------------------------------------------------
    # Per-generation counters
    # ------------------------------------------------------------------
    def _counters_since_base(self) -> Dict[str, int]:
        frames, batches, size, received = self._generation_base
        return {
            "frames_sent": self.frames_sent - frames,
            "batches_sent": self.batches_sent - batches,
            "bytes_sent": self.bytes_sent - size,
            "frames_received": self.frames_received - received,
        }

    def _close_generation(self, pid: "ProcessId") -> None:
        """Snapshot the counters accumulated since the last endpoint restart."""
        self._generation_closed.append(
            {"generation": self.generation, "restarted_pid": pid,
             **self._counters_since_base()}
        )
        self._generation_base = (
            self.frames_sent, self.batches_sent, self.bytes_sent,
            self.frames_received,
        )
        self.generation += 1

    def generation_summary(self) -> List[Dict[str, Any]]:
        """Traffic counters split at endpoint restarts.

        One row per closed generation (``restarted_pid`` names the restart
        that ended it) plus the still-open one (``restarted_pid`` None).
        Rows sum to the cumulative ``frames/batches/bytes`` counters, so
        nothing accumulates invisibly across node generations.
        """
        open_row = {"generation": self.generation, "restarted_pid": None,
                    **self._counters_since_base()}
        return [*self._generation_closed, open_row]

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def send(self, envelope: Envelope) -> None:
        if not self.started:
            raise TransportError("tcp transport is not running")
        if envelope.dst in self._down:
            self.runtime.network.spool_or_drop(envelope, "unreachable")
            return
        queue = self._queues.get(envelope.dst)
        if queue is None:
            queue = self._queues[envelope.dst] = asyncio.Queue()
        queue.put_nowait(envelope)
        task = self._writer_tasks.get(envelope.dst)
        if task is None or task.done():
            self._writer_tasks[envelope.dst] = asyncio.get_running_loop().create_task(
                self._drain(envelope.dst, queue)
            )

    async def _drain(self, dst: "ProcessId",
                     queue: "asyncio.Queue[Envelope]") -> None:
        """Outbound pump for one destination: connect, batch, write, salvage.

        Each iteration blocks for one envelope, then *coalesces* everything
        already queued behind it (up to ``max_batch``) into a single
        writev-style buffer written and drained once.  Frames stay whole and
        in queue order, and the receiver samples a per-message delivery
        delay, so batching changes syscall count — not the ordering the
        non-FIFO channel model already permits.
        """
        writer: Optional[asyncio.StreamWriter] = None
        try:
            while True:
                batch = [await queue.get()]
                while len(batch) < self.max_batch and not queue.empty():
                    batch.append(queue.get_nowait())
                if dst in self._down:
                    for envelope in batch:
                        self.runtime.network.spool_or_drop(envelope, "unreachable")
                    continue
                writer = await self._write_with_retry(dst, writer, batch)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - surface via runtime.check()
            self.runtime.scheduler._note_error(f"tcp drain ->P{dst}", exc)
        finally:
            if writer is not None:
                writer.close()

    async def _connect(self, dst: "ProcessId") -> asyncio.StreamWriter:
        """Open a connection to ``dst`` and negotiate its wire version."""
        reader, writer = await asyncio.open_connection(self.host, self.ports[dst])
        advertised = await wire.read_hello(reader)
        self.negotiated[dst] = wire.negotiate(self.preferred_version, advertised)
        return writer

    async def _write_with_retry(
        self,
        dst: "ProcessId",
        writer: Optional[asyncio.StreamWriter],
        batch: List[Envelope],
    ) -> Optional[asyncio.StreamWriter]:
        """Write one batch as a single buffer, reconnecting once if stale."""
        for attempt in (0, 1):
            if writer is None:
                try:
                    writer = await self._connect(dst)
                except OSError:
                    break
            version = self.negotiated.get(dst, self.preferred_version)
            buffer = wire.encode_batch(batch, version=version)
            try:
                writer.write(buffer)
                await writer.drain()
                self.frames_sent += len(batch)
                self.batches_sent += 1
                self.bytes_sent += len(buffer)
                return writer
            except (ConnectionError, OSError):
                try:
                    writer.close()
                except Exception:  # noqa: BLE001
                    pass
                writer = None
        for envelope in batch:
            self.runtime.network.spool_or_drop(envelope, "unreachable")
        return None

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    async def _serve_connection(
        self,
        pid: "ProcessId",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        peers = self._accepted.setdefault(pid, set())
        peers.add(writer)
        decoder = wire.FrameDecoder()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    decoder.eof()
                    break
                decoder.feed(chunk)
                # A coalesced batch arrives as one read; each frame payload is
                # decoded straight from a memoryview slice of the receive
                # buffer — no per-frame bytes copy on the hot path.
                for view in decoder.frames():
                    envelope = wire.loads_frame(view)
                    self.frames_received += 1
                    # The socket hop is real but near-instant on localhost;
                    # the delay-model pipeline restores protocol-scale transit
                    # times and the non-FIFO ordering contract.
                    self._deliver_after_delay(envelope)
        except WireError:
            pass  # peer died mid-frame or sent garbage: a tolerated loss
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            peers.discard(writer)
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass
