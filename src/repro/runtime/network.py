"""The live runtime's network facade: simulator policy, real transport.

:class:`RuntimeNetwork` is :class:`repro.net.network.Network` with exactly
one substitution — :meth:`transmit` hands the envelope to a
:class:`~repro.runtime.transport.Transport` instead of scheduling a virtual
delivery.  Everything else (partition policy, spooler registry, crash
filtering, the normal/CONTROL counters, delivery-time bookkeeping) is the
inherited code, byte for byte, which is what makes the simulator's message
accounting comparable with a live run's.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import NetworkError
from repro.net.network import Network

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.channel import Channel
    from repro.net.delay import DelayModel
    from repro.net.message import Envelope
    from repro.runtime.transport import Transport


class RuntimeNetwork(Network):
    """Network facade whose transmission medium is a real transport."""

    def __init__(
        self,
        transport: "Transport",
        delay_model: Optional["DelayModel"] = None,
        channel: Optional["Channel"] = None,
    ) -> None:
        super().__init__(delay_model=delay_model, channel=channel)
        self.transport = transport

    def transmit(self, envelope: "Envelope") -> None:
        """Stamp, count, and hand the envelope to the transport."""
        if envelope.dst not in self.sim.nodes:
            if self._is_departed(envelope.dst):
                # Same salvage policy as the simulated network: a sender
                # with a stale view of a graceful departure is not a
                # routing error.
                self._accept(envelope)
                self.salvaged_departed += 1
                self.spool_or_drop(envelope, "departed")
                return
            raise NetworkError(f"unknown destination P{envelope.dst}")
        self._accept(envelope)
        self.transport.send(envelope)
