"""The N-node live-cluster harness.

:class:`Cluster` assembles everything a deployed run needs around one
:class:`~repro.runtime.loop.AsyncRuntime`:

* each node gets its own on-disk stable storage directory
  (:class:`~repro.stable.storage.WriteBehindFileStableStorage` under
  ``<root>/node-<pid>/``), so a restart genuinely recovers from files;
* the trace streams through a :class:`PidRouterSink` into per-node JSONL
  files (``<root>/trace/node-<pid>.jsonl``; kernel-level events such as
  partitions land in ``cluster.jsonl``) — the shape a real multi-host
  deployment would produce, stitched back together by
  :meth:`repro.analysis.index.TraceIndex.from_jsonl_files`;
* a :class:`~repro.failure.detector.FailureDetector` and (optionally) the
  Section 6 spooler groups, wired exactly as in the simulated benchmarks;
* :meth:`kill` / :meth:`restart` take a *live* node down — protocol crash
  plus transport disconnect — and bring it back from its storage directory,
  exercising the Section 6 exception rules against real timers and sockets.
"""

from __future__ import annotations

import asyncio
import os
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Type

from repro.core import CheckpointProcess, ProtocolConfig
from repro.errors import SimulationError
from repro.failure import FailureDetector
from repro.net.delay import FixedDelay
from repro.runtime.loop import AsyncRuntime
from repro.runtime.transport import LoopbackTransport, TcpTransport, Transport
from repro.sim.trace import JsonlStreamSink, TraceEvent, TraceSink
from repro.stable.storage import WriteBehindFileStableStorage
from repro.types import ProcessId, SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.index import TraceIndex
    from repro.net.delay import DelayModel


class PidRouterSink(TraceSink):
    """Routes each trace event to a per-process JSONL stream.

    Events carrying a ``pid`` go to ``node-<pid>.jsonl``; kernel-level
    events (partitions, merges) to ``cluster.jsonl``.  This reproduces the
    files a real per-host deployment would write locally, so the merge
    tooling is tested against honestly sharded input.
    """

    def __init__(self, root: str, flush_every: int = 64) -> None:
        self.root = str(root)
        self.flush_every = flush_every
        os.makedirs(self.root, exist_ok=True)
        self._sinks: Dict[Optional[ProcessId], JsonlStreamSink] = {}

    def emit(self, event: TraceEvent) -> None:
        sink = self._sinks.get(event.pid)
        if sink is None:
            name = "cluster.jsonl" if event.pid is None else f"node-{event.pid}.jsonl"
            sink = JsonlStreamSink(
                os.path.join(self.root, name), flush_every=self.flush_every
            )
            self._sinks[event.pid] = sink
        sink.emit(event)

    def flush(self) -> None:
        """Force every per-node stream's buffer out (e.g. for mid-run reads)."""
        for sink in self._sinks.values():
            sink.flush()

    def close(self) -> None:
        for sink in self._sinks.values():
            sink.close()

    @property
    def paths(self) -> List[str]:
        """The JSONL files written so far, in stable (pid) order."""
        return [
            self._sinks[key].path
            for key in sorted(self._sinks, key=lambda k: (k is None, k))
        ]


class Cluster:
    """N protocol nodes on one live kernel, with real storage and traces."""

    def __init__(
        self,
        n: int,
        root: str,
        seed: int = 0,
        transport: "str | Transport" = "tcp",
        config: Optional[ProtocolConfig] = None,
        process_cls: Type[CheckpointProcess] = CheckpointProcess,
        time_scale: float = 0.05,
        detector_latency: Optional[SimTime] = 2.0,
        spoolers: bool = True,
        delay_model: Optional["DelayModel"] = None,
        flush_every: int = 8,
        trace_flush_every: int = 64,
        codec: str = "binary",
        extra_sinks: Sequence[TraceSink] = (),
    ) -> None:
        if n < 2:
            raise SimulationError("a cluster needs at least 2 nodes")
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.router = PidRouterSink(
            os.path.join(self.root, "trace"), flush_every=trace_flush_every
        )
        if isinstance(transport, Transport):
            self.transport = transport
        elif transport == "tcp":
            self.transport = TcpTransport(codec=codec)
        else:
            self.transport = LoopbackTransport(codec=codec)
        self.runtime = AsyncRuntime(
            seed=seed,
            transport=self.transport,
            delay_model=delay_model or FixedDelay(0.5),
            sinks=[self.router, *extra_sinks],
            time_scale=time_scale,
        )
        self.config = config
        self.process_cls = process_cls
        self.flush_every = flush_every
        self.spoolers = spoolers
        self.storages: Dict[ProcessId, WriteBehindFileStableStorage] = {}
        self.procs: Dict[ProcessId, CheckpointProcess] = {}
        for pid in range(n):
            storage = WriteBehindFileStableStorage(
                os.path.join(self.root, f"node-{pid}"), flush_every=flush_every
            )
            self.storages[pid] = storage
            self.procs[pid] = self.runtime.add_node(
                process_cls(pid, config, storage=storage)
            )
        self.detector: Optional[FailureDetector] = None
        if detector_latency is not None:
            self.detector = FailureDetector(
                self.runtime, detection_latency=detector_latency
            )
        if spoolers:
            for pid in range(n):
                self.runtime.network.install_spoolers(
                    pid, [(pid + 1) % n, (pid + 2) % n]
                )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.runtime.start()

    async def run_for(self, duration: SimTime) -> SimTime:
        return await self.runtime.run_for(duration)

    async def wait_until(
        self,
        predicate: Callable[[], bool],
        timeout: SimTime = 120.0,
        what: str = "condition",
    ) -> SimTime:
        return await self.runtime.wait_until(predicate, timeout=timeout, what=what)

    def open_instances(self) -> int:
        """Checkpoint/rollback tree rounds still open across the cluster."""
        return sum(
            sum(1 for s in p.engine.trees.all_chkpt_rounds() if not s.closed)
            + sum(1 for s in p.engine.trees.roll.values() if not s.closed)
            for p in self.procs.values()
        )

    async def quiesce(
        self, drain_timeout: SimTime = 60.0, settle: SimTime = 2.0
    ) -> None:
        """Stop autonomous initiation, drain open 2PC rounds, settle.

        After this returns no tree is mid-2PC anywhere, so a subsequent
        :meth:`shutdown` never cuts the run between a root's commit and a
        cohort's — the merged trace's recovery line is a settled one, not a
        mid-commit snapshot (mirrors :meth:`ShardedCluster.quiesce`).
        ``settle`` lets the final decision propagation land before the cut.
        """
        for proc in self.procs.values():
            proc.engine.autonomous_checkpoints = False
        await self.runtime.wait_until(
            lambda: self.open_instances() == 0,
            timeout=drain_timeout,
            what="open instances to drain",
        )
        if settle:
            await self.run_for(settle)

    async def shutdown(self, raise_errors: bool = True) -> None:
        """Stop the kernel, flush every storage, close the trace streams."""
        await self.runtime.shutdown(raise_errors=raise_errors)
        for storage in self.storages.values():
            storage.flush()
        self.runtime.trace.close()

    # ------------------------------------------------------------------
    # Failure injection (live)
    # ------------------------------------------------------------------
    def kill(self, pid: ProcessId) -> None:
        """Take a live node down: protocol crash + network disappearance."""
        self.runtime.crash(pid)
        self.transport.disconnect(pid)

    async def restart(self, pid: ProcessId) -> None:
        """Bring a killed node back on its original endpoint and storage."""
        await self.transport.reconnect(pid)
        self.runtime.recover(pid)

    def schedule_kill(self, pid: ProcessId, at: SimTime) -> None:
        """Arrange :meth:`kill` at kernel time ``at`` (usable pre-start)."""
        self.runtime.scheduler.at(at, lambda: self.kill(pid), label=f"kill P{pid}")

    def schedule_restart(self, pid: ProcessId, at: SimTime) -> None:
        """Arrange :meth:`restart` at kernel time ``at`` (usable pre-start)."""

        def fire() -> None:
            asyncio.get_running_loop().create_task(self.restart(pid))

        self.runtime.scheduler.at(at, fire, label=f"restart P{pid}")

    # ------------------------------------------------------------------
    # Dynamic membership (live)
    # ------------------------------------------------------------------
    async def join(self, pid: ProcessId) -> CheckpointProcess:
        """Grow the live cluster: provision and admit a brand-new node.

        The new node gets its own storage directory and (under TCP) its own
        listening endpoint *before* the membership transition runs, so its
        ``on_start`` traffic and any peer's first message to it have
        somewhere to go.
        """
        if pid in self.procs:
            raise SimulationError(f"P{pid} is already a cluster member")
        storage = WriteBehindFileStableStorage(
            os.path.join(self.root, f"node-{pid}"), flush_every=self.flush_every
        )
        node = self.process_cls(pid, self.config, storage=storage)
        await self.transport.connect(pid)
        self.storages[pid] = storage
        self.procs[pid] = node
        self.runtime.join_node(node)
        if self.spoolers:
            hosts = [p for p in self.runtime.process_ids if p != pid][:2]
            if hosts:
                self.runtime.network.install_spoolers(pid, hosts)
        return node

    async def leave(self, pid: ProcessId, successor: Optional[ProcessId] = None) -> None:
        """Shrink the live cluster: gracefully retire ``pid``.

        The kernel runs the handoff (obligations travel to ``successor`` as
        an ordinary control message), then the node's endpoint is closed and
        its storage flushed — the directory stays on disk for post-mortem
        trace analysis.
        """
        self.runtime.leave_node(pid, successor)
        self.transport.disconnect(pid)
        storage = self.storages.get(pid)
        if storage is not None:
            storage.flush()
        self.procs.pop(pid, None)

    def schedule_join(self, pid: ProcessId, at: SimTime) -> None:
        """Arrange :meth:`join` at kernel time ``at`` (usable pre-start)."""

        def fire() -> None:
            asyncio.get_running_loop().create_task(self.join(pid))

        self.runtime.scheduler.at(at, fire, label=f"join P{pid}")

    def schedule_leave(
        self, pid: ProcessId, at: SimTime, successor: Optional[ProcessId] = None
    ) -> None:
        """Arrange :meth:`leave` at kernel time ``at`` (usable pre-start)."""

        def fire() -> None:
            asyncio.get_running_loop().create_task(self.leave(pid, successor))

        self.runtime.scheduler.at(at, fire, label=f"leave P{pid}")

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def merged_index(self) -> "TraceIndex":
        """Stitch the per-node JSONL traces into one queryable index.

        Call after :meth:`shutdown` (the streams must be flushed).
        """
        from repro.analysis.index import TraceIndex

        return TraceIndex.from_jsonl_files(self.router.paths)

    def committed_counts(self) -> Dict[ProcessId, int]:
        """Committed checkpoints per process (including the birth one)."""
        return {pid: len(proc.committed_history) for pid, proc in self.procs.items()}

    def summary(self) -> Dict[str, Any]:
        """Counters a demo or CI artifact wants at end of run."""
        net = self.runtime.network
        wire_stats: Dict[str, Any] = {}
        if isinstance(self.transport, TcpTransport):
            wire_stats = {
                "frames_sent": self.transport.frames_sent,
                "batches_sent": self.transport.batches_sent,
                "bytes_sent": self.transport.bytes_sent,
                "wire_generations": self.transport.generation_summary(),
                "negotiated": {
                    str(pid): version
                    for pid, version in sorted(self.transport.negotiated.items())
                },
            }
        return {
            **wire_stats,
            "now": self.runtime.now,
            "nodes": len(self.procs),
            "normal_sent": net.normal_sent,
            "control_sent": net.control_sent,
            "delivered": net.delivered,
            "dropped": net.dropped,
            "spooled": net.spooled,
            "committed": {
                str(pid): count for pid, count in self.committed_counts().items()
            },
            "trace_events": self.runtime.trace.events_recorded,
            "timer_errors": len(self.runtime.scheduler.errors),
        }
