"""Job-outcome audit: replay the merged trace against checkpoint history.

The app layer's correctness claim is *exactly-once execution of committed
work*: after any mix of crashes, restarts and rollbacks, no stage completion
covered by a surviving (committed, never-rolled-past) checkpoint is ever
executed again, and no undone unit's effect survives.  This module verifies
the first half offline, from the merged :class:`~repro.analysis.index.
TraceIndex` alone — the same artifact a real deployment would audit.

Method: every tracked job mutation is traced by the hosting engine
(``job_submit`` / ``job_unit`` / ``job_stage`` / ``job_done``), every
checkpoint snapshot by ``chkpt_tentative`` (carrying its ``seq``), and every
restore by ``rollback`` (carrying ``to_seq``).  Because a single process's
events keep their emission order in the merged index, a rollback to ``seq``
undoes precisely the job events recorded *after* that seq's snapshot event —
so the audit marks them dead and checks that a stage completion never
duplicates one still alive.  The live/dead unit counts double as the resume
accounting the E-APP benchmark reports (units salvaged by restoring the
recovery line vs. units undone and re-executed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.index import BIRTH_SEQ, TraceIndex
from repro.tracekinds import (
    K_CHKPT_TENTATIVE,
    K_JOB_DONE,
    K_JOB_STAGE,
    K_JOB_SUBMIT,
    K_JOB_UNIT,
    K_ROLLBACK,
)
from repro.types import ProcessId

_JOB_KINDS = (K_JOB_SUBMIT, K_JOB_UNIT, K_JOB_STAGE, K_JOB_DONE)


@dataclass
class _Entry:
    """One traced job event and whether any later rollback undid it."""

    index: int
    kind: str
    job: str
    stage: Optional[int] = None
    alive: bool = True


@dataclass
class _HostAudit:
    """Per-hosting-process replay state."""

    snap_index: Dict[Any, int] = field(default_factory=dict)
    entries: List[_Entry] = field(default_factory=list)
    rollbacks: int = 0
    units_undone: int = 0
    units_salvaged: int = 0
    violations: List[str] = field(default_factory=list)


def audit_jobs(
    index: TraceIndex, pids: Optional[List[ProcessId]] = None
) -> Dict[str, Any]:
    """Audit every hosted job in a merged trace.

    Returns an aggregate report; ``committed_stage_reexecutions`` must be 0
    for a correct run, ``units_salvaged`` > 0 is the measurable witness
    that a restart *resumed* from the recovery line instead of starting
    over.  ``pids`` restricts the audit to those hosting processes.
    """
    hosts: Dict[ProcessId, _HostAudit] = {}
    events = sorted(
        index.by_kind(*_JOB_KINDS, K_ROLLBACK, K_CHKPT_TENTATIVE),
        key=lambda e: e.index,
    )
    for ev in events:
        if ev.pid is None or (pids is not None and ev.pid not in pids):
            continue
        host = hosts.setdefault(ev.pid, _HostAudit())
        if ev.kind == K_CHKPT_TENTATIVE:
            host.snap_index[ev.fields["seq"]] = ev.index
            continue
        if ev.kind == K_ROLLBACK:
            # The birth checkpoint (seq 1) predates every traced event.
            cutoff = host.snap_index.get(ev.fields["to_seq"], -1)
            if ev.fields["to_seq"] == BIRTH_SEQ:
                cutoff = -1
            host.rollbacks += 1
            for entry in host.entries:
                if not entry.alive:
                    continue
                if entry.index > cutoff:
                    entry.alive = False
                    if entry.kind == K_JOB_UNIT:
                        host.units_undone += 1
                elif entry.kind == K_JOB_UNIT:
                    host.units_salvaged += 1
            continue
        job = ev.fields["job"]
        stage = ev.fields.get("stage")
        if ev.kind == K_JOB_STAGE:
            for entry in host.entries:
                if (
                    entry.alive
                    and entry.kind == K_JOB_STAGE
                    and entry.job == job
                    and entry.stage == stage
                ):
                    host.violations.append(
                        f"P{ev.pid}: stage {stage} of job {job!r} completed "
                        f"again at trace index {ev.index} although its prior "
                        f"completion (index {entry.index}) was never rolled back"
                    )
        host.entries.append(
            _Entry(index=ev.index, kind=ev.kind, job=job, stage=stage)
        )

    violations: List[str] = []
    report: Dict[str, Any] = {
        "hosts": len(hosts),
        "jobs_submitted": 0,
        "jobs_done": 0,
        "units_executed": 0,
        "units_live": 0,
        "units_undone": 0,
        "units_salvaged": 0,
        "stages_done": 0,
        "rollbacks": 0,
    }
    for host in hosts.values():
        violations.extend(host.violations)
        report["rollbacks"] += host.rollbacks
        report["units_undone"] += host.units_undone
        report["units_salvaged"] += host.units_salvaged
        submitted = set()
        done = set()
        for entry in host.entries:
            if entry.kind == K_JOB_SUBMIT:
                submitted.add(entry.job)
            elif entry.kind == K_JOB_UNIT:
                report["units_executed"] += 1
                report["units_live"] += 1 if entry.alive else 0
            elif entry.kind == K_JOB_STAGE and entry.alive:
                report["stages_done"] += 1
            elif entry.kind == K_JOB_DONE and entry.alive:
                done.add(entry.job)
        report["jobs_submitted"] += len(submitted)
        report["jobs_done"] += len(done)
    report["violations"] = violations
    report["committed_stage_reexecutions"] = len(violations)
    return report
