"""ASCII space-time diagrams — the paper's process timing figures, live.

Figures 1-4 of the paper are hand-drawn process timing diagrams.  This
module renders the same kind of diagram from an actual trace: one lane per
process, time flowing right, with checkpoint/rollback lifecycle symbols and
suspension spans.

Symbols::

    o   tentative checkpoint          x   rollback (state restored)
    @   checkpoint committed          >   restart (new interval begins)
    #   checkpoint aborted            s/r normal message sent / received
    =   send-suspended span           ~   send+receive suspended span
    .   idle

Example (Fig. 3's scenario)::

    P1 |..s.o@..........|
    P2 |....s..o.....@..|
    P3 |..r.s....o..@...|
    P4 |.s.r......o...@.|

Use :func:`space_time` on any finished simulation's trace.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

from repro.analysis.index import as_index
from repro.sim import trace as T
from repro.types import ProcessId

# Later entries override earlier ones when several events share a cell.
_SYMBOL_PRIORITY = [".", "=", "~", "s", "r", ">", "x", "#", "o", "@"]

_POINT_SYMBOLS = {
    T.K_SEND: "s",
    T.K_RECEIVE: "r",
    T.K_CHKPT_TENTATIVE: "o",
    T.K_CHKPT_COMMIT: "@",
    T.K_CHKPT_ABORT: "#",
    T.K_ROLLBACK: "x",
    T.K_RESTART: ">",
}


def space_time(
    trace,
    pids: Optional[Sequence[ProcessId]] = None,
    width: int = 72,
    start: Optional[float] = None,
    end: Optional[float] = None,
    legend: bool = True,
) -> str:
    """Render the trace as an ASCII space-time diagram.

    ``trace`` may be a :class:`~repro.sim.trace.Trace` or a
    :class:`~repro.analysis.index.TraceIndex`.  ``width`` is the number of
    time buckets; ``start``/``end`` clip the window (defaulting to the
    trace's extent).  When several events fall in one bucket the most
    significant symbol wins (commits over sends, etc.).
    """
    index = as_index(trace)
    events = list(
        heapq.merge(
            *(index.for_process(pid) for pid in index.pids()),
            key=lambda e: e.index,
        )
    )
    if not events:
        return "(empty trace)"
    if pids is None:
        pids = sorted({e.pid for e in events})
    t0 = start if start is not None else events[0].time
    t1 = end if end is not None else events[-1].time
    span = max(t1 - t0, 1e-9)

    def bucket(t: float) -> int:
        return min(int((t - t0) / span * (width - 1)), width - 1)

    rank = {symbol: k for k, symbol in enumerate(_SYMBOL_PRIORITY)}
    lanes: Dict[ProcessId, List[str]] = {pid: ["."] * width for pid in pids}

    # Suspension spans first (lowest priority), then point events.
    open_since: Dict[tuple, float] = {}
    spans = {T.K_SUSPEND_SEND: (T.K_RESUME_SEND, "="),
             T.K_SUSPEND_ALL: (T.K_RESUME_ALL, "~")}
    closers = {T.K_RESUME_SEND: T.K_SUSPEND_SEND,
               T.K_RESUME_ALL: T.K_SUSPEND_ALL}
    for event in events:
        if event.pid not in lanes:
            continue
        if event.kind in spans:
            open_since[(event.pid, event.kind)] = event.time
        elif event.kind in closers:
            opener = closers[event.kind]
            begun = open_since.pop((event.pid, opener), None)
            if begun is not None and not (event.time < t0 or begun > t1):
                symbol = spans[opener][1]
                for cell in range(bucket(max(begun, t0)), bucket(min(event.time, t1)) + 1):
                    if rank[lanes[event.pid][cell]] < rank[symbol]:
                        lanes[event.pid][cell] = symbol
    for (pid, opener), begun in open_since.items():  # never resumed
        symbol = spans[opener][1]
        for cell in range(bucket(max(begun, t0)), width):
            if rank[lanes[pid][cell]] < rank[symbol]:
                lanes[pid][cell] = symbol

    for event in events:
        symbol = _POINT_SYMBOLS.get(event.kind)
        if symbol is None or event.pid not in lanes:
            continue
        if event.time < t0 or event.time > t1:
            continue
        cell = bucket(event.time)
        if rank[lanes[event.pid][cell]] < rank[symbol]:
            lanes[event.pid][cell] = symbol

    label_width = max(len(f"P{pid}") for pid in pids)
    lines = [
        f"{('P' + str(pid)).rjust(label_width)} |{''.join(lanes[pid])}|"
        for pid in pids
    ]
    lines.append(
        f"{' ' * label_width}  t={t0:.1f}{' ' * max(width - 18, 1)}t={t1:.1f}"
    )
    if legend:
        lines.append(
            "legend: o tentative  @ commit  # abort  x rollback  > restart  "
            "s send  r receive  = send-suspended  ~ comm-suspended"
        )
    return "\n".join(lines)
