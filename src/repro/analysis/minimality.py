"""Executable checks for the minimality theorems (paper Theorems 3 and 4).

Theorem 3: in an isolated committed checkpointing instance, every
non-initiator participant was *necessary* — swapping its new checkpoint for
its previous committed one would violate C1.

Theorem 4: in an isolated rollback instance, every non-initiator participant
was necessary — had it not rolled back, some undone send would leave it with
a dangling receive.

Both are checked against concrete runs: the trace (through its
:class:`~repro.analysis.index.TraceIndex`) supplies the instance tree and
undo events; the per-process ``committed_history`` supplies the previous
checkpoints' manifests.  ``trace`` arguments accept a
:class:`~repro.sim.trace.Trace` or a ``TraceIndex`` directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from repro.analysis.index import as_index
from repro.analysis.tree_view import InstanceTree, reconstruct_trees
from repro.errors import ConsistencyViolation
from repro.sim import trace as T
from repro.types import ProcessId, TreeId


def check_checkpoint_minimality(trace, processes: Iterable, tree_id: TreeId) -> None:
    """Theorem 3 for one committed instance.

    For each non-initiator participant ``P_i``: find the checkpoint it
    committed in this instance and its predecessor ``C_i'``.  There must be
    some participant ``P_j`` whose new checkpoint reflects the receipt of a
    message from ``P_i`` that ``C_i'`` does not reflect as sent — i.e.
    reverting ``P_i`` alone breaks C1, so forcing it was necessary.
    """
    procs = {p.node_id: p for p in processes}
    tree = reconstruct_trees(trace).get(tree_id)
    if tree is None:
        raise ConsistencyViolation("T3", f"no reconstructed tree for {tree_id}")
    if tree.decided != "commit":
        raise ConsistencyViolation("T3", f"{tree_id} did not commit (got {tree.decided})")

    new_ckpts = _instance_checkpoints(procs, tree)
    for pid in sorted(tree.participants):
        history = procs[pid].committed_history
        new_record = new_ckpts[pid]
        older = [r for r in history if r.seq < new_record.seq]
        if not older:
            raise ConsistencyViolation("T3", f"P{pid} has no previous committed checkpoint")
        prev = older[-1]
        prev_sent: Set[int] = {idx for _dst, idx in prev.meta.get("sent", [])}
        justified = False
        for other_pid, other_record in new_ckpts.items():
            if other_pid == pid:
                continue
            for src, idx in other_record.meta.get("recv", []):
                if src == pid and idx not in prev_sent:
                    justified = True
                    break
            if justified:
                break
        if not justified:
            raise ConsistencyViolation(
                "T3",
                f"P{pid}'s participation in {tree_id} was unnecessary: no "
                f"participant's new checkpoint depends on a message P{pid} sent "
                f"after its previous checkpoint (seq {prev.seq})",
            )


def _instance_checkpoints(procs: Dict[ProcessId, object], tree: InstanceTree) -> Dict[ProcessId, object]:
    """Each participant's checkpoint committed for this instance.

    With isolation (the theorem's precondition) that is simply the newest
    committed checkpoint of each tree member.
    """
    result = {}
    for pid in sorted(tree.nodes):
        history = procs[pid].committed_history
        result[pid] = history[-1]
    return result


def check_rollback_minimality(trace, tree_id: TreeId) -> None:
    """Theorem 4 for one completed rollback instance.

    For each non-initiator participant ``P_j``: some instance participant
    ``P_i`` must have undone a send to ``P_j`` that ``P_j`` had received —
    otherwise ``P_j`` rolled back without cause.
    """
    index = as_index(trace)
    tree = reconstruct_trees(index).get(tree_id)
    if tree is None:
        raise ConsistencyViolation("T4", f"no reconstructed tree for {tree_id}")

    members = tree.nodes
    # Undone sends during this instance, by sender.  The undo events carry
    # no tree stamp (a process may roll back once for several instances), so
    # scope to the instance window: from its start until the last restart.
    undone_to: Dict[ProcessId, Set[Tuple[ProcessId, int]]] = {}
    for event in index.by_kind(T.K_UNDO_SEND):
        if event.pid in members:
            undone_to.setdefault(event.fields["dst"], set()).add(
                (event.pid, event.fields["msg_id"].send_index)
            )
    received: Dict[ProcessId, Set[Tuple[ProcessId, int]]] = {}
    for event in index.by_kind(T.K_RECEIVE):
        received.setdefault(event.pid, set()).add(
            (event.fields["src"], event.fields["msg_id"].send_index)
        )

    for pid in sorted(tree.participants):
        doomed = undone_to.get(pid, set()) & received.get(pid, set())
        if not doomed:
            raise ConsistencyViolation(
                "T4",
                f"P{pid} rolled back in {tree_id} without cause: no instance "
                f"participant undid a message P{pid} had received",
            )
