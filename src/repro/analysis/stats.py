"""Run metrics for the Section 5 comparison experiments.

Everything is computed from the trace and the network counters, so the same
collector works for the Leu-Bhargava processes and for every baseline (they
all emit the same trace vocabulary).

Key metrics (one row of the measured comparison table):

* ``forced_checkpoints_per_instance`` — how many processes beyond the
  initiator took a checkpoint per committed instance (the minimality axis);
* ``control_messages`` — protocol overhead;
* ``send_blocked_time`` / ``comm_blocked_time`` — total process-time spent
  with sends (resp. sends+receives) suspended (the blocking axis, where the
  Section 3.5.3 extension and the blocking baselines differ most);
* instance outcome counts — committed / aborted / rejected (the concurrency
  axis: Koo-Toueg rejects interfering instances, Leu-Bhargava completes
  them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.analysis.tree_view import reconstruct_trees
from repro.sim import trace as T
from repro.types import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulation import Simulation


@dataclass
class RunStats:
    """Aggregated metrics of one simulation run."""

    duration: SimTime = 0.0
    processes: int = 0
    normal_messages: int = 0
    control_messages: int = 0
    discarded_messages: int = 0
    checkpoints_tentative: int = 0
    checkpoints_committed: int = 0
    checkpoints_aborted: int = 0
    rollbacks: int = 0
    instances_started: int = 0
    instances_committed: int = 0
    instances_aborted: int = 0
    instances_rejected: int = 0
    send_blocked_time: SimTime = 0.0
    comm_blocked_time: SimTime = 0.0
    forced_per_instance: List[int] = field(default_factory=list)
    tree_depths: List[int] = field(default_factory=list)
    instance_latencies: List[SimTime] = field(default_factory=list)

    @property
    def mean_forced(self) -> float:
        return sum(self.forced_per_instance) / len(self.forced_per_instance) if self.forced_per_instance else 0.0

    @property
    def max_forced(self) -> int:
        return max(self.forced_per_instance) if self.forced_per_instance else 0

    @property
    def mean_latency(self) -> float:
        return sum(self.instance_latencies) / len(self.instance_latencies) if self.instance_latencies else 0.0

    @property
    def control_per_instance(self) -> float:
        return self.control_messages / self.instances_started if self.instances_started else 0.0

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table printers."""
        return {
            "processes": self.processes,
            "normal_msgs": self.normal_messages,
            "control_msgs": self.control_messages,
            "instances": self.instances_started,
            "committed": self.instances_committed,
            "aborted": self.instances_aborted,
            "rejected": self.instances_rejected,
            "mean_forced": round(self.mean_forced, 2),
            "max_forced": self.max_forced,
            "send_blocked": round(self.send_blocked_time, 2),
            "comm_blocked": round(self.comm_blocked_time, 2),
            "mean_latency": round(self.mean_latency, 3),
        }


def collect(sim: "Simulation") -> RunStats:
    """Compute :class:`RunStats` for a finished simulation.

    Reads the trace through its :class:`~repro.analysis.index.TraceIndex`:
    outcome counters are O(1) index lookups, and the latency / blocked-time
    walks only touch the (few) lifecycle and suspension events instead of
    re-scanning the whole trace.
    """
    index = sim.trace.index
    stats = RunStats(
        duration=sim.now,
        processes=len(sim.nodes),
        normal_messages=sim.network.normal_sent,
        control_messages=sim.network.control_sent,
        discarded_messages=index.count(T.K_DISCARD),
        checkpoints_tentative=index.count(T.K_CHKPT_TENTATIVE),
        checkpoints_committed=index.count(T.K_CHKPT_COMMIT),
        checkpoints_aborted=index.count(T.K_CHKPT_ABORT),
        rollbacks=index.count(T.K_ROLLBACK),
        instances_started=index.count(T.K_INSTANCE_START),
        instances_committed=index.count(T.K_INSTANCE_COMMIT),
        instances_aborted=index.count(T.K_INSTANCE_ABORT),
        instances_rejected=index.count(T.K_INSTANCE_REJECTED),
    )

    # Commit latency: pair each commit with the latest start of its tree
    # seen so far (trace order), exactly as the old full scan did.
    started_at: Dict[object, SimTime] = {}
    for event in index.by_kind(T.K_INSTANCE_START, T.K_INSTANCE_COMMIT):
        if event.kind == T.K_INSTANCE_START:
            started_at[event.fields["tree"]] = event.time
        else:
            begun = started_at.get(event.fields["tree"])
            if begun is not None:
                stats.instance_latencies.append(event.time - begun)

    # Suspension accounting pairs suspend/resume per process, charging
    # still-open suspensions up to the end of the run.
    for pid in index.pids():
        since: Optional[SimTime] = None
        for event in index.for_process(pid, T.K_SUSPEND_SEND, T.K_RESUME_SEND):
            if event.kind == T.K_SUSPEND_SEND:
                since = event.time
            elif since is not None:
                stats.send_blocked_time += event.time - since
                since = None
        if since is not None:
            stats.send_blocked_time += sim.now - since

        since = None
        for event in index.for_process(pid, T.K_SUSPEND_ALL, T.K_RESUME_ALL):
            if event.kind == T.K_SUSPEND_ALL:
                since = event.time
            elif since is not None:
                stats.comm_blocked_time += event.time - since
                since = None
        if since is not None:
            stats.comm_blocked_time += sim.now - since

    for tree in reconstruct_trees(index).values():
        stats.forced_per_instance.append(len(tree.participants))
        stats.tree_depths.append(tree.depth())

    return stats
