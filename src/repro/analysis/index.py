"""`TraceIndex` — the *index* layer of the observability stack.

A :class:`TraceIndex` is a :class:`~repro.sim.trace.TraceSink` that keeps
incremental lookup structures over the event stream, so every consumer in
:mod:`repro.analysis` answers its queries in O(matches) instead of
re-scanning the whole trace front-to-back:

* per-kind and per-process event lists (``by_kind``, ``for_process``);
* send ↔ receive matching keyed by ``(sender pid, send index)``
  (``send_of`` / ``receive_of``);
* tree-id → lifecycle events (``tree_events``) feeding
  :func:`repro.analysis.tree_view.reconstruct_trees`;
* per-process *manifest reconstruction*: live send/receive sets and the
  manifests of committed checkpoints, derived purely from the trace — the
  trace-based consistency checkers
  (:func:`repro.analysis.consistency.check_c1_from_trace`) and the domino
  analysis (:func:`repro.analysis.domino.histories_from_trace`) read these.

Attach one with ``sim.trace.index`` (lazily created and backfilled) or pass
it up front via ``Simulation(sinks=[TraceIndex(), ...])`` on streaming
configurations where no in-memory event list exists to backfill from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.sim import trace as T
from repro.sim.trace import TraceEvent, TraceSink
from repro.types import ProcessId, Seq, TreeId

MsgKey = Tuple[ProcessId, Any]  # (sender pid, send index) — globally unique


@dataclass(frozen=True)
class ManifestView:
    """Trace-derived manifest of one committed checkpoint.

    ``recv`` holds ``(src, send_index)`` keys of the live receives the
    snapshotted state reflects; ``sent`` holds ``(dst, send_index)`` keys of
    its live sends — the exact shape of the ``meta["recv"]``/``meta["sent"]``
    manifests the protocol stores on real checkpoints, so the two can be
    compared element-for-element.
    """

    seq: Seq
    recv: FrozenSet[Tuple[ProcessId, Any]]
    sent: FrozenSet[Tuple[ProcessId, Any]]


BIRTH_SEQ = 1  # every process installs a committed birth checkpoint at seq 1


class _ProcessState:
    """Incremental per-process ledger shadow (manifest reconstruction)."""

    __slots__ = ("sends", "receives", "pending", "committed")

    def __init__(self) -> None:
        # send index -> (dst, live); receive (src, idx) -> live.
        self.sends: Dict[Any, Tuple[ProcessId, bool]] = {}
        self.receives: Dict[Tuple[ProcessId, Any], bool] = {}
        # Tentative-checkpoint manifests awaiting commit/abort, by seq.
        self.pending: Dict[Seq, ManifestView] = {}
        # Committed manifests in commit order (birth checkpoint implicit).
        self.committed: List[ManifestView] = []

    def manifest(self, seq: Seq) -> ManifestView:
        return ManifestView(
            seq=seq,
            recv=frozenset(key for key, live in self.receives.items() if live),
            sent=frozenset(
                (dst, idx) for idx, (dst, live) in self.sends.items() if live
            ),
        )


def _send_index(msg_id: Any) -> Any:
    """The per-sender send index of a message id (raw ids pass through)."""
    return getattr(msg_id, "send_index", msg_id)


def _msg_key(msg_id: Any) -> Any:
    """Normalise a message identity to a hashable matching key."""
    sender = getattr(msg_id, "sender", None)
    if sender is None:
        return msg_id
    return (sender, msg_id.send_index)


class TraceIndex(TraceSink):
    """Incrementally-maintained query index over a trace's event stream."""

    is_index = True

    @classmethod
    def from_jsonl_files(cls, paths: Iterable[str]) -> "TraceIndex":
        """Stitch per-node :class:`~repro.sim.trace.JsonlStreamSink` files
        into one index.

        A live cluster streams each process's events to its own JSONL file,
        so no single file is globally ordered.  Events are merged by
        ``(time, original index, file position)`` — time first (the global
        order of a live run), original emit index as the same-instant
        tiebreak (exact for files that share one emitting trace, and a
        deterministic convention for files from independent traces whose
        clocks may disagree) — then renumbered 0..N-1 so downstream
        consumers see a dense, ordered stream, exactly as if one trace had
        recorded everything.

        Shard files are read tolerantly: a final line cut mid-record (the
        partial flush a killed shard leaves behind) is skipped, and the
        number of such dropped tail lines is exposed as
        ``truncated_lines`` on the returned index so the loss is visible
        to whoever interprets the merged analysis.
        """
        keyed: List[Tuple[float, int, int, TraceEvent]] = []
        position = 0
        truncated = 0
        for path in paths:
            events, dropped = T.load_jsonl_tolerant(path)
            truncated += dropped
            for event in events:
                keyed.append((event.time, event.index, position, event))
                position += 1
        keyed.sort(key=lambda entry: entry[:3])
        index = cls()
        index.truncated_lines = truncated
        for new_index, (_, _, _, event) in enumerate(keyed):
            index.emit(
                TraceEvent(
                    index=new_index,
                    time=event.time,
                    kind=event.kind,
                    pid=event.pid,
                    fields=event.fields,
                )
            )
        return index

    def __init__(self) -> None:
        self.events_indexed = 0
        # Tail lines dropped by from_jsonl_files (partial flushes of killed
        # shards); 0 for indexes built from in-memory streams.
        self.truncated_lines = 0
        self._by_kind: Dict[str, List[TraceEvent]] = {}
        self._by_pid: Dict[ProcessId, List[TraceEvent]] = {}
        self._by_pid_kind: Dict[Tuple[ProcessId, str], List[TraceEvent]] = {}
        self._send_by_key: Dict[Any, TraceEvent] = {}
        self._receive_by_key: Dict[Any, TraceEvent] = {}
        self._tree_events: Dict[TreeId, List[TraceEvent]] = {}
        self._proc: Dict[ProcessId, _ProcessState] = {}

    # ------------------------------------------------------------------
    # Sink interface (emit-time maintenance)
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        self.events_indexed += 1
        kind = event.kind
        pid = event.pid
        self._by_kind.setdefault(kind, []).append(event)
        if pid is not None:
            self._by_pid.setdefault(pid, []).append(event)
            self._by_pid_kind.setdefault((pid, kind), []).append(event)

        tree = event.fields.get("tree")
        if tree is not None:
            self._tree_events.setdefault(tree, []).append(event)

        if pid is None:
            return
        if kind == T.K_SEND:
            msg_id = event.fields["msg_id"]
            self._send_by_key[_msg_key(msg_id)] = event
            state = self._state(pid)
            state.sends[_send_index(msg_id)] = (event.fields["dst"], True)
        elif kind == T.K_RECEIVE:
            msg_id = event.fields["msg_id"]
            self._receive_by_key[_msg_key(msg_id)] = event
            state = self._state(pid)
            state.receives[(event.fields["src"], _send_index(msg_id))] = True
        elif kind == T.K_UNDO_SEND:
            idx = _send_index(event.fields["msg_id"])
            state = self._state(pid)
            dst, _live = state.sends.get(idx, (event.fields.get("dst"), True))
            state.sends[idx] = (dst, False)
        elif kind == T.K_UNDO_RECEIVE:
            state = self._state(pid)
            key = (event.fields["src"], _send_index(event.fields["msg_id"]))
            state.receives[key] = False
        elif kind == T.K_CHKPT_TENTATIVE:
            state = self._state(pid)
            seq = event.fields["seq"]
            state.pending[seq] = state.manifest(seq)
        elif kind == T.K_CHKPT_COMMIT:
            state = self._state(pid)
            seq = event.fields["seq"]
            # Fall back to a commit-time snapshot for protocols that commit
            # without a traced tentative step.
            view = state.pending.pop(seq, None) or state.manifest(seq)
            state.committed.append(view)
        elif kind == T.K_CHKPT_ABORT:
            self._state(pid).pending.pop(event.fields["seq"], None)

    def _state(self, pid: ProcessId) -> _ProcessState:
        state = self._proc.get(pid)
        if state is None:
            state = self._proc[pid] = _ProcessState()
        return state

    # ------------------------------------------------------------------
    # Event queries
    # ------------------------------------------------------------------
    def by_kind(self, *kinds: str) -> List[TraceEvent]:
        """All records of the given kinds, in trace order — O(matches)."""
        if len(kinds) == 1:
            return list(self._by_kind.get(kinds[0], ()))
        merged: List[TraceEvent] = []
        for kind in kinds:
            merged.extend(self._by_kind.get(kind, ()))
        merged.sort(key=lambda e: e.index)
        return merged

    def count(self, *kinds: str) -> int:
        """Number of records of the given kinds — O(1) per kind."""
        return sum(len(self._by_kind.get(kind, ())) for kind in kinds)

    def for_process(self, pid: ProcessId, *kinds: str) -> List[TraceEvent]:
        """Records of ``pid``, optionally restricted to ``kinds``."""
        if not kinds:
            return list(self._by_pid.get(pid, ()))
        if len(kinds) == 1:
            return list(self._by_pid_kind.get((pid, kinds[0]), ()))
        merged: List[TraceEvent] = []
        for kind in kinds:
            merged.extend(self._by_pid_kind.get((pid, kind), ()))
        merged.sort(key=lambda e: e.index)
        return merged

    def last_of(self, kind: str, pid: Optional[ProcessId] = None) -> Optional[TraceEvent]:
        """Most recent record of ``kind`` (for ``pid`` if given), or None."""
        if pid is not None:
            events = self._by_pid_kind.get((pid, kind), ())
        else:
            events = self._by_kind.get(kind, ())
        return events[-1] if events else None

    def pids(self) -> List[ProcessId]:
        """Every process id that has emitted at least one event."""
        return sorted(self._by_pid)

    def kinds(self) -> List[str]:
        return sorted(self._by_kind)

    # ------------------------------------------------------------------
    # Send/receive matching
    # ------------------------------------------------------------------
    def send_of(self, msg_id: Any) -> Optional[TraceEvent]:
        """The send event of a message — O(1)."""
        return self._send_by_key.get(_msg_key(msg_id))

    def receive_of(self, msg_id: Any) -> Optional[TraceEvent]:
        """The receive event of a message, if delivered and accepted — O(1)."""
        return self._receive_by_key.get(_msg_key(msg_id))

    def send_is_live(self, sender: ProcessId, send_index: Any) -> Optional[bool]:
        """Whether send ``(sender, send_index)`` is live (None if untraced)."""
        state = self._proc.get(sender)
        if state is None:
            return None
        entry = state.sends.get(send_index)
        return None if entry is None else entry[1]

    def live_receives(self, pid: ProcessId) -> List[Tuple[ProcessId, Any]]:
        """``(src, send_index)`` keys of ``pid``'s live (not undone) receives."""
        state = self._proc.get(pid)
        if state is None:
            return []
        return sorted(key for key, live in state.receives.items() if live)

    # ------------------------------------------------------------------
    # Instance trees
    # ------------------------------------------------------------------
    def tree_ids(self) -> List[TreeId]:
        """Every instance tree touched by the trace, in first-seen order."""
        return list(self._tree_events)

    def tree_events(self, tree: TreeId) -> List[TraceEvent]:
        """All events stamped with ``tree``, in trace order."""
        return list(self._tree_events.get(tree, ()))

    # ------------------------------------------------------------------
    # Manifest reconstruction
    # ------------------------------------------------------------------
    def committed_manifests(self, pid: ProcessId) -> List[ManifestView]:
        """Trace-derived manifests of ``pid``'s committed checkpoints.

        The implicit birth checkpoint (seq 1, empty manifests) leads the
        list, mirroring ``CheckpointProcess.committed_history``.
        """
        birth = ManifestView(seq=BIRTH_SEQ, recv=frozenset(), sent=frozenset())
        state = self._proc.get(pid)
        if state is None:
            return [birth]
        return [birth] + list(state.committed)

    def last_committed_manifest(self, pid: ProcessId) -> ManifestView:
        """The manifest of ``pid``'s newest committed checkpoint."""
        return self.committed_manifests(pid)[-1]


def as_index(source) -> TraceIndex:
    """Coerce a :class:`~repro.sim.trace.Trace` or index to a TraceIndex."""
    if isinstance(source, TraceIndex):
        return source
    return source.index


def iter_meta_pairs(pairs: Iterable) -> List[Tuple]:
    """Normalise manifest meta pairs (lists from storage) to tuples."""
    return [tuple(pair) for pair in pairs]
