"""Trace analysis: happens-before, consistency oracles, minimality, metrics.

Every consumer here reads the trace through
:class:`~repro.analysis.index.TraceIndex`, the incrementally-maintained
query index built at emit time (see :mod:`repro.analysis.index`).
"""

from repro.analysis.consistency import (
    check_app_states,
    check_c1,
    check_c1_from_trace,
    check_no_dangling_receives,
    check_no_dangling_receives_from_trace,
    check_quiescent,
    check_recovery_line,
    check_recovery_line_from_trace,
)
from repro.analysis.diagram import space_time
from repro.analysis.domino import (
    domino_metrics,
    domino_metrics_from_trace,
    histories_from_trace,
    recovery_line,
    rollback_distance,
)
from repro.analysis.happens_before import HappensBefore
from repro.analysis.index import ManifestView, TraceIndex, as_index
from repro.analysis.jobs import audit_jobs
from repro.analysis.minimality import (
    check_checkpoint_minimality,
    check_rollback_minimality,
)
from repro.analysis.stats import RunStats, collect
from repro.analysis.tree_view import InstanceTree, reconstruct_trees

__all__ = [
    "HappensBefore",
    "InstanceTree",
    "ManifestView",
    "RunStats",
    "TraceIndex",
    "as_index",
    "audit_jobs",
    "check_app_states",
    "check_c1",
    "check_c1_from_trace",
    "check_checkpoint_minimality",
    "check_no_dangling_receives",
    "check_no_dangling_receives_from_trace",
    "check_quiescent",
    "check_recovery_line",
    "check_recovery_line_from_trace",
    "check_rollback_minimality",
    "collect",
    "domino_metrics",
    "domino_metrics_from_trace",
    "histories_from_trace",
    "reconstruct_trees",
    "recovery_line",
    "rollback_distance",
    "space_time",
]
