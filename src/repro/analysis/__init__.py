"""Trace analysis: happens-before, consistency oracles, minimality, metrics."""

from repro.analysis.consistency import (
    check_app_states,
    check_c1,
    check_no_dangling_receives,
    check_quiescent,
    check_recovery_line,
)
from repro.analysis.diagram import space_time
from repro.analysis.domino import domino_metrics, recovery_line, rollback_distance
from repro.analysis.happens_before import HappensBefore
from repro.analysis.minimality import (
    check_checkpoint_minimality,
    check_rollback_minimality,
)
from repro.analysis.stats import RunStats, collect
from repro.analysis.tree_view import InstanceTree, reconstruct_trees

__all__ = [
    "HappensBefore",
    "InstanceTree",
    "RunStats",
    "check_app_states",
    "check_c1",
    "check_checkpoint_minimality",
    "check_no_dangling_receives",
    "check_quiescent",
    "check_recovery_line",
    "check_rollback_minimality",
    "collect",
    "domino_metrics",
    "reconstruct_trees",
    "recovery_line",
    "rollback_distance",
    "space_time",
]
