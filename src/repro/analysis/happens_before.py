"""Happens-before analysis over execution traces (paper Definition 1).

Assigns a vector clock to every trace event, with the two generators of the
Lamport relation: local order within a process, and send → receive matching
of normal messages (by ``msg_id``).  Control messages also induce causality
in reality, but Definition 1 and the consistency constraints are stated over
*normal* messages, so by default control events only advance their local
component (``include_control=True`` widens the relation for debugging).

Usage::

    hb = HappensBefore(sim.trace)
    hb.happens_before(e1, e2)          # Definition 1
    hb.concurrent(e1, e2)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.index import as_index
from repro.sim import trace as T
from repro.sim.trace import Trace, TraceEvent
from repro.types import ProcessId


class HappensBefore:
    """Vector-clock index over a trace."""

    def __init__(self, trace: Trace, include_control: bool = False):
        self.trace = trace
        self.index = as_index(trace)
        self.include_control = include_control
        self._clocks: Dict[int, Dict[ProcessId, int]] = {}
        self._build()

    def _event_stream(self):
        """Every process-attributed event in trace order, via the index.

        Merging the per-process index lists recovers the global order
        without needing the trace to retain an in-memory event list (the
        lists share the same event objects, so this costs pointers only).
        """
        import heapq

        streams = [self.index.for_process(pid) for pid in self.index.pids()]
        return heapq.merge(*streams, key=lambda e: e.index)

    def _build(self) -> None:
        current: Dict[ProcessId, Dict[ProcessId, int]] = {}
        send_clock: Dict[object, Dict[ProcessId, int]] = {}
        ctrl_clock: Dict[Tuple[ProcessId, ProcessId, str, object], List[Dict[ProcessId, int]]] = {}

        for event in self._event_stream():
            pid = event.pid
            if pid is None:
                continue
            clock = current.setdefault(pid, {})

            if event.kind == T.K_RECEIVE:
                origin = send_clock.get(event.fields["msg_id"])
                if origin is not None:
                    for other, value in origin.items():
                        if value > clock.get(other, 0):
                            clock[other] = value
            elif self.include_control and event.kind == T.K_CTRL_RECEIVE:
                key = (event.fields["src"], pid, event.fields["msg_type"], event.fields.get("tree"))
                queue = ctrl_clock.get(key)
                if queue:
                    origin = queue.pop(0)
                    for other, value in origin.items():
                        if value > clock.get(other, 0):
                            clock[other] = value

            clock[pid] = clock.get(pid, 0) + 1
            self._clocks[event.index] = dict(clock)

            if event.kind == T.K_SEND:
                send_clock[event.fields["msg_id"]] = dict(clock)
            elif self.include_control and event.kind == T.K_CTRL_SEND:
                key = (pid, event.fields["dst"], event.fields["msg_type"], event.fields.get("tree"))
                ctrl_clock.setdefault(key, []).append(dict(clock))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def clock_of(self, event: TraceEvent) -> Dict[ProcessId, int]:
        """The vector clock assigned to ``event`` (empty if untracked)."""
        return self._clocks.get(event.index, {})

    def happens_before(self, first: TraceEvent, second: TraceEvent) -> bool:
        """True iff ``first`` → ``second`` under Definition 1."""
        if first.index == second.index:
            return False
        c1 = self._clocks.get(first.index)
        c2 = self._clocks.get(second.index)
        if c1 is None or c2 is None or first.pid is None:
            return False
        return c1.get(first.pid, 0) <= c2.get(first.pid, 0) and c1 != c2

    def concurrent(self, first: TraceEvent, second: TraceEvent) -> bool:
        """Neither event happens before the other."""
        return not self.happens_before(first, second) and not self.happens_before(
            second, first
        )

    def find_send(self, msg_id: object) -> Optional[TraceEvent]:
        """The send event of a message, if traced — O(1) via the index."""
        return self.index.send_of(msg_id)

    def find_receive(self, msg_id: object) -> Optional[TraceEvent]:
        """The receive event of a message, if delivered and accepted — O(1)."""
        return self.index.receive_of(msg_id)
