"""Domino-effect analysis for uncoordinated checkpointing (paper Section 1).

The introduction motivates coordinated checkpointing with the domino effect
[17, 18]: with independent checkpoints, one rollback can cascade arbitrarily
far because each discarded send orphans receives that sit *before* other
processes' checkpoints, forcing them to earlier checkpoints, and so on.

:func:`recovery_line` computes the maximal consistent recovery line for a
set of processes with checkpoint histories, by the classic fixpoint
iteration; :func:`rollback_distance` quantifies how far each process was
dragged back.  The E-DOMINO experiment runs these against the
``uncoordinated`` baseline and against the Leu-Bhargava processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.index import as_index
from repro.types import ProcessId

MsgKey = Tuple[ProcessId, int]


@dataclass
class CheckpointView:
    """Analysis view of one checkpoint: its manifests and position."""

    seq: int
    recv: Set[MsgKey]
    sent: Set[MsgKey]


def views_from_history(proc) -> List[CheckpointView]:
    """Build :class:`CheckpointView` rows from a process's committed history."""
    views = []
    for record in proc.committed_history:
        views.append(
            CheckpointView(
                seq=record.seq,
                recv={(s, i) for s, i in record.meta.get("recv", [])},
                sent={(proc.node_id, i) for _dst, i in record.meta.get("sent", [])},
            )
        )
    return views


def histories_from_trace(
    trace, pids: Optional[Iterable[ProcessId]] = None
) -> Dict[ProcessId, List[CheckpointView]]:
    """Checkpoint histories from the trace's reconstructed manifests.

    Equivalent to ``{p.node_id: views_from_history(p) for p in processes}``
    but sourced from the :class:`~repro.analysis.index.TraceIndex`'s
    manifest shadow, so the fixpoint runs on traces reloaded from disk.
    ``ManifestView.sent`` keys are ``(dst, idx)``; the domino fixpoint keys
    sends by *sender*, so they are re-keyed here exactly as
    :func:`views_from_history` does.
    """
    index = as_index(trace)
    members = sorted(pids) if pids is not None else index.pids()
    histories: Dict[ProcessId, List[CheckpointView]] = {}
    for pid in members:
        histories[pid] = [
            CheckpointView(
                seq=view.seq,
                recv=set(view.recv),
                sent={(pid, idx) for _dst, idx in view.sent},
            )
            for view in index.committed_manifests(pid)
        ]
    return histories


def recovery_line(
    histories: Dict[ProcessId, List[CheckpointView]],
    start: Dict[ProcessId, int],
) -> Dict[ProcessId, int]:
    """Maximal consistent recovery line at or below ``start``.

    ``start`` maps each process to the index (into its history) of the
    checkpoint it initially restores.  The fixpoint repeatedly demotes any
    process whose chosen checkpoint reflects a receive that some *other*
    process's chosen checkpoint no longer reflects as sent (an orphan), until
    the line is consistent.  Index 0 (the birth checkpoint) is always
    consistent, so termination is guaranteed.
    """
    line = dict(start)
    changed = True
    while changed:
        changed = False
        sent_union: Dict[ProcessId, Set[MsgKey]] = {
            pid: histories[pid][line[pid]].sent for pid in line
        }
        for pid in sorted(line):
            view = histories[pid][line[pid]]
            for src, idx in view.recv:
                if src == pid or src not in line:
                    continue
                if (src, idx) not in sent_union[src]:
                    if line[pid] == 0:
                        continue  # birth checkpoint reflects nothing; safe
                    line[pid] -= 1
                    changed = True
                    break
    return line


def rollback_distance(
    histories: Dict[ProcessId, List[CheckpointView]],
    start: Dict[ProcessId, int],
    line: Dict[ProcessId, int],
) -> Dict[ProcessId, int]:
    """Checkpoints lost per process: ``start index - final line index``."""
    return {pid: start[pid] - line[pid] for pid in start}


def domino_metrics(processes: Iterable, initiator: ProcessId) -> Dict[str, float]:
    """End-to-end domino measurement for a finished uncoordinated run.

    The ``initiator`` rolls back to its latest checkpoint; everyone else
    starts at theirs; the fixpoint tells us where the system actually lands.
    Returns the mean/max rollback distance and how many processes moved.
    """
    histories = {p.node_id: views_from_history(p) for p in processes}
    return _domino_metrics(histories, initiator)


def domino_metrics_from_trace(
    trace, initiator: ProcessId, pids: Optional[Iterable[ProcessId]] = None
) -> Dict[str, float]:
    """:func:`domino_metrics`, with histories rebuilt from the trace."""
    return _domino_metrics(histories_from_trace(trace, pids), initiator)


def _domino_metrics(
    histories: Dict[ProcessId, List[CheckpointView]], initiator: ProcessId
) -> Dict[str, float]:
    start = {pid: len(h) - 1 for pid, h in histories.items()}
    line = recovery_line(histories, start)
    distances = rollback_distance(histories, start, line)
    moved = [pid for pid, d in distances.items() if d > 0 and pid != initiator]
    values = list(distances.values())
    return {
        "mean_distance": sum(values) / len(values) if values else 0.0,
        "max_distance": max(values) if values else 0,
        "processes_dragged": len(moved),
        "line": {pid: histories[pid][idx].seq for pid, idx in line.items()},
    }
