"""Executable forms of the paper's consistency definitions.

The checkers work on the *manifests* each checkpoint stores (which live
sends/receives the snapshotted state reflects) plus the final ledgers.  They
raise :class:`~repro.errors.ConsistencyViolation` with a precise culprit, or
return quietly — tests wrap them in one-line assertions, and the randomized
stress suites use them as oracles.

* :func:`check_c1` — Definition 2: the global checkpoint formed by every
  process's last committed checkpoint has no orphan receive (a message
  recorded as received whose send the sender's checkpoint does not record).
* :func:`check_no_dangling_receives` — Definitions 3/4(ii): at quiescence,
  every live receive corresponds to a live (not undone) send.
* :func:`check_recovery_line` — Definition 4 in full: both of the above.
* :func:`check_app_states` — end-to-end: each application state digest
  matches a replay of exactly the live receives (so protocol bookkeeping and
  application state cannot drift apart).

The ``*_from_trace`` variants run the same definitions against the
:class:`~repro.analysis.index.TraceIndex`'s reconstructed manifests and
ledger shadows instead of live process objects — so the oracles also apply
to a trace loaded from disk (``load_jsonl``) long after the run is gone.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.index import as_index
from repro.errors import ConsistencyViolation
from repro.tracekinds import K_LEAVE
from repro.types import ProcessId

MsgKey = Tuple[ProcessId, int]  # (sender pid, send index) — globally unique


def departed_pids(trace) -> Set[ProcessId]:
    """Pids that gracefully left the membership during the trace.

    A departed pid's last committed checkpoint is frozen at whatever it
    was before the leave, and the pid will never be restarted — so its
    sends are *settled history*: no rollback can ever unsend them, and a
    survivor's checkpoint reflecting their receipt is not an orphan.  The
    trace-based checkers therefore exclude departed pids from the recovery
    line.
    """
    index = as_index(trace)
    return {e.fields["pid"] if e.pid is None else e.pid for e in index.by_kind(K_LEAVE)}


def check_c1(processes: Iterable) -> None:
    """Definition 2 over the current recovery line.

    ``processes`` are `CheckpointProcess`-like objects exposing ``node_id``
    and a last committed checkpoint with manifests.  For every process
    ``P_j`` and every receive ``(i, idx)`` its checkpoint reflects, ``P_i``'s
    checkpoint must reflect the matching send — otherwise restarting from
    the line would materialise a message that was never sent.
    """
    procs = {p.node_id: p for p in processes}
    sent_by: Dict[ProcessId, Set[int]] = {}
    for pid, proc in procs.items():
        record = _last_committed(proc)
        sent_by[pid] = {idx for _dst, idx in record.meta.get("sent", [])}
    for pid, proc in procs.items():
        record = _last_committed(proc)
        for src, idx in record.meta.get("recv", []):
            if src == pid:
                continue
            if src in sent_by and idx not in sent_by[src]:
                raise ConsistencyViolation(
                    "C1",
                    f"P{pid}'s checkpoint (seq {record.seq}) reflects receipt of "
                    f"m(P{src}#{idx}) but P{src}'s checkpoint does not reflect sending it",
                )


def check_no_dangling_receives(processes: Iterable) -> None:
    """Definitions 3 / 4(ii) at quiescence.

    Every live receive in every ledger must match a live send in the
    sender's ledger: an undone-send / live-receive pair is exactly the
    "dangling receiving" phenomenon the rollback tree exists to prevent.
    """
    procs = {p.node_id: p for p in processes}
    live_sends: Dict[MsgKey, bool] = {}
    for pid, proc in procs.items():
        for record in proc.ledger.sent:
            live_sends[(pid, record.msg_id.send_index)] = not record.undone
    for pid, proc in procs.items():
        for record in proc.ledger.live_receives():
            key = (record.src, record.msg_id.send_index)
            if key in live_sends and not live_sends[key]:
                raise ConsistencyViolation(
                    "C2",
                    f"dangling receive at P{pid}: m(P{key[0]}#{key[1]}) was undone "
                    f"by its sender but the receive survives",
                )


def check_recovery_line(processes: Iterable) -> None:
    """Definition 4: the full consistent-global-state check."""
    processes = list(processes)
    check_c1(processes)
    check_no_dangling_receives(processes)


def check_c1_from_trace(trace, pids: Optional[Iterable[ProcessId]] = None) -> None:
    """Definition 2, evaluated from the trace alone.

    Same check as :func:`check_c1`, but the recovery line is the
    :class:`~repro.analysis.index.TraceIndex`'s reconstructed last committed
    manifests rather than the processes' stored checkpoints.  ``trace`` may
    be a live :class:`~repro.sim.trace.Trace` or a ``TraceIndex`` built from
    a reloaded jsonl stream.
    """
    index = as_index(trace)
    departed = departed_pids(index)
    members = sorted(pids) if pids is not None else index.pids()
    members = [pid for pid in members if pid not in departed]
    sent_by: Dict[ProcessId, Set[int]] = {}
    for pid in members:
        view = index.last_committed_manifest(pid)
        sent_by[pid] = {idx for _dst, idx in view.sent}
    for pid in members:
        view = index.last_committed_manifest(pid)
        for src, idx in sorted(view.recv):
            if src == pid:
                continue
            if src in sent_by and idx not in sent_by[src]:
                raise ConsistencyViolation(
                    "C1",
                    f"P{pid}'s checkpoint (seq {view.seq}) reflects receipt of "
                    f"m(P{src}#{idx}) but P{src}'s checkpoint does not reflect sending it",
                )


def check_no_dangling_receives_from_trace(
    trace, pids: Optional[Iterable[ProcessId]] = None
) -> None:
    """Definitions 3 / 4(ii), evaluated from the trace alone.

    Uses the index's ledger shadow (sends/receives with undo events applied)
    in place of the live process ledgers.
    """
    index = as_index(trace)
    departed = departed_pids(index)
    members = sorted(pids) if pids is not None else index.pids()
    members = [pid for pid in members if pid not in departed]
    for pid in members:
        for src, idx in index.live_receives(pid):
            if index.send_is_live(src, idx) is False:
                raise ConsistencyViolation(
                    "C2",
                    f"dangling receive at P{pid}: m(P{src}#{idx}) was undone "
                    f"by its sender but the receive survives",
                )


def check_recovery_line_from_trace(
    trace, pids: Optional[Iterable[ProcessId]] = None
) -> None:
    """Definition 4 from the trace alone: both trace-based checks."""
    check_c1_from_trace(trace, pids)
    check_no_dangling_receives_from_trace(trace, pids)


def check_app_states(processes: Iterable) -> None:
    """End-to-end oracle for `CounterApp`-hosted processes at quiescence.

    The app's ``consumed`` counter must equal the number of live receives in
    the ledger: if a rollback restored the app but not the ledger (or vice
    versa) they diverge.  Only meaningful when the run has fully quiesced
    (no suspended process, no in-flight rollback).
    """
    for proc in processes:
        live = len(proc.ledger.live_receives())
        consumed = getattr(proc.app, "consumed", None)
        if consumed is not None and consumed != live:
            raise ConsistencyViolation(
                "state",
                f"P{proc.node_id}: app consumed {consumed} messages but ledger "
                f"has {live} live receives",
            )


def check_quiescent(processes: Iterable) -> None:
    """Every process resumed: no suspensions, no open instances.

    Used by tests as the precondition for the quiescence-only checkers and
    as the Theorem 1 (termination) assertion itself.
    """
    for proc in processes:
        if proc.crashed:
            continue
        problems: List[str] = []
        if proc.send_suspended:
            problems.append("send suspended")
        if proc.comm_suspended:
            problems.append("communication suspended")
        if proc.roll_restart_set:
            problems.append(f"roll_restart_set={proc.roll_restart_set}")
        if proc.chkpt_commit_set:
            problems.append(f"chkpt_commit_set={proc.chkpt_commit_set}")
        if problems:
            raise ConsistencyViolation(
                "termination", f"P{proc.node_id} did not quiesce: {', '.join(problems)}"
            )


def _last_committed(proc):
    """Last committed checkpoint of a base or extended process."""
    store = getattr(proc, "multi_store", None)
    if store is not None:
        return store.oldchkpt
    return proc.store.oldchkpt
