"""Reconstruct checkpoint/rollback trees from a trace.

The figures in the paper draw the virtual trees explicitly; the benchmarks
that reproduce them need to recover the same trees from a run.  A tree edge
parent → child exists exactly when the child answered the parent's request
with a positive acknowledgement, so we pair each ``chkpt_req``/``roll_req``
control send with the matching positive ack.

Reconstruction consumes the :class:`~repro.analysis.index.TraceIndex`'s
tree-id → lifecycle-event lists, so its cost is O(instance events), not
O(trace): only events stamped with a tree id are ever touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.index import as_index
from repro.sim import trace as T
from repro.types import ProcessId, TreeId


@dataclass
class InstanceTree:
    """One reconstructed instance: its tree and lifecycle summary."""

    tree: TreeId
    kind: str                       # "checkpoint" | "rollback"
    root: ProcessId
    edges: List[Tuple[ProcessId, ProcessId]] = field(default_factory=list)
    started_at: float = 0.0
    decided: Optional[str] = None   # "commit" | "abort" | "restart" | None

    @property
    def nodes(self) -> Set[ProcessId]:
        members = {self.root}
        for parent, child in self.edges:
            members.add(parent)
            members.add(child)
        return members

    @property
    def participants(self) -> Set[ProcessId]:
        """Processes forced to act beyond the initiator."""
        return self.nodes - {self.root}

    def children_of(self, pid: ProcessId) -> List[ProcessId]:
        return sorted(child for parent, child in self.edges if parent == pid)

    def parent_of(self, pid: ProcessId) -> Optional[ProcessId]:
        for parent, child in self.edges:
            if child == pid:
                return parent
        return None

    def depth(self) -> int:
        """Longest root-to-leaf path length (0 for a lone root)."""
        children: Dict[ProcessId, List[ProcessId]] = {}
        for parent, child in self.edges:
            children.setdefault(parent, []).append(child)

        def walk(node: ProcessId, seen: Set[ProcessId]) -> int:
            best = 0
            for child in children.get(node, []):
                if child not in seen:
                    best = max(best, 1 + walk(child, seen | {child}))
            return best

        return walk(self.root, {self.root})

    def render(self) -> str:
        """ASCII rendering, root at the top (used in EXPERIMENTS.md)."""
        lines: List[str] = []

        def walk(node: ProcessId, prefix: str) -> None:
            lines.append(f"{prefix}P{node}")
            for child in self.children_of(node):
                walk(child, prefix + "  ")

        walk(self.root, "")
        return "\n".join(lines)


def reconstruct_trees(trace) -> Dict[TreeId, InstanceTree]:
    """Rebuild every instance tree touched by the trace.

    ``trace`` may be a :class:`~repro.sim.trace.Trace` or a
    :class:`~repro.analysis.index.TraceIndex`; only tree-stamped events are
    visited (O(instance events)).  Also synthesises trees for instances
    joined *without* an explicit ``instance_start`` (child membership): the
    root is the tree id's initiator by definition.
    """
    index = as_index(trace)
    trees: Dict[TreeId, InstanceTree] = {}
    ack_kind = {"chkpt_ack": "checkpoint", "roll_ack": "rollback"}

    lifecycle = index.by_kind(
        T.K_INSTANCE_START, T.K_CTRL_SEND, T.K_INSTANCE_COMMIT, T.K_INSTANCE_ABORT
    )
    for event in lifecycle:
        if event.kind == T.K_INSTANCE_START:
            tree_id = event.fields["tree"]
            trees[tree_id] = InstanceTree(
                tree=tree_id,
                kind=event.fields["instance"],
                root=event.pid,
                started_at=event.time,
            )
        elif event.kind == T.K_CTRL_SEND:
            msg_type = event.fields["msg_type"]
            tree_id = event.fields.get("tree")
            if msg_type in ack_kind and event.fields.get("positive"):
                # A positive ack from child -> parent is exactly one edge.
                if tree_id not in trees:
                    trees[tree_id] = InstanceTree(
                        tree=tree_id, kind=ack_kind[msg_type], root=tree_id.initiator
                    )
                edge = (event.fields["dst"], event.pid)
                if edge not in trees[tree_id].edges:
                    trees[tree_id].edges.append(edge)
        elif event.kind in (T.K_INSTANCE_COMMIT, T.K_INSTANCE_ABORT):
            tree_id = event.fields["tree"]
            if tree_id in trees and trees[tree_id].decided is None:
                trees[tree_id].decided = (
                    "commit" if event.kind == T.K_INSTANCE_COMMIT else "abort"
                )

    for tree in trees.values():
        tree.edges.sort()
    return trees
