"""Deliberately broken engine variants ("mutants") for explorer validation.

A model checker that has never caught a bug is untrustworthy.  Each mutant
here deletes one load-bearing guard from the protocol; the explorer must
find an interleaving that violates an invariant, and the shrinker must
reduce it to a small replayable schedule.  The CI quick mode runs one
mutant as a self-test of the whole find-shrink-replay pipeline.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core import messages as M
from repro.core.engine import ProtocolEngine
from repro.types import ProcessId


class DropCommitSetGuardEngine(ProtocolEngine):
    """Mutant: the true-child test forgets the "already in T(t)" clause.

    Section 3.1's second clause rejects a checkpoint request for a tree the
    process is *actively* a member of (its uncommitted checkpoint is shared
    with that instance).  Without it, a request echo re-recruits the member
    into a fresh round of its own tree, and overlapping instances can
    double-count acknowledgements and decide inconsistently.

    This is a *surviving* mutant under the quick-mode bounds: triggering it
    needs a request echo for an already-joined tree, which the failure-free
    small scenarios do not produce within 400k states at depth 18.  It is
    kept as a hard target and as an honest record that bounded exploration
    is not a proof — the CI self-test uses ``drop-undone-send-guard``,
    which the explorer demonstrably catches and shrinks.
    """

    def _is_true_chkpt_child(self, src: ProcessId, req: M.ChkptReq) -> bool:
        # DELIBERATE BUG: `req.tree in self.chkpt_commit_set` check dropped.
        if self.decisions_seen.get(req.tree) == "abort":
            return False
        oldchkpt = self.store.oldchkpt
        if oldchkpt is None or oldchkpt.seq > req.max_label:
            return False
        if self.ledger.has_undone_send_with_label(src, req.max_label):
            return False
        return True


class DropUndoneSendGuardEngine(ProtocolEngine):
    """Mutant: the true-child test forgets the undone-send clause.

    Clause 3 rejects a request referencing a message the process has since
    undone (the neg_ack carries the undone notice).  Without it, the
    requester's tentative checkpoint certifies a receive whose send a
    rollback has already erased — a dangling receive on the recovery line.
    """

    def _is_true_chkpt_child(self, src: ProcessId, req: M.ChkptReq) -> bool:
        if req.tree in self.chkpt_commit_set:
            return False
        if self.decisions_seen.get(req.tree) == "abort":
            return False
        oldchkpt = self.store.oldchkpt
        if oldchkpt is None or oldchkpt.seq > req.max_label:
            return False
        # DELIBERATE BUG: `has_undone_send_with_label` check dropped.
        return True


MUTANTS: Dict[str, Callable[..., ProtocolEngine]] = {
    "drop-commit-set-guard": DropCommitSetGuardEngine,
    "drop-undone-send-guard": DropUndoneSendGuardEngine,
}


def resolve_mutant(name: Optional[str]) -> Optional[Callable[..., ProtocolEngine]]:
    if name is None:
        return None
    try:
        return MUTANTS[name]
    except KeyError:
        raise ValueError(f"unknown mutant {name!r}; choose from {sorted(MUTANTS)}") from None
