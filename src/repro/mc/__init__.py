"""Deterministic interleaving explorer (model checker) for the protocol.

The sans-IO split makes the protocol a pure function of its event sequence,
so a cluster of :class:`~repro.core.engine.ProtocolEngine` instances can be
driven without any kernel at all: the only nondeterminism in a failure-free
run is the order in which in-flight messages are delivered (and when the
scripted initiations fire).  This package enumerates those orders:

* :mod:`repro.mc.harness` — a kernel-less cluster: engines + an in-flight
  message set; executing a *choice* (deliver one message, or fire one
  scripted initiation) advances the cluster one step;
* :mod:`repro.mc.scenario` — small scripted workloads (concurrent
  checkpoint + rollback over a message ring, isolated instances);
* :mod:`repro.mc.explorer` — depth-first enumeration of all choice
  interleavings with sleep-set partial-order pruning (choices targeting
  distinct processes commute) and configurable depth/state bounds;
* :mod:`repro.mc.invariants` — the paper's correctness conditions (C1, C2,
  termination/quiescence, minimality, 2PC all-or-nothing) evaluated over
  the live engines via the existing :mod:`repro.analysis` checkers;
* :mod:`repro.mc.mutants` — deliberately broken engine variants used to
  demonstrate the explorer catches real protocol bugs;
* :mod:`repro.mc.shrink` — delta-debugging (ddmin) of a violating schedule
  down to a minimal reproduction;
* :mod:`repro.mc.schedule` — JSON (de)serialisation and replay of
  counterexample schedules.

Run it: ``python -m repro.mc --n 3 --depth-bound 12``.
"""

from repro.mc.explorer import ExploreResult, Explorer, InvariantViolation
from repro.mc.harness import ClusterHarness
from repro.mc.scenario import SCENARIOS, Scenario, make_scenario

__all__ = [
    "ClusterHarness",
    "ExploreResult",
    "Explorer",
    "InvariantViolation",
    "SCENARIOS",
    "Scenario",
    "make_scenario",
]
