"""Delta-debugging (ddmin) of violating schedules.

A counterexample found deep in the search tree usually contains many
irrelevant choices.  Because replay skips choices that are no longer
enabled, any *subsequence* of a schedule is itself replayable — so the
classic ddmin algorithm applies directly: drop chunks of the schedule while
the replay still violates an invariant, ending at a locally 1-minimal
reproduction (removing any single remaining choice loses the bug).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import ConsistencyViolation
from repro.mc.explorer import Explorer
from repro.mc.harness import ChoiceKey, ClusterHarness


def _violates(explorer: Explorer, schedule: List[ChoiceKey]) -> Optional[ConsistencyViolation]:
    """Replay ``schedule``; return the invariant violation it causes, if any.

    Invariants are checked after every replayed choice (not just at the
    end): dropping choices can surface the violation mid-schedule.
    """
    harness = ClusterHarness(explorer.scenario, engine_class=explorer.engine_class)
    try:
        explorer.check(harness)
        for key in schedule:
            if not harness.is_enabled(key):
                continue
            harness.execute(key)
            explorer.check(harness)
    except ConsistencyViolation as cause:
        return cause
    return None


def shrink(
    explorer: Explorer, schedule: List[ChoiceKey]
) -> Tuple[List[ChoiceKey], ConsistencyViolation]:
    """ddmin: a minimal subsequence of ``schedule`` that still violates."""
    cause = _violates(explorer, schedule)
    if cause is None:
        raise ValueError("schedule does not reproduce a violation")

    def test(candidate: List[ChoiceKey]) -> Optional[ConsistencyViolation]:
        return _violates(explorer, candidate)

    current = list(schedule)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        for start in range(0, len(current), chunk):
            candidate = current[:start] + current[start + chunk:]
            verdict = test(candidate)
            if verdict is not None:
                current, cause = candidate, verdict
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current, cause
