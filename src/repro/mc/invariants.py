"""Invariants the explorer asserts, built on the :mod:`repro.analysis` oracles.

Two tiers:

* :func:`check_step` runs after **every** executed choice — cheap global
  properties that must hold in any reachable state.  Today that is 2PC
  all-or-nothing: no two processes may ever apply opposite decisions
  (commit vs. abort) for the same checkpoint instance.
* :func:`check_quiescent_state` runs at **quiescent** states (no message in
  flight, no initiation pending) — the full recovery-line battery:
  termination (Theorem 1), C1 and no-dangling-receives (Definitions 2-4 /
  Theorem 2), application-state agreement, and — when the run contains a
  single instance, the theorems' isolation precondition — checkpoint or
  rollback minimality (Theorems 3/4).

All checkers raise :class:`repro.errors.ConsistencyViolation`; the explorer
converts that into a schedule-carrying counterexample.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis import (
    check_app_states,
    check_checkpoint_minimality,
    check_quiescent,
    check_recovery_line,
    check_rollback_minimality,
    reconstruct_trees,
)
from repro.errors import ConsistencyViolation
from repro.mc.harness import ClusterHarness
from repro.types import TreeId


def check_step(harness: ClusterHarness) -> None:
    """Invariants of every reachable state."""
    check_all_or_nothing(harness)


def check_all_or_nothing(harness: ClusterHarness) -> None:
    """2PC atomicity: a checkpoint instance never commits at one process
    and aborts at another."""
    verdicts: Dict[TreeId, Dict[str, List[int]]] = {}
    for pid, engine in harness.engines.items():
        for tree_id, decision in engine.decisions_seen.items():
            if decision in ("commit", "abort"):
                verdicts.setdefault(tree_id, {}).setdefault(decision, []).append(pid)
    for tree_id, by_decision in verdicts.items():
        if "commit" in by_decision and "abort" in by_decision:
            raise ConsistencyViolation(
                "2PC",
                f"instance {tree_id} committed at P{by_decision['commit']} "
                f"but aborted at P{by_decision['abort']}",
            )


def check_quiescent_state(harness: ClusterHarness) -> None:
    """The full battery, valid once the cluster has quiesced."""
    engines = list(harness.engines.values())
    check_step(harness)
    check_quiescent(engines)
    check_recovery_line(engines)
    check_app_states(engines)
    _check_minimality_if_isolated(harness)


def _check_minimality_if_isolated(harness: ClusterHarness) -> None:
    """Theorems 3/4 under their isolation precondition.

    Minimality is only guaranteed for instances that do not interfere, so
    it is asserted when the run contained exactly one instance; scenarios
    with concurrent instances are covered by the other invariants.
    """
    trees = reconstruct_trees(harness.trace)
    if len(trees) != 1:
        return
    (tree_id, view), = trees.items()
    if view.kind == "checkpoint" and view.decided == "commit":
        check_checkpoint_minimality(
            harness.trace, harness.engines.values(), tree_id
        )
    elif view.kind == "rollback":
        check_rollback_minimality(harness.trace, tree_id)
