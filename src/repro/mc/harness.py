"""Kernel-less cluster of pure protocol engines for model checking.

The harness owns N engines and the set of in-flight messages between them.
There is no scheduler, no clock, no network model: *time* is a step counter
and *delivery* is an explicit choice.  Because the engines are sans-IO,
replaying the same choice sequence reproduces the exact same cluster state —
the property the explorer's stateless depth-first search and the
counterexample shrinker both rest on.

Choice keys are stable across interleavings:

* ``("m", src, dst, k)`` — deliver the ``k``-th message sent on the
  ``src -> dst`` channel (per-channel counters, so a message's key does not
  depend on what the *other* processes did first);
* ``("a", i)`` — fire the scenario's ``i``-th scripted initiation.

Any key order models an arbitrary non-FIFO network; FIFO is the special
case where ``("m", s, d, k)`` is always chosen before ``("m", s, d, k+1)``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import effects as FX
from repro.core import events as EV
from repro.core.engine import ProtocolConfig, ProtocolEngine
from repro.errors import SimulationError
from repro.mc.scenario import Scenario
from repro.net.message import Envelope
from repro.sim.trace import Trace
from repro.types import ProcessId

#: A choice key — see module docstring.
ChoiceKey = Tuple[Any, ...]


class ClusterHarness:
    """N pure engines + the in-flight message set; one step per choice."""

    def __init__(
        self,
        scenario: Scenario,
        engine_class: Optional[Callable[..., ProtocolEngine]] = None,
    ) -> None:
        self.scenario = scenario
        cls = engine_class or ProtocolEngine
        # No checkpoint timer: every initiation is an explicit choice, so
        # the explorer controls *all* nondeterminism.
        config = ProtocolConfig(checkpoint_interval=None)
        self._engine_class = cls
        self._config = config
        self.engines: Dict[ProcessId, ProtocolEngine] = {
            pid: cls(pid, config=config) for pid in range(scenario.n)
        }
        self.in_flight: Dict[ChoiceKey, Envelope] = {}
        self._channel_counts: Dict[Tuple[ProcessId, ProcessId], int] = {}
        self._pending_actions: Dict[int, Tuple[ProcessId, str]] = dict(
            enumerate(scenario.actions)
        )
        self.step = 0
        self.trace = Trace()  # real trace, so the analysis layer applies as-is
        self._sink_pid: Optional[ProcessId] = None
        for pid, engine in self.engines.items():
            engine._sink = lambda eff, pid=pid: self._apply(pid, eff)

        peers = tuple(range(scenario.n))
        for pid in sorted(self.engines):
            self._handle(pid, EV.Start(peers=peers, at=0.0))
        for src, dst, payload in scenario.setup:
            self._handle(src, EV.AppSend(dst=dst, payload=payload, at=0.0))

    # ------------------------------------------------------------------
    # Choices
    # ------------------------------------------------------------------
    def enabled(self) -> List[ChoiceKey]:
        """Every currently executable choice, in deterministic order."""
        keys: List[ChoiceKey] = sorted(self.in_flight)
        keys.extend(("a", i) for i in sorted(self._pending_actions))
        return keys

    def is_enabled(self, key: ChoiceKey) -> bool:
        if key[0] == "a":
            return key[1] in self._pending_actions
        return key in self.in_flight

    def target(self, key: ChoiceKey) -> ProcessId:
        """The process a choice mutates — the commutation criterion."""
        if key[0] == "a":
            return self._pending_actions[key[1]][0]
        return key[2]  # ("m", src, dst, k)

    def execute(self, key: ChoiceKey) -> None:
        self.step += 1
        at = float(self.step)
        if key[0] == "a":
            pid, op = self._pending_actions.pop(key[1])
            if op == "join":
                self._join(pid, at)
                return
            event = (
                EV.InitiateCheckpoint(at=at)
                if op == "checkpoint"
                else EV.InitiateRollback(at=at)
            )
            self._handle(pid, event)
        else:
            envelope = self.in_flight.pop(key)
            self._handle(envelope.dst, EV.Deliver(envelope=envelope, at=at))

    def _join(self, pid: ProcessId, at: float) -> None:
        """Admit a new engine mid-exploration (the membership plane's
        view-change, collapsed to one atomic choice as the kernel front
        doors make it)."""
        engine = self._engine_class(pid, config=self._config)
        engine._sink = lambda eff, pid=pid: self._apply(pid, eff)
        self.engines[pid] = engine
        peers = tuple(sorted(self.engines))
        self.trace.record(at, "join", pid=pid, epoch=len(self.engines))
        self._handle(pid, EV.Start(peers=peers, at=at))
        for other in sorted(self.engines):
            if other != pid:
                self._handle(other, EV.Join(pid=pid, peers=peers, at=at))

    @property
    def quiescent(self) -> bool:
        """No choice left: every message delivered, every action fired."""
        return not self.in_flight and not self._pending_actions

    # ------------------------------------------------------------------
    # Effect interpretation (the whole "kernel")
    # ------------------------------------------------------------------
    def _handle(self, pid: ProcessId, event: EV.Event) -> None:
        self._sink_pid = pid
        self.engines[pid].handle(event)

    def _apply(self, pid: ProcessId, eff: FX.Effect) -> None:
        if isinstance(eff, FX.Send):
            env = eff.envelope
            k = self._channel_counts.get((env.src, env.dst), 0)
            self._channel_counts[(env.src, env.dst)] = k + 1
            self.in_flight[("m", env.src, env.dst, k)] = env
        elif isinstance(eff, FX.EmitTrace):
            self.trace.record(float(self.step), eff.kind, pid=pid, **eff.fields)
        elif isinstance(eff, (FX.SetTimer, FX.CancelTimer)):
            # Timers never fire here: the checkpoint timer is disabled and
            # the failure rules (the only other timer users) are off in the
            # failure-free scenarios the explorer runs.
            pass
        elif isinstance(
            eff,
            (
                FX.SaveCheckpoint,
                FX.CommitThrough,
                FX.DiscardCheckpoints,
                FX.PersistMeta,
                FX.ObserveDecision,
                FX.Rollback,
            ),
        ):
            # The engines' pure store mirrors are authoritative; there is no
            # stable storage, spooler, or app host behind them.
            pass
        else:  # Redeliver / Broadcast need failure machinery we do not model
            raise SimulationError(f"effect not supported by the mc harness: {eff!r}")
