"""Stateless depth-first exploration of choice interleavings.

The search tree's nodes are cluster states, its edges the enabled choices
(message deliveries and scripted initiations).  Engines are not cheaply
copyable, so the search is *stateless*: each visited node is reconstructed
by replaying its choice prefix from the initial state — determinism of the
sans-IO engines makes the replay exact, and the same mechanism later
replays and shrinks counterexamples.

Pruning is a classic sleep set [Godson]: two choices commute when they
target distinct processes (each mutates only its target engine and appends
independently-keyed sends), so of two commuting siblings explored in order
``a, b``, the ``b``-subtree needn't re-explore ``a`` first — ``a`` enters
``b``'s sleep set and the equivalent interleaving is pruned.  Bounds on
depth and visited states keep the search finite even for scenarios whose
full interleaving space is astronomically large; truncation is counted and
reported, never silent.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.compat import slotted_dataclass
from repro.core.engine import ProtocolEngine
from repro.errors import ConsistencyViolation
from repro.mc.harness import ChoiceKey, ClusterHarness
from repro.mc.invariants import check_quiescent_state, check_step
from repro.mc.scenario import Scenario


class InvariantViolation(Exception):
    """An invariant failed; carries the schedule that reached the state."""

    def __init__(self, schedule: List[ChoiceKey], cause: ConsistencyViolation) -> None:
        super().__init__(f"{cause} (after {len(schedule)} choices)")
        self.schedule = list(schedule)
        self.cause = cause


@slotted_dataclass()
class ExploreResult:
    """Counters and outcome of one exploration."""

    explored: int = 0  # states visited (replayed and checked)
    terminal: int = 0  # quiescent states reached
    pruned: int = 0  # sibling subtrees skipped by the sleep set
    truncated: int = 0  # states cut off by the depth or state bound
    violation: Optional[InvariantViolation] = None

    @property
    def exhaustive(self) -> bool:
        """True when no bound fired: every interleaving (up to commutation)
        of the scenario was visited."""
        return self.truncated == 0 and self.violation is None


class Explorer:
    """Depth-first interleaving search with sleep-set pruning."""

    def __init__(
        self,
        scenario: Scenario,
        engine_class: Optional[Callable[..., ProtocolEngine]] = None,
        depth_bound: int = 20,
        max_states: int = 200_000,
        por: bool = True,
    ) -> None:
        if depth_bound < 1:
            raise ValueError("depth_bound must be >= 1")
        if max_states < 1:
            raise ValueError("max_states must be >= 1")
        self.scenario = scenario
        self.engine_class = engine_class
        self.depth_bound = depth_bound
        self.max_states = max_states
        self.por = por

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self, schedule: List[ChoiceKey]) -> ClusterHarness:
        """Reconstruct the state after ``schedule`` (skipping stale keys).

        Skipping disabled keys makes shrunk schedules — where removed
        choices may disable later ones — replayable without bookkeeping.
        """
        harness = ClusterHarness(self.scenario, engine_class=self.engine_class)
        for key in schedule:
            if harness.is_enabled(key):
                harness.execute(key)
        return harness

    def check(self, harness: ClusterHarness) -> None:
        """Run the state invariants (full battery at quiescence)."""
        if harness.quiescent:
            check_quiescent_state(harness)
        else:
            check_step(harness)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def run(self) -> ExploreResult:
        result = ExploreResult()
        try:
            self._dfs([], set(), result)
        except InvariantViolation as violation:
            result.violation = violation
        return result

    def _dfs(
        self,
        schedule: List[ChoiceKey],
        sleep: Set[ChoiceKey],
        result: ExploreResult,
    ) -> None:
        if result.explored >= self.max_states:
            result.truncated += 1
            return
        harness = self.replay(schedule)
        result.explored += 1
        try:
            self.check(harness)
        except ConsistencyViolation as cause:
            raise InvariantViolation(schedule, cause) from cause

        enabled = harness.enabled()
        if not enabled:
            result.terminal += 1
            return
        if len(schedule) >= self.depth_bound:
            result.truncated += 1
            return

        explored_here: List[ChoiceKey] = []
        for key in enabled:
            if key in sleep:
                result.pruned += 1
                continue
            if self.por:
                child_sleep = {
                    k for k in sleep if self._commutes(harness, k, key)
                } | {k for k in explored_here if self._commutes(harness, k, key)}
            else:
                child_sleep = set()
            schedule.append(key)
            self._dfs(schedule, child_sleep, result)
            schedule.pop()
            explored_here.append(key)

    @staticmethod
    def _commutes(harness: ClusterHarness, a: ChoiceKey, b: ChoiceKey) -> bool:
        """Choices commute iff they mutate distinct engines.

        A delivery (or initiation) runs one engine's handler: it mutates
        that engine and *appends* sends under per-channel keys that do not
        depend on the other choice having run.  Distinct targets therefore
        reach the same joint state in either order.
        """
        return harness.target(a) != harness.target(b)
