"""CLI: explore protocol interleavings, report, and emit counterexamples.

Examples::

    # Exhaustively explore the concurrent checkpoint+rollback scenario.
    python -m repro.mc --n 3 --depth-bound 14

    # Prove the pipeline catches an injected bug (expect exit code 1 and a
    # shrunk counterexample file).
    python -m repro.mc --n 3 --mutant drop-undone-send-guard \
        --counterexample /tmp/cx.json

    # Replay a saved counterexample.
    python -m repro.mc --replay /tmp/cx.json

Exit codes: 0 — all explored states satisfy the invariants; 1 — a
violation was found (details and, with ``--counterexample``, a replayable
schedule are printed); 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.mc.explorer import Explorer
from repro.mc.mutants import MUTANTS, resolve_mutant
from repro.mc.scenario import SCENARIOS, make_scenario
from repro.mc.schedule import dump_schedule, replay_file
from repro.mc.shrink import shrink


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mc",
        description="Deterministic interleaving explorer for the checkpoint/rollback protocol",
    )
    parser.add_argument("--n", type=int, default=3, help="cluster size (default 3)")
    parser.add_argument(
        "--scenario", default="concurrent", choices=sorted(SCENARIOS),
        help="scripted workload to explore (default: concurrent)",
    )
    parser.add_argument(
        "--depth-bound", type=int, default=20,
        help="maximum schedule length before truncation (default 20)",
    )
    parser.add_argument(
        "--max-states", type=int, default=200_000,
        help="maximum states to visit (default 200000)",
    )
    parser.add_argument(
        "--mutant", default=None, choices=sorted(MUTANTS),
        help="run a deliberately broken engine variant",
    )
    parser.add_argument(
        "--no-por", action="store_true",
        help="disable sleep-set partial-order pruning (for measurement)",
    )
    parser.add_argument(
        "--counterexample", metavar="PATH", default=None,
        help="write the shrunk violating schedule to PATH as JSON",
    )
    parser.add_argument(
        "--replay", metavar="PATH", default=None,
        help="replay a saved counterexample instead of exploring",
    )
    return parser


def _run_replay(path: str) -> int:
    violation = replay_file(path)
    if violation is None:
        print(f"{path}: schedule replayed cleanly — no invariant violation")
        return 0
    print(f"{path}: reproduced violation: {violation}")
    return 1


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.replay is not None:
        return _run_replay(args.replay)

    scenario = make_scenario(args.scenario, args.n)
    explorer = Explorer(
        scenario,
        engine_class=resolve_mutant(args.mutant),
        depth_bound=args.depth_bound,
        max_states=args.max_states,
        por=not args.no_por,
    )
    label = scenario.name + (f" + mutant {args.mutant}" if args.mutant else "")
    print(
        f"exploring '{label}' with n={scenario.n}, "
        f"depth bound {args.depth_bound}, state bound {args.max_states}, "
        f"POR {'off' if args.no_por else 'on'}"
    )
    started = time.perf_counter()
    result = explorer.run()
    elapsed = time.perf_counter() - started

    print(
        f"explored {result.explored} states "
        f"({result.terminal} terminal, {result.pruned} subtrees pruned, "
        f"{result.truncated} truncated) in {elapsed:.2f}s"
    )
    if result.violation is None:
        print(
            "invariants hold on every explored state"
            + ("" if result.exhaustive else " (bounds hit: exploration incomplete)")
        )
        return 0

    print(f"VIOLATION: {result.violation.cause}")
    print(f"found after schedule of {len(result.violation.schedule)} choices; shrinking...")
    minimal, cause = shrink(explorer, result.violation.schedule)
    print(f"shrunk to {len(minimal)} choices: {cause}")
    for step, key in enumerate(minimal, 1):
        print(f"  {step:3d}. {key}")
    if args.counterexample:
        dump_schedule(
            args.counterexample, scenario.name, scenario.n, minimal,
            mutant=args.mutant, violation=str(cause),
        )
        print(f"replayable counterexample written to {args.counterexample}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
