"""Replayable counterexample schedules as JSON artifacts.

A schedule file pins everything needed to reproduce a violating run:
scenario name and size, the (optional) mutant, and the choice sequence.
``python -m repro.mc --replay FILE`` (or :func:`replay_file`) re-executes
it and reports the violation — the workflow the explorer's counterexamples
feed into CI artifacts and bug reports.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import ConsistencyViolation
from repro.mc.explorer import Explorer
from repro.mc.harness import ChoiceKey
from repro.mc.scenario import make_scenario

FORMAT = "repro.mc/schedule-v1"


def _key_to_json(key: ChoiceKey) -> List[Any]:
    return list(key)


def _key_from_json(raw: List[Any]) -> ChoiceKey:
    if not raw or raw[0] not in ("m", "a"):
        raise ValueError(f"malformed choice key: {raw!r}")
    return tuple(raw)


def dump_schedule(
    path: str,
    scenario_name: str,
    n: int,
    schedule: List[ChoiceKey],
    mutant: Optional[str] = None,
    violation: Optional[str] = None,
) -> None:
    payload: Dict[str, Any] = {
        "format": FORMAT,
        "scenario": scenario_name,
        "n": n,
        "mutant": mutant,
        "violation": violation,
        "schedule": [_key_to_json(k) for k in schedule],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def load_schedule(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != FORMAT:
        raise ValueError(f"{path}: not a {FORMAT} file")
    payload["schedule"] = [_key_from_json(k) for k in payload["schedule"]]
    return payload


def replay_file(path: str) -> Optional[ConsistencyViolation]:
    """Replay a schedule file; return the violation it reproduces (or None)."""
    from repro.mc.mutants import resolve_mutant  # cycle-free late import

    payload = load_schedule(path)
    scenario = make_scenario(payload["scenario"], payload["n"])
    engine_class = resolve_mutant(payload.get("mutant"))
    explorer = Explorer(scenario, engine_class=engine_class)
    harness = explorer.replay(payload["schedule"])
    try:
        explorer.check(harness)
    except ConsistencyViolation as cause:
        return cause
    # The terminal state may be fine while an intermediate one was not;
    # re-walk with per-step checks.
    from repro.mc.shrink import _violates

    return _violates(explorer, payload["schedule"])
