"""Scripted workloads for the interleaving explorer.

A scenario fixes *what* happens — which application messages exist and
which processes initiate checkpoint/rollback instances — and leaves *when*
entirely to the explorer: every delivery and every initiation is a choice.

The default ``concurrent`` scenario is the paper's hard case: a message
ring creating cross-process dependencies, plus two autonomous initiators —
one checkpointing, one rolling back — whose instances can interleave in
every order, over an arbitrarily reordering (non-FIFO) network.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.compat import slotted_dataclass
from repro.types import ProcessId


@slotted_dataclass(frozen=True)
class Scenario:
    """A fixed workload whose interleavings the explorer enumerates."""

    name: str
    n: int
    #: Application sends executed before exploration: (src, dst, payload).
    setup: Tuple[Tuple[ProcessId, ProcessId, str], ...]
    #: Explored initiations: (pid, "checkpoint" | "rollback" | "join").
    #: A ``join`` action's pid must lie outside ``0..n-1``: it names the
    #: process the membership plane admits mid-exploration.
    actions: Tuple[Tuple[ProcessId, str], ...]

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("scenarios need at least 2 processes")
        for src, dst, _ in self.setup:
            if not (0 <= src < self.n and 0 <= dst < self.n):
                raise ValueError(f"setup send {src}->{dst} outside 0..{self.n - 1}")
        for pid, op in self.actions:
            if op not in ("checkpoint", "rollback", "join"):
                raise ValueError(f"unknown action {op!r}")
            if op == "join":
                if 0 <= pid < self.n:
                    raise ValueError(
                        f"join pid {pid} is already a member (0..{self.n - 1})"
                    )
            elif not 0 <= pid < self.n:
                raise ValueError(f"action pid {pid} outside 0..{self.n - 1}")


def _ring(n: int) -> Tuple[Tuple[ProcessId, ProcessId, str], ...]:
    """One application message per ring edge: i -> (i+1) mod n."""
    return tuple((i, (i + 1) % n, f"m{i}") for i in range(n))


def concurrent(n: int = 3) -> Scenario:
    """Two autonomous initiators racing over a message ring.

    ``P1`` starts a checkpoint instance and ``P2`` (``P1`` again when
    ``n == 2``) a rollback instance; the ring messages create the
    dependencies that force recruitment.  Interleaved deliveries model a
    non-FIFO network, so this covers concurrent checkpointing *and*
    rollback with reordering — the situation Sections 3.4/4 are about.
    """
    return Scenario(
        name="concurrent",
        n=n,
        setup=_ring(n),
        actions=((1, "checkpoint"), (2 % n, "rollback")),
    )


def isolated_checkpoint(n: int = 3) -> Scenario:
    """A single checkpoint instance over a message chain.

    With exactly one instance in the run, the minimality theorem (T3)
    applies unconditionally, so the invariant layer checks it at every
    terminal state.
    """
    chain = tuple((i, i + 1, f"m{i}") for i in range(n - 1))
    return Scenario(
        name="isolated-checkpoint", n=n, setup=chain, actions=((n - 1, "checkpoint"),)
    )


def isolated_rollback(n: int = 3) -> Scenario:
    """A single rollback instance over a message chain (exercises T4)."""
    chain = tuple((i, i + 1, f"m{i}") for i in range(n - 1))
    return Scenario(
        name="isolated-rollback", n=n, setup=chain, actions=((0, "rollback"),)
    )


def join_mid_instance(n: int = 3) -> Scenario:
    """A process joins while a checkpoint instance is in flight.

    ``P(n-1)`` initiates a checkpoint over a message chain while ``Pn``
    joins the cluster; the explorer places the join at every point
    relative to the 2PC — before initiation, between initiation and
    commit, after commit.  The membership plane's claim is that a join is
    *inert* for open instances: a joiner with no communication history can
    never be recruited, so the instance must neither block nor lose
    minimality (the joiner takes no checkpoint), and the usual quiescent
    battery must hold over the enlarged membership.
    """
    chain = tuple((i, i + 1, f"m{i}") for i in range(n - 1))
    return Scenario(
        name="join-mid-instance",
        n=n,
        setup=chain,
        actions=((n - 1, "checkpoint"), (n, "join")),
    )


SCENARIOS: Dict[str, Callable[[int], Scenario]] = {
    "concurrent": concurrent,
    "isolated-checkpoint": isolated_checkpoint,
    "isolated-rollback": isolated_rollback,
    "join-mid-instance": join_mid_instance,
}


def make_scenario(name: str, n: int) -> Scenario:
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return factory(n)
