"""Builders shared by the test suite, the benchmarks, and the examples.

These wrap the three-line setup dance (simulation + processes + start) so
experiment code reads as scenario logic only.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.core import CheckpointProcess, ProtocolConfig
from repro.failure import FailureDetector
from repro.net import FifoChannel, FixedDelay
from repro.sim import Simulation, TraceSink
from repro.workloads import RandomPeerWorkload


def build_sim(
    n: int = 4,
    seed: int = 0,
    delay=None,
    fifo: bool = False,
    cls: Type[CheckpointProcess] = CheckpointProcess,
    config: Optional[ProtocolConfig] = None,
    detector_latency: Optional[float] = None,
    spoolers: bool = False,
    sinks: Optional[List[TraceSink]] = None,
    storage_factory: Optional[Callable[[int], object]] = None,
):
    """Build a started simulation with ``n`` protocol processes.

    Returns ``(sim, procs)`` where ``procs`` maps pid -> process.  With
    ``detector_latency`` set a failure detector is attached; with
    ``spoolers`` each process gets a two-replica spooler group on its
    neighbours (the Section 6 configuration).  ``sinks`` configures the
    trace pipeline (default: one in-memory sink).  ``storage_factory``
    supplies each process's stable-storage backend (pid -> storage); the
    default is each process's own snapshot-backed in-memory storage.
    """
    sim = Simulation(
        seed=seed,
        delay_model=delay or FixedDelay(0.5),
        channel=FifoChannel() if fifo else None,
        sinks=sinks,
    )
    procs: Dict[int, CheckpointProcess] = {
        i: sim.add_node(
            cls(i, config, storage=storage_factory(i) if storage_factory else None)
        )
        for i in range(n)
    }
    if detector_latency is not None:
        FailureDetector(sim, detection_latency=detector_latency)
    if spoolers:
        for i in range(n):
            sim.network.install_spoolers(i, [(i + 1) % n, (i + 2) % n])
    sim.run(until=0.0)  # fire on_start hooks
    return sim, procs


def build_runtime(
    n: int = 4,
    seed: int = 0,
    delay=None,
    fifo: bool = False,
    cls: Type[CheckpointProcess] = CheckpointProcess,
    config: Optional[ProtocolConfig] = None,
    detector_latency: Optional[float] = None,
    spoolers: bool = False,
    sinks: Optional[List[TraceSink]] = None,
    storage_factory: Optional[Callable[[int], object]] = None,
    transport=None,
    time_scale: float = 0.02,
):
    """Build an (unstarted) live runtime mirroring :func:`build_sim`.

    Same knobs, same defaults, same wiring — but on the
    :class:`repro.runtime.loop.AsyncRuntime` kernel with a loopback
    transport (pass ``transport=`` for TCP).  Unlike :func:`build_sim` the
    runtime is *not* started: callers drive it with ``runtime.run(...)`` or
    the async API, which fires the ``on_start`` hooks.  Returns
    ``(runtime, procs)``.
    """
    from repro.runtime import AsyncRuntime

    runtime = AsyncRuntime(
        seed=seed,
        transport=transport,
        delay_model=delay or FixedDelay(0.5),
        channel=FifoChannel() if fifo else None,
        sinks=sinks,
        time_scale=time_scale,
    )
    procs: Dict[int, CheckpointProcess] = {
        i: runtime.add_node(
            cls(i, config, storage=storage_factory(i) if storage_factory else None)
        )
        for i in range(n)
    }
    if detector_latency is not None:
        FailureDetector(runtime, detection_latency=detector_latency)
    if spoolers:
        for i in range(n):
            runtime.network.install_spoolers(i, [(i + 1) % n, (i + 2) % n])
    return runtime, procs


def run_random_workload(
    sim,
    procs,
    duration: float = 40.0,
    message_rate: float = 1.0,
    checkpoint_rate: float = 0.05,
    error_rate: float = 0.0,
    horizon: Optional[float] = None,
    max_events: int = 400000,
):
    """Install the standard random workload and run the simulation."""
    RandomPeerWorkload(
        message_rate=message_rate,
        duration=duration,
        checkpoint_rate=checkpoint_rate,
        error_rate=error_rate,
    ).install(sim, procs)
    sim.run(until=horizon, max_events=max_events)
    return sim, procs
