"""Deterministic discrete-event simulation kernel.

Public surface:

* :class:`~repro.sim.simulation.Simulation` — the facade to build runs on.
* :class:`~repro.sim.node.Node` — actor base class for simulated processes.
* :class:`~repro.sim.scheduler.Scheduler` — the event loop (rarely used
  directly; ``Simulation`` owns one).
* :class:`~repro.sim.trace.Trace` — structured execution log.
* :class:`~repro.sim.rng.Rng` — named, reproducible randomness streams.
"""

from repro.sim.event import (
    PRIORITY_CHECKPOINT,
    PRIORITY_NORMAL,
    PRIORITY_ROLLBACK,
    PRIORITY_TIMER,
    Event,
)
from repro.sim.node import Node
from repro.sim.rng import Rng
from repro.sim.scheduler import Scheduler
from repro.sim.simulation import Simulation
from repro.sim.trace import (
    InMemorySink,
    JsonlStreamSink,
    MetricsSink,
    NullSink,
    Trace,
    TraceEvent,
    TraceSink,
    load_jsonl,
)

__all__ = [
    "Event",
    "InMemorySink",
    "JsonlStreamSink",
    "MetricsSink",
    "Node",
    "NullSink",
    "PRIORITY_CHECKPOINT",
    "PRIORITY_NORMAL",
    "PRIORITY_ROLLBACK",
    "PRIORITY_TIMER",
    "Rng",
    "Scheduler",
    "Simulation",
    "Trace",
    "TraceEvent",
    "TraceSink",
    "load_jsonl",
]
