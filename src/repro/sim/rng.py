"""Deterministic random-number streams for reproducible simulations.

Every stochastic decision in the simulator (message delays, workload send
times, failure injection points) draws from a :class:`Rng` stream derived from
a single root seed.  Two runs with the same seed produce byte-identical
traces, which is what makes the figure reproductions and property-based tests
debuggable.

Streams are *named*: ``rng.stream("delay", 3)`` always yields the same
sub-generator for the same root seed, regardless of creation order.  That
isolation means adding a new consumer of randomness does not perturb the draws
seen by existing consumers — a classic simulation-reproducibility trap.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Tuple


class Rng:
    """A tree of named, independently seeded :class:`random.Random` streams."""

    def __init__(self, seed: int):
        self.seed = seed
        self._streams: Dict[Tuple[Any, ...], random.Random] = {}

    def stream(self, *name: Any) -> random.Random:
        """Return the generator for stream ``name``, creating it on first use.

        The stream seed is a stable hash of ``(root seed, *name)`` so the
        mapping survives process restarts and is independent of call order.
        """
        key = tuple(name)
        generator = self._streams.get(key)
        if generator is None:
            digest = hashlib.sha256(repr((self.seed, key)).encode()).digest()
            generator = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[key] = generator
        return generator

    def spawn(self, *name: Any) -> "Rng":
        """Return a child :class:`Rng` rooted at a derived seed.

        Useful when a component wants to hand out its own named streams
        without risk of colliding with the parent's stream names.
        """
        digest = hashlib.sha256(repr((self.seed, "spawn", name)).encode()).digest()
        return Rng(int.from_bytes(digest[:8], "big"))
