"""Events for the discrete-event simulation kernel.

An :class:`Event` is an opaque callback scheduled at a simulation time.  The
kernel orders events by ``(time, priority, seq)``:

* ``time`` — simulation time of the event;
* ``priority`` — smaller runs first among same-time events.  The paper gives
  rollback procedures (b5, b6) the *highest* priority; the protocol layer maps
  that to :data:`PRIORITY_ROLLBACK` < :data:`PRIORITY_CHECKPOINT` <
  :data:`PRIORITY_NORMAL`;
* ``seq`` — global insertion counter, guaranteeing deterministic FIFO
  tie-breaking for equal ``(time, priority)``.

Events can be *cancelled*; a cancelled event stays in the heap but is skipped
when popped (standard lazy deletion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.types import SimTime

# Priorities live in the dependency-free :mod:`repro.priorities` (shared
# with the sans-IO engine); re-exported here for backward compatibility.
from repro.priorities import (  # noqa: F401
    PRIORITY_CHECKPOINT,
    PRIORITY_NORMAL,
    PRIORITY_ROLLBACK,
    PRIORITY_TIMER,
)


@dataclass(order=True)
class Event:
    """A scheduled callback, ordered by ``(time, priority, seq)``."""

    time: SimTime
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    # Set by the scheduler while the event sits in its heap, so lazy
    # deletion can be accounted for without rescanning the heap.
    cancel_hook: "Callable[[], None] | None" = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.cancel_hook is not None:
            self.cancel_hook()

    def fire(self) -> None:
        """Run the event's action.  The scheduler calls this exactly once."""
        self.action()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = " cancelled" if self.cancelled else ""
        label = self.label or getattr(self.action, "__name__", "action")
        return f"<Event t={self.time:.6f} prio={self.priority} {label}{status}>"


def describe(action: Any) -> str:
    """Best-effort label for an event action, for traces and debugging."""
    name = getattr(action, "__name__", None)
    if name:
        return name
    return type(action).__name__
