"""Structured execution traces.

Every observable action in a simulation — normal/control message sends and
receives, checkpoint lifecycle transitions, rollbacks, crashes, partitions —
is appended to a :class:`Trace` as a :class:`TraceEvent`.  The analysis
package (happens-before, C1/C2 consistency, minimality, domino distance) is
written entirely against traces, so the protocol implementations stay free of
measurement code.

Record kinds are plain strings (see the ``K_*`` constants) rather than an
enum: benchmarks and tests grep traces constantly and string kinds keep that
frictionless; the constants prevent typos at the production sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.types import ProcessId, SimTime

# Normal (application) message lifecycle.
K_SEND = "send"                    # pid, msg_id, dst, label, payload
K_RECEIVE = "receive"              # pid, msg_id, src, label
K_DISCARD = "discard"              # pid, msg_id, src, label, reason
K_UNDO_SEND = "undo_send"          # pid, msg_id, dst, label
K_UNDO_RECEIVE = "undo_receive"    # pid, msg_id, src, label

# Control-plane message lifecycle.
K_CTRL_SEND = "ctrl_send"          # pid, dst, msg_type, tree
K_CTRL_RECEIVE = "ctrl_receive"    # pid, src, msg_type, tree

# Checkpoint lifecycle.
K_CHKPT_TENTATIVE = "chkpt_tentative"   # pid, seq, tree
K_CHKPT_COMMIT = "chkpt_commit"         # pid, seq, tree
K_CHKPT_ABORT = "chkpt_abort"           # pid, seq, tree

# Rollback lifecycle.
K_ROLLBACK = "rollback"            # pid, to_seq, tree, target ("newchkpt"/"oldchkpt")
K_RESTART = "restart"              # pid, new_interval

# Suspension bookkeeping (for blocking-time metrics).
K_SUSPEND_SEND = "suspend_send"    # pid
K_RESUME_SEND = "resume_send"      # pid
K_SUSPEND_ALL = "suspend_all"      # pid (send + receive)
K_RESUME_ALL = "resume_all"        # pid

# Instance lifecycle (initiations and terminal outcomes, per tree).
K_INSTANCE_START = "instance_start"        # pid, tree, instance ("checkpoint"/"rollback")
K_INSTANCE_COMMIT = "instance_commit"      # pid, tree
K_INSTANCE_ABORT = "instance_abort"        # pid, tree
K_INSTANCE_REJECTED = "instance_rejected"  # pid, tree (baseline algorithms)

# Environment events.
K_CRASH = "crash"                  # pid
K_RECOVER = "recover"              # pid
K_PARTITION = "partition"          # groups
K_MERGE = "merge"                  # groups


@dataclass
class TraceEvent:
    """A single trace record.

    ``time`` and ``index`` order the record globally; ``kind`` selects the
    schema of ``fields`` (documented next to each ``K_*`` constant).
    """

    index: int
    time: SimTime
    kind: str
    pid: Optional[ProcessId]
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, item: str) -> Any:
        # Convenience: ``ev.msg_id`` instead of ``ev.fields["msg_id"]``.
        try:
            return self.fields[item]
        except KeyError:
            raise AttributeError(item) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pid = f"P{self.pid}" if self.pid is not None else "-"
        extras = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.index}@{self.time:.4f}] {pid} {self.kind} {extras}"


class Trace:
    """An append-only log of :class:`TraceEvent` records with query helpers."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(
        self,
        time: SimTime,
        kind: str,
        pid: Optional[ProcessId] = None,
        **fields: Any,
    ) -> TraceEvent:
        """Append a record and return it."""
        event = TraceEvent(index=len(self._events), time=time, kind=kind, pid=pid, fields=fields)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    @property
    def events(self) -> List[TraceEvent]:
        """The underlying record list (treat as read-only)."""
        return self._events

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        """All records whose kind is one of ``kinds``, in order."""
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def for_process(self, pid: ProcessId, *kinds: str) -> List[TraceEvent]:
        """Records of ``pid``, optionally restricted to ``kinds``."""
        wanted = set(kinds) if kinds else None
        return [
            e
            for e in self._events
            if e.pid == pid and (wanted is None or e.kind in wanted)
        ]

    def where(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        """Records satisfying an arbitrary predicate, in order."""
        return [e for e in self._events if predicate(e)]

    def last(self, kind: str, pid: Optional[ProcessId] = None) -> Optional[TraceEvent]:
        """Most recent record of ``kind`` (for ``pid`` if given), or None."""
        for event in reversed(self._events):
            if event.kind == kind and (pid is None or event.pid == pid):
                return event
        return None

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of the trace (for debugging and docs)."""
        events = self._events if limit is None else self._events[:limit]
        return "\n".join(repr(e) for e in events)

    def to_jsonl(self, path: str) -> int:
        """Export the trace as JSON lines for offline analysis.

        Non-JSON field values (tree timestamps, message ids) are stringified
        with their readable reprs.  Returns the number of records written.
        """
        import json

        def encode(value: Any) -> Any:
            if isinstance(value, (str, int, float, bool)) or value is None:
                return value
            if isinstance(value, (list, tuple)):
                return [encode(v) for v in value]
            if isinstance(value, dict):
                return {str(k): encode(v) for k, v in value.items()}
            return str(value)

        with open(path, "w") as handle:
            for event in self._events:
                handle.write(json.dumps({
                    "index": event.index,
                    "time": event.time,
                    "kind": event.kind,
                    "pid": event.pid,
                    **{k: encode(v) for k, v in event.fields.items()},
                }) + "\n")
        return len(self._events)
