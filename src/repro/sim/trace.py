"""Structured execution traces: the *emit* layer of the observability stack.

Every observable action in a simulation — normal/control message sends and
receives, checkpoint lifecycle transitions, rollbacks, crashes, partitions —
is recorded through :meth:`Trace.record` as a :class:`TraceEvent`.  The
analysis package (happens-before, C1/C2 consistency, minimality, domino
distance) is written entirely against traces, so the protocol
implementations stay free of measurement code.

The trace itself is a *dispatch point* over pluggable :class:`TraceSink`\\ s:

* :class:`InMemorySink` — the default; keeps every event in a list and backs
  the classic query helpers (``events``, ``of_kind``, ``for_process``, …).
* :class:`JsonlStreamSink` — streams each event to a JSON-lines file at emit
  time, so arbitrarily long runs need no resident trace memory; the file
  round-trips back into the identical event sequence via :func:`load_jsonl`.
* :class:`NullSink` — discards everything (pure-throughput runs).
* :class:`MetricsSink` — maintains rolling counters only (events by kind,
  control-message volume per tree, checkpoint commits/aborts, rollback
  depths) with O(1) memory per counter.
* :class:`repro.analysis.index.TraceIndex` — the *index* layer; built
  incrementally at emit time and reachable as :attr:`Trace.index`.

Record kinds are plain strings (see the ``K_*`` constants) rather than an
enum: benchmarks and tests grep traces constantly and string kinds keep that
frictionless; the constants prevent typos at the production sites.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.compat import slotted_dataclass
from repro.types import MessageId, ProcessId, SimTime, TreeId

# The K_* record-kind constants live in the dependency-free
# :mod:`repro.tracekinds` (so the sans-IO engine can emit them without
# importing this package); re-exported here for backward compatibility.
from repro.tracekinds import (  # noqa: F401
    K_CHKPT_ABORT,
    K_CHKPT_COMMIT,
    K_CHKPT_TENTATIVE,
    K_CRASH,
    K_CTRL_RECEIVE,
    K_CTRL_SEND,
    K_DISCARD,
    K_INSTANCE_ABORT,
    K_INSTANCE_COMMIT,
    K_HANDOFF,
    K_INSTANCE_REJECTED,
    K_INSTANCE_START,
    K_JOIN,
    K_LEAVE,
    K_MERGE,
    K_PARTITION,
    K_RECEIVE,
    K_RECOVER,
    K_RESTART,
    K_RESUME_ALL,
    K_RESUME_SEND,
    K_ROLLBACK,
    K_SEND,
    K_SUSPEND_ALL,
    K_SUSPEND_SEND,
    K_UNDO_RECEIVE,
    K_UNDO_SEND,
)


@slotted_dataclass()
class TraceEvent:
    """A single trace record.

    ``time`` and ``index`` order the record globally; ``kind`` selects the
    schema of ``fields`` (documented next to each ``K_*`` constant).
    Slotted (no per-event ``__dict__``): at a million events per run the
    emit layer is a measurable slice of total wall time.
    """

    index: int
    time: SimTime
    kind: str
    pid: Optional[ProcessId]
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, item: str) -> Any:
        # Convenience: ``ev.msg_id`` instead of ``ev.fields["msg_id"]``.
        if item == "fields":  # not yet set (mid-unpickle): avoid recursion
            raise AttributeError(item)
        try:
            return self.fields[item]
        except KeyError:
            raise AttributeError(item) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pid = f"P{self.pid}" if self.pid is not None else "-"
        extras = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.index}@{self.time:.4f}] {pid} {self.kind} {extras}"


# ----------------------------------------------------------------------
# Field codecs
# ----------------------------------------------------------------------

def json_safe(value: Any) -> Any:
    """Readable (lossy) JSON projection: rich values become their reprs.

    Used by the legacy :meth:`Trace.to_jsonl` export and by the benchmark
    JSON artifacts, where human-readable ids beat reconstructability.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(json_safe(v) for v in value)
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    return str(value)


def encode_field(value: Any) -> Any:
    """Lossless JSON encoding of a trace-field value (tagged for decode).

    Handles the vocabulary trace fields actually use — primitives,
    :class:`~repro.types.MessageId`, :class:`~repro.types.TreeId`, tuples,
    lists, dicts — so :class:`JsonlStreamSink` files reload into the
    *identical* event sequence.  Unknown objects degrade to a tagged repr.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, MessageId):
        return {"$mid": [value.sender, value.send_index]}
    if isinstance(value, TreeId):
        return {"$tid": [value.initiator, value.initiation_seq]}
    if isinstance(value, tuple):
        return {"$tup": [encode_field(v) for v in value]}
    if isinstance(value, list):
        return [encode_field(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return {"$set": sorted((encode_field(v) for v in value), key=repr)}
    if isinstance(value, dict):
        return {"$map": [[encode_field(k), encode_field(v)] for k, v in value.items()]}
    return {"$repr": repr(value)}


def decode_field(value: Any) -> Any:
    """Inverse of :func:`encode_field`."""
    if isinstance(value, list):
        return [decode_field(v) for v in value]
    if isinstance(value, dict):
        if "$mid" in value:
            return MessageId(*value["$mid"])
        if "$tid" in value:
            return TreeId(*value["$tid"])
        if "$tup" in value:
            return tuple(decode_field(v) for v in value["$tup"])
        if "$set" in value:
            return {decode_field(v) for v in value["$set"]}
        if "$map" in value:
            return {decode_field(k): decode_field(v) for k, v in value["$map"]}
        if "$repr" in value:
            return value["$repr"]
        return {k: decode_field(v) for k, v in value.items()}
    return value


def encode_event(event: TraceEvent) -> Dict[str, Any]:
    """One JSON-lines record for ``event`` (lossless, see :func:`decode_event`)."""
    return {
        "index": event.index,
        "time": event.time,
        "kind": event.kind,
        "pid": event.pid,
        "fields": {k: encode_field(v) for k, v in event.fields.items()},
    }


def decode_event(payload: Dict[str, Any]) -> TraceEvent:
    """Rebuild a :class:`TraceEvent` from an :func:`encode_event` record."""
    return TraceEvent(
        index=payload["index"],
        time=payload["time"],
        kind=payload["kind"],
        pid=payload["pid"],
        fields={k: decode_field(v) for k, v in payload["fields"].items()},
    )


def load_jsonl(path: str, tolerate_truncated_tail: bool = False) -> List[TraceEvent]:
    """Reload a :class:`JsonlStreamSink` file into its event sequence.

    With ``tolerate_truncated_tail`` a *final* line that fails to parse is
    skipped instead of raising — the exact artifact a killed writer leaves
    behind when it dies mid-flush (the buffered sink writes whole lines, but
    the OS may persist only a prefix of the last write).  Corruption
    anywhere *before* the tail still raises: that is not a crash artifact
    but a damaged file, and silently resuming past it would desynchronise
    every index the trace feeds.  Use :func:`load_jsonl_tolerant` to also
    learn how many tail lines were dropped.
    """
    return load_jsonl_tolerant(path)[0] if tolerate_truncated_tail else _load_strict(path)


def _load_strict(path: str) -> List[TraceEvent]:
    events: List[TraceEvent] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(decode_event(json.loads(line)))
    return events


def load_jsonl_tolerant(path: str) -> Tuple[List[TraceEvent], int]:
    """Like :func:`load_jsonl`, returning ``(events, truncated_tail_lines)``.

    ``truncated_tail_lines`` is 1 when the file ends in a partial record
    (0 otherwise); merge tooling surfaces the count so a multi-shard
    analysis knows events were lost to a crash rather than pretending the
    stream ended cleanly.
    """
    events: List[TraceEvent] = []
    with open(path) as handle:
        lines = handle.readlines()
    for lineno, raw in enumerate(lines):
        line = raw.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            if any(rest.strip() for rest in lines[lineno + 1:]):
                raise  # interior corruption: not a crash tail
            return events, 1
        events.append(decode_event(payload))
    return events, 0


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------

class TraceSink:
    """Receives every :class:`TraceEvent` as it is emitted.

    Subclass and override :meth:`emit`; override :meth:`close` if the sink
    holds external resources.  ``is_index`` marks the sink as the trace's
    query index (see :class:`repro.analysis.index.TraceIndex`).
    """

    is_index = False

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; called by :meth:`Trace.close`."""


class InMemorySink(TraceSink):
    """The classic append-only event list (default sink)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)


class NullSink(TraceSink):
    """Discards every event (zero-overhead tracing for throughput runs)."""

    def emit(self, event: TraceEvent) -> None:
        pass


class JsonlStreamSink(TraceSink):
    """Streams events to a JSON-lines file with constant resident memory.

    Emits are *buffered*: encoded lines accumulate in memory and hit the
    file once every ``flush_every`` events (default 64) in a single
    ``write`` call, cutting the per-event syscall overhead that dominated
    the unbuffered sink on large runs.  ``flush_every=1`` restores the old
    write-per-event behaviour; :meth:`flush` forces the buffer out at any
    point (e.g. before a reader opens the file mid-run).  Resident memory
    stays bounded by ``flush_every`` lines.

    The file reloads with :func:`load_jsonl` into the identical
    :class:`TraceEvent` sequence (the codec is lossless for the trace
    vocabulary: primitives, ``MessageId``, ``TreeId``, tuples, lists,
    dicts).  Emitting into a closed sink raises a descriptive
    :class:`RuntimeError` instead of the bare ``ValueError`` a closed file
    handle would produce mid-run.
    """

    def __init__(self, path: str, flush_every: int = 64):
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = str(path)
        self.flush_every = flush_every
        self._handle = open(self.path, "w")
        self._buffer: List[str] = []
        self.written = 0

    @property
    def closed(self) -> bool:
        return self._handle is None

    def emit(self, event: TraceEvent) -> None:
        if self._handle is None:
            raise RuntimeError(
                f"JsonlStreamSink({self.path!r}) is closed; "
                "events emitted after Trace.close() are a harness bug"
            )
        self._buffer.append(json.dumps(encode_event(event)))
        self.written += 1
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Push buffered lines to the *file on disk* (no-op when empty).

        One ``write`` for the whole buffer, then an OS-level flush so a
        reader opening the path mid-run sees everything emitted so far.
        """
        if self._buffer and self._handle is not None:
            self._handle.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None


class MetricsSink(TraceSink):
    """Rolling counters over the event stream — O(counters) memory, no log.

    Tracks exactly the aggregates operators watch on a large run:

    * ``events_by_kind`` — every kind's event count;
    * ``control_sends_per_tree`` — control-message volume per instance tree
      (``None`` key: control traffic outside any instance);
    * ``checkpoints_committed`` / ``checkpoints_aborted`` /
      ``checkpoints_tentative`` — checkpoint lifecycle outcomes;
    * ``rollbacks`` and rollback *depth* (ledger records undone per
      rollback): ``rollback_depth_total`` / ``max_rollback_depth``.
    """

    def __init__(self) -> None:
        self.events_by_kind: Counter = Counter()
        self.control_sends_per_tree: Counter = Counter()
        self.checkpoints_tentative = 0
        self.checkpoints_committed = 0
        self.checkpoints_aborted = 0
        self.rollbacks = 0
        self.rollback_depth_total = 0
        self.max_rollback_depth = 0

    @property
    def total_events(self) -> int:
        return sum(self.events_by_kind.values())

    @property
    def mean_rollback_depth(self) -> float:
        return self.rollback_depth_total / self.rollbacks if self.rollbacks else 0.0

    def emit(self, event: TraceEvent) -> None:
        kind = event.kind
        self.events_by_kind[kind] += 1
        if kind == K_CTRL_SEND:
            self.control_sends_per_tree[event.fields.get("tree")] += 1
        elif kind == K_CHKPT_TENTATIVE:
            self.checkpoints_tentative += 1
        elif kind == K_CHKPT_COMMIT:
            self.checkpoints_committed += 1
        elif kind == K_CHKPT_ABORT:
            self.checkpoints_aborted += 1
        elif kind == K_ROLLBACK:
            self.rollbacks += 1
            depth = (event.fields.get("undone_sends", 0)
                     + event.fields.get("undone_receives", 0))
            self.rollback_depth_total += depth
            if depth > self.max_rollback_depth:
                self.max_rollback_depth = depth

    def snapshot(self) -> Dict[str, Any]:
        """Flat dict of every counter (for dashboards and bench artifacts)."""
        return {
            "total_events": self.total_events,
            "events_by_kind": dict(self.events_by_kind),
            "control_sends_per_tree": {
                str(tree): count for tree, count in self.control_sends_per_tree.items()
            },
            "checkpoints_tentative": self.checkpoints_tentative,
            "checkpoints_committed": self.checkpoints_committed,
            "checkpoints_aborted": self.checkpoints_aborted,
            "rollbacks": self.rollbacks,
            "mean_rollback_depth": self.mean_rollback_depth,
            "max_rollback_depth": self.max_rollback_depth,
        }


# ----------------------------------------------------------------------
# The trace (dispatch point)
# ----------------------------------------------------------------------

class Trace:
    """An append-only log of :class:`TraceEvent` records with query helpers.

    ``Trace()`` keeps everything in memory (an :class:`InMemorySink`), which
    is what the query helpers and the analysis layer read.  Passing
    ``sinks=[...]`` replaces that default — e.g. ``[JsonlStreamSink(path),
    MetricsSink()]`` for a constant-memory large run.  Sinks can also be
    attached later with :meth:`add_sink`, which replays already-recorded
    events into the newcomer when an in-memory sink is present.
    """

    def __init__(self, sinks: Optional[Sequence[TraceSink]] = None) -> None:
        self._recorded = 0
        self._memory: Optional[InMemorySink] = None
        self._index: Optional[TraceSink] = None
        self._sinks: List[TraceSink] = []
        # Fast dispatch: with exactly one sink attached (the common bench
        # and production shape), record() calls its bound emit directly
        # instead of looping over a one-element list.
        self._solo_emit: Optional[Callable[[TraceEvent], None]] = None
        for sink in (sinks if sinks is not None else [InMemorySink()]):
            self.add_sink(sink)

    # ------------------------------------------------------------------
    # Sink management
    # ------------------------------------------------------------------
    def add_sink(self, sink: TraceSink, backfill: bool = True) -> TraceSink:
        """Attach ``sink``; replay prior events into it when possible.

        Backfill needs the events, so attaching to a non-empty trace that
        kept no :class:`InMemorySink` is an error — attach sinks up front on
        streaming configurations.
        """
        if backfill and self._recorded:
            if self._memory is None:
                raise RuntimeError(
                    "cannot backfill a sink: this Trace kept no InMemorySink; "
                    "attach sinks before recording events"
                )
            for event in self._memory.events:
                sink.emit(event)
        if self._memory is None and isinstance(sink, InMemorySink):
            self._memory = sink
        if self._index is None and sink.is_index:
            self._index = sink
        self._sinks.append(sink)
        self._solo_emit = self._sinks[0].emit if len(self._sinks) == 1 else None
        return sink

    @property
    def sinks(self) -> List[TraceSink]:
        return list(self._sinks)

    @property
    def index(self):
        """The trace's :class:`~repro.analysis.index.TraceIndex`.

        Created (and backfilled) on first access; thereafter maintained
        incrementally at emit time.  On streaming configurations access it
        *before* the run so there is nothing to backfill.
        """
        if self._index is None:
            from repro.analysis.index import TraceIndex  # deferred: analysis imports sim

            self.add_sink(TraceIndex())
        return self._index

    def close(self) -> None:
        """Close every sink (flushes :class:`JsonlStreamSink` files)."""
        for sink in self._sinks:
            sink.close()

    # ------------------------------------------------------------------
    # Emit
    # ------------------------------------------------------------------
    def record(
        self,
        time: SimTime,
        kind: str,
        pid: Optional[ProcessId] = None,
        **fields: Any,
    ) -> TraceEvent:
        """Append a record, dispatch it to every sink, and return it."""
        event = TraceEvent(index=self._recorded, time=time, kind=kind, pid=pid, fields=fields)
        self._recorded += 1
        if self._solo_emit is not None:
            self._solo_emit(event)
        else:
            for sink in self._sinks:
                sink.emit(event)
        return event

    # ------------------------------------------------------------------
    # Queries (served by the in-memory sink / the index)
    # ------------------------------------------------------------------
    @property
    def events_recorded(self) -> int:
        """Total events ever emitted (independent of retention)."""
        return self._recorded

    @property
    def retained_events(self) -> int:
        """Events currently resident in memory (0 on streaming configs)."""
        return len(self._memory.events) if self._memory is not None else 0

    def _require_memory(self) -> List[TraceEvent]:
        if self._memory is None:
            raise RuntimeError(
                "this Trace has no InMemorySink (streaming configuration); "
                "use trace.index for queries or load the JSONL file offline"
            )
        return self._memory.events

    def __len__(self) -> int:
        return self._recorded

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._require_memory())

    def __getitem__(self, index: int) -> TraceEvent:
        return self._require_memory()[index]

    @property
    def events(self) -> List[TraceEvent]:
        """The underlying record list (treat as read-only)."""
        return self._require_memory()

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        """All records whose kind is one of ``kinds``, in order."""
        if self._index is not None:
            return self._index.by_kind(*kinds)
        wanted = set(kinds)
        return [e for e in self._require_memory() if e.kind in wanted]

    def for_process(self, pid: ProcessId, *kinds: str) -> List[TraceEvent]:
        """Records of ``pid``, optionally restricted to ``kinds``."""
        if self._index is not None:
            return self._index.for_process(pid, *kinds)
        wanted = set(kinds) if kinds else None
        return [
            e
            for e in self._require_memory()
            if e.pid == pid and (wanted is None or e.kind in wanted)
        ]

    def where(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        """Records satisfying an arbitrary predicate, in order."""
        return [e for e in self._require_memory() if predicate(e)]

    def last(self, kind: str, pid: Optional[ProcessId] = None) -> Optional[TraceEvent]:
        """Most recent record of ``kind`` (for ``pid`` if given), or None."""
        if self._index is not None:
            return self._index.last_of(kind, pid)
        for event in reversed(self._require_memory()):
            if event.kind == kind and (pid is None or event.pid == pid):
                return event
        return None

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of the trace (for debugging and docs)."""
        events = self._require_memory()
        if limit is not None:
            events = events[:limit]
        return "\n".join(repr(e) for e in events)

    def to_jsonl(self, path: str) -> int:
        """Export the trace as *readable* JSON lines for offline analysis.

        Non-JSON field values (tree timestamps, message ids) are stringified
        with their readable reprs — use :class:`JsonlStreamSink` +
        :func:`load_jsonl` when the file must round-trip losslessly.
        Returns the number of records written.
        """
        events = self._require_memory()
        with open(path, "w") as handle:
            for event in events:
                handle.write(json.dumps({
                    "index": event.index,
                    "time": event.time,
                    "kind": event.kind,
                    "pid": event.pid,
                    **{k: json_safe(v) for k, v in event.fields.items()},
                }) + "\n")
        return len(events)
