"""The :class:`Simulation` facade: scheduler + network + trace + nodes.

This is the object users construct first.  A typical setup::

    sim = Simulation(seed=42, delay_model=ExponentialDelay(mean=1.0))
    procs = [CheckpointProcess(i, config) for i in range(4)]
    for p in procs:
        sim.add_node(p)
    sim.run(until=500.0)

Crash/recovery is driven through :meth:`crash` and :meth:`recover` (usually
via :class:`repro.failure.injector.FailureInjector`); the simulation notifies
the registered failure detector, which in turn notifies surviving nodes after
its detection latency.

``Simulation`` is one of two kernels implementing the
:class:`repro.kernel.KernelLike` contract — the other is the live
:class:`repro.runtime.loop.AsyncRuntime`.  The topology, liveness and
crash/recovery mechanics live in the shared :class:`repro.kernel.KernelCore`
base; this class adds only what is simulation-specific: virtual time and the
deterministic discrete-event loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.errors import SimulationError
from repro.kernel import KernelCore
from repro.net.network import Network
from repro.sim.rng import Rng
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Trace
from repro.types import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.channel import Channel
    from repro.net.delay import DelayModel
    from repro.sim.trace import TraceSink


class Simulation(KernelCore):
    """One self-contained simulated distributed system."""

    def __init__(
        self,
        seed: int = 0,
        delay_model: Optional["DelayModel"] = None,
        channel: Optional["Channel"] = None,
        network: Optional[Network] = None,
        sinks: Optional[List["TraceSink"]] = None,
        trace: Optional[Trace] = None,
    ):
        super().__init__()
        self.rng = Rng(seed)
        self.scheduler = Scheduler()
        if trace is not None and sinks is not None:
            raise SimulationError("pass either trace= or sinks=, not both")
        self.trace = trace if trace is not None else Trace(sinks=sinks)
        self.network = network or Network(delay_model=delay_model, channel=channel)
        self.network.bind(self)
        self._started = False

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        return self.scheduler.now

    def run(self, until: Optional[SimTime] = None, max_events: Optional[int] = None) -> SimTime:
        """Start (if needed) and run the event loop; see ``Scheduler.run``."""
        if not self._started:
            self._started = True
            for pid in self.process_ids:
                self.nodes[pid].on_start()
        return self.scheduler.run(until=until, max_events=max_events)

    # ------------------------------------------------------------------
    # Dynamic membership
    # ------------------------------------------------------------------
    def join(self, node) -> None:
        """Admit ``node`` into the running simulation (graceful join).

        Before :meth:`run` has started the system this is just
        :meth:`add_node`; afterwards it is a live membership transition —
        the joiner's ``on_start`` fires immediately and every other live
        node hears ``on_join_peer``.
        """
        if not self._started:
            self.add_node(node)
            return
        self.join_node(node)

    def leave(self, pid, successor=None) -> None:
        """Gracefully retire ``pid``; see :meth:`KernelCore.leave_node`."""
        if not self._started:
            raise SimulationError("leave() requires a started simulation")
        self.leave_node(pid, successor)
