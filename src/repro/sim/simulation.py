"""The :class:`Simulation` facade: scheduler + network + trace + nodes.

This is the object users construct first.  A typical setup::

    sim = Simulation(seed=42, delay_model=ExponentialDelay(mean=1.0))
    procs = [CheckpointProcess(i, config) for i in range(4)]
    for p in procs:
        sim.add_node(p)
    sim.run(until=500.0)

Crash/recovery is driven through :meth:`crash` and :meth:`recover` (usually
via :class:`repro.failure.injector.FailureInjector`); the simulation notifies
the registered failure detector, which in turn notifies surviving nodes after
its detection latency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import SimulationError
from repro.net.network import Network
from repro.sim import trace as T
from repro.sim.node import Node
from repro.sim.rng import Rng
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Trace
from repro.types import IdAllocator, ProcessId, SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.failure.detector import FailureDetector
    from repro.net.delay import DelayModel
    from repro.sim.trace import TraceSink


class Simulation:
    """One self-contained simulated distributed system."""

    def __init__(
        self,
        seed: int = 0,
        delay_model: Optional["DelayModel"] = None,
        channel: Optional[object] = None,
        network: Optional[Network] = None,
        sinks: Optional[List["TraceSink"]] = None,
        trace: Optional[Trace] = None,
    ):
        self.rng = Rng(seed)
        self.scheduler = Scheduler()
        if trace is not None and sinks is not None:
            raise SimulationError("pass either trace= or sinks=, not both")
        self.trace = trace if trace is not None else Trace(sinks=sinks)
        self.network = network or Network(delay_model=delay_model, channel=channel)
        self.network.bind(self)
        self.nodes: Dict[ProcessId, Node] = {}
        self.ids = IdAllocator()
        self.failure_detector: Optional["FailureDetector"] = None
        self._started = False

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Register ``node``; ids must be unique."""
        if node.node_id in self.nodes:
            raise SimulationError(f"duplicate node id {node.node_id}")
        node.bind(self)
        self.nodes[node.node_id] = node
        return node

    def node(self, pid: ProcessId) -> Node:
        return self.nodes[pid]

    @property
    def process_ids(self) -> List[ProcessId]:
        return sorted(self.nodes)

    def is_alive(self, pid: ProcessId) -> bool:
        """True if ``pid`` exists and is not crashed."""
        node = self.nodes.get(pid)
        return node is not None and not node.crashed

    def alive_processes(self) -> List[ProcessId]:
        return [pid for pid in self.process_ids if self.is_alive(pid)]

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        return self.scheduler.now

    def run(self, until: Optional[SimTime] = None, max_events: Optional[int] = None) -> SimTime:
        """Start (if needed) and run the event loop; see ``Scheduler.run``."""
        if not self._started:
            self._started = True
            for pid in self.process_ids:
                self.nodes[pid].on_start()
        return self.scheduler.run(until=until, max_events=max_events)

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    def crash(self, pid: ProcessId) -> None:
        """Crash ``pid``: clean fail-stop, volatile state and timers lost."""
        node = self.nodes[pid]
        if node.crashed:
            raise SimulationError(f"P{pid} is already crashed")
        node.crashed = True
        node.cancel_all_timers()
        self.trace.record(self.now, T.K_CRASH, pid=pid)
        node.on_crash()
        if self.failure_detector is not None:
            self.failure_detector.report_crash(pid)

    def recover(self, pid: ProcessId, stable_state: object = None) -> None:
        """Restart ``pid`` from its stable storage."""
        node = self.nodes[pid]
        if not node.crashed:
            raise SimulationError(f"P{pid} is not crashed")
        node.crashed = False
        self.trace.record(self.now, T.K_RECOVER, pid=pid)
        node.on_recover(stable_state)
        if self.failure_detector is not None:
            self.failure_detector.report_recovery(pid)
