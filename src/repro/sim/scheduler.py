"""The discrete-event scheduler at the heart of the simulator.

A classic calendar-heap kernel: events are pushed with an absolute simulation
time and popped in ``(time, priority, insertion)`` order.  The scheduler is
deliberately minimal — nodes, networks, and protocols are all built on top of
:meth:`Scheduler.at` / :meth:`Scheduler.after`.

Determinism contract
--------------------
Given the same initial schedule and the same callbacks (which must only draw
randomness from :class:`repro.sim.rng.Rng` streams), :meth:`run` produces an
identical execution on every invocation.  Equal-time events run in insertion
order within a priority class, so "send then checkpoint" in code is "send
then checkpoint" in the simulation.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.event import PRIORITY_NORMAL, Event
from repro.types import SimTime


class Scheduler:
    """Priority-queue event loop with virtual time."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._now: SimTime = 0.0
        self._seq = 0
        self._events_processed = 0
        self._events_cancelled = 0
        self._cancelled_in_heap = 0
        self._compactions = 0
        self._running = False

    @property
    def now(self) -> SimTime:
        """Current simulation time (time of the event being processed)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (excludes cancelled events)."""
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Number of scheduled events that were cancelled before firing."""
        return self._events_cancelled

    @property
    def pending(self) -> int:
        """Number of events still queued and due to fire.

        Cancelled events are lazily deleted (they stay in the heap until
        popped) but do not count here; :attr:`pending_raw` exposes the raw
        heap size for anyone who cares about the physical queue.
        """
        return len(self._heap) - self._cancelled_in_heap

    @property
    def pending_raw(self) -> int:
        """Raw heap size, including lazily-deleted (cancelled) events."""
        return len(self._heap)

    @property
    def compactions(self) -> int:
        """Number of times the heap was compacted to evict cancelled events."""
        return self._compactions

    def _note_cancel(self) -> None:
        self._events_cancelled += 1
        self._cancelled_in_heap += 1
        # Lazy deletion is O(1) per cancel, but a workload that cancels most
        # of what it schedules (timer-heavy protocols) can leave the heap
        # dominated by tombstones, making every push/pop pay log(dead+live).
        # Once the majority of entries are dead, rebuild over the live ones.
        if self._cancelled_in_heap * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        live = [event for event in self._heap if not event.cancelled]
        for event in self._heap:
            if event.cancelled:
                event.cancel_hook = None
        self._heap = live
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    def _popped(self, event: Event) -> None:
        """Bookkeeping for an event leaving the heap."""
        event.cancel_hook = None
        if event.cancelled:
            self._cancelled_in_heap -= 1

    def at(
        self,
        time: SimTime,
        action: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute simulation time ``time``.

        Returns the :class:`Event`, which the caller may :meth:`Event.cancel`.
        Scheduling in the past is an error: the kernel never travels back.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event = Event(time=time, priority=priority, seq=self._seq, action=action, label=label)
        event.cancel_hook = self._note_cancel
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def after(
        self,
        delay: SimTime,
        action: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` ``delay`` time units from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, action, priority=priority, label=label)

    def step(self) -> bool:
        """Fire the next non-cancelled event.

        Returns ``False`` when the queue is empty (simulation exhausted).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            self._popped(event)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fire()
            return True
        return False

    def run(
        self,
        until: Optional[SimTime] = None,
        max_events: Optional[int] = None,
    ) -> SimTime:
        """Run events until exhaustion, ``until`` time, or ``max_events``.

        ``until`` is inclusive: events at exactly ``until`` still fire.
        Returns the final simulation time.  ``max_events`` guards against
        livelocked protocols in tests — hitting it raises, because a healthy
        run should always terminate by exhaustion or by the time bound.
        """
        if self._running:
            raise SimulationError("scheduler is not re-entrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    self._popped(heapq.heappop(self._heap))
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                self._popped(event)
                self._now = event.time
                self._events_processed += 1
                event.fire()
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible livelock"
                    )
        finally:
            self._running = False
        return self._now
