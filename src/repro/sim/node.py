"""Base class for protocol processes (actors).

A :class:`Node` is a reactive object owned by a kernel — either the
discrete-event :class:`repro.sim.simulation.Simulation` or the live
:class:`repro.runtime.loop.AsyncRuntime` (both implement
:class:`repro.kernel.KernelLike`).  Either way at most one callback of one
node runs at a time, which gives us the paper's "the execution of any
procedure is exclusive" for free.

Nodes interact with the world only through the hooks here:

* :meth:`send` — hand an envelope to the network;
* :meth:`set_timer` / :meth:`cancel_timer` — named, cancellable timers;
* :meth:`on_envelope` — called by the network on delivery;
* :meth:`on_crash` / :meth:`on_recover` — failure-injection hooks;
* :meth:`on_failure_notice` — failure-detector notification about a peer.

Crashed nodes receive nothing: the network drops or spools their messages and
the simulation suppresses their timers until recovery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.errors import SimulationError
from repro.sim.event import PRIORITY_TIMER
from repro.types import ProcessId, SimTime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.kernel import KernelLike, TimerHandle
    from repro.net.message import Envelope


class Node:
    """A protocol process; subclass and override the ``on_*`` hooks."""

    def __init__(self, node_id: ProcessId):
        self.node_id = node_id
        self.crashed = False
        self._sim: Optional["KernelLike"] = None
        self._timers: Dict[str, "TimerHandle"] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, sim: "KernelLike") -> None:
        """Attach this node to a kernel.  Called by ``KernelCore.add_node``."""
        if self._sim is not None:
            raise SimulationError(f"node {self.node_id} already bound")
        self._sim = sim

    @property
    def sim(self) -> "KernelLike":
        """The owning kernel (raises if the node is unbound).

        Named ``sim`` for historical reasons; under the live runtime this is
        an :class:`repro.runtime.loop.AsyncRuntime`.
        """
        if self._sim is None:
            raise SimulationError(f"node {self.node_id} is not bound to a kernel")
        return self._sim

    @property
    def now(self) -> SimTime:
        """Current kernel time."""
        return self.sim.now

    # ------------------------------------------------------------------
    # Outbound actions
    # ------------------------------------------------------------------
    def send(self, envelope: "Envelope") -> None:
        """Hand an envelope to the network for (eventual) delivery."""
        self.sim.network.transmit(envelope)

    def set_timer(
        self,
        name: str,
        delay: SimTime,
        action: Callable[[], None],
        replace: bool = True,
        priority: int = PRIORITY_TIMER,
    ) -> None:
        """Schedule ``action`` after ``delay``; timers are named and cancellable.

        With ``replace=True`` (default) an existing pending timer of the same
        name is cancelled first — the common "reset the checkpoint timer"
        idiom from the paper.  ``priority`` orders same-instant firings
        against other kernel events (defaults to timer priority, i.e. last).
        """
        existing = self._timers.get(name)
        if existing is not None and not existing.cancelled:
            if not replace:
                raise SimulationError(f"timer {name!r} already pending on node {self.node_id}")
            existing.cancel()

        def fire() -> None:
            self._timers.pop(name, None)
            if not self.crashed:
                action()

        self._timers[name] = self.sim.scheduler.after(
            delay, fire, priority=priority, label=f"P{self.node_id}.{name}"
        )

    def cancel_timer(self, name: str) -> None:
        """Cancel the named timer if pending; no-op otherwise."""
        event = self._timers.pop(name, None)
        if event is not None:
            event.cancel()

    def cancel_all_timers(self) -> None:
        """Cancel every pending timer (used on crash)."""
        for event in self._timers.values():
            event.cancel()
        self._timers.clear()

    # ------------------------------------------------------------------
    # Inbound hooks (override in subclasses)
    # ------------------------------------------------------------------
    def on_envelope(self, envelope: "Envelope") -> None:
        """Called by the network when a message is delivered to this node."""

    def on_start(self) -> None:
        """Called once when the simulation starts."""

    def on_crash(self) -> None:
        """Called when the failure injector crashes this node."""

    def on_recover(self, stable_state: Any) -> None:
        """Called when this node restarts after a crash.

        ``stable_state`` is whatever the node's stable storage holds; volatile
        state must be reconstructed from it, per the paper's failure model.
        """

    def on_failure_notice(self, pid: ProcessId) -> None:
        """Failure detector reports that process ``pid`` has crashed."""

    def on_recovery_notice(self, pid: ProcessId) -> None:
        """Failure detector reports that process ``pid`` is operational again."""

    # -- dynamic membership (repro.membership) -------------------------
    def on_join_peer(self, pid: ProcessId) -> None:
        """The membership plane reports that process ``pid`` joined."""

    def on_leave_peer(self, pid: ProcessId, successor: Optional[ProcessId]) -> None:
        """The membership plane reports that ``pid`` gracefully departed."""

    def on_leave(self, successor: Optional[ProcessId], spooled: tuple = ()) -> None:
        """This node itself is departing; hand obligations to ``successor``.

        ``spooled`` carries ``(src, label)`` summaries of the dead letters
        drained from this node's spooler group.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"<{type(self).__name__} P{self.node_id} {state}>"
