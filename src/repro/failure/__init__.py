"""Failure model: detector, injector, and weighted-voting partitions."""

from repro.failure.detector import FailureDetector
from repro.failure.injector import FailureInjector
from repro.failure.votes import VoteRegistry

__all__ = ["FailureDetector", "FailureInjector", "VoteRegistry"]
