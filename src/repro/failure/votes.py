"""Weighted voting and majority-partition determination (paper Section 6).

The paper handles network partitioning pessimistically: processes in a
*minor* partition (less than half the total votes) are regarded as failed;
a *major* partition (more than half) stays operational.  When a major
partition splits again and no fragment holds an absolute majority, a new
major partition "can be determined on a relative basis" — a fragment that
holds more than half of the *previous major partition's* votes becomes the
new major partition (references [3, 5]).

:class:`VoteRegistry` implements both rules.  Ties (exactly half) are never a
majority, matching the strict "more than one half" wording.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from repro.errors import ProtocolError
from repro.types import ProcessId


class VoteRegistry:
    """Vote assignment plus static and relative majority determination."""

    def __init__(self, votes: Dict[ProcessId, int]):
        if not votes:
            raise ProtocolError("empty vote assignment")
        for pid, weight in votes.items():
            if weight <= 0:
                raise ProtocolError(f"P{pid} has non-positive vote weight {weight}")
        self.votes = dict(votes)
        # The reference population against which "relative" majorities are
        # judged.  Starts as the full system; shrinks as majors split.
        self._current_major: FrozenSet[ProcessId] = frozenset(votes)

    @classmethod
    def uniform(cls, pids: Iterable[ProcessId]) -> "VoteRegistry":
        """One vote per process — the common unweighted configuration."""
        return cls({pid: 1 for pid in pids})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_votes(self) -> int:
        return sum(self.votes.values())

    @property
    def current_major(self) -> FrozenSet[ProcessId]:
        """The membership of the partition currently regarded as major."""
        return self._current_major

    def weight(self, group: Iterable[ProcessId]) -> int:
        """Total votes held by ``group`` (unknown processes vote 0)."""
        return sum(self.votes.get(pid, 0) for pid in group)

    def is_absolute_majority(self, group: Iterable[ProcessId]) -> bool:
        """Strictly more than half of *all* votes in the system."""
        return 2 * self.weight(group) > self.total_votes

    def is_relative_majority(self, group: Iterable[ProcessId]) -> bool:
        """Strictly more than half of the current major partition's votes."""
        reference = self.weight(self._current_major)
        members = set(group) & self._current_major
        return 2 * self.weight(members) > reference

    # ------------------------------------------------------------------
    # Partition-event processing
    # ------------------------------------------------------------------
    def classify(self, groups: Iterable[Iterable[ProcessId]]) -> Dict[FrozenSet[ProcessId], str]:
        """Label each partition group ``"major"`` or ``"minor"``.

        At most one group can be major.  A group is major if it holds an
        absolute majority, or — when no group does — a relative majority of
        the previous major partition.  On determining a new major, the
        registry updates its reference population, implementing the paper's
        "a partition that splits from a major partition becomes a new major
        partition if it contains more than one half of the total votes in the
        previous major partition."
        """
        frozen = [frozenset(g) for g in groups]
        labels: Dict[FrozenSet[ProcessId], str] = {g: "minor" for g in frozen}

        major: Optional[FrozenSet[ProcessId]] = None
        for group in frozen:
            if self.is_absolute_majority(group):
                major = group
                break
        if major is None:
            for group in frozen:
                if self.is_relative_majority(group):
                    major = group
                    break

        if major is not None:
            labels[major] = "major"
            self._current_major = major
        return labels

    def on_merge(self, merged: Iterable[ProcessId]) -> None:
        """Partitions healed: the merged population becomes the reference."""
        self._current_major = frozenset(merged)
