"""Failure and partition injection schedules.

Experiments describe *what goes wrong when* declaratively::

    injector = FailureInjector(sim)
    injector.crash_at(50.0, pid=3)
    injector.recover_at(120.0, pid=3)
    injector.partition_at(200.0, groups=[{0, 1, 2}, {3, 4}])
    injector.merge_at(300.0)

Crashes are clean fail-stop (assumption a): the node stops, volatile state
and timers vanish, and no forged messages are ever produced.  Recovery hands
the node back whatever it kept in stable storage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set

from repro.sim.event import PRIORITY_TIMER
from repro.types import ProcessId, SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulation import Simulation


class FailureInjector:
    """Declarative crash / recovery / partition scheduling."""

    def __init__(self, sim: "Simulation"):
        self.sim = sim

    def crash_at(self, time: SimTime, pid: ProcessId) -> None:
        """Crash ``pid`` at the given simulation time."""
        self.sim.scheduler.at(
            time,
            lambda: self._crash(pid),
            priority=PRIORITY_TIMER,
            label=f"inject crash P{pid}",
        )

    def recover_at(self, time: SimTime, pid: ProcessId) -> None:
        """Recover ``pid`` at the given simulation time."""
        self.sim.scheduler.at(
            time,
            lambda: self._recover(pid),
            priority=PRIORITY_TIMER,
            label=f"inject recovery P{pid}",
        )

    def partition_at(self, time: SimTime, groups: List[Set[ProcessId]]) -> None:
        """Partition the network into ``groups`` at the given time."""
        self.sim.scheduler.at(
            time,
            lambda: self.sim.network.partition(groups),
            priority=PRIORITY_TIMER,
            label="inject partition",
        )

    def merge_at(self, time: SimTime) -> None:
        """Heal all partitions at the given time."""
        self.sim.scheduler.at(
            time,
            lambda: self.sim.network.merge(),
            priority=PRIORITY_TIMER,
            label="inject merge",
        )

    # Internal indirections keep the lambdas tiny and let subclasses hook.
    def _crash(self, pid: ProcessId) -> None:
        if self.sim.is_alive(pid):
            self.sim.crash(pid)

    def _recover(self, pid: ProcessId) -> None:
        if not self.sim.is_alive(pid):
            self.sim.recover(pid)
