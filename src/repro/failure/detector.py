"""Failure detector (paper Section 6, assumption c).

"Operational processes are informed of process failures in finite time."

The detector is an oracle attached to the simulation: when a crash or
recovery happens it schedules a notification to every operational node after
a configurable detection latency.  Nodes receive it through
``Node.on_failure_notice`` / ``Node.on_recovery_notice``.

Nodes that are themselves down when the notification fires are skipped; a
recovering process instead learns the current status snapshot via
:meth:`status_snapshot` during its restart procedure (the paper's monitors
[2, 9, 22] provide the same).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set

from repro.sim.event import PRIORITY_TIMER
from repro.types import ProcessId, SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulation import Simulation


class FailureDetector:
    """Perfect failure detector with bounded detection latency."""

    def __init__(self, sim: "Simulation", detection_latency: SimTime = 1.0):
        self.sim = sim
        self.detection_latency = detection_latency
        self._known_down: Set[ProcessId] = set()
        sim.failure_detector = self
        membership = getattr(sim, "membership", None)
        if membership is not None:
            membership.subscribe(self._on_view_change)

    # ------------------------------------------------------------------
    # Reports from the simulation
    # ------------------------------------------------------------------
    def report_crash(self, pid: ProcessId) -> None:
        """Called by ``Simulation.crash``; fan out notices after the latency."""
        self._known_down.add(pid)
        self.sim.scheduler.after(
            self.detection_latency,
            lambda: self._notify_crash(pid),
            priority=PRIORITY_TIMER,
            label=f"detect crash P{pid}",
        )

    def report_recovery(self, pid: ProcessId) -> None:
        """Called by ``Simulation.recover``; fan out notices after the latency."""
        self._known_down.discard(pid)
        self.sim.scheduler.after(
            self.detection_latency,
            lambda: self._notify_recovery(pid),
            priority=PRIORITY_TIMER,
            label=f"detect recovery P{pid}",
        )

    def _notify_crash(self, pid: ProcessId) -> None:
        if self.sim.is_alive(pid):
            return  # raced with a recovery; the recovery notice supersedes
        for other in self.sim.process_ids:
            if other != pid and self.sim.is_alive(other):
                self.sim.nodes[other].on_failure_notice(pid)

    # ------------------------------------------------------------------
    # Membership plane
    # ------------------------------------------------------------------
    def _on_view_change(self, view: object) -> None:
        """Prune beliefs about pids that are no longer members."""
        self._known_down &= set(view.pids)  # type: ignore[attr-defined]

    def forget(self, pid: ProcessId) -> None:
        """A pid departed gracefully; it is neither up nor down."""
        self._known_down.discard(pid)

    def _notify_recovery(self, pid: ProcessId) -> None:
        if not self.sim.is_alive(pid):
            return  # crashed again before the notice fired
        for other in self.sim.process_ids:
            if other != pid and self.sim.is_alive(other):
                self.sim.nodes[other].on_recovery_notice(pid)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def status_snapshot(self) -> Dict[ProcessId, bool]:
        """Instantaneous up/down view (True = operational)."""
        return {pid: self.sim.is_alive(pid) for pid in self.sim.process_ids}

    def believed_down(self) -> Set[ProcessId]:
        """Processes currently believed failed (reported, not yet recovered)."""
        return set(self._known_down)
