/* Native snapshot hot path: freeze / thaw / content_hash / diff.
 *
 * A hand-written CPython extension mirroring repro/stable/snapshot.py
 * exactly: the same pass-through rules for already-frozen nodes, the same
 * FrozenDict/FrozenList construction (the Python classes are passed in at
 * configure time and instantiated here, so both builds produce the same
 * types), the same content-hash formulas with the same `_content_hash`
 * instance-dict cache (the two implementations read and write each other's
 * cache), and the same tagged-tuple delta vocabulary.  patch() stays in
 * Python — it calls freeze()/diff() through module globals, so it picks up
 * these implementations automatically once snapshot.py rebinds them.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#define NATIVE_ABI_VERSION 1
#define MAX_DEPTH 1000

typedef struct {
    int ready;
    PyObject *frozen_dict;   /* snapshot.FrozenDict */
    PyObject *frozen_list;   /* snapshot.FrozenList */
    PyObject *storage_error; /* repro.errors.StableStorageError */
    PyObject *s_cache;       /* "_content_hash" */
    PyObject *s_list_salt;   /* "frozen-list" */
    PyObject *eq_delta;      /* the shared ("=",) tuple */
    PyObject *s_bang, *s_d, *s_l; /* "!", "d", "l" */
    PyObject *empty_tuple;
} Config;

static Config cfg;

static int
depth_error(const char *what)
{
    PyErr_Format(PyExc_RecursionError,
                 "maximum nesting exceeded while %s snapshot value", what);
    return -1;
}

/* ------------------------------------------------------------------ */
/* freeze                                                              */
/* ------------------------------------------------------------------ */

static PyObject *freeze_value(PyObject *value, int depth);

/* An empty FrozenDict/FrozenList shell: tp_new without the (pure, empty)
 * dataclass-free __init__.  FrozenDict/FrozenList define no __new__/__init__
 * of their own, so dict.__new__/list.__new__ fully initialise the storage;
 * the C API then fills it directly, bypassing the Python-level blocked
 * mutators (exactly how the interpreted constructor fills it). */
static PyObject *
frozen_shell(PyObject *cls)
{
    PyTypeObject *tp = (PyTypeObject *)cls;
    return tp->tp_new(tp, cfg.empty_tuple, NULL);
}

static PyObject *
freeze_dict_items(PyObject *value, int depth)
{
    /* FrozenDict((k, freeze(v)) for k, v in value.items()) */
    PyObject *result = frozen_shell(cfg.frozen_dict);
    if (result == NULL)
        return NULL;
    PyObject *key, *item;
    Py_ssize_t pos = 0;
    while (PyDict_Next(value, &pos, &key, &item)) {
        PyObject *frozen = freeze_value(item, depth);
        if (frozen == NULL || PyDict_SetItem(result, key, frozen) < 0) {
            Py_XDECREF(frozen);
            Py_DECREF(result);
            return NULL;
        }
        Py_DECREF(frozen);
    }
    return result;
}

static PyObject *
freeze_sequence(PyObject *value, int depth, int as_tuple)
{
    Py_ssize_t n = PySequence_Size(value);
    if (n < 0)
        return NULL;
    PyObject *items = as_tuple ? PyTuple_New(n) : PyList_New(n);
    if (items == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PySequence_GetItem(value, i);
        PyObject *frozen = item ? freeze_value(item, depth) : NULL;
        Py_XDECREF(item);
        if (frozen == NULL) {
            Py_DECREF(items);
            return NULL;
        }
        if (as_tuple)
            PyTuple_SET_ITEM(items, i, frozen);
        else
            PyList_SET_ITEM(items, i, frozen);
    }
    if (as_tuple)
        return items;
    PyObject *result = frozen_shell(cfg.frozen_list);
    if (result == NULL ||
        PyList_SetSlice(result, 0, 0, items) < 0) {
        Py_XDECREF(result);
        Py_DECREF(items);
        return NULL;
    }
    Py_DECREF(items);
    return result;
}

static PyObject *
freeze_value(PyObject *value, int depth)
{
    if (depth > MAX_DEPTH) {
        depth_error("freezing");
        return NULL;
    }
    depth++;
    PyTypeObject *tp = Py_TYPE(value);
    /* Exact-type fast paths, in the interpreted freeze()'s order. */
    if (tp == (PyTypeObject *)cfg.frozen_dict ||
        tp == (PyTypeObject *)cfg.frozen_list || tp == &PyUnicode_Type ||
        tp == &PyLong_Type || tp == &PyFloat_Type || tp == &PyBool_Type ||
        value == Py_None) {
        Py_INCREF(value);
        return value;
    }
    if (tp == &PyDict_Type)
        return freeze_dict_items(value, depth);
    if (tp == &PyList_Type || tp == &PyTuple_Type)
        return freeze_sequence(value, depth, tp == &PyTuple_Type);
    /* Subclasses of the shapes above (rare) take the isinstance path. */
    int hit = PyObject_IsInstance(value, cfg.frozen_dict);
    if (hit == 0)
        hit = PyObject_IsInstance(value, cfg.frozen_list);
    if (hit < 0)
        return NULL;
    if (hit) {
        Py_INCREF(value);
        return value;
    }
    if (PyDict_Check(value))
        return freeze_dict_items(value, depth);
    if (PyTuple_Check(value))
        return freeze_sequence(value, depth, 1);
    if (PyList_Check(value))
        return freeze_sequence(value, depth, 0);
    if (PyUnicode_Check(value) || PyLong_Check(value) || PyFloat_Check(value) ||
        PyBool_Check(value)) {
        Py_INCREF(value);
        return value;
    }
    PyErr_Format(cfg.storage_error,
                 "cannot freeze '%s': stable values must be "
                 "JSON-shaped (dict/list/tuple/str/int/float/bool/None)",
                 tp->tp_name);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* thaw                                                                */
/* ------------------------------------------------------------------ */

static PyObject *
thaw_value(PyObject *value, int depth)
{
    if (depth > MAX_DEPTH) {
        depth_error("thawing");
        return NULL;
    }
    depth++;
    if (PyDict_Check(value)) {
        PyObject *plain = PyDict_New();
        if (plain == NULL)
            return NULL;
        PyObject *key, *item;
        Py_ssize_t pos = 0;
        while (PyDict_Next(value, &pos, &key, &item)) {
            PyObject *thawed = thaw_value(item, depth);
            if (thawed == NULL || PyDict_SetItem(plain, key, thawed) < 0) {
                Py_XDECREF(thawed);
                Py_DECREF(plain);
                return NULL;
            }
            Py_DECREF(thawed);
        }
        return plain;
    }
    if (PyTuple_Check(value) || PyList_Check(value)) {
        int as_tuple = PyTuple_Check(value);
        Py_ssize_t n = PySequence_Size(value);
        if (n < 0)
            return NULL;
        PyObject *items = as_tuple ? PyTuple_New(n) : PyList_New(n);
        if (items == NULL)
            return NULL;
        for (Py_ssize_t i = 0; i < n; i++) {
            PyObject *item = PySequence_GetItem(value, i);
            PyObject *thawed = item ? thaw_value(item, depth) : NULL;
            Py_XDECREF(item);
            if (thawed == NULL) {
                Py_DECREF(items);
                return NULL;
            }
            if (as_tuple)
                PyTuple_SET_ITEM(items, i, thawed);
            else
                PyList_SET_ITEM(items, i, thawed);
        }
        return items;
    }
    Py_INCREF(value);
    return value;
}

/* ------------------------------------------------------------------ */
/* content_hash                                                        */
/* ------------------------------------------------------------------ */

static int content_hash_value(PyObject *value, Py_hash_t *out, int depth);

/* The `_content_hash` instance-dict cache shared with the interpreted
 * __hash__ methods.  Returns 1 on cache hit, 0 on miss, -1 on error. */
static int
cache_get(PyObject *value, Py_hash_t *out)
{
    PyObject **dictptr = _PyObject_GetDictPtr(value);
    if (dictptr == NULL || *dictptr == NULL)
        return 0;
    PyObject *cached = PyDict_GetItemWithError(*dictptr, cfg.s_cache);
    if (cached == NULL)
        return PyErr_Occurred() ? -1 : 0;
    Py_hash_t result = PyLong_AsSsize_t(cached);
    if (result == -1 && PyErr_Occurred())
        return -1;
    *out = result;
    return 1;
}

static int
cache_put(PyObject *value, Py_hash_t computed)
{
    PyObject **dictptr = _PyObject_GetDictPtr(value);
    if (dictptr == NULL)
        return 0; /* no instance dict: just skip the cache */
    if (*dictptr == NULL) {
        *dictptr = PyDict_New();
        if (*dictptr == NULL)
            return -1;
    }
    PyObject *boxed = PyLong_FromSsize_t(computed);
    if (boxed == NULL)
        return -1;
    int status = PyDict_SetItem(*dictptr, cfg.s_cache, boxed);
    Py_DECREF(boxed);
    return status;
}

static int
frozen_dict_hash(PyObject *value, Py_hash_t *out, int depth)
{
    /* hash(frozenset((hash(k), content_hash(v)) for k, v in items)) */
    PyObject *fs = PyFrozenSet_New(NULL);
    if (fs == NULL)
        return -1;
    PyObject *key, *item;
    Py_ssize_t pos = 0;
    while (PyDict_Next(value, &pos, &key, &item)) {
        Py_hash_t key_hash = PyObject_Hash(key);
        if (key_hash == -1 && PyErr_Occurred())
            goto fail;
        Py_hash_t item_hash;
        if (content_hash_value(item, &item_hash, depth) < 0)
            goto fail;
        PyObject *pair = Py_BuildValue("(nn)", key_hash, item_hash);
        if (pair == NULL || PySet_Add(fs, pair) < 0) {
            Py_XDECREF(pair);
            goto fail;
        }
        Py_DECREF(pair);
    }
    *out = PyObject_Hash(fs);
    Py_DECREF(fs);
    return (*out == -1 && PyErr_Occurred()) ? -1 : 0;
fail:
    Py_DECREF(fs);
    return -1;
}

static int
frozen_list_hash(PyObject *value, Py_hash_t *out, int depth)
{
    /* hash(("frozen-list",) + tuple(content_hash(v) for v in self)) */
    Py_ssize_t n = PyList_GET_SIZE(value);
    PyObject *tup = PyTuple_New(n + 1);
    if (tup == NULL)
        return -1;
    Py_INCREF(cfg.s_list_salt);
    PyTuple_SET_ITEM(tup, 0, cfg.s_list_salt);
    for (Py_ssize_t i = 0; i < n; i++) {
        Py_hash_t item_hash;
        if (content_hash_value(PyList_GET_ITEM(value, i), &item_hash, depth) < 0) {
            Py_DECREF(tup);
            return -1;
        }
        PyObject *boxed = PyLong_FromSsize_t(item_hash);
        if (boxed == NULL) {
            Py_DECREF(tup);
            return -1;
        }
        PyTuple_SET_ITEM(tup, i + 1, boxed);
    }
    *out = PyObject_Hash(tup);
    Py_DECREF(tup);
    return (*out == -1 && PyErr_Occurred()) ? -1 : 0;
}

static int
content_hash_value(PyObject *value, Py_hash_t *out, int depth)
{
    if (depth > MAX_DEPTH)
        return depth_error("hashing");
    depth++;
    int is_fd = PyObject_IsInstance(value, cfg.frozen_dict);
    if (is_fd < 0)
        return -1;
    int is_fl = 0;
    if (!is_fd) {
        is_fl = PyObject_IsInstance(value, cfg.frozen_list);
        if (is_fl < 0)
            return -1;
    }
    if (is_fd || is_fl) {
        int hit = cache_get(value, out);
        if (hit != 0)
            return hit < 0 ? -1 : 0;
        int status = is_fd ? frozen_dict_hash(value, out, depth)
                           : frozen_list_hash(value, out, depth);
        if (status < 0)
            return -1;
        return cache_put(value, *out);
    }
    if (PyTuple_Check(value)) {
        /* hash(tuple(content_hash(v) for v in value)) — not cached. */
        Py_ssize_t n = PyTuple_GET_SIZE(value);
        PyObject *tup = PyTuple_New(n);
        if (tup == NULL)
            return -1;
        for (Py_ssize_t i = 0; i < n; i++) {
            Py_hash_t item_hash;
            if (content_hash_value(PyTuple_GET_ITEM(value, i), &item_hash, depth) < 0) {
                Py_DECREF(tup);
                return -1;
            }
            PyObject *boxed = PyLong_FromSsize_t(item_hash);
            if (boxed == NULL) {
                Py_DECREF(tup);
                return -1;
            }
            PyTuple_SET_ITEM(tup, i, boxed);
        }
        *out = PyObject_Hash(tup);
        Py_DECREF(tup);
        return (*out == -1 && PyErr_Occurred()) ? -1 : 0;
    }
    *out = PyObject_Hash(value);
    if (*out == -1 && PyErr_Occurred()) {
        if (PyErr_ExceptionMatches(PyExc_TypeError)) {
            PyErr_Clear();
            PyErr_Format(cfg.storage_error,
                         "cannot content-hash mutable '%s'; freeze() it first",
                         Py_TYPE(value)->tp_name);
        }
        return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* diff                                                                */
/* ------------------------------------------------------------------ */

static PyObject *diff_value(PyObject *base, PyObject *target, int depth);

static PyObject *
replacement_delta(PyObject *target)
{
    return PyTuple_Pack(2, cfg.s_bang, target);
}

/* The interpreted `a == b`: full operator protocol, no identity fast-path. */
static int
operator_eq(PyObject *a, PyObject *b)
{
    PyObject *cmp = PyObject_RichCompare(a, b, Py_EQ);
    if (cmp == NULL)
        return -1;
    int truth = PyObject_IsTrue(cmp);
    Py_DECREF(cmp);
    return truth;
}

static PyObject *
diff_dicts(PyObject *base, PyObject *target, int depth)
{
    PyObject *edits = PyDict_New();
    PyObject *deleted = PyList_New(0);
    if (edits == NULL || deleted == NULL)
        goto fail;
    PyObject *key, *value;
    Py_ssize_t pos = 0;
    while (PyDict_Next(target, &pos, &key, &value)) {
        PyObject *previous = PyDict_GetItemWithError(base, key);
        if (previous == NULL) {
            if (PyErr_Occurred())
                goto fail;
            PyObject *sub = replacement_delta(value);
            if (sub == NULL || PyDict_SetItem(edits, key, sub) < 0) {
                Py_XDECREF(sub);
                goto fail;
            }
            Py_DECREF(sub);
            continue;
        }
        /* Mirror the interpreted `base[key] != value` exactly: the operator
         * protocol has no identity fast-path (unlike RichCompareBool), so a
         * shared NaN still registers as changed, as it does in Python. */
        PyObject *cmp = PyObject_RichCompare(previous, value, Py_NE);
        if (cmp == NULL)
            goto fail;
        int changed = PyObject_IsTrue(cmp);
        Py_DECREF(cmp);
        if (changed < 0)
            goto fail;
        if (changed) { /* base[key] != value */
            PyObject *sub = diff_value(previous, value, depth);
            if (sub == NULL || PyDict_SetItem(edits, key, sub) < 0) {
                Py_XDECREF(sub);
                goto fail;
            }
            Py_DECREF(sub);
        }
    }
    pos = 0;
    while (PyDict_Next(base, &pos, &key, &value)) {
        int gone = PyDict_Contains(target, key);
        if (gone < 0)
            goto fail;
        if (!gone && PyList_Append(deleted, key) < 0)
            goto fail;
    }
    if (PyList_Sort(deleted) < 0)
        goto fail;
    PyObject *result = PyTuple_Pack(3, cfg.s_d, edits, deleted);
    Py_DECREF(edits);
    Py_DECREF(deleted);
    return result;
fail:
    Py_XDECREF(edits);
    Py_XDECREF(deleted);
    return NULL;
}

static PyObject *
diff_sequences(PyObject *base, PyObject *target)
{
    Py_ssize_t base_len = PySequence_Size(base);
    Py_ssize_t target_len = PySequence_Size(target);
    if (base_len < 0 || target_len < 0)
        return NULL;
    Py_ssize_t limit = base_len < target_len ? base_len : target_len;
    Py_ssize_t prefix = 0;
    while (prefix < limit) {
        PyObject *a = PySequence_GetItem(base, prefix);
        PyObject *b = a ? PySequence_GetItem(target, prefix) : NULL;
        int same = (b != NULL) ? operator_eq(a, b) : -1;
        Py_XDECREF(a);
        Py_XDECREF(b);
        if (same < 0)
            return NULL;
        if (!same)
            break;
        prefix++;
    }
    Py_ssize_t suffix = 0;
    while (suffix < limit - prefix) {
        PyObject *a = PySequence_GetItem(base, base_len - 1 - suffix);
        PyObject *b = a ? PySequence_GetItem(target, target_len - 1 - suffix) : NULL;
        int same = (b != NULL) ? operator_eq(a, b) : -1;
        Py_XDECREF(a);
        Py_XDECREF(b);
        if (same < 0)
            return NULL;
        if (!same)
            break;
        suffix++;
    }
    Py_ssize_t middle_len = target_len - suffix - prefix;
    PyObject *middle = PyList_New(middle_len);
    if (middle == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < middle_len; i++) {
        PyObject *item = PySequence_GetItem(target, prefix + i);
        if (item == NULL) {
            Py_DECREF(middle);
            return NULL;
        }
        PyList_SET_ITEM(middle, i, item);
    }
    PyObject *result = Py_BuildValue("(OnnO)", cfg.s_l, prefix, suffix, middle);
    Py_DECREF(middle);
    return result;
}

static PyObject *
diff_value(PyObject *base, PyObject *target, int depth)
{
    if (depth > MAX_DEPTH) {
        depth_error("diffing");
        return NULL;
    }
    depth++;
    int equal = (base == target) ? 1 : operator_eq(base, target);
    if (equal < 0)
        return NULL;
    if (equal) {
        Py_INCREF(cfg.eq_delta);
        return cfg.eq_delta;
    }
    if (PyDict_Check(base) && PyDict_Check(target))
        return diff_dicts(base, target, depth);
    int base_seq = PyList_Check(base) || PyTuple_Check(base);
    int target_seq = PyList_Check(target) || PyTuple_Check(target);
    if (base_seq && target_seq)
        return diff_sequences(base, target);
    return replacement_delta(target);
}

/* ------------------------------------------------------------------ */
/* Python-visible API                                                  */
/* ------------------------------------------------------------------ */

static int
require_ready(void)
{
    if (!cfg.ready) {
        PyErr_SetString(PyExc_RuntimeError, "native snapshot not configured");
        return -1;
    }
    return 0;
}

static PyObject *
py_freeze(PyObject *self, PyObject *value)
{
    if (require_ready() < 0)
        return NULL;
    return freeze_value(value, 0);
}

static PyObject *
py_thaw(PyObject *self, PyObject *value)
{
    if (require_ready() < 0)
        return NULL;
    return thaw_value(value, 0);
}

static PyObject *
py_content_hash(PyObject *self, PyObject *value)
{
    if (require_ready() < 0)
        return NULL;
    Py_hash_t result;
    if (content_hash_value(value, &result, 0) < 0)
        return NULL;
    return PyLong_FromSsize_t(result);
}

static PyObject *
py_diff(PyObject *self, PyObject *args)
{
    PyObject *base, *target;
    if (require_ready() < 0 || !PyArg_ParseTuple(args, "OO", &base, &target))
        return NULL;
    return diff_value(base, target, 0);
}

static PyObject *
py_configure(PyObject *self, PyObject *args, PyObject *kwargs)
{
    static char *keywords[] = {"frozen_dict", "frozen_list", "storage_error", NULL};
    PyObject *frozen_dict, *frozen_list, *storage_error;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "OOO", keywords, &frozen_dict,
                                     &frozen_list, &storage_error))
        return NULL;
    Py_CLEAR(cfg.frozen_dict);
    Py_CLEAR(cfg.frozen_list);
    Py_CLEAR(cfg.storage_error);
    cfg.frozen_dict = frozen_dict;
    cfg.frozen_list = frozen_list;
    cfg.storage_error = storage_error;
    Py_INCREF(frozen_dict);
    Py_INCREF(frozen_list);
    Py_INCREF(storage_error);
    cfg.ready = 1;
    Py_RETURN_NONE;
}

static PyMethodDef methods[] = {
    {"configure", (PyCFunction)py_configure, METH_VARARGS | METH_KEYWORDS,
     "Install the FrozenDict/FrozenList classes (called by snapshot.py)."},
    {"freeze", py_freeze, METH_O, "Immutable view of a JSON-shaped value."},
    {"thaw", py_thaw, METH_O, "Deep mutable copy of a (frozen) value."},
    {"content_hash", py_content_hash, METH_O,
     "Equality-consistent structural hash, cached on frozen nodes."},
    {"diff", py_diff, METH_VARARGS,
     "Structural delta turning base into target (same tags as snapshot.diff)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef moduledef = {
    PyModuleDef_HEAD_INIT,
    "repro._native._snapshot",
    "Compiled snapshot freeze/diff path (see repro/stable/snapshot.py).",
    -1,
    methods,
};

PyMODINIT_FUNC
PyInit__snapshot(void)
{
    PyObject *module = PyModule_Create(&moduledef);
    if (module == NULL)
        return NULL;
    memset(&cfg, 0, sizeof(cfg));
    cfg.s_cache = PyUnicode_InternFromString("_content_hash");
    cfg.s_list_salt = PyUnicode_InternFromString("frozen-list");
    cfg.s_bang = PyUnicode_InternFromString("!");
    cfg.s_d = PyUnicode_InternFromString("d");
    cfg.s_l = PyUnicode_InternFromString("l");
    PyObject *eq = PyUnicode_InternFromString("=");
    cfg.eq_delta = eq ? PyTuple_Pack(1, eq) : NULL;
    Py_XDECREF(eq);
    cfg.empty_tuple = PyTuple_New(0);
    if (cfg.eq_delta == NULL || cfg.s_cache == NULL || cfg.s_l == NULL ||
        cfg.empty_tuple == NULL) {
        Py_DECREF(module);
        return NULL;
    }
    if (PyModule_AddIntConstant(module, "NATIVE_ABI", NATIVE_ABI_VERSION) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
