"""Loader for the optional native (compiled) hot-path modules.

The ROADMAP's compile-the-hot-path item rests on a guarantee PR 5 already
enforces: the wire codec and the snapshot freeze/diff path are pure
(no kernel or IO imports), so they can be swapped for compiled versions
without touching any caller.  This package is the single place that swap
happens:

* ``build`` (``python -m repro._native build``) compiles the hand-written
  CPython extensions in this directory — ``_wirecodec.c`` (the wire-v2
  binary envelope codec) and ``_snapshot.c`` (freeze/thaw/content-hash/diff)
  — using only a C compiler and the Python headers.  mypyc/Cython were the
  first candidates, but the reference container ships neither (and nothing
  may be pip-installed there), so the native layer is written directly
  against the CPython API; the build needs exactly ``cc`` + ``Python.h``.
  The engine event loop stays interpreted: compiling it means compiling the
  whole protocol stack, which needs the mypyc toolchain — the loader
  reports it as a fallback rather than pretending (see DESIGN.md §14).
* ``load`` imports a compiled module if present and ABI-compatible, else
  returns ``None`` — the consumer keeps its interpreted implementation.
  Selection is controlled by ``REPRO_NATIVE``:

  ==========  =========================================================
  value       meaning
  ==========  =========================================================
  (unset)     *auto* — use compiled modules when built, else interpreted
  ``0``/off   force interpreted even when compiled modules exist
  ``1``/on    same as auto (explicit opt-in)
  require     fail loudly if a compiled module is missing (CI's native
              job runs under this so a silent fallback can't pass as a
              compiled run)
  ==========  =========================================================

Correctness is gated the same way PR 5 gated the engine extraction: the
compiled and interpreted builds must produce bit-identical golden figure
2/3/4 traces and identical wire frames (``tests/native``), and each consumer
runs a self-check probe at import time before trusting a compiled module.
"""

from __future__ import annotations

import importlib
import os
from typing import Any, Dict, Optional

#: Bumped whenever the Python<->C interface of any extension changes; a
#: compiled module with a different ABI is ignored (stale build on disk).
NATIVE_ABI = 1

#: name -> imported module (or None after a failed/disabled load).
_MODULES: Dict[str, Optional[Any]] = {}
#: name -> human-readable reason the native module is not in use.
_FALLBACK_REASONS: Dict[str, str] = {}

#: Extension modules this package knows how to build/load.
EXTENSIONS = ("wirecodec", "snapshot")


def mode() -> str:
    """The requested native mode: ``auto``, ``off`` or ``require``."""
    raw = os.environ.get("REPRO_NATIVE", "").strip().lower()
    if raw in ("", "1", "on", "auto", "yes"):
        return "auto"
    if raw in ("0", "off", "no", "false"):
        return "off"
    if raw == "require":
        return "require"
    raise RuntimeError(
        f"unknown REPRO_NATIVE value {raw!r} (use 0/1/auto/require)"
    )


def load(name: str) -> Optional[Any]:
    """The compiled extension ``name``, or ``None`` with a recorded reason.

    Never raises in ``auto``/``off`` mode: a missing or stale build simply
    keeps the interpreted implementation.  In ``require`` mode a missing
    module is an error — that is what makes the CI native job trustworthy.
    """
    if name in _MODULES:
        return _MODULES[name]
    if name not in EXTENSIONS:
        raise ValueError(f"unknown native extension {name!r} (have {EXTENSIONS})")
    current = mode()
    if current == "off":
        _FALLBACK_REASONS[name] = "disabled by REPRO_NATIVE=0"
        _MODULES[name] = None
        return None
    module: Optional[Any]
    try:
        module = importlib.import_module(f"repro._native._{name}")
        abi = getattr(module, "NATIVE_ABI", None)
        if abi != NATIVE_ABI:
            raise ImportError(
                f"compiled ABI {abi} != expected {NATIVE_ABI} "
                "(stale build; rerun `python -m repro._native build`)"
            )
    except ImportError as exc:
        if current == "require":
            raise RuntimeError(
                f"REPRO_NATIVE=require but native module {name!r} is "
                f"unavailable: {exc}"
            ) from exc
        _FALLBACK_REASONS[name] = str(exc)
        module = None
    _MODULES[name] = module
    return module


def reject(name: str, reason: str) -> None:
    """Mark a loaded extension as unusable (a consumer's self-check failed).

    The consumer keeps its interpreted implementation; ``status`` reports
    why.  In ``require`` mode a rejected probe raises instead — a compiled
    build that cannot reproduce the interpreted bytes must never pass CI.
    """
    if mode() == "require":
        raise RuntimeError(f"native module {name!r} failed its self-check: {reason}")
    _MODULES[name] = None
    _FALLBACK_REASONS[name] = f"self-check failed: {reason}"


def status() -> Dict[str, Dict[str, Any]]:
    """Per-hot-path backend report (what E-NATIVE records per row).

    The engine row is always interpreted for now — honest fallback until a
    mypyc-capable toolchain lands — so the report names the gate instead of
    hiding the row.
    """
    report: Dict[str, Dict[str, Any]] = {}
    for name in EXTENSIONS:
        module = load(name)
        if module is not None:
            report[name] = {"backend": "cext", "abi": NATIVE_ABI}
        else:
            report[name] = {
                "backend": "interpreted",
                "reason": _FALLBACK_REASONS.get(name, "not built"),
            }
    report["engine"] = {
        "backend": "interpreted",
        "reason": "engine compilation requires the mypyc toolchain "
        "(not available; see DESIGN.md §14)",
    }
    return report


__all__ = ["EXTENSIONS", "NATIVE_ABI", "load", "mode", "reject", "status"]
