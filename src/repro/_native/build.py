"""Build the native hot-path extensions with nothing but ``cc`` + headers.

Deliberately not a setuptools build: the reference environment has no build
frontend and nothing may be installed into it, so this module shells out to
the system C compiler directly.  Each extension is one self-contained ``.c``
file compiled to ``_<name><EXT_SUFFIX>`` next to its source; the artifacts
are git-ignored (a checkout without a toolchain simply runs interpreted).

``python -m repro._native build`` is the operator entry point; the CI
``native`` job runs it with ``--require`` so a broken toolchain fails the
job instead of silently producing an interpreted "native" run.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import sysconfig
from typing import Dict, List, Optional, Sequence

from repro._native import EXTENSIONS

HERE = os.path.dirname(os.path.abspath(__file__))


def ext_suffix() -> str:
    """The interpreter's extension-module suffix (e.g. ``.cpython-311-....so``)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX")
    return suffix if suffix else ".so"


def artifact_path(name: str) -> str:
    return os.path.join(HERE, f"_{name}{ext_suffix()}")


def source_path(name: str) -> str:
    return os.path.join(HERE, f"_{name}.c")


def find_compiler() -> Optional[str]:
    """The C compiler to use: ``$CC`` if set, else ``cc``/``gcc``/``clang``."""
    env = os.environ.get("CC")
    candidates = [env] if env else ["cc", "gcc", "clang"]
    for candidate in candidates:
        if candidate and shutil.which(candidate):
            return candidate
    return None


def toolchain_available() -> bool:
    """True when a compiler and the Python headers are both present."""
    include = sysconfig.get_path("include")
    return find_compiler() is not None and os.path.exists(
        os.path.join(include, "Python.h")
    )


def compile_command(compiler: str, source: str, out: str) -> List[str]:
    cmd = [compiler, "-O2", "-fPIC", "-shared"]
    cmd.append(f"-I{sysconfig.get_path('include')}")
    plat_include = sysconfig.get_path("platinclude")
    if plat_include and plat_include != sysconfig.get_path("include"):
        cmd.append(f"-I{plat_include}")
    if sys.platform == "darwin":  # pragma: no cover - linux container
        cmd += ["-undefined", "dynamic_lookup"]
    cmd += [source, "-o", out]
    return cmd


def build(
    names: Optional[Sequence[str]] = None, verbose: bool = False
) -> Dict[str, Dict[str, str]]:
    """Compile the requested extensions; per-extension outcome report.

    Never raises on a missing toolchain — the report says ``skipped`` and
    the runtime keeps its interpreted fallback.  A *failing* compile of an
    existing toolchain is reported as ``error`` with the compiler output
    (and any stale artifact is removed so the loader cannot pick it up).
    """
    report: Dict[str, Dict[str, str]] = {}
    compiler = find_compiler()
    for name in names or EXTENSIONS:
        if name not in EXTENSIONS:
            raise ValueError(f"unknown native extension {name!r}")
        out = artifact_path(name)
        if not toolchain_available():
            report[name] = {
                "outcome": "skipped",
                "detail": "no C compiler or Python.h on this machine",
            }
            continue
        cmd = compile_command(compiler or "cc", source_path(name), out)
        if verbose:
            print("  " + " ".join(cmd))
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            if os.path.exists(out):
                os.unlink(out)
            report[name] = {"outcome": "error", "detail": proc.stderr.strip()}
        else:
            report[name] = {"outcome": "built", "detail": out}
    return report


def clean(names: Optional[Sequence[str]] = None) -> List[str]:
    """Remove built artifacts; returns the paths removed."""
    removed = []
    for name in names or EXTENSIONS:
        out = artifact_path(name)
        if os.path.exists(out):
            os.unlink(out)
            removed.append(out)
    return removed
