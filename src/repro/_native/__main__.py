"""CLI for the native build: ``python -m repro._native build|status|clean``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro._native",
        description="Build, inspect or remove the compiled hot-path modules.",
    )
    parser.add_argument(
        "action", choices=("build", "status", "clean"), help="what to do"
    )
    parser.add_argument(
        "--require",
        action="store_true",
        help="exit non-zero unless every extension builds (CI native job)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    args = parser.parse_args(argv)

    from repro._native import build as B

    if args.action == "clean":
        removed = B.clean()
        print(json.dumps(removed) if args.json else f"removed {len(removed)} artifact(s)")
        return 0

    if args.action == "build":
        report = B.build(verbose=not args.json)
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            for name, row in report.items():
                print(f"  {name:<10} {row['outcome']}: {row['detail']}")
        if args.require and any(r["outcome"] != "built" for r in report.values()):
            print("--require: native build incomplete", file=sys.stderr)
            return 1
        return 0

    # status: importing the consumers wires (and self-checks) the extensions.
    import repro.runtime.wire  # noqa: F401
    import repro.stable.snapshot  # noqa: F401
    from repro._native import status

    report = status()
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        for name, row in report.items():
            detail = row.get("reason", f"abi={row.get('abi')}")
            print(f"  {name:<10} {row['backend']}: {detail}")
    if args.require and any(
        row["backend"] != "cext" for name, row in report.items() if name != "engine"
    ):
        print("--require: native modules not active", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
