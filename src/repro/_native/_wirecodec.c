/* Native wire-v2 envelope codec.
 *
 * A hand-written CPython extension implementing exactly the binary format of
 * repro/runtime/wire.py: struct-packed fixed header, optional message id and
 * label, then the body's fields as tagged values (zigzag varint ints, raw
 * big-endian doubles, length-prefixed UTF-8, encoding-sorted sets).  The
 * canonical-bytes law is the contract: for every envelope the interpreted
 * codec accepts, this module must produce the *identical* frame bytes and
 * decode frames to equal objects — enforced by tests/native and by the
 * import-time probe in wire.py.
 *
 * The module is configured (not compiled) with the body registry: wire.py
 * passes its kind/code/field tables plus the Envelope/MessageId/TreeId
 * classes at import time, so both implementations derive from one source of
 * truth and cannot skew.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stdint.h>
#include <string.h>

#define NATIVE_ABI_VERSION 1

/* Value tags — must mirror wire.py. */
#define T_NONE 0
#define T_TRUE 1
#define T_FALSE 2
#define T_INT 3
#define T_FLOAT 4
#define T_STR 5
#define T_TUPLE 6
#define T_LIST 7
#define T_SET 8
#define T_MAP 9
#define T_MID 10
#define T_TID 11
#define T_REPR 12

#define F_MSGID 0x01
#define F_LABEL 0x02
#define F_CONTROL 0x04

#define MAX_VALUE_DEPTH 1000

/* ------------------------------------------------------------------ */
/* Module configuration (set by wire.py via configure())               */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject *kind;   /* str, for error messages */
    PyObject *cls;    /* body dataclass */
    PyObject *names;  /* tuple of field-name strings */
    Py_ssize_t nfields;
} DecodeEntry;

typedef struct {
    int ready;
    PyObject *envelope_cls;
    PyObject *message_id_cls;
    PyObject *tree_id_cls;
    PyObject *wire_error;
    PyObject *struct_error;
    PyObject *control_str;
    PyObject *normal_str;
    PyObject *encode_types;  /* dict: type -> (code, names) */
    PyObject *registry;      /* dict: kind -> (code, cls, names) — isinstance fallback */
    DecodeEntry *decode;     /* indexed by kind code; [0] unused */
    Py_ssize_t ndecode;
    int fast_construct;
    unsigned char binary_tag;
    long max_frame;
    /* Direct __slots__ offsets of the 8 Envelope fields (src, dst, category,
     * body, msg_id, label, send_time, deliver_time) when the class is
     * slotted; env_slots == 0 falls back to the generic attribute protocol
     * (e.g. Python 3.9, where the dataclass has no slots). */
    Py_ssize_t env_off[8];
    int env_slots;
    /* interned attribute names */
    PyObject *s_src, *s_dst, *s_category, *s_body, *s_msg_id, *s_label;
    PyObject *s_send_time, *s_deliver_time;
    PyObject *s_sender, *s_send_index, *s_initiator, *s_initiation_seq;
    PyObject *zero_float;
    PyObject *empty_tuple;
} Config;

static Config cfg;

/* ------------------------------------------------------------------ */
/* Growable byte buffer                                                */
/* ------------------------------------------------------------------ */

typedef struct {
    unsigned char *data;
    Py_ssize_t len;
    Py_ssize_t cap;
} WBuf;

static int
wbuf_init(WBuf *b, Py_ssize_t cap)
{
    if (cap < 64)
        cap = 64;
    b->data = (unsigned char *)PyMem_Malloc((size_t)cap);
    if (b->data == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    b->len = 0;
    b->cap = cap;
    return 0;
}

static void
wbuf_free(WBuf *b)
{
    PyMem_Free(b->data);
    b->data = NULL;
    b->len = b->cap = 0;
}

static int
wbuf_reserve(WBuf *b, Py_ssize_t extra)
{
    if (b->len + extra <= b->cap)
        return 0;
    Py_ssize_t cap = b->cap;
    while (cap < b->len + extra)
        cap *= 2;
    unsigned char *data = (unsigned char *)PyMem_Realloc(b->data, (size_t)cap);
    if (data == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    b->data = data;
    b->cap = cap;
    return 0;
}

static int
wbuf_push(WBuf *b, unsigned char byte)
{
    if (wbuf_reserve(b, 1) < 0)
        return -1;
    b->data[b->len++] = byte;
    return 0;
}

static int
wbuf_append(WBuf *b, const unsigned char *data, Py_ssize_t n)
{
    if (wbuf_reserve(b, n) < 0)
        return -1;
    memcpy(b->data + b->len, data, (size_t)n);
    b->len += n;
    return 0;
}

/* One long-lived encode buffer per process: encoding is synchronous and
 * single-threaded, so entry points borrow this instead of a malloc/free
 * pair per call.  The busy flag covers re-entrancy (repr() of an unknown
 * value or a body constructor can run arbitrary Python): a nested encode
 * falls back to a stack-local buffer. */
static WBuf shared_buf;
static int shared_busy;

static WBuf *
wbuf_acquire(WBuf *local)
{
    if (!shared_busy) {
        if (shared_buf.data == NULL && wbuf_init(&shared_buf, 4096) < 0)
            return NULL;
        shared_busy = 1;
        shared_buf.len = 0;
        return &shared_buf;
    }
    if (wbuf_init(local, 128) < 0)
        return NULL;
    return local;
}

static void
wbuf_release(WBuf *b)
{
    if (b == &shared_buf)
        shared_busy = 0;
    else
        wbuf_free(b);
}

/* ------------------------------------------------------------------ */
/* Error helpers                                                       */
/* ------------------------------------------------------------------ */

static int
wire_error(const char *msg)
{
    PyErr_SetString(cfg.wire_error, msg);
    return -1;
}

static int
struct_range_error(void)
{
    PyErr_SetString(cfg.struct_error, "argument out of range");
    return -1;
}

/* ------------------------------------------------------------------ */
/* Fast attribute access                                               */
/* ------------------------------------------------------------------ */

enum {
    E_SRC, E_DST, E_CATEGORY, E_BODY, E_MSG_ID, E_LABEL, E_SEND_TIME,
    E_DELIVER_TIME,
};

/* The storage offset of a T_OBJECT_EX __slots__ member, or -1. */
static Py_ssize_t
slot_offset(PyObject *cls, PyObject *name)
{
    PyObject *descr = PyObject_GetAttr(cls, name);
    if (descr == NULL) {
        PyErr_Clear();
        return -1;
    }
    Py_ssize_t offset = -1;
    if (Py_TYPE(descr) == &PyMemberDescr_Type) {
        PyMemberDef *member = ((PyMemberDescrObject *)descr)->d_member;
        if (member->type == T_OBJECT_EX || member->type == T_OBJECT)
            offset = member->offset;
    }
    Py_DECREF(descr);
    return offset;
}

/* Envelope field read: direct slot load for exact Envelope instances,
 * generic attribute protocol otherwise (subclasses, unslotted builds). */
static PyObject *
env_attr(PyObject *envelope, int idx, PyObject *name)
{
    if (cfg.env_slots && Py_TYPE(envelope) == (PyTypeObject *)cfg.envelope_cls) {
        PyObject *value = *(PyObject **)((char *)envelope + cfg.env_off[idx]);
        if (value != NULL) {
            Py_INCREF(value);
            return value;
        }
    }
    return PyObject_GetAttr(envelope, name);
}

/* MessageId/TreeId field read: these are plain (unslotted) frozen
 * dataclasses, so the value lives in the instance dict. */
static PyObject *
id_attr(PyObject *obj, PyObject *name)
{
    PyObject **dictptr = _PyObject_GetDictPtr(obj);
    if (dictptr != NULL && *dictptr != NULL) {
        PyObject *value = PyDict_GetItemWithError(*dictptr, name);
        if (value != NULL) {
            Py_INCREF(value);
            return value;
        }
        if (PyErr_Occurred())
            return NULL;
    }
    return PyObject_GetAttr(obj, name);
}

/* ------------------------------------------------------------------ */
/* Big-endian scalar packing (struct '>i', '>q', '>d' equivalents)     */
/* ------------------------------------------------------------------ */

static int
pack_be32(WBuf *b, PyObject *value)
{
    if (!PyLong_Check(value)) {
        PyErr_SetString(cfg.struct_error, "required argument is not an integer");
        return -1;
    }
    int overflow = 0;
    long long v = PyLong_AsLongLongAndOverflow(value, &overflow);
    if (v == -1 && PyErr_Occurred())
        return -1;
    if (overflow || v < INT32_MIN || v > INT32_MAX)
        return struct_range_error();
    uint32_t u = (uint32_t)(int32_t)v;
    unsigned char out[4] = {
        (unsigned char)(u >> 24), (unsigned char)(u >> 16),
        (unsigned char)(u >> 8), (unsigned char)u,
    };
    return wbuf_append(b, out, 4);
}

static int
pack_be64(WBuf *b, PyObject *value)
{
    if (!PyLong_Check(value)) {
        PyErr_SetString(cfg.struct_error, "required argument is not an integer");
        return -1;
    }
    int overflow = 0;
    long long v = PyLong_AsLongLongAndOverflow(value, &overflow);
    if (v == -1 && PyErr_Occurred())
        return -1;
    if (overflow)
        return struct_range_error();
    uint64_t u = (uint64_t)v;
    unsigned char out[8];
    for (int i = 0; i < 8; i++)
        out[i] = (unsigned char)(u >> (56 - 8 * i));
    return wbuf_append(b, out, 8);
}

static int
pack_be_double(WBuf *b, double d)
{
    uint64_t u;
    memcpy(&u, &d, 8);
    unsigned char out[8];
    for (int i = 0; i < 8; i++)
        out[i] = (unsigned char)(u >> (56 - 8 * i));
    return wbuf_append(b, out, 8);
}

/* ------------------------------------------------------------------ */
/* Varint / zigzag packing                                             */
/* ------------------------------------------------------------------ */

static int
pack_uvarint64(WBuf *b, uint64_t value)
{
    while (1) {
        unsigned char byte = (unsigned char)(value & 0x7F);
        value >>= 7;
        if (value) {
            if (wbuf_push(b, byte | 0x80) < 0)
                return -1;
        }
        else {
            return wbuf_push(b, byte);
        }
    }
}

/* Arbitrary-precision tail: pack a non-negative PyLong as a uvarint. */
static int
pack_uvarint_object(WBuf *b, PyObject *value)
{
    PyObject *mask = PyLong_FromLong(0x7F);
    PyObject *seven = PyLong_FromLong(7);
    PyObject *current = value;
    Py_INCREF(current);
    int status = -1;
    if (mask == NULL || seven == NULL)
        goto done;
    while (1) {
        PyObject *low = PyNumber_And(current, mask);
        if (low == NULL)
            goto done;
        long byte = PyLong_AsLong(low);
        Py_DECREF(low);
        if (byte == -1 && PyErr_Occurred())
            goto done;
        PyObject *rest = PyNumber_Rshift(current, seven);
        if (rest == NULL)
            goto done;
        int more = PyObject_IsTrue(rest);
        if (more < 0) {
            Py_DECREF(rest);
            goto done;
        }
        if (wbuf_push(b, (unsigned char)(byte | (more ? 0x80 : 0))) < 0) {
            Py_DECREF(rest);
            goto done;
        }
        Py_DECREF(current);
        current = rest;
        if (!more) {
            status = 0;
            goto done;
        }
    }
done:
    Py_XDECREF(current);
    Py_XDECREF(mask);
    Py_XDECREF(seven);
    return status;
}

/* Zigzag-pack any PyLong (value*2 if >= 0 else -value*2-1). */
static int
pack_zigzag_object(WBuf *b, PyObject *value)
{
    int overflow = 0;
    long long v = PyLong_AsLongLongAndOverflow(value, &overflow);
    if (v == -1 && PyErr_Occurred())
        return -1;
    if (!overflow) {
        uint64_t u = (uint64_t)v;
        uint64_t zz = (v >= 0) ? (u << 1) : ~(u << 1);
        return pack_uvarint64(b, zz);
    }
    /* Slow path: |value| >= 2**63.  Same arithmetic as the Python packer. */
    PyObject *one = PyLong_FromLong(1);
    if (one == NULL)
        return -1;
    PyObject *doubled = PyNumber_Lshift(value, one); /* value * 2 */
    if (doubled == NULL) {
        Py_DECREF(one);
        return -1;
    }
    PyObject *zz;
    /* overflow != 0 tells the sign: +1 above range, -1 below. */
    if (overflow > 0) {
        zz = doubled;
        Py_INCREF(zz);
    }
    else {
        PyObject *neg = PyNumber_Negative(doubled); /* -value*2 */
        zz = (neg == NULL) ? NULL : PyNumber_Subtract(neg, one);
        Py_XDECREF(neg);
    }
    Py_DECREF(doubled);
    Py_DECREF(one);
    if (zz == NULL)
        return -1;
    int status = pack_uvarint_object(b, zz);
    Py_DECREF(zz);
    return status;
}

static int
pack_str(WBuf *b, PyObject *value)
{
    Py_ssize_t size = 0;
    const char *utf8 = PyUnicode_AsUTF8AndSize(value, &size);
    if (utf8 == NULL)
        return -1;
    if (pack_uvarint64(b, (uint64_t)size) < 0)
        return -1;
    return wbuf_append(b, (const unsigned char *)utf8, size);
}

/* ------------------------------------------------------------------ */
/* Recursive value encoder (mirror of wire._pack_value)                */
/* ------------------------------------------------------------------ */

static int pack_value(WBuf *b, PyObject *value, int depth);

typedef struct {
    unsigned char *data;
    Py_ssize_t len;
} MemberBlob;

static int
member_blob_cmp(const void *pa, const void *pb)
{
    const MemberBlob *a = (const MemberBlob *)pa;
    const MemberBlob *c = (const MemberBlob *)pb;
    Py_ssize_t n = a->len < c->len ? a->len : c->len;
    int r = memcmp(a->data, c->data, (size_t)n);
    if (r != 0)
        return r;
    if (a->len < c->len)
        return -1;
    if (a->len > c->len)
        return 1;
    return 0;
}

static int
pack_set(WBuf *b, PyObject *value, int depth)
{
    /* Byte-stable: order members by their own encoding (wire.py law). */
    PyObject *iter = PyObject_GetIter(value);
    if (iter == NULL)
        return -1;
    Py_ssize_t count = 0, cap = 8;
    MemberBlob *blobs = (MemberBlob *)PyMem_Malloc(sizeof(MemberBlob) * (size_t)cap);
    int status = -1;
    if (blobs == NULL) {
        PyErr_NoMemory();
        Py_DECREF(iter);
        return -1;
    }
    PyObject *item;
    while ((item = PyIter_Next(iter)) != NULL) {
        WBuf member;
        if (wbuf_init(&member, 32) < 0) {
            Py_DECREF(item);
            goto done;
        }
        if (pack_value(&member, item, depth) < 0) {
            Py_DECREF(item);
            wbuf_free(&member);
            goto done;
        }
        Py_DECREF(item);
        if (count == cap) {
            cap *= 2;
            MemberBlob *grown =
                (MemberBlob *)PyMem_Realloc(blobs, sizeof(MemberBlob) * (size_t)cap);
            if (grown == NULL) {
                PyErr_NoMemory();
                wbuf_free(&member);
                goto done;
            }
            blobs = grown;
        }
        blobs[count].data = member.data;
        blobs[count].len = member.len;
        count++; /* ownership of member.data moves into blobs */
    }
    if (PyErr_Occurred())
        goto done;
    qsort(blobs, (size_t)count, sizeof(MemberBlob), member_blob_cmp);
    if (wbuf_push(b, T_SET) < 0 || pack_uvarint64(b, (uint64_t)count) < 0)
        goto done;
    for (Py_ssize_t i = 0; i < count; i++) {
        if (wbuf_append(b, blobs[i].data, blobs[i].len) < 0)
            goto done;
    }
    status = 0;
done:
    for (Py_ssize_t i = 0; i < count; i++)
        PyMem_Free(blobs[i].data);
    PyMem_Free(blobs);
    Py_DECREF(iter);
    return status;
}

static int
pack_id_pair(WBuf *b, PyObject *value, unsigned char tag, PyObject *first_attr,
             PyObject *second_attr)
{
    PyObject *first = id_attr(value, first_attr);
    if (first == NULL)
        return -1;
    PyObject *second = id_attr(value, second_attr);
    if (second == NULL) {
        Py_DECREF(first);
        return -1;
    }
    int status = -1;
    if (wbuf_push(b, tag) == 0 && pack_zigzag_object(b, first) == 0 &&
        pack_zigzag_object(b, second) == 0)
        status = 0;
    Py_DECREF(first);
    Py_DECREF(second);
    return status;
}

static int
pack_value(WBuf *b, PyObject *value, int depth)
{
    if (depth > MAX_VALUE_DEPTH) {
        PyErr_SetString(PyExc_RecursionError,
                        "maximum value nesting exceeded while encoding binary frame");
        return -1;
    }
    depth++;
    if (value == Py_None)
        return wbuf_push(b, T_NONE);
    if (value == Py_True)
        return wbuf_push(b, T_TRUE);
    if (value == Py_False)
        return wbuf_push(b, T_FALSE);
    if (PyLong_Check(value)) {
        if (wbuf_push(b, T_INT) < 0)
            return -1;
        return pack_zigzag_object(b, value);
    }
    if (PyFloat_Check(value)) {
        if (wbuf_push(b, T_FLOAT) < 0)
            return -1;
        return pack_be_double(b, PyFloat_AS_DOUBLE(value));
    }
    if (PyUnicode_Check(value)) {
        if (wbuf_push(b, T_STR) < 0)
            return -1;
        return pack_str(b, value);
    }
    int is_mid = PyObject_IsInstance(value, cfg.message_id_cls);
    if (is_mid < 0)
        return -1;
    if (is_mid)
        return pack_id_pair(b, value, T_MID, cfg.s_sender, cfg.s_send_index);
    int is_tid = PyObject_IsInstance(value, cfg.tree_id_cls);
    if (is_tid < 0)
        return -1;
    if (is_tid)
        return pack_id_pair(b, value, T_TID, cfg.s_initiator, cfg.s_initiation_seq);
    if (PyTuple_Check(value) || PyList_Check(value)) {
        int is_tuple = PyTuple_Check(value);
        Py_ssize_t n = PySequence_Size(value);
        if (n < 0)
            return -1;
        if (wbuf_push(b, is_tuple ? T_TUPLE : T_LIST) < 0 ||
            pack_uvarint64(b, (uint64_t)n) < 0)
            return -1;
        for (Py_ssize_t i = 0; i < n; i++) {
            PyObject *item = is_tuple ? PyTuple_GET_ITEM(value, i)
                                      : PyList_GET_ITEM(value, i);
            if (pack_value(b, item, depth) < 0)
                return -1;
        }
        return 0;
    }
    if (PyAnySet_Check(value))
        return pack_set(b, value, depth);
    if (PyDict_Check(value)) {
        Py_ssize_t n = PyDict_Size(value);
        if (wbuf_push(b, T_MAP) < 0 || pack_uvarint64(b, (uint64_t)n) < 0)
            return -1;
        PyObject *key, *item;
        Py_ssize_t pos = 0;
        while (PyDict_Next(value, &pos, &key, &item)) {
            if (pack_value(b, key, depth) < 0 || pack_value(b, item, depth) < 0)
                return -1;
        }
        return 0;
    }
    /* Same lossy degradation as the JSON path: repr on the wire. */
    PyObject *repr = PyObject_Repr(value);
    if (repr == NULL)
        return -1;
    int status = -1;
    if (wbuf_push(b, T_REPR) == 0 && pack_str(b, repr) == 0)
        status = 0;
    Py_DECREF(repr);
    return status;
}

/* ------------------------------------------------------------------ */
/* Envelope encoder                                                    */
/* ------------------------------------------------------------------ */

/* Append the v2 payload of `envelope` (no length prefix) to `b`. */
static int
encode_envelope_into(WBuf *b, PyObject *envelope)
{
    if (!cfg.ready)
        return wire_error("native codec not configured");
    PyObject *body = env_attr(envelope, E_BODY, cfg.s_body);
    if (body == NULL)
        return -1;
    long kind_code = 0;
    PyObject *names = NULL; /* borrowed */
    if (body != Py_None) {
        PyObject *entry = PyDict_GetItem(cfg.encode_types, (PyObject *)Py_TYPE(body));
        if (entry == NULL) {
            /* Subclass fallback: walk the registry with isinstance, exactly
             * like the interpreted encoder's kind/isinstance check. */
            PyObject *kind, *reg_entry;
            Py_ssize_t pos = 0;
            while (PyDict_Next(cfg.registry, &pos, &kind, &reg_entry)) {
                int hit = PyObject_IsInstance(body, PyTuple_GET_ITEM(reg_entry, 1));
                if (hit < 0) {
                    Py_DECREF(body);
                    return -1;
                }
                if (hit) {
                    entry = reg_entry;
                    break;
                }
            }
            if (entry == NULL) {
                PyErr_Format(cfg.wire_error, "unregistered body type '%s'",
                             Py_TYPE(body)->tp_name);
                Py_DECREF(body);
                return -1;
            }
            kind_code = PyLong_AsLong(PyTuple_GET_ITEM(entry, 0));
            names = PyTuple_GET_ITEM(entry, 2);
        }
        else {
            kind_code = PyLong_AsLong(PyTuple_GET_ITEM(entry, 0));
            names = PyTuple_GET_ITEM(entry, 1);
        }
    }

    PyObject *category = env_attr(envelope, E_CATEGORY, cfg.s_category);
    if (category == NULL) {
        Py_DECREF(body);
        return -1;
    }
    long flags;
    if (category == cfg.control_str)
        flags = F_CONTROL;
    else if (category == cfg.normal_str)
        flags = 0;
    else {
        int eq = PyObject_RichCompareBool(category, cfg.control_str, Py_EQ);
        if (eq > 0)
            flags = F_CONTROL;
        else if (eq == 0) {
            eq = PyObject_RichCompareBool(category, cfg.normal_str, Py_EQ);
            if (eq > 0)
                flags = 0;
            else if (eq == 0) {
                PyErr_Format(cfg.wire_error, "cannot binary-encode category %R",
                             category);
                Py_DECREF(category);
                Py_DECREF(body);
                return -1;
            }
            else
                goto category_error;
        }
        else {
        category_error:
            Py_DECREF(category);
            Py_DECREF(body);
            return -1;
        }
    }
    Py_DECREF(category);

    PyObject *msg_id = env_attr(envelope, E_MSG_ID, cfg.s_msg_id);
    if (msg_id == NULL) {
        Py_DECREF(body);
        return -1;
    }
    PyObject *label = env_attr(envelope, E_LABEL, cfg.s_label);
    if (label == NULL) {
        Py_DECREF(msg_id);
        Py_DECREF(body);
        return -1;
    }
    if (msg_id != Py_None)
        flags |= F_MSGID;
    if (label != Py_None)
        flags |= F_LABEL;

    int status = -1;
    PyObject *src = NULL, *dst = NULL, *send_time = NULL;
    src = env_attr(envelope, E_SRC, cfg.s_src);
    dst = src ? env_attr(envelope, E_DST, cfg.s_dst) : NULL;
    send_time = dst ? env_attr(envelope, E_SEND_TIME, cfg.s_send_time) : NULL;
    if (send_time == NULL)
        goto done;
    double when = PyFloat_AsDouble(send_time);
    if (when == -1.0 && PyErr_Occurred())
        goto done;

    /* Fixed header: tag, kind_code, flags, src (>i), dst (>i), send_time (>d). */
    if (wbuf_push(b, cfg.binary_tag) < 0 ||
        wbuf_push(b, (unsigned char)kind_code) < 0 ||
        wbuf_push(b, (unsigned char)flags) < 0 || pack_be32(b, src) < 0 ||
        pack_be32(b, dst) < 0 || pack_be_double(b, when) < 0)
        goto done;

    if (msg_id != Py_None) {
        PyObject *sender = id_attr(msg_id, cfg.s_sender);
        if (sender == NULL)
            goto done;
        PyObject *send_index = id_attr(msg_id, cfg.s_send_index);
        if (send_index == NULL) {
            Py_DECREF(sender);
            goto done;
        }
        int rc = (pack_be32(b, sender) == 0 && pack_be64(b, send_index) == 0) ? 0 : -1;
        Py_DECREF(sender);
        Py_DECREF(send_index);
        if (rc < 0)
            goto done;
    }
    if (label != Py_None) {
        if (pack_be64(b, label) < 0)
            goto done;
    }
    if (body != Py_None && names != NULL) {
        Py_ssize_t nfields = PyTuple_GET_SIZE(names);
        for (Py_ssize_t i = 0; i < nfields; i++) {
            PyObject *field = PyObject_GetAttr(body, PyTuple_GET_ITEM(names, i));
            if (field == NULL)
                goto done;
            int rc = pack_value(b, field, 0);
            Py_DECREF(field);
            if (rc < 0)
                goto done;
        }
    }
    status = 0;
done:
    Py_XDECREF(send_time);
    Py_XDECREF(dst);
    Py_XDECREF(src);
    Py_DECREF(label);
    Py_DECREF(msg_id);
    Py_DECREF(body);
    return status;
}

/* ------------------------------------------------------------------ */
/* Decoder                                                             */
/* ------------------------------------------------------------------ */

typedef struct {
    const unsigned char *data;
    Py_ssize_t len;
    Py_ssize_t pos;
} Reader;

static int
read_uvarint(Reader *r, uint64_t *fast, PyObject **big)
{
    /* *big receives a new reference when the value exceeds 64 bits. */
    uint64_t result = 0;
    int shift = 0;
    *big = NULL;
    while (1) {
        if (r->pos >= r->len)
            return wire_error("truncated varint in binary frame");
        unsigned char byte = r->data[r->pos++];
        if (shift <= 56) {
            result |= (uint64_t)(byte & 0x7F) << shift;
            if (!(byte & 0x80)) {
                *fast = result;
                return 0;
            }
            shift += 7;
        }
        else {
            /* Arbitrary-precision continuation. */
            PyObject *acc = PyLong_FromUnsignedLongLong(result);
            if (acc == NULL)
                return -1;
            while (1) {
                PyObject *chunk = PyLong_FromLong(byte & 0x7F);
                PyObject *sh = chunk ? PyLong_FromLong(shift) : NULL;
                PyObject *shifted = sh ? PyNumber_Lshift(chunk, sh) : NULL;
                Py_XDECREF(chunk);
                Py_XDECREF(sh);
                if (shifted == NULL) {
                    Py_DECREF(acc);
                    return -1;
                }
                PyObject *merged = PyNumber_Or(acc, shifted);
                Py_DECREF(shifted);
                Py_DECREF(acc);
                if (merged == NULL)
                    return -1;
                acc = merged;
                if (!(byte & 0x80)) {
                    *big = acc;
                    return 0;
                }
                shift += 7;
                if (r->pos >= r->len) {
                    Py_DECREF(acc);
                    return wire_error("truncated varint in binary frame");
                }
                byte = r->data[r->pos++];
            }
        }
    }
}

static PyObject *
read_zigzag(Reader *r)
{
    uint64_t raw = 0;
    PyObject *big = NULL;
    if (read_uvarint(r, &raw, &big) < 0)
        return NULL;
    if (big == NULL) {
        if (!(raw & 1))
            return PyLong_FromUnsignedLongLong(raw >> 1);
        uint64_t magnitude = (raw >> 1) + 1;
        PyObject *positive = PyLong_FromUnsignedLongLong(magnitude);
        if (positive == NULL)
            return NULL;
        PyObject *negative = PyNumber_Negative(positive);
        Py_DECREF(positive);
        return negative;
    }
    PyObject *one = PyLong_FromLong(1);
    if (one == NULL) {
        Py_DECREF(big);
        return NULL;
    }
    PyObject *parity = PyNumber_And(big, one);
    int odd = parity ? PyObject_IsTrue(parity) : -1;
    Py_XDECREF(parity);
    PyObject *result = NULL;
    if (odd == 0) {
        result = PyNumber_Rshift(big, one);
    }
    else if (odd > 0) {
        PyObject *plus = PyNumber_Add(big, one);
        PyObject *half = plus ? PyNumber_Rshift(plus, one) : NULL;
        Py_XDECREF(plus);
        result = half ? PyNumber_Negative(half) : NULL;
        Py_XDECREF(half);
    }
    Py_DECREF(big);
    Py_DECREF(one);
    return result;
}

static PyObject *
read_str(Reader *r)
{
    uint64_t length = 0;
    PyObject *big = NULL;
    if (read_uvarint(r, &length, &big) < 0)
        return NULL;
    if (big != NULL) {
        Py_DECREF(big);
        wire_error("truncated string in binary frame");
        return NULL;
    }
    if (length > (uint64_t)(r->len - r->pos)) {
        wire_error("truncated string in binary frame");
        return NULL;
    }
    PyObject *result = PyUnicode_DecodeUTF8(
        (const char *)(r->data + r->pos), (Py_ssize_t)length, NULL);
    if (result != NULL)
        r->pos += (Py_ssize_t)length;
    return result;
}

/* Fast construction of a MessageId/TreeId: allocate without running the
 * (pure-Python, frozen-dataclass) __init__ and fill the instance dict with
 * exactly the two fields the generated __init__ would have set. */
static PyObject *
make_id_pair(PyObject *cls, PyObject *first_attr, PyObject *first,
             PyObject *second_attr, PyObject *second)
{
    if (cfg.fast_construct) {
        PyTypeObject *tp = (PyTypeObject *)cls;
        PyObject *inst = tp->tp_new(tp, cfg.empty_tuple, NULL);
        if (inst == NULL)
            return NULL;
        PyObject **dictptr = _PyObject_GetDictPtr(inst);
        if (dictptr != NULL) {
            if (*dictptr == NULL) {
                *dictptr = PyDict_New();
                if (*dictptr == NULL) {
                    Py_DECREF(inst);
                    return NULL;
                }
            }
            if (PyDict_SetItem(*dictptr, first_attr, first) < 0 ||
                PyDict_SetItem(*dictptr, second_attr, second) < 0) {
                Py_DECREF(inst);
                return NULL;
            }
            return inst;
        }
        Py_DECREF(inst); /* no instance dict: fall through to the ctor */
    }
    return PyObject_CallFunctionObjArgs(cls, first, second, NULL);
}

static int read_value(Reader *r, PyObject **out, int depth);

static int
read_id_pair(Reader *r, PyObject *cls, PyObject *first_attr, PyObject *second_attr,
             PyObject **out)
{
    PyObject *first = read_zigzag(r);
    if (first == NULL)
        return -1;
    PyObject *second = read_zigzag(r);
    if (second == NULL) {
        Py_DECREF(first);
        return -1;
    }
    *out = make_id_pair(cls, first_attr, first, second_attr, second);
    Py_DECREF(first);
    Py_DECREF(second);
    return (*out == NULL) ? -1 : 0;
}

static int
read_value(Reader *r, PyObject **out, int depth)
{
    if (depth > MAX_VALUE_DEPTH) {
        PyErr_SetString(PyExc_RecursionError,
                        "maximum value nesting exceeded while decoding binary frame");
        return -1;
    }
    depth++;
    if (r->pos >= r->len)
        return wire_error("truncated value in binary frame");
    unsigned char tag = r->data[r->pos++];
    switch (tag) {
    case T_NONE:
        *out = Py_None;
        Py_INCREF(*out);
        return 0;
    case T_TRUE:
        *out = Py_True;
        Py_INCREF(*out);
        return 0;
    case T_FALSE:
        *out = Py_False;
        Py_INCREF(*out);
        return 0;
    case T_INT:
        *out = read_zigzag(r);
        return (*out == NULL) ? -1 : 0;
    case T_FLOAT: {
        if (r->len - r->pos < 8)
            return wire_error("truncated float in binary frame");
        uint64_t u = 0;
        for (int i = 0; i < 8; i++)
            u = (u << 8) | r->data[r->pos + i];
        r->pos += 8;
        double d;
        memcpy(&d, &u, 8);
        *out = PyFloat_FromDouble(d);
        return (*out == NULL) ? -1 : 0;
    }
    case T_STR:
    case T_REPR:
        *out = read_str(r);
        return (*out == NULL) ? -1 : 0;
    case T_MID:
        return read_id_pair(r, cfg.message_id_cls, cfg.s_sender, cfg.s_send_index, out);
    case T_TID:
        return read_id_pair(r, cfg.tree_id_cls, cfg.s_initiator, cfg.s_initiation_seq,
                            out);
    case T_TUPLE:
    case T_LIST:
    case T_SET: {
        uint64_t count = 0;
        PyObject *big = NULL;
        if (read_uvarint(r, &count, &big) < 0)
            return -1;
        if (big != NULL) {
            Py_DECREF(big);
            return wire_error("truncated value in binary frame");
        }
        PyObject *items = PyList_New(0);
        if (items == NULL)
            return -1;
        for (uint64_t i = 0; i < count; i++) {
            PyObject *item = NULL;
            if (read_value(r, &item, depth) < 0) {
                Py_DECREF(items);
                return -1;
            }
            int rc = PyList_Append(items, item);
            Py_DECREF(item);
            if (rc < 0) {
                Py_DECREF(items);
                return -1;
            }
        }
        if (tag == T_TUPLE)
            *out = PyList_AsTuple(items);
        else if (tag == T_SET)
            *out = PySet_New(items);
        else {
            *out = items;
            return 0;
        }
        Py_DECREF(items);
        return (*out == NULL) ? -1 : 0;
    }
    case T_MAP: {
        uint64_t count = 0;
        PyObject *big = NULL;
        if (read_uvarint(r, &count, &big) < 0)
            return -1;
        if (big != NULL) {
            Py_DECREF(big);
            return wire_error("truncated value in binary frame");
        }
        PyObject *mapping = PyDict_New();
        if (mapping == NULL)
            return -1;
        for (uint64_t i = 0; i < count; i++) {
            PyObject *key = NULL, *item = NULL;
            if (read_value(r, &key, depth) < 0 ||
                read_value(r, &item, depth) < 0) {
                Py_XDECREF(key);
                Py_DECREF(mapping);
                return -1;
            }
            int rc = PyDict_SetItem(mapping, key, item);
            Py_DECREF(key);
            Py_DECREF(item);
            if (rc < 0) {
                Py_DECREF(mapping);
                return -1;
            }
        }
        *out = mapping;
        return 0;
    }
    default:
        PyErr_Format(cfg.wire_error, "unknown binary value tag %d", (int)tag);
        return -1;
    }
}

static int32_t
read_be32(const unsigned char *p)
{
    uint32_t u = ((uint32_t)p[0] << 24) | ((uint32_t)p[1] << 16) |
                 ((uint32_t)p[2] << 8) | (uint32_t)p[3];
    return (int32_t)u;
}

static int64_t
read_be64(const unsigned char *p)
{
    uint64_t u = 0;
    for (int i = 0; i < 8; i++)
        u = (u << 8) | p[i];
    return (int64_t)u;
}

/* Fast construction of an Envelope without running its Python __init__
 * (a plain field-assigning dataclass __init__; verified by the wire.py
 * probe before the native codec is trusted).  Steals no references. */
static PyObject *
make_envelope(PyObject *src, PyObject *dst, PyObject *category, PyObject *body,
              PyObject *msg_id, PyObject *label, PyObject *send_time)
{
    if (cfg.fast_construct && cfg.env_slots) {
        /* Slotted Envelope: store each field directly at its slot offset
         * (tp_new zero-fills the slots, so plain stores are safe). */
        PyTypeObject *tp = (PyTypeObject *)cfg.envelope_cls;
        PyObject *inst = tp->tp_new(tp, cfg.empty_tuple, NULL);
        if (inst == NULL)
            return NULL;
        PyObject *values[8] = {src, dst, category, body, msg_id, label, send_time,
                               cfg.zero_float};
        for (int i = 0; i < 8; i++) {
            Py_INCREF(values[i]);
            *(PyObject **)((char *)inst + cfg.env_off[i]) = values[i];
        }
        return inst;
    }
    if (cfg.fast_construct) {
        PyTypeObject *tp = (PyTypeObject *)cfg.envelope_cls;
        PyObject *inst = tp->tp_new(tp, cfg.empty_tuple, NULL);
        if (inst == NULL)
            return NULL;
        if (PyObject_SetAttr(inst, cfg.s_src, src) < 0 ||
            PyObject_SetAttr(inst, cfg.s_dst, dst) < 0 ||
            PyObject_SetAttr(inst, cfg.s_category, category) < 0 ||
            PyObject_SetAttr(inst, cfg.s_body, body) < 0 ||
            PyObject_SetAttr(inst, cfg.s_msg_id, msg_id) < 0 ||
            PyObject_SetAttr(inst, cfg.s_label, label) < 0 ||
            PyObject_SetAttr(inst, cfg.s_send_time, send_time) < 0 ||
            PyObject_SetAttr(inst, cfg.s_deliver_time, cfg.zero_float) < 0) {
            Py_DECREF(inst);
            return NULL;
        }
        return inst;
    }
    return PyObject_CallFunctionObjArgs(cfg.envelope_cls, src, dst, category, body,
                                        msg_id, label, send_time, NULL);
}

static PyObject *
decode_from_reader(Reader *r)
{
    if (!cfg.ready) {
        wire_error("native codec not configured");
        return NULL;
    }
    if (r->len < 19) { /* BBB + i + i + d */
        wire_error("truncated binary envelope header");
        return NULL;
    }
    unsigned char tag = r->data[0];
    unsigned char kind_code = r->data[1];
    unsigned char flags = r->data[2];
    if (tag != cfg.binary_tag) {
        PyErr_Format(cfg.wire_error, "bad binary frame tag 0x%02X", (int)tag);
        return NULL;
    }
    int32_t src = read_be32(r->data + 3);
    int32_t dst = read_be32(r->data + 7);
    uint64_t traw = 0;
    for (int i = 0; i < 8; i++)
        traw = (traw << 8) | r->data[11 + i];
    double send_time;
    memcpy(&send_time, &traw, 8);
    r->pos = 19;

    PyObject *msg_id = NULL, *label = NULL, *body = NULL, *result = NULL;
    PyObject *src_obj = NULL, *dst_obj = NULL, *time_obj = NULL;

    if (flags & F_MSGID) {
        if (r->len - r->pos < 12) {
            wire_error("truncated binary message id");
            goto done;
        }
        PyObject *sender = PyLong_FromLong(read_be32(r->data + r->pos));
        PyObject *send_index =
            sender ? PyLong_FromLongLong(read_be64(r->data + r->pos + 4)) : NULL;
        msg_id = send_index ? make_id_pair(cfg.message_id_cls, cfg.s_sender, sender,
                                           cfg.s_send_index, send_index)
                            : NULL;
        Py_XDECREF(sender);
        Py_XDECREF(send_index);
        if (msg_id == NULL)
            goto done;
        r->pos += 12;
    }
    else {
        msg_id = Py_None;
        Py_INCREF(msg_id);
    }
    if (flags & F_LABEL) {
        if (r->len - r->pos < 8) {
            wire_error("truncated binary label");
            goto done;
        }
        label = PyLong_FromLongLong(read_be64(r->data + r->pos));
        if (label == NULL)
            goto done;
        r->pos += 8;
    }
    else {
        label = Py_None;
        Py_INCREF(label);
    }

    if (kind_code == 0) {
        body = Py_None;
        Py_INCREF(body);
    }
    else {
        if ((Py_ssize_t)kind_code >= cfg.ndecode ||
            cfg.decode[kind_code].cls == NULL) {
            PyErr_Format(cfg.wire_error, "unknown binary body kind code %d",
                         (int)kind_code);
            goto done;
        }
        DecodeEntry *entry = &cfg.decode[kind_code];
        PyObject *values = PyTuple_New(entry->nfields);
        if (values == NULL)
            goto done;
        for (Py_ssize_t i = 0; i < entry->nfields; i++) {
            PyObject *value = NULL;
            if (read_value(r, &value, 0) < 0) {
                Py_DECREF(values);
                goto done;
            }
            PyTuple_SET_ITEM(values, i, value);
        }
        body = PyObject_Call(entry->cls, values, NULL);
        Py_DECREF(values);
        if (body == NULL) {
            if (PyErr_ExceptionMatches(PyExc_TypeError)) {
                PyObject *type, *value, *traceback;
                PyErr_Fetch(&type, &value, &traceback);
                PyErr_NormalizeException(&type, &value, &traceback);
                PyErr_Format(cfg.wire_error, "malformed %R binary body: %S",
                             entry->kind, value ? value : Py_None);
                Py_XDECREF(type);
                Py_XDECREF(value);
                Py_XDECREF(traceback);
            }
            goto done;
        }
    }

    src_obj = PyLong_FromLong(src);
    dst_obj = src_obj ? PyLong_FromLong(dst) : NULL;
    time_obj = dst_obj ? PyFloat_FromDouble(send_time) : NULL;
    if (time_obj == NULL)
        goto done;
    result = make_envelope(src_obj, dst_obj,
                           (flags & F_CONTROL) ? cfg.control_str : cfg.normal_str,
                           body, msg_id, label, time_obj);
done:
    Py_XDECREF(src_obj);
    Py_XDECREF(dst_obj);
    Py_XDECREF(time_obj);
    Py_XDECREF(msg_id);
    Py_XDECREF(label);
    Py_XDECREF(body);
    return result;
}

/* ------------------------------------------------------------------ */
/* Python-visible API                                                  */
/* ------------------------------------------------------------------ */

static PyObject *
py_encode_envelope_binary(PyObject *self, PyObject *envelope)
{
    WBuf local;
    WBuf *b = wbuf_acquire(&local);
    if (b == NULL)
        return NULL;
    if (encode_envelope_into(b, envelope) < 0) {
        wbuf_release(b);
        return NULL;
    }
    PyObject *result = PyBytes_FromStringAndSize((const char *)b->data, b->len);
    wbuf_release(b);
    return result;
}

static int
frame_into(WBuf *b, PyObject *envelope)
{
    /* Append one length-prefixed frame; returns -1 with an exception set. */
    Py_ssize_t header_at = b->len;
    static const unsigned char placeholder[4] = {0, 0, 0, 0};
    if (wbuf_append(b, placeholder, 4) < 0)
        return -1;
    if (encode_envelope_into(b, envelope) < 0)
        return -1;
    Py_ssize_t payload = b->len - header_at - 4;
    if (payload > cfg.max_frame) {
        PyErr_Format(cfg.wire_error, "frame of %zd bytes exceeds MAX_FRAME=%ld",
                     payload, cfg.max_frame);
        return -1;
    }
    uint32_t u = (uint32_t)payload;
    b->data[header_at] = (unsigned char)(u >> 24);
    b->data[header_at + 1] = (unsigned char)(u >> 16);
    b->data[header_at + 2] = (unsigned char)(u >> 8);
    b->data[header_at + 3] = (unsigned char)u;
    return 0;
}

static PyObject *
py_dumps_frame(PyObject *self, PyObject *envelope)
{
    WBuf local;
    WBuf *b = wbuf_acquire(&local);
    if (b == NULL)
        return NULL;
    if (frame_into(b, envelope) < 0) {
        wbuf_release(b);
        return NULL;
    }
    PyObject *result = PyBytes_FromStringAndSize((const char *)b->data, b->len);
    wbuf_release(b);
    return result;
}

static PyObject *
py_encode_frames(PyObject *self, PyObject *envelopes)
{
    /* One buffer of length-prefixed frames for a whole batch (v2 only). */
    PyObject *seq = PySequence_Fast(envelopes, "encode_frames needs a sequence");
    if (seq == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    WBuf local;
    WBuf *b = wbuf_acquire(&local);
    if (b == NULL) {
        Py_DECREF(seq);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        if (frame_into(b, PySequence_Fast_GET_ITEM(seq, i)) < 0) {
            wbuf_release(b);
            Py_DECREF(seq);
            return NULL;
        }
    }
    Py_DECREF(seq);
    PyObject *result = PyBytes_FromStringAndSize((const char *)b->data, b->len);
    wbuf_release(b);
    return result;
}

static PyObject *
py_decode_envelope_binary(PyObject *self, PyObject *blob)
{
    Py_buffer view;
    if (PyObject_GetBuffer(blob, &view, PyBUF_SIMPLE) < 0)
        return NULL;
    Reader r = {(const unsigned char *)view.buf, view.len, 0};
    PyObject *result = decode_from_reader(&r);
    PyBuffer_Release(&view);
    return result;
}

static PyObject *
py_roundtrip(PyObject *self, PyObject *envelope)
{
    /* Full serialize + deserialize through the v2 wire format: build the
     * length-prefixed frame, then parse the payload back — the native
     * equivalent of loads_frame(dumps_frame(env)[HEADER_SIZE:]), minus the
     * intermediate bytes objects (the zero-copy claim, measured honestly:
     * every byte of the frame is still produced and parsed). */
    WBuf local;
    WBuf *b = wbuf_acquire(&local);
    if (b == NULL)
        return NULL;
    if (frame_into(b, envelope) < 0) {
        wbuf_release(b);
        return NULL;
    }
    Reader r = {b->data + 4, b->len - 4, 0};
    PyObject *result = decode_from_reader(&r);
    wbuf_release(b);
    return result;
}

/* ------------------------------------------------------------------ */
/* configure()                                                         */
/* ------------------------------------------------------------------ */

static void
config_clear(void)
{
    Py_CLEAR(cfg.envelope_cls);
    Py_CLEAR(cfg.message_id_cls);
    Py_CLEAR(cfg.tree_id_cls);
    Py_CLEAR(cfg.wire_error);
    Py_CLEAR(cfg.struct_error);
    Py_CLEAR(cfg.control_str);
    Py_CLEAR(cfg.normal_str);
    Py_CLEAR(cfg.encode_types);
    Py_CLEAR(cfg.registry);
    if (cfg.decode != NULL) {
        for (Py_ssize_t i = 0; i < cfg.ndecode; i++) {
            Py_XDECREF(cfg.decode[i].kind);
            Py_XDECREF(cfg.decode[i].cls);
            Py_XDECREF(cfg.decode[i].names);
        }
        PyMem_Free(cfg.decode);
        cfg.decode = NULL;
        cfg.ndecode = 0;
    }
    cfg.ready = 0;
}

static PyObject *
py_configure(PyObject *self, PyObject *args, PyObject *kwargs)
{
    static char *keywords[] = {
        "envelope", "message_id", "tree_id", "wire_error", "struct_error",
        "control",  "normal",     "binary_tag", "max_frame", "encode_types",
        "registry", "decode",     "fast_construct", NULL,
    };
    PyObject *envelope, *message_id, *tree_id, *wire_err, *struct_err;
    PyObject *control, *normal, *encode_types, *registry, *decode;
    int binary_tag, fast_construct;
    long max_frame;
    if (!PyArg_ParseTupleAndKeywords(
            args, kwargs, "OOOOOOOilOOOp", keywords, &envelope, &message_id,
            &tree_id, &wire_err, &struct_err, &control, &normal, &binary_tag,
            &max_frame, &encode_types, &registry, &decode, &fast_construct))
        return NULL;
    if (!PyDict_Check(encode_types) || !PyDict_Check(registry) ||
        !PyList_Check(decode)) {
        PyErr_SetString(PyExc_TypeError,
                        "encode_types/registry must be dicts, decode a list");
        return NULL;
    }
    config_clear();
    Py_ssize_t ndecode = PyList_GET_SIZE(decode);
    cfg.decode = (DecodeEntry *)PyMem_Calloc((size_t)ndecode, sizeof(DecodeEntry));
    if (cfg.decode == NULL && ndecode > 0)
        return PyErr_NoMemory();
    cfg.ndecode = ndecode;
    for (Py_ssize_t i = 0; i < ndecode; i++) {
        PyObject *entry = PyList_GET_ITEM(decode, i);
        if (entry == Py_None)
            continue; /* code 0 = no body */
        if (!PyTuple_Check(entry) || PyTuple_GET_SIZE(entry) != 3) {
            config_clear();
            PyErr_SetString(PyExc_TypeError,
                            "decode entries must be (kind, cls, names) tuples");
            return NULL;
        }
        cfg.decode[i].kind = PyTuple_GET_ITEM(entry, 0);
        cfg.decode[i].cls = PyTuple_GET_ITEM(entry, 1);
        cfg.decode[i].names = PyTuple_GET_ITEM(entry, 2);
        Py_INCREF(cfg.decode[i].kind);
        Py_INCREF(cfg.decode[i].cls);
        Py_INCREF(cfg.decode[i].names);
        cfg.decode[i].nfields = PyTuple_GET_SIZE(cfg.decode[i].names);
    }
    cfg.envelope_cls = envelope;
    cfg.message_id_cls = message_id;
    cfg.tree_id_cls = tree_id;
    cfg.wire_error = wire_err;
    cfg.struct_error = struct_err;
    cfg.control_str = control;
    cfg.normal_str = normal;
    cfg.encode_types = encode_types;
    cfg.registry = registry;
    Py_INCREF(envelope);
    Py_INCREF(message_id);
    Py_INCREF(tree_id);
    Py_INCREF(wire_err);
    Py_INCREF(struct_err);
    Py_INCREF(control);
    Py_INCREF(normal);
    Py_INCREF(encode_types);
    Py_INCREF(registry);
    cfg.binary_tag = (unsigned char)binary_tag;
    cfg.max_frame = max_frame;
    cfg.fast_construct = fast_construct;
    PyObject *env_names[8] = {cfg.s_src, cfg.s_dst, cfg.s_category, cfg.s_body,
                              cfg.s_msg_id, cfg.s_label, cfg.s_send_time,
                              cfg.s_deliver_time};
    cfg.env_slots = 1;
    for (int i = 0; i < 8; i++) {
        cfg.env_off[i] = slot_offset(envelope, env_names[i]);
        if (cfg.env_off[i] < 0)
            cfg.env_slots = 0;
    }
    cfg.ready = 1;
    Py_RETURN_NONE;
}

static PyMethodDef methods[] = {
    {"configure", (PyCFunction)py_configure, METH_VARARGS | METH_KEYWORDS,
     "Install the body registry and identity classes (called by wire.py)."},
    {"encode_envelope_binary", py_encode_envelope_binary, METH_O,
     "The v2 payload for an envelope (no length prefix)."},
    {"decode_envelope_binary", py_decode_envelope_binary, METH_O,
     "Inverse of encode_envelope_binary; accepts any bytes-like object."},
    {"dumps_frame", py_dumps_frame, METH_O,
     "One length-prefixed v2 frame for an envelope."},
    {"encode_frames", py_encode_frames, METH_O,
     "One contiguous buffer of length-prefixed v2 frames for a batch."},
    {"roundtrip", py_roundtrip, METH_O,
     "Full v2 serialize + deserialize of one envelope."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef moduledef = {
    PyModuleDef_HEAD_INIT,
    "repro._native._wirecodec",
    "Compiled wire-v2 envelope codec (see repro/runtime/wire.py).",
    -1,
    methods,
};

PyMODINIT_FUNC
PyInit__wirecodec(void)
{
    PyObject *module = PyModule_Create(&moduledef);
    if (module == NULL)
        return NULL;
    memset(&cfg, 0, sizeof(cfg));
    cfg.s_src = PyUnicode_InternFromString("src");
    cfg.s_dst = PyUnicode_InternFromString("dst");
    cfg.s_category = PyUnicode_InternFromString("category");
    cfg.s_body = PyUnicode_InternFromString("body");
    cfg.s_msg_id = PyUnicode_InternFromString("msg_id");
    cfg.s_label = PyUnicode_InternFromString("label");
    cfg.s_send_time = PyUnicode_InternFromString("send_time");
    cfg.s_deliver_time = PyUnicode_InternFromString("deliver_time");
    cfg.s_sender = PyUnicode_InternFromString("sender");
    cfg.s_send_index = PyUnicode_InternFromString("send_index");
    cfg.s_initiator = PyUnicode_InternFromString("initiator");
    cfg.s_initiation_seq = PyUnicode_InternFromString("initiation_seq");
    cfg.zero_float = PyFloat_FromDouble(0.0);
    cfg.empty_tuple = PyTuple_New(0);
    if (cfg.empty_tuple == NULL || cfg.zero_float == NULL) {
        Py_DECREF(module);
        return NULL;
    }
    if (PyModule_AddIntConstant(module, "NATIVE_ABI", NATIVE_ABI_VERSION) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
