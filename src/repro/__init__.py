"""Reproduction of Leu & Bhargava, *Concurrent Robust Checkpointing and
Recovery in Distributed Systems* (ICDE 1988).

Quick start::

    from repro import Simulation, CheckpointProcess, RandomPeerWorkload
    from repro.net import ExponentialDelay

    sim = Simulation(seed=42, delay_model=ExponentialDelay(mean=1.0))
    procs = {i: sim.add_node(CheckpointProcess(i)) for i in range(4)}
    RandomPeerWorkload(message_rate=1.0, duration=50.0).install(sim, procs)
    procs[0].initiate_checkpoint()
    sim.run()

See DESIGN.md for the architecture and EXPERIMENTS.md for the reproduced
figures and comparison experiments.
"""

from repro.analysis import (
    check_app_states,
    check_c1,
    check_no_dangling_receives,
    check_quiescent,
    check_recovery_line,
    collect,
    reconstruct_trees,
)
from repro.core import (
    CheckpointProcess,
    ExtendedCheckpointProcess,
    PartitionCoordinator,
    ProtocolConfig,
)
from repro.errors import ConsistencyViolation, ProtocolError, ReproError
from repro.failure import FailureDetector, FailureInjector, VoteRegistry
from repro.sim import Simulation
from repro.workloads import (
    BurstyWorkload,
    ClientServerWorkload,
    PipelineWorkload,
    RandomPeerWorkload,
    RingWorkload,
    ScriptedWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "BurstyWorkload",
    "CheckpointProcess",
    "ClientServerWorkload",
    "ConsistencyViolation",
    "ExtendedCheckpointProcess",
    "FailureDetector",
    "FailureInjector",
    "PartitionCoordinator",
    "PipelineWorkload",
    "ProtocolConfig",
    "ProtocolError",
    "RandomPeerWorkload",
    "ReproError",
    "RingWorkload",
    "ScriptedWorkload",
    "Simulation",
    "VoteRegistry",
    "check_app_states",
    "check_c1",
    "check_no_dangling_receives",
    "check_quiescent",
    "check_recovery_line",
    "collect",
    "reconstruct_trees",
]
