"""Reproduction of Leu & Bhargava, *Concurrent Robust Checkpointing and
Recovery in Distributed Systems* (ICDE 1988).

Quick start::

    from repro import Simulation, CheckpointProcess, RandomPeerWorkload
    from repro.net import ExponentialDelay

    sim = Simulation(seed=42, delay_model=ExponentialDelay(mean=1.0))
    procs = {i: sim.add_node(CheckpointProcess(i)) for i in range(4)}
    RandomPeerWorkload(message_rate=1.0, duration=50.0).install(sim, procs)
    procs[0].initiate_checkpoint()
    sim.run()

See DESIGN.md for the architecture and EXPERIMENTS.md for the reproduced
figures and comparison experiments.

Attribute access is lazy (PEP 562): importing a pure submodule such as
``repro.core.engine`` must not execute the kernel imports these top-level
re-exports would otherwise trigger.
"""

from typing import Any, List

__version__ = "1.0.0"

_EXPORTS = {
    "BurstyWorkload": ("repro.workloads", "BurstyWorkload"),
    "CheckpointProcess": ("repro.core", "CheckpointProcess"),
    "ClientServerWorkload": ("repro.workloads", "ClientServerWorkload"),
    "ConsistencyViolation": ("repro.errors", "ConsistencyViolation"),
    "ExtendedCheckpointProcess": ("repro.core", "ExtendedCheckpointProcess"),
    "FailureDetector": ("repro.failure", "FailureDetector"),
    "FailureInjector": ("repro.failure", "FailureInjector"),
    "PartitionCoordinator": ("repro.core", "PartitionCoordinator"),
    "PipelineWorkload": ("repro.workloads", "PipelineWorkload"),
    "ProtocolConfig": ("repro.core", "ProtocolConfig"),
    "ProtocolError": ("repro.errors", "ProtocolError"),
    "RandomPeerWorkload": ("repro.workloads", "RandomPeerWorkload"),
    "ReproError": ("repro.errors", "ReproError"),
    "RingWorkload": ("repro.workloads", "RingWorkload"),
    "ScriptedWorkload": ("repro.workloads", "ScriptedWorkload"),
    "Simulation": ("repro.sim", "Simulation"),
    "VoteRegistry": ("repro.failure", "VoteRegistry"),
    "check_app_states": ("repro.analysis", "check_app_states"),
    "check_c1": ("repro.analysis", "check_c1"),
    "check_no_dangling_receives": ("repro.analysis", "check_no_dangling_receives"),
    "check_quiescent": ("repro.analysis", "check_quiescent"),
    "check_recovery_line": ("repro.analysis", "check_recovery_line"),
    "collect": ("repro.analysis", "collect"),
    "reconstruct_trees": ("repro.analysis", "reconstruct_trees"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))
