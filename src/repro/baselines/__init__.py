"""Baseline algorithms for the Section 5 comparison.

All run on the same simulation substrate and the same workloads as the
Leu-Bhargava processes; see DESIGN.md for the per-algorithm feature matrix.
"""

from repro.baselines.barigazzi_strigini import BarigazziStriginiProcess
from repro.baselines.base import BaselineProcess
from repro.baselines.chandy_lamport import ChandyLamportProcess
from repro.baselines.cooperative import CooperativeProcess
from repro.baselines.koo_toueg import KooTouegProcess
from repro.baselines.tamir_sequin import TamirSequinProcess
from repro.baselines.uncoordinated import UncoordinatedProcess

__all__ = [
    "BarigazziStriginiProcess",
    "BaselineProcess",
    "ChandyLamportProcess",
    "CooperativeProcess",
    "KooTouegProcess",
    "TamirSequinProcess",
    "UncoordinatedProcess",
]
