"""Koo-Toueg checkpointing and rollback-recovery [11] (baseline).

Distinguishing features reproduced from the paper's Section 5 summary:

* FIFO channels required (run it on :class:`repro.net.channel.FifoChannel`;
  the E-NONFIFO experiment deliberately runs it on a reordering channel to
  show the assumption is load-bearing);
* minimal participant sets, like Leu-Bhargava — but **no concurrency**:
  a process engaged in one instance rejects requests from any other
  instance, the rejection aborts the whole other instance, and the rejected
  initiator retries after a back-off.  Two instances can keep rejecting
  each other indefinitely — the livelock the Leu-Bhargava paper points out;
* a process may not send normal messages between taking a tentative
  checkpoint and learning the decision.

Implementation: the tree construction, two-phase commit, and rollback
machinery are inherited from the Leu-Bhargava engine (the algorithms share
them); the difference is the single-instance gate in ``_on_chkpt_req`` /
``_on_roll_req`` and the abort-and-retry behaviour on a busy rejection,
which is exactly where the two papers diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import tracekinds as T
from repro.baselines.base import BaselineProcess
from repro.core import messages as M
from repro.core.engine import ProtocolEngine
from repro.types import ProcessId, SimTime, TreeId


@dataclass(frozen=True)
class BusyReject:
    """Koo-Toueg rejection: the replier is engaged in another instance."""

    tree: TreeId
    kind = "busy_reject"
    priority = M.ChkptAck.priority


class KooTouegEngine(ProtocolEngine):
    """Single-instance coordinated checkpointing with reject-and-retry."""

    RETRY_DELAY: SimTime = 5.0

    # ------------------------------------------------------------------
    # Engagement gate
    # ------------------------------------------------------------------
    def _engaged_checkpoint(self) -> Optional[TreeId]:
        """The checkpoint instance this process is part of, if any."""
        for tree_id in self.chkpt_commit_set:
            return tree_id
        return None

    def _engaged_rollback(self) -> Optional[TreeId]:
        """The unfinished rollback instance this process is part of, if any."""
        for tree_id, state in self.trees.roll.items():
            if not state.closed:
                return tree_id
        return None

    def _engaged_instance(self) -> Optional[TreeId]:
        """The single instance this process is currently part of, if any."""
        return self._engaged_checkpoint() or self._engaged_rollback()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def initiate_checkpoint(self) -> Optional[TreeId]:
        if self._engaged_instance() is not None:
            return None  # cannot even start while engaged
        return super().initiate_checkpoint()

    def _on_chkpt_req(self, src: ProcessId, req: M.ChkptReq) -> None:
        engaged = self._engaged_instance()
        if engaged is not None and engaged != req.tree:
            # "All other instances will be rejected."
            self._send_control(src, BusyReject(tree=req.tree))
            return
        super()._on_chkpt_req(src, req)

    def _on_busy_reject(self, src: ProcessId, msg: BusyReject) -> None:
        """A member of our instance is engaged elsewhere: abort and retry."""
        tree = self.trees.chkpt.get(msg.tree)
        if tree is not None and not tree.closed:
            self._trace(T.K_INSTANCE_REJECTED, tree=msg.tree)
            if not tree.is_root:
                # Cascade the rejection up so the root learns and retries.
                self._send_control(tree.parent, BusyReject(tree=msg.tree))
            self._abort_instance(msg.tree)
            self._remember_decision(msg.tree, "abort")
            if tree.is_root:
                self._schedule_retry()
            return
        roll = self.trees.roll.get(msg.tree)
        if roll is not None and not roll.closed:
            # A rollback cannot be abandoned; retry the rejected child later.
            self._set_timer(
                f"roll-retry-{msg.tree}-{src}",
                self.RETRY_DELAY,
                lambda: self._retry_roll_child(msg.tree, src),
            )

    def _schedule_retry(self) -> None:
        self._set_timer(
            "kt-retry", self.RETRY_DELAY, self._retry_checkpoint, jitter=("kt-retry", 0.0, 1.0)
        )

    def _retry_checkpoint(self) -> None:
        if self.initiate_checkpoint() is None and not self.crashed:
            self._schedule_retry()

    # ------------------------------------------------------------------
    # Rollback
    # ------------------------------------------------------------------
    def _on_roll_req(self, src: ProcessId, req: M.RollReq) -> None:
        engaged_roll = self._engaged_rollback()
        if engaged_roll is not None and engaged_roll != req.tree:
            # Two rollback instances serialise; the requester retries.
            self._send_control(src, BusyReject(tree=req.tree))
            return
        engaged_ckpt = self._engaged_checkpoint()
        if engaged_ckpt is not None and engaged_ckpt != req.tree:
            state = self.trees.chkpt.get(engaged_ckpt)
            if state is not None and state.responded and not state.closed:
                # Already voted for the checkpoint instance: we are in the
                # 2PC uncertainty window and cannot unilaterally abort.
                # The rollback waits (its requester retries).
                self._send_control(src, BusyReject(tree=req.tree))
                return
            # Not yet voted: a rollback preempts the in-progress checkpoint
            # instance — failures take precedence (the paper's b5/b6
            # priority; Koo-Toueg aborts checkpointing at recovery).
            self._preempt_checkpoint(engaged_ckpt)
        super()._on_roll_req(src, req)

    def _preempt_checkpoint(self, tree_id: TreeId) -> None:
        """Abort our checkpoint instance so a rollback can proceed.

        Non-roots also tell their parent, whose cascade carries the abort to
        the root (which then retries after its back-off).
        """
        state = self.trees.chkpt.get(tree_id)
        if state is not None and not state.closed and not state.is_root:
            self._send_control(state.parent, BusyReject(tree=tree_id))
        self._trace(T.K_INSTANCE_REJECTED, tree=tree_id)
        self._abort_instance(tree_id)
        self._remember_decision(tree_id, "abort")

    def _retry_roll_child(self, tree_id: TreeId, child: ProcessId) -> None:
        state = self.trees.roll.get(tree_id)
        if state is None or state.closed or self.crashed:
            return
        # Re-issue the original request parameters for the rejected child.
        undone = [r for r in self.ledger.sent if r.undone and r.dst == child]
        if not undone:
            state.drop_child(child)
            self._roll_maybe_complete(state)
            return
        undo_seq = min(r.label for r in undone)
        state.pending_acks.add(child)
        self._send_control(
            child, M.RollReq(tree=tree_id, undo_seq=undo_seq, undone_upto=self.ledger.n)
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_control(self, src: ProcessId, body) -> None:
        if isinstance(body, BusyReject):
            self._trace(T.K_CTRL_RECEIVE, src=src, msg_type=body.kind, tree=body.tree)
            self._on_busy_reject(src, body)
            return
        super()._dispatch_control(src, body)


class KooTouegProcess(BaselineProcess):
    """Adapter driving :class:`KooTouegEngine`."""

    algorithm_name = "koo-toueg"
    engine_class = KooTouegEngine
