"""Tamir-Séquin global checkpointing [20] (baseline).

Distinguishing features reproduced from the paper's Section 5 summary:

* **all** processes in the system take checkpoints (or roll back) together,
  regardless of who communicated with whom — maximally simple, maximally
  disruptive (the "forced processes" metric equals n-1 on every instance);
* a process may not resume normal operation between taking its tentative
  checkpoint and the coordinator's commit.

Architecture, matching the original system: a *single static coordinator*
(the lowest process id) serialises every global operation.  A process that
wants to checkpoint or roll back sends a request to the coordinator, which
runs one flat two-phase operation at a time over the whole process set —
checkpoint (freeze -> acks -> commit) or rollback (restore -> acks).  The
FIFO channels from the coordinator guarantee every process observes the
decisions and restores in the same global order, which is what makes
"everyone restores the last committed checkpoint" a consistent line.

In-transit application messages that straddle a global restore are dropped
via an incarnation stamp, modelling the original system's channel flush.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro import tracekinds as T
from repro.baselines.base import BaselineProcess
from repro.core import messages as M
from repro.core.engine import ProtocolEngine
from repro.net.message import Envelope
from repro.types import ProcessId, TreeId


@dataclass(frozen=True)
class CoordRequest:
    """Ask the static coordinator to run a global operation."""

    op: str  # "checkpoint" | "rollback"
    kind = "coord_request"
    priority = M.ChkptReq.priority


@dataclass(frozen=True)
class GlobalFreeze:
    """Coordinator asks everyone to take a tentative checkpoint."""

    tree: TreeId
    kind = "global_freeze"
    priority = M.ChkptReq.priority


@dataclass(frozen=True)
class GlobalRollback:
    """Coordinator asks everyone to restore the last committed checkpoint."""

    tree: TreeId
    kind = "global_rollback"
    priority = M.RollReq.priority


class TamirSequinEngine(ProtocolEngine):
    """System-wide coordinated checkpointing under a static coordinator."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Participant state.
        self._current: Optional[TreeId] = None  # pending tentative's instance
        self.incarnation = 0  # counts global restores; stamps normal sends
        # Coordinator state (used only on the lowest-id process).
        self._op_queue: List[Tuple[str, TreeId]] = []
        self._busy: Optional[TreeId] = None
        self._op_kind: Optional[str] = None
        self._acks: Set[ProcessId] = set()

    # ------------------------------------------------------------------
    # Incarnation-stamped normal plane
    # ------------------------------------------------------------------
    def _current_incarnation(self) -> int:
        return self.incarnation

    def _on_normal(self, envelope: Envelope) -> None:
        if envelope.body.incarnation < self.incarnation:
            # The message straddles a global restore: channel-flush drop.
            self._trace(
                T.K_DISCARD, msg_id=envelope.msg_id, src=envelope.src, label=envelope.label,
                reason="stale_incarnation",
            )
            return
        super()._on_normal(envelope)

    # ------------------------------------------------------------------
    # Driver API: route everything through the coordinator
    # ------------------------------------------------------------------
    @property
    def _coordinator(self) -> ProcessId:
        return min(self.peers)

    def initiate_checkpoint(self) -> Optional[TreeId]:
        if self.crashed:
            return None
        if self.node_id == self._coordinator:
            return self._enqueue_op("checkpoint")
        self._send_control(self._coordinator, CoordRequest(op="checkpoint"))
        return None

    def initiate_rollback(self) -> Optional[TreeId]:
        if self.crashed:
            return None
        if self.node_id == self._coordinator:
            return self._enqueue_op("rollback")
        self._send_control(self._coordinator, CoordRequest(op="rollback"))
        return None

    # ------------------------------------------------------------------
    # Coordinator: one global operation at a time
    # ------------------------------------------------------------------
    def _enqueue_op(self, op: str) -> TreeId:
        tree_id = self._new_tree_id()
        self._op_queue.append((op, tree_id))
        self._trace(T.K_INSTANCE_START, tree=tree_id, instance=op)
        self._maybe_start_op()
        return tree_id

    def _maybe_start_op(self) -> None:
        if self._busy is not None or not self._op_queue:
            return
        op, tree_id = self._op_queue.pop(0)
        self._busy, self._op_kind, self._acks = tree_id, op, set()
        others = [p for p in self.peers if p != self.node_id]
        if op == "checkpoint":
            self._take_tentative(tree_id)
            for pid in others:
                self._send_control(pid, GlobalFreeze(tree=tree_id))
            if not others:
                self._finish_checkpoint_op()
        else:
            self._global_restore(tree_id)
            for pid in others:
                self._send_control(pid, GlobalRollback(tree=tree_id))
            if not others:
                self._finish_rollback_op()

    def _on_coord_request(self, src: ProcessId, req: CoordRequest) -> None:
        self._enqueue_op(req.op)

    def _on_chkpt_ack(self, src: ProcessId, ack: M.ChkptAck) -> None:
        if self._busy != ack.tree or self._op_kind != "checkpoint":
            return
        self._acks.add(src)
        if self._acks >= set(self.peers) - {self.node_id}:
            self._finish_checkpoint_op()

    def _on_roll_ack(self, src: ProcessId, ack: M.RollAck) -> None:
        if self._busy != ack.tree or self._op_kind != "rollback":
            return
        self._acks.add(src)
        if self._acks >= set(self.peers) - {self.node_id}:
            self._finish_rollback_op()

    def _finish_checkpoint_op(self) -> None:
        tree_id = self._busy
        for pid in self.peers:
            if pid != self.node_id:
                self._send_control(pid, M.Commit(tree=tree_id))
        self._local_commit(tree_id)
        self._trace(T.K_INSTANCE_COMMIT, tree=tree_id)
        self._busy = self._op_kind = None
        self._maybe_start_op()

    def _finish_rollback_op(self) -> None:
        tree_id = self._busy
        self._trace(T.K_INSTANCE_COMMIT, tree=tree_id)
        self._busy = self._op_kind = None
        self._maybe_start_op()

    # ------------------------------------------------------------------
    # Participant actions
    # ------------------------------------------------------------------
    def _take_tentative(self, tree_id: TreeId) -> None:
        seq = self.ledger.advance()
        self.store.take_new(seq, self.app.snapshot(), made_at=self.now, **self._ledger_manifest())
        self._current = tree_id
        self.chkpt_commit_set = {tree_id}
        self._persist_commit_set()
        self._suspend_send()
        self._trace(T.K_CHKPT_TENTATIVE, seq=seq, tree=tree_id)

    def _on_global_freeze(self, src: ProcessId, msg: GlobalFreeze) -> None:
        if self._current != msg.tree:
            self._take_tentative(msg.tree)
        self._send_control(src, M.ChkptAck(tree=msg.tree, positive=True))

    def _local_commit(self, tree_id: TreeId) -> None:
        if self.store.newchkpt is not None and tree_id in self.chkpt_commit_set:
            committed = self.store.commit_new()
            self.committed_history.append(committed)
            self._trace(T.K_CHKPT_COMMIT, seq=committed.seq, tree=tree_id)
        self.chkpt_commit_set = set()
        self._persist_commit_set()
        self._current = None
        self._resume_send()
        self._remember_decision(tree_id, "commit")

    def _on_commit(self, src: ProcessId, msg: M.Commit) -> None:
        if msg.tree == self._current:
            self._local_commit(msg.tree)

    def _on_global_rollback(self, src: ProcessId, msg: GlobalRollback) -> None:
        self._global_restore(msg.tree)
        self._send_control(src, M.RollAck(tree=msg.tree, positive=True))

    def _global_restore(self, tree_id: TreeId) -> None:
        """Restore the last committed checkpoint and renumber the interval.

        The coordinator's FIFO channel ordering guarantees every process
        received the decisions of all earlier instances before this
        restore, so "last committed" is the same global generation
        everywhere (no tentative can be pending here).
        """
        self.incarnation += 1
        self.output_queue.clear()
        target = self.store.oldchkpt
        self.app.restore(target.state)
        undone_sends, undone_receives = self.ledger.undo_for_rollback(target.seq)
        self._trace(
            T.K_ROLLBACK, to_seq=target.seq, tree=tree_id, target="oldchkpt",
            undone_sends=len(undone_sends), undone_receives=len(undone_receives),
        )
        for record in undone_sends:
            self._trace(
                T.K_UNDO_SEND, msg_id=record.msg_id, dst=record.dst, label=record.label
            )
        for record in undone_receives:
            self._trace(
                T.K_UNDO_RECEIVE, msg_id=record.msg_id, src=record.src, label=record.label
            )
        new_interval = self.ledger.advance()
        self._trace(T.K_RESTART, new_interval=new_interval)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_control(self, src: ProcessId, body) -> None:
        if isinstance(body, (CoordRequest, GlobalFreeze, GlobalRollback)):
            self._trace(
                T.K_CTRL_RECEIVE, src=src, msg_type=body.kind, tree=getattr(body, "tree", None)
            )
            if isinstance(body, CoordRequest):
                self._on_coord_request(src, body)
            elif isinstance(body, GlobalFreeze):
                self._on_global_freeze(src, body)
            else:
                self._on_global_rollback(src, body)
            return
        super()._dispatch_control(src, body)


class TamirSequinProcess(BaselineProcess):
    """Adapter driving :class:`TamirSequinEngine`."""

    algorithm_name = "tamir-sequin"
    engine_class = TamirSequinEngine
