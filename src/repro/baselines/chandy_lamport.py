"""Chandy-Lamport distributed snapshots [4] (baseline / reference point).

The Leu-Bhargava extension borrows its marker idea from this classic
algorithm, and the Section 5 discussion contrasts both coordinated
checkpointing schemes against it, so we include a faithful implementation:

* the initiator records its state and sends a *marker* on every outgoing
  channel;
* on the first marker for a snapshot, a process records its state, starts
  recording every incoming channel, and sends markers on all its channels;
* per channel, recording stops when that channel's marker arrives; the
  messages recorded in between are the channel state;
* the snapshot is complete at a process once markers arrived on all
  incoming channels.

Assumes FIFO channels (markers separate pre- and post-snapshot messages on
a channel; on a reordering channel the recorded "channel state" is wrong —
exactly what the E-NONFIFO experiment demonstrates).  There is no commit
phase and no rollback protocol: Chandy-Lamport detects global states, it
does not manage recovery — the comparison metrics of interest are scope
(every process participates) and message cost (one marker per channel,
n*(n-1) total).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from repro import tracekinds as T
from repro.baselines.base import BaselineProcess
from repro.core.engine import ProtocolEngine
from repro.net.message import Envelope
from repro.priorities import PRIORITY_CHECKPOINT
from repro.types import ProcessId, TreeId


@dataclass(frozen=True)
class Marker:
    """The snapshot marker, sent once per (snapshot, channel)."""

    tree: TreeId
    kind = "marker"
    priority = PRIORITY_CHECKPOINT


@dataclass
class SnapshotState:
    """Per-snapshot bookkeeping at one process."""

    tree: TreeId
    state: Any = None
    recorded_at_seq: int = 0
    # channel (src) -> recorded in-transit messages; channel removed from
    # `recording` once its marker arrives.
    channel_state: Dict[ProcessId, List[Any]] = None
    recording: Set[ProcessId] = None
    complete: bool = False

    def __post_init__(self) -> None:
        if self.channel_state is None:
            self.channel_state = {}
        if self.recording is None:
            self.recording = set()


class ChandyLamportEngine(ProtocolEngine):
    """Marker-based global snapshots on a complete FIFO topology."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.snapshots: Dict[TreeId, SnapshotState] = {}

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def initiate_checkpoint(self) -> Optional[TreeId]:
        if self.crashed:
            return None
        tree_id = self._new_tree_id()
        self._trace(T.K_INSTANCE_START, tree=tree_id, instance="checkpoint")
        self._record_local(tree_id)
        return tree_id

    def _record_local(self, tree_id: TreeId) -> None:
        """Record own state and emit markers on every outgoing channel."""
        snapshot = SnapshotState(tree=tree_id)
        snapshot.state = self.app.snapshot()
        seq = self.ledger.advance()
        snapshot.recorded_at_seq = seq
        others = [p for p in self.peers if p != self.node_id]
        snapshot.recording = set(others)
        self.snapshots[tree_id] = snapshot
        # The snapshot is also this process's checkpoint: committed
        # immediately (Chandy-Lamport has no decision phase).
        self.store.take_new(seq, snapshot.state, made_at=self.now, **self._ledger_manifest())
        self.committed_history.append(self.store.commit_new())
        self._trace(T.K_CHKPT_TENTATIVE, seq=seq, tree=tree_id)
        self._trace(T.K_CHKPT_COMMIT, seq=seq, tree=tree_id)
        for pid in others:
            self._send_control(pid, Marker(tree=tree_id))
        if not others:
            self._finish_snapshot(snapshot)

    def _on_marker(self, src: ProcessId, marker: Marker) -> None:
        snapshot = self.snapshots.get(marker.tree)
        if snapshot is None:
            # First marker: record state, start recording other channels.
            self._record_local(marker.tree)
            snapshot = self.snapshots[marker.tree]
        # The channel the marker arrived on stops recording; its state is
        # whatever arrived between our recording point and this marker.
        snapshot.recording.discard(src)
        if not snapshot.recording:
            self._finish_snapshot(snapshot)

    def _finish_snapshot(self, snapshot: SnapshotState) -> None:
        if snapshot.complete:
            return
        snapshot.complete = True
        if snapshot.tree.initiator == self.node_id:
            self._trace(T.K_INSTANCE_COMMIT, tree=snapshot.tree)

    # ------------------------------------------------------------------
    # Channel recording piggybacks on normal delivery
    # ------------------------------------------------------------------
    def _on_normal(self, envelope: Envelope) -> None:
        for snapshot in self.snapshots.values():
            if not snapshot.complete and envelope.src in snapshot.recording:
                snapshot.channel_state.setdefault(envelope.src, []).append(
                    envelope.body.payload
                )
        super()._on_normal(envelope)

    # ------------------------------------------------------------------
    # No rollback protocol
    # ------------------------------------------------------------------
    def initiate_rollback(self) -> Optional[TreeId]:
        """Chandy-Lamport detects states; it has no recovery protocol."""
        return None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_control(self, src: ProcessId, body) -> None:
        if isinstance(body, Marker):
            self._trace(T.K_CTRL_RECEIVE, src=src, msg_type=body.kind, tree=body.tree)
            self._on_marker(src, body)
            return
        super()._dispatch_control(src, body)


class ChandyLamportProcess(BaselineProcess):
    """Adapter driving :class:`ChandyLamportEngine`."""

    algorithm_name = "chandy-lamport"
    engine_class = ChandyLamportEngine
