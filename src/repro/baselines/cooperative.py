"""Cooperative partial snapshots (Nakamura et al., arXiv:2103.15285).

The sixth comparison baseline: where Leu-Bhargava and Koo-Toueg recruit
along the *message-dependency tree* and Chandy-Lamport floods every
channel, the cooperative partial-snapshot algorithm (CPS) scopes each
snapshot instance to the initiator's *dependency set* — the processes it
exchanged messages with since its last committed checkpoint — and lets
concurrent overlapping instances **cooperate** instead of aborting one
another:

* the initiator takes a tentative checkpoint and sends ``SnapReq`` to
  every member of its dependency set (on FIFO channels the request plays
  the marker role: it precedes every post-checkpoint message on the same
  channel, so no recruit records an orphan receive);
* a recruited process takes its own tentative checkpoint and *expands the
  group* with its own dependencies (transitively), reporting the additions
  upward in its ``SnapAck`` so the initiator learns the final roster;
* a process that already holds a tentative checkpoint for another
  instance does **not** take a second one: if that checkpoint still
  reflects its every send, it lends it to the new instance and acks
  immediately — one checkpoint serves every instance whose groups overlap
  (the paper's "cooperation").  A tentative made stale by later sends
  cannot be lent (the borrower's cut would orphan those sends), so the
  process answers ``SnapNack`` and the requesting instance aborts — the
  conservative stand-in for the paper's full group-merging machinery;
* messages sent *while holding* a tentative piggyback the sharing
  instances' ids (the paper's snapshot-id propagation): such a message is
  post-cut for those instances, so a receiver that consumes it without
  already holding a cut of its own for them records the instances as
  *post-cut contaminated* and answers any later ``SnapReq`` for them with
  ``SnapNack`` — otherwise its tentative would reflect a receive the
  group member's cut never sent (an orphan the early group member cannot
  detect, since late recruits join through *other* members' requests);
* once every (transitively recruited) member has acked, the initiator
  broadcasts ``SnapCommit`` to the collected group.  Committing a lent
  checkpoint is idempotent, and a shared tentative survives the abort of
  one sharing instance while another is still live.

A crash-safety valve replaces the paper's failure handling: the initiator
arms one timer per instance and aborts if the group does not complete in
time.  Like Chandy-Lamport there is no rollback protocol: the comparison
metrics of interest are *scope* (group size vs. n) and message cost under
identical workloads — and, for E-CHURN, how a dependency-scoped protocol
rides membership churn, since a join only matters once the joiner appears
in someone's dependency set and a graceful leave simply drops the
departed pid from every open group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import tracekinds as T
from repro.baselines.base import BaselineProcess
from repro.core import events as EV
from repro.core.engine import ProtocolEngine
from repro.priorities import PRIORITY_CHECKPOINT
from repro.types import ProcessId, TreeId


@dataclass(frozen=True)
class SnapReq:
    """Recruit the receiver into a partial-snapshot group."""

    tree: TreeId
    kind = "snap_req"
    priority = PRIORITY_CHECKPOINT


@dataclass(frozen=True)
class SnapAck:
    """Subtree complete; ``added`` are the members it recruited."""

    tree: TreeId
    added: Tuple[ProcessId, ...] = ()
    kind = "snap_ack"
    priority = PRIORITY_CHECKPOINT


@dataclass(frozen=True)
class SnapNack:
    """Recruitment refused: the receiver's tentative is stale and cannot
    be lent, so the requesting instance must abort."""

    tree: TreeId
    kind = "snap_nack"
    priority = PRIORITY_CHECKPOINT


@dataclass(frozen=True)
class SnapCommit:
    """Initiator's decision: make the tentative checkpoint permanent."""

    tree: TreeId
    kind = "snap_commit"
    priority = PRIORITY_CHECKPOINT


@dataclass(frozen=True)
class SnapAbort:
    """Abort the instance; propagated down the recruitment tree."""

    tree: TreeId
    kind = "snap_abort"
    priority = PRIORITY_CHECKPOINT


@dataclass
class CoopState:
    """Per-instance bookkeeping at one group member."""

    tree: TreeId
    parent: Optional[ProcessId] = None  # None at the initiator
    pending: Set[ProcessId] = field(default_factory=set)
    # Members this subtree added beyond what the parent knew; reported
    # upward so the initiator can address the commit/abort broadcast.
    recruited: Set[ProcessId] = field(default_factory=set)
    group: Set[ProcessId] = field(default_factory=set)  # initiator only
    responded: bool = False
    closed: bool = False


class CooperativeSnapshotEngine(ProtocolEngine):
    """Dependency-scoped snapshots with cooperative instance sharing."""

    #: Initiator-side deadline before an instance is presumed wedged
    #: (a member crashed before acking) and aborted.
    COOP_TIMEOUT = 50.0

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.coop: Dict[TreeId, CoopState] = {}
        # Every instance sharing the currently-held tentative checkpoint
        # (the taker plus borrowers).  The tentative is discarded only when
        # the last sharer aborts; any sharer's commit commits it for all.
        self.tentative_trees: Set[TreeId] = set()
        # Committed group sizes, for the scope metric in E-CHURN.
        self.snapshot_group_sizes: List[int] = []
        # Instances whose cut this process's state has already outrun: we
        # consumed a message a group member sent *after* its tentative for
        # them.  Joining such an instance would make that receive an
        # orphan, so SnapReqs for these trees are refused.  Entries are
        # pruned when the instance's decision reaches us; a never-heard
        # decision leaves a stale (harmlessly conservative) entry.
        self.post_cut: Set[TreeId] = set()

    # ------------------------------------------------------------------
    # Dependency set and tentative-checkpoint plumbing
    # ------------------------------------------------------------------
    def _dependency_set(self) -> Set[ProcessId]:
        """Processes exchanged with since the last committed checkpoint."""
        base = self.store.oldchkpt.seq if self.store.oldchkpt is not None else 0
        deps = set(self.ledger.senders_in_range(base, self.ledger.n))
        for record in self.ledger.live_sends():
            if record.label >= base:
                deps.add(record.dst)
        deps.discard(self.node_id)
        deps -= self.departed_peers
        return deps & set(self.peers)

    def _take_tentative(self, tree_id: TreeId) -> None:
        seq = self.ledger.advance()
        self.store.take_new(
            seq, self.app.snapshot(), made_at=self.now, **self._ledger_manifest()
        )
        self.tentative_trees = {tree_id}
        self._trace(T.K_CHKPT_TENTATIVE, seq=seq, tree=tree_id)

    def _tentative_is_lendable(self) -> bool:
        """A tentative can be lent only while it reflects every send this
        process has made — a later send would be an orphan in the
        borrower's cut."""
        seq = self.store.newchkpt.seq
        return not any(r.label >= seq for r in self.ledger.live_sends())

    def _commit_local(self, tree_id: TreeId) -> None:
        """Commit the tentative checkpoint (idempotent for shared ones)."""
        if self.store.newchkpt is None or tree_id not in self.tentative_trees:
            return  # an overlapping instance already committed it
        seq = self.store.newchkpt.seq
        self.committed_history.append(self.store.commit_new())
        self.tentative_trees = set()
        self._trace(T.K_CHKPT_COMMIT, seq=seq, tree=tree_id)

    def _release_tentative(self, tree_id: TreeId) -> None:
        """Drop one sharer; discard the tentative once nobody shares it."""
        self.tentative_trees.discard(tree_id)
        if not self.tentative_trees and self.store.newchkpt is not None:
            self.store.discard_new()

    # ------------------------------------------------------------------
    # Snapshot-id piggybacking (post-cut receive detection)
    # ------------------------------------------------------------------
    def _current_markers(self) -> tuple:
        """Normal sends carry the ids of every instance sharing the held
        tentative: for those instances this send is post-cut."""
        if not self.tentative_trees:
            return ()
        return tuple(
            sorted(self.tentative_trees, key=lambda t: (t.initiator, t.initiation_seq))
        )

    def _before_consume_normal(self, src: ProcessId, body) -> None:
        for tree in body.markers:
            if tree not in self.tentative_trees:
                # The sender's cut for ``tree`` predates this message; ours
                # (if we are ever recruited) would not.  Remember the
                # mismatch so we refuse to join with an orphaning cut.
                self.post_cut.add(tree)

    # ------------------------------------------------------------------
    # Initiation
    # ------------------------------------------------------------------
    def initiate_checkpoint(self) -> Optional[TreeId]:
        if self.crashed:
            return None
        if self.store.newchkpt is not None:
            # Already inside an instance; its commit covers this request.
            return None
        tree_id = self._new_tree_id()
        self._trace(T.K_INSTANCE_START, tree=tree_id, instance="checkpoint")
        self._take_tentative(tree_id)
        deps = self._dependency_set()
        state = CoopState(tree=tree_id, pending=set(deps), group={self.node_id} | deps)
        self.coop[tree_id] = state
        if not deps:
            self._commit_instance(state)
            return tree_id
        for pid in sorted(deps):
            self._send_control(pid, SnapReq(tree=tree_id))
        self._set_timer(
            self._timer_name(tree_id),
            self.COOP_TIMEOUT,
            lambda: self._abort_instance_coop(self.coop.get(tree_id), "timeout"),
        )
        return tree_id

    @staticmethod
    def _timer_name(tree_id: TreeId) -> str:
        return f"coop-{tree_id.initiator}-{tree_id.initiation_seq}"

    # ------------------------------------------------------------------
    # Recruitment (member side)
    # ------------------------------------------------------------------
    def _on_snap_req(self, src: ProcessId, msg: SnapReq) -> None:
        if msg.tree in self.coop:
            # A second recruiter reached us; we are already in the group.
            self._send_control(src, SnapAck(tree=msg.tree))
            return
        if msg.tree in self.post_cut:
            # We already consumed a message some group member sent after
            # its cut for this instance; any cut we contribute now would
            # record that receive as an orphan.
            self._send_control(src, SnapNack(tree=msg.tree))
            return
        if self.store.newchkpt is not None:
            if self._tentative_is_lendable():
                # Cooperative sharing: lend the tentative checkpoint held
                # for another instance instead of aborting or blocking.
                self.tentative_trees.add(msg.tree)
            else:
                self._send_control(src, SnapNack(tree=msg.tree))
                return
        else:
            self._take_tentative(msg.tree)
        # Whether the cut is fresh or lent, the borrowing instance must
        # recruit this cut's dependency set: every sender whose message
        # the cut reflects needs a matching cut *in this group* — the
        # instance that originally recruited the lender may abort and
        # discard those matching cuts while this one goes on to commit.
        # (The current ledger's dependency set is a superset of the cut's;
        # extra members cost messages, missing members cost consistency.)
        deps = self._dependency_set() - {src}
        state = CoopState(
            tree=msg.tree, parent=src, pending=set(deps), recruited=set(deps)
        )
        self.coop[msg.tree] = state
        if not deps:
            state.responded = True
            self._send_control(src, SnapAck(tree=msg.tree))
            return
        for pid in sorted(deps):
            self._send_control(pid, SnapReq(tree=msg.tree))

    def _on_snap_ack(self, src: ProcessId, msg: SnapAck) -> None:
        state = self.coop.get(msg.tree)
        if state is None or state.closed:
            return
        state.pending.discard(src)
        state.recruited |= set(msg.added)
        state.group |= set(msg.added)
        self._coop_maybe_complete(state)

    def _on_snap_nack(self, src: ProcessId, msg: SnapNack) -> None:
        state = self.coop.get(msg.tree)
        if state is None or state.closed:
            return
        if state.parent is not None:
            self._send_control(state.parent, SnapNack(tree=msg.tree))
        self._abort_instance_coop(state, "nack")

    def _coop_maybe_complete(self, state: CoopState) -> None:
        if state.closed or state.pending:
            return
        if state.parent is None:
            self._commit_instance(state)
        elif not state.responded:
            state.responded = True
            self._send_control(
                state.parent,
                SnapAck(tree=state.tree, added=tuple(sorted(state.recruited))),
            )

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def _commit_instance(self, state: CoopState) -> None:
        state.closed = True
        self.cancel_timer(self._timer_name(state.tree))
        for pid in sorted(state.group - {self.node_id}):
            self._send_control(pid, SnapCommit(tree=state.tree))
        self._commit_local(state.tree)
        self.snapshot_group_sizes.append(len(state.group))
        self._trace(T.K_INSTANCE_COMMIT, tree=state.tree, group=len(state.group))

    def _on_snap_commit(self, src: ProcessId, msg: SnapCommit) -> None:
        self.post_cut.discard(msg.tree)
        state = self.coop.get(msg.tree)
        if state is None or state.closed:
            return
        state.closed = True
        self._commit_local(msg.tree)

    def _abort_instance_coop(self, state: Optional[CoopState], reason: str) -> None:
        if state is None or state.closed:
            return
        state.closed = True
        # Propagate down the recruitment tree (and, at the initiator, to
        # the whole collected group); duplicates are absorbed by the
        # closed-state guard at the receiver.
        targets = (state.group | state.recruited | state.pending) - {self.node_id}
        for pid in sorted(targets):
            self._send_control(pid, SnapAbort(tree=state.tree))
        self._release_tentative(state.tree)
        if state.parent is None:
            self.cancel_timer(self._timer_name(state.tree))
            self._trace(T.K_INSTANCE_ABORT, tree=state.tree, reason=reason)

    def _on_snap_abort(self, src: ProcessId, msg: SnapAbort) -> None:
        self.post_cut.discard(msg.tree)
        state = self.coop.get(msg.tree)
        if state is None or state.closed:
            return
        state.closed = True
        for pid in sorted((state.recruited | state.pending) - {self.node_id, src}):
            self._send_control(pid, SnapAbort(tree=msg.tree))
        self._release_tentative(msg.tree)

    # ------------------------------------------------------------------
    # Membership churn: drop departed members from open groups
    # ------------------------------------------------------------------
    def _ev_leave(self, event: EV.Leave) -> None:
        super()._ev_leave(event)
        if event.pid == self.node_id:
            for state in self.coop.values():
                state.closed = True
            self.tentative_trees = set()
            return
        for state in list(self.coop.values()):
            if state.closed:
                continue
            state.pending.discard(event.pid)
            state.group.discard(event.pid)
            state.recruited.discard(event.pid)
            self._coop_maybe_complete(state)

    # ------------------------------------------------------------------
    # No rollback protocol (like Chandy-Lamport, CPS detects states)
    # ------------------------------------------------------------------
    def initiate_rollback(self) -> Optional[TreeId]:
        return None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_control(self, src: ProcessId, body) -> None:
        if isinstance(body, (SnapReq, SnapAck, SnapNack, SnapCommit, SnapAbort)):
            self._trace(T.K_CTRL_RECEIVE, src=src, msg_type=body.kind, tree=body.tree)
            handler = {
                SnapReq: self._on_snap_req,
                SnapAck: self._on_snap_ack,
                SnapNack: self._on_snap_nack,
                SnapCommit: self._on_snap_commit,
                SnapAbort: self._on_snap_abort,
            }[type(body)]
            handler(src, body)
            return
        super()._dispatch_control(src, body)


class CooperativeProcess(BaselineProcess):
    """Adapter driving :class:`CooperativeSnapshotEngine`."""

    algorithm_name = "cooperative"
    engine_class = CooperativeSnapshotEngine
