"""Shared scaffolding for the Section 5 baseline algorithms.

Every baseline reuses the normal-message plane of
:class:`repro.core.process.CheckpointProcess` — labels, ledger, suspension,
output queue, trace vocabulary — so the Section 5 comparison runs identical
workloads over identical substrates and differs *only* in protocol.

:class:`BaselineProcess` neutralises the Leu-Bhargava protocol handlers;
each baseline overrides what it needs.
"""

from __future__ import annotations


from repro.core.process import CheckpointProcess


class BaselineProcess(CheckpointProcess):
    """Base class for the comparison algorithms.

    Inherits the full driver API (``send_app_message``, ``local_step``,
    ``initiate_checkpoint``, ``initiate_rollback``) so all workloads run
    unmodified; each baseline overrides exactly the protocol behaviour in
    which it differs (Koo-Toueg keeps the tree machinery but gates it to a
    single instance; Tamir-Séquin and Chandy-Lamport replace the protocol
    entirely; Barigazzi-Strigini changes the send and blocking semantics).
    """

    algorithm_name = "baseline"
