"""Barigazzi-Strigini application-transparent recovery points [1] (baseline).

Distinguishing features reproduced from the paper's Section 5 summary:

* "The sending and receiving of a message is atomic, which is more
  restrictive than FIFO channels.  Under this constraint, sending a message
  will block the operations of the sender until the message is received."
  — modelled as *synchronous sends*: after transmitting a normal message
  the sender suspends further normal sends until the receiver's delivery
  acknowledgement returns; queued sends drain one at a time.
* "A process after making an uncommitted checkpoint can resume its normal
  operations only after the checkpoint is committed or aborted." —
  modelled by suspending sends *and* receives while a tentative checkpoint
  is pending (the strongest blocking in the comparison).
* Interfering instances are merged rather than rejected: overlapping trees
  elect "a new coordinator ... from among the roots of the overlapping
  trees".  We approximate the merge with the Leu-Bhargava shared-checkpoint
  machinery (a process in two instances shares its tentative checkpoint and
  either root's decision commits it), which gives merge-equivalent outcomes
  with the same message pattern; the measured difference against
  Leu-Bhargava is therefore isolated to the *blocking* axes, per DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro import tracekinds as T
from repro.baselines.base import BaselineProcess
from repro.core import messages as M
from repro.core.engine import ProtocolEngine
from repro.net.message import Envelope, control, normal
from repro.priorities import PRIORITY_NORMAL
from repro.types import MessageId, ProcessId, TreeId


@dataclass(frozen=True)
class DeliveryAck:
    """Receiver's acknowledgement completing one atomic send."""

    msg_id: MessageId
    kind = "delivery_ack"
    priority = PRIORITY_NORMAL


class BarigazziStriginiEngine(ProtocolEngine):
    """Atomic (blocking) sends + fully blocking tentative checkpoints."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._awaiting_ack: Optional[MessageId] = None
        self._send_window: List[Tuple[ProcessId, Any]] = []

    # ------------------------------------------------------------------
    # Atomic sends: one message in flight at a time
    # ------------------------------------------------------------------
    def send_app_message(self, dst: ProcessId, payload: Any) -> None:
        if self.crashed:
            return
        self._send_window.append((dst, payload))
        self._drain_send_window()

    def _drain_send_window(self) -> None:
        if self._awaiting_ack is not None or not self._send_window:
            return
        if not self.can_send_normal:
            return
        dst, payload = self._send_window.pop(0)
        msg_id = self._new_msg_id()
        label = self.ledger.record_send(msg_id, dst)
        self._trace(T.K_SEND, msg_id=msg_id, dst=dst, label=label, payload=payload)
        self._awaiting_ack = msg_id
        self._trace(T.K_SUSPEND_SEND)
        self.send(normal(self.node_id, dst, msg_id, label, M.NormalBody(payload=payload)))

    def _on_delivery_ack(self, src: ProcessId, ack: DeliveryAck) -> None:
        if self._awaiting_ack == ack.msg_id:
            self._awaiting_ack = None
            self._trace(T.K_RESUME_SEND)
            self._drain_send_window()

    def _on_normal(self, envelope: Envelope) -> None:
        # Acknowledge delivery first (completing the sender's atomic send),
        # then consume normally.  Discarded messages are acked too: the
        # atomic send completes even if the receive is suppressed.
        self.send(control(self.node_id, envelope.src, DeliveryAck(msg_id=envelope.msg_id)))
        super()._on_normal(envelope)

    def _flush_output_queue(self) -> None:
        # The output queue is bypassed (the send window serialises sends);
        # resume events only need to restart the window drain.
        self._drain_send_window()

    # ------------------------------------------------------------------
    # Fully blocking tentative checkpoints
    # ------------------------------------------------------------------
    def _make_new_checkpoint(self, tree_id: TreeId) -> None:
        super()._make_new_checkpoint(tree_id)
        # Beyond the base algorithm's send suspension: receives block too.
        self._suspend_comm()

    def _commit_checkpoint(self, tree_id: TreeId) -> None:
        super()._commit_checkpoint(tree_id)
        if not self.roll_restart_set:
            self._resume_comm()

    def _abort_instance(self, tree_id: TreeId) -> None:
        had_newchkpt = self.store.newchkpt is not None
        super()._abort_instance(tree_id)
        if had_newchkpt and self.store.newchkpt is None and not self.roll_restart_set:
            self._resume_comm()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_control(self, src: ProcessId, body) -> None:
        if isinstance(body, DeliveryAck):
            self._on_delivery_ack(src, body)
            return
        super()._dispatch_control(src, body)


class BarigazziStriginiProcess(BaselineProcess):
    """Adapter driving :class:`BarigazziStriginiEngine`."""

    algorithm_name = "barigazzi-strigini"
    engine_class = BarigazziStriginiEngine
