"""Uncoordinated (independent) checkpointing — the domino-effect strawman.

Each process checkpoints on its own schedule with no coordination at all.
Cheap in the failure-free case, but a rollback must search for a consistent
recovery line across everyone's checkpoint histories, and the line can
recede arbitrarily far — the *domino effect* [17, 18] that motivates the
paper's coordinated approach (Section 1).

The process keeps every committed checkpoint (an uncoordinated scheme
cannot garbage-collect: any old checkpoint may end up on the recovery
line).  Rollback is evaluated offline by
:func:`repro.analysis.domino.domino_metrics`, which computes the recovery
line exactly; the E-DOMINO experiment compares its rollback distances with
the coordinated algorithms' fixed one-interval distance.
"""

from __future__ import annotations

from typing import Optional

from repro import tracekinds as T
from repro.baselines.base import BaselineProcess
from repro.core.engine import ProtocolEngine
from repro.types import TreeId


class UncoordinatedEngine(ProtocolEngine):
    """Independent local checkpointing; no protocol messages at all."""

    def initiate_checkpoint(self) -> Optional[TreeId]:
        """Take a local checkpoint: no requests, no two-phase commit."""
        if self.crashed:
            return None
        tree_id = self._new_tree_id()
        seq = self.ledger.advance()
        self.store.take_new(seq, self.app.snapshot(), made_at=self.now, **self._ledger_manifest())
        record = self.store.commit_new()
        self.committed_history.append(record)
        self._trace(T.K_INSTANCE_START, tree=tree_id, instance="checkpoint")
        self._trace(T.K_CHKPT_TENTATIVE, seq=seq, tree=tree_id)
        self._trace(T.K_CHKPT_COMMIT, seq=seq, tree=tree_id)
        self._trace(T.K_INSTANCE_COMMIT, tree=tree_id)
        self._reset_checkpoint_timer()
        return tree_id

    def initiate_rollback(self) -> Optional[TreeId]:
        """Restore the last local checkpoint, coordination-free.

        Dangling receives at other processes are *not* repaired — that is
        precisely the failure mode this baseline exists to exhibit.  The
        E-DOMINO experiment computes offline how far the whole system would
        actually have to roll to regain consistency.
        """
        if self.crashed:
            return None
        tree_id = self._new_tree_id()
        target = self.store.oldchkpt
        self.app.restore(target.state)
        undone_sends, undone_receives = self.ledger.undo_for_rollback(target.seq)
        self._trace(T.K_INSTANCE_START, tree=tree_id, instance="rollback")
        self._trace(
            T.K_ROLLBACK, to_seq=target.seq, tree=tree_id, target="oldchkpt",
            undone_sends=len(undone_sends), undone_receives=len(undone_receives),
        )
        for record in undone_sends:
            self._trace(
                T.K_UNDO_SEND, msg_id=record.msg_id, dst=record.dst, label=record.label
            )
        for record in undone_receives:
            self._trace(
                T.K_UNDO_RECEIVE, msg_id=record.msg_id, src=record.src, label=record.label
            )
        self.output_queue.clear()
        self.ledger.advance()
        return tree_id


class UncoordinatedProcess(BaselineProcess):
    """Adapter driving :class:`UncoordinatedEngine`."""

    algorithm_name = "uncoordinated"
    engine_class = UncoordinatedEngine
