"""Event/message priorities shared by the pure protocol core and the kernels.

The paper gives rollback procedures (b5, b6) the *highest* priority among
same-time events; checkpoint traffic comes next, then normal application
messages, then local timers.  Smaller runs first.

This module is dependency-free so that :mod:`repro.core.engine` (the sans-IO
protocol state machine) can stamp priorities on its effects without importing
any kernel package.  :mod:`repro.sim.event` re-exports these names for
backward compatibility.
"""

PRIORITY_ROLLBACK = 0
PRIORITY_CHECKPOINT = 1
PRIORITY_NORMAL = 2
PRIORITY_TIMER = 3

__all__ = [
    "PRIORITY_CHECKPOINT",
    "PRIORITY_NORMAL",
    "PRIORITY_ROLLBACK",
    "PRIORITY_TIMER",
]
