"""Small version-compatibility helpers shared across the packages.

The hot-path dataclasses (envelopes, protocol bodies, trace events) carry
``__slots__`` so that a million-message run does not pay one ``__dict__``
per object.  ``dataclass(slots=True)`` only exists on Python 3.10+; on 3.9
the decorator below degrades to a plain dataclass — identical semantics,
just without the memory/attribute-lookup win.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Callable

if sys.version_info >= (3, 10):

    def slotted_dataclass(**kwargs: Any) -> Callable[[type], type]:
        """``@dataclass(slots=True, ...)``, gated on interpreter support."""
        return dataclass(slots=True, **kwargs)

else:  # pragma: no cover - exercised only on Python 3.9

    def slotted_dataclass(**kwargs: Any) -> Callable[[type], type]:
        """Python 3.9 fallback: a plain dataclass (no ``__slots__``)."""
        return dataclass(**kwargs)
