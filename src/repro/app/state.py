"""Hosted application state: the server side of checkpoint-as-a-service.

:class:`AppHost` is the :class:`~repro.core.app.Application` a serving node
runs.  It extends the default :class:`~repro.core.app.CounterApp` (so the
message-plane digests the consistency checkers rely on keep working) with a
table of **jobs** — each a staged pipeline (fetch → transform → load) with a
per-stage progress cursor and a running content digest.

Job state is mutated only through :meth:`AppHost.apply`, driven by the
engine's ``AppOp`` event (see :meth:`repro.core.process.CheckpointProcess.
app_op`).  That indirection is the whole trick: because every mutation lands
between engine events, each checkpoint's ``app.snapshot()`` captures the job
table at a well-defined point of the process history, and a rollback or
Section 6 recovery restores it to exactly the recovery line — no committed
stage is ever half-applied, no undone unit survives.  The engine traces each
mutation (``job_submit`` / ``job_unit`` / ``job_stage`` / ``job_done``), so
the merged trace supports an offline job-outcome audit
(:func:`repro.analysis.jobs.audit_jobs`).

Unit content is a *deterministic* function of ``(job, stage, unit index)``:
two hosts that executed the same units hold bit-equal job records, whatever
kernel (simulator, live, sharded) drove them — the property the sim-vs-live
equivalence tests assert.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.app import CounterApp
from repro.core.engine import ProtocolConfig
from repro.core.process import CheckpointProcess
from repro.stable.storage import StableStorage
from repro.tracekinds import K_JOB_DONE, K_JOB_STAGE, K_JOB_SUBMIT, K_JOB_UNIT
from repro.types import ProcessId

_MOD = 2**61 - 1

#: Stage names of the data-pipeline workload, cycled when a job has more
#: stages than names (purely cosmetic — progress is tracked by index).
STAGE_NAMES = ("fetch", "transform", "load")

TraceRecord = Tuple[str, Dict[str, Any]]


def fold_unit(digest: int, job: str, stage: int, unit: int) -> int:
    """Fold one unit's deterministic content into a job digest.

    The same polynomial-hash construction as ``CounterApp``'s message
    digest, over the unit's identity — so the digest names *which* units a
    job record reflects, independent of when or on which kernel they ran.
    """
    h = 0
    for ch in repr((job, stage, unit)):
        h = (h * 1000003 + ord(ch)) % _MOD
    return (digest * 31 + h) % _MOD


def completed_record(job: str, stages: Sequence[int]) -> Dict[str, Any]:
    """The job record a never-interrupted run ends with (pure control).

    Tests compare a killed-and-resumed host's record against this instead
    of paying for a second control run: unit content is deterministic, so
    resume-from-recovery-line must land on the identical record.
    """
    digest = 0
    for stage, units in enumerate(stages):
        for unit in range(units):
            digest = fold_unit(digest, job, stage, unit)
    return {
        "stages": list(stages),
        "stage": len(stages),
        "cursor": 0,
        "digest": digest,
        "done": True,
    }


class AppHost(CounterApp):
    """A ``CounterApp`` that additionally hosts resumable staged jobs."""

    def __init__(self, pid: ProcessId) -> None:
        super().__init__(pid)
        self.jobs: Dict[str, Dict[str, Any]] = {}

    # -- Application protocol (checkpoint/rollback surface) -------------
    def snapshot(self) -> Dict[str, Any]:
        state = super().snapshot()
        state["jobs"] = {job: dict(record) for job, record in self.jobs.items()}
        return state

    def restore(self, state: Dict[str, Any]) -> None:
        super().restore(state)
        self.jobs = {
            job: dict(record) for job, record in state.get("jobs", {}).items()
        }

    # -- tracked mutations (engine AppOp surface) ------------------------
    def apply(self, op: Tuple[Any, ...]) -> List[TraceRecord]:
        """Interpret one job mutation; returns the trace records to emit.

        Ops are plain data (picklable, replayable):

        * ``("submit", job, stages)`` — register a job; idempotent, so a
          driver that outlives a rollback may resubmit harmlessly.
        * ``("unit", job)`` — execute the next unit of the job's current
          stage; completing the stage's last unit advances the stage, and
          the final stage's completion marks the job done.  A no-op for
          unknown or finished jobs (the driver races rollbacks).
        """
        kind = op[0]
        if kind == "submit":
            _, job, stages = op
            if job in self.jobs:
                return []
            self.jobs[job] = {
                "stages": list(stages),
                "stage": 0,
                "cursor": 0,
                "digest": 0,
                "done": False,
            }
            return [(K_JOB_SUBMIT, {"job": job, "stages": list(stages)})]
        if kind == "unit":
            _, job = op
            record = self.jobs.get(job)
            if record is None or record["done"]:
                return []
            stage, unit = record["stage"], record["cursor"]
            record["digest"] = fold_unit(record["digest"], job, stage, unit)
            record["cursor"] = unit + 1
            out: List[TraceRecord] = [
                (K_JOB_UNIT, {"job": job, "stage": stage, "unit": unit})
            ]
            if record["cursor"] >= record["stages"][stage]:
                out.append((K_JOB_STAGE, {"job": job, "stage": stage}))
                record["stage"] += 1
                record["cursor"] = 0
                if record["stage"] >= len(record["stages"]):
                    record["done"] = True
                    out.append((K_JOB_DONE, {"job": job}))
            return out
        raise ValueError(f"unknown app op {op!r}")

    # -- queries ---------------------------------------------------------
    def progress(self, job: str) -> Optional[Tuple[int, int]]:
        """``(stage, cursor)`` of a hosted job, or ``None`` if unknown."""
        record = self.jobs.get(job)
        if record is None:
            return None
        return record["stage"], record["cursor"]

    def units_applied(self, job: str) -> int:
        """Units the *current* state reflects (post-rollback this shrinks)."""
        record = self.jobs.get(job)
        if record is None:
            return 0
        return sum(record["stages"][: record["stage"]]) + record["cursor"]

    def fingerprints(self) -> Dict[str, Tuple[bool, int]]:
        """``job -> (done, digest)`` — the equivalence-test comparison key."""
        return {
            job: (record["done"], record["digest"])
            for job, record in self.jobs.items()
        }


class AppProcess(CheckpointProcess):
    """A protocol process whose hosted application is an :class:`AppHost`.

    Drop-in ``process_cls`` for :func:`repro.testing.build_sim`,
    :class:`~repro.runtime.cluster.Cluster` and the sharded workers — same
    constructor signature, job-hosting app by default.
    """

    def __init__(
        self,
        pid: ProcessId,
        config: Optional[ProtocolConfig] = None,
        app: Optional[AppHost] = None,
        storage: Optional[StableStorage] = None,
    ) -> None:
        super().__init__(pid, config, app=app or AppHost(pid), storage=storage)
