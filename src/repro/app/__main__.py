"""Demo CLI: serve jobs on a live cluster, kill a host, prove the resume.

Usage::

    python -m repro.app                             # 4 nodes, 60 jobs, kill P1
    python -m repro.app --jobs 120 --nodes 6
    python -m repro.app --kill 1@18 --restart 1@24  # choose the failure
    python -m repro.app --no-kill                   # failure-free control
    python -m repro.app --json out.json

Boots a loopback :class:`~repro.runtime.cluster.Cluster` whose nodes host
application jobs (:class:`~repro.app.state.AppProcess`), drives an
open-loop :class:`~repro.app.traffic.JobTraffic` stream against it, kills
and restarts one hosting node mid-run, waits for every job's completion to
become *durable* (covered by a committed checkpoint), then audits the
merged trace:

* the paper's C1 recovery-line consistency must hold;
* the job-outcome audit must report **zero** committed-stage re-executions;
* the killed node must have **resumed, not restarted**: the restore
  salvaged checkpointed progress, and the work re-executed after the
  restart is strictly less than the work the victim had done when killed.

Exit status is non-zero if any of those fail — this is the CI gate for the
checkpoint-as-a-service layer.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
from typing import Any, Dict, List, Optional

from repro.analysis import audit_jobs, check_c1_from_trace
from repro.app.state import AppProcess
from repro.app.traffic import JobTraffic
from repro.core import ProtocolConfig
from repro.errors import ConsistencyViolation
from repro.runtime.cluster import Cluster


def parse_event(spec: str) -> tuple:
    pid_text, _, time_text = spec.partition("@")
    try:
        return int(pid_text), float(time_text)
    except ValueError:
        raise SystemExit(f"bad event spec {spec!r}; expected PID@TIME") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.app", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument("--nodes", type=int, default=4, help="cluster size (default 4)")
    parser.add_argument("--jobs", type=int, default=60, help="jobs to submit (default 60)")
    parser.add_argument("--window", type=float, default=20.0,
                        help="arrival window in time units (default 20)")
    parser.add_argument("--interval", type=float, default=6.0,
                        help="autonomous checkpoint interval (default 6)")
    parser.add_argument("--kill", default="1@18", metavar="PID@TIME",
                        help="kill a hosting node mid-run (default 1@18)")
    parser.add_argument("--restart", default="1@24", metavar="PID@TIME",
                        help="restart the killed node (default 1@24)")
    parser.add_argument("--no-kill", action="store_true",
                        help="failure-free control run (ignores --kill/--restart)")
    parser.add_argument("--time-scale", type=float, default=0.005,
                        help="real seconds per protocol time unit (default 0.005)")
    parser.add_argument("--seed", type=int, default=0, help="arrival/delay seed")
    parser.add_argument("--out", default=None,
                        help="storage + trace directory (default: a temp dir)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the summary as JSON")
    return parser


async def run_demo(args: argparse.Namespace, root: str) -> Dict[str, Any]:
    config = ProtocolConfig(
        checkpoint_interval=args.interval, failure_resilience=True
    )
    cluster = Cluster(
        n=args.nodes, root=root, seed=args.seed, transport="loopback",
        config=config, process_cls=AppProcess, time_scale=args.time_scale,
    )
    traffic = JobTraffic(
        jobs=args.jobs, rate=args.jobs / args.window,
        stages=(2, 2, 2), unit_time=0.25, retry=1.0, horizon=300.0,
    )
    driver = traffic.install(cluster.runtime, cluster.procs)

    victim: Optional[int] = None
    done_before_kill: Dict[str, int] = {}
    if not args.no_kill:
        victim, kill_at = parse_event(args.kill)
        restart_pid, restart_at = parse_event(args.restart)
        if restart_pid != victim:
            raise SystemExit("--restart must name the --kill victim")

        def sample() -> None:
            # What the victim had physically executed at the moment of the
            # kill — the yardstick for resumed-vs-restarted.
            done_before_kill["units"] = sum(
                h.units_executed for h in driver.handles.values()
                if h.spec.host == victim
            )

        cluster.runtime.scheduler.at(kill_at, sample, label="sample before kill")
        cluster.schedule_kill(victim, kill_at)
        cluster.schedule_restart(victim, restart_at)

    await cluster.start()
    await cluster.wait_until(
        lambda: all(h.durable for h in driver.handles.values()),
        timeout=600.0, what="every job to complete durably",
    )
    await cluster.quiesce()
    await cluster.shutdown()

    metrics = traffic.metrics()
    index = cluster.merged_index()
    audit = audit_jobs(index)
    try:
        check_c1_from_trace(index, sorted(cluster.procs))
        c1 = True
    except ConsistencyViolation:
        c1 = False

    resumed: Optional[bool] = None
    if victim is not None:
        resumed = (
            audit["units_salvaged"] > 0
            and metrics["units_reexecuted"] < done_before_kill.get("units", 0)
        )
    return {
        "nodes": args.nodes,
        "victim": victim,
        "jobs": metrics["jobs"],
        "jobs_done": metrics["jobs_done"],
        "jobs_durable": metrics["jobs_durable"],
        "units_needed": metrics["units_needed_done"],
        "units_executed": metrics["units_executed"],
        "units_reexecuted": metrics["units_reexecuted"],
        "units_salvaged": audit["units_salvaged"],
        "victim_units_at_kill": done_before_kill.get("units"),
        "latency_mean": metrics["latency_mean"],
        "goodput": metrics["goodput"],
        "committed_stage_reexecutions": audit["committed_stage_reexecutions"],
        "violations": audit["violations"],
        "recovery_line_consistent": c1,
        "resumed_not_restarted": resumed,
    }


def render(summary: Dict[str, Any]) -> str:
    victim = summary["victim"]
    lines = [
        f"app service: {summary['jobs']} jobs on {summary['nodes']} nodes"
        + (f", killed and restarted P{victim}" if victim is not None else
           " (failure-free control)"),
        f"  jobs done/durable      {summary['jobs_done']}/{summary['jobs_durable']}",
        f"  units needed           {summary['units_needed']}",
        f"  units executed         {summary['units_executed']} "
        f"(re-executed {summary['units_reexecuted']})",
        f"  units salvaged         {summary['units_salvaged']}",
        f"  mean latency           {summary['latency_mean']:.2f}"
        if summary["latency_mean"] is not None else "  mean latency           n/a",
        f"  goodput                {summary['goodput']:.2f} jobs/unit"
        if summary["goodput"] is not None else "  goodput                n/a",
        f"  committed-stage reruns {summary['committed_stage_reexecutions']}",
        f"  recovery line (C1)     {summary['recovery_line_consistent']}",
    ]
    if victim is not None:
        lines.append(
            f"  resumed not restarted  {summary['resumed_not_restarted']} "
            f"(re-executed {summary['units_reexecuted']} < "
            f"{summary['victim_units_at_kill']} done at kill, "
            f"salvaged {summary['units_salvaged']} > 0)"
        )
    return "\n".join(lines)


def verdict(summary: Dict[str, Any]) -> int:
    ok = (
        summary["jobs_durable"] == summary["jobs"]
        and summary["committed_stage_reexecutions"] == 0
        and summary["recovery_line_consistent"]
        and summary["resumed_not_restarted"] is not False
    )
    return 0 if ok else 1


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.out is not None:
        summary = asyncio.run(run_demo(args, args.out))
    else:
        with tempfile.TemporaryDirectory() as root:
            summary = asyncio.run(run_demo(args, root))
    print(render(summary))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"summary written to {args.json}")
    return verdict(summary)


if __name__ == "__main__":
    sys.exit(main())
