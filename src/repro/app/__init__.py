"""Checkpoint-as-a-service: jobs whose state the protocol actually protects.

``repro.app`` is the client-facing layer over the Leu-Bhargava machinery:
long-running staged jobs register mutable state with a hosting protocol node
(:class:`~repro.app.state.AppHost`), mutate it only through the engine's
tracked ``AppOp`` path, and therefore get crash-consistent progress for
free — every checkpoint snapshots the job table, every rollback or Section 6
recovery restores it to the recovery line, and a restarted host *resumes*
from its last committed cursor instead of starting over.

Pieces:

* :class:`~repro.app.state.AppHost` / :class:`~repro.app.state.AppProcess`
  — the hosted application state and a drop-in protocol process class;
* :class:`~repro.app.driver.JobSpec` / :class:`~repro.app.driver.JobHandle`
  / :class:`~repro.app.driver.JobDriver` — submission API and the
  kernel-side execution pump with its per-job ledger;
* :class:`~repro.app.traffic.JobTraffic` — the open-loop many-client
  traffic generator, shard-distributable like any workload;
* :func:`~repro.analysis.jobs.audit_jobs` (analysis layer) — the offline
  job-outcome audit over the merged trace;
* ``python -m repro.app`` — a live kill/restart demo asserting
  resumed-not-restarted plus C1 on the merged trace.

The same workload runs unmodified on the simulator, the single-process
:class:`~repro.runtime.cluster.Cluster` and the multi-process
:class:`~repro.runtime.shard.ShardedCluster` (pass ``app=dict(...)``).
"""

from repro.app.driver import JobDriver, JobHandle, JobSpec
from repro.app.state import AppHost, AppProcess, completed_record, fold_unit
from repro.app.traffic import JobTraffic

__all__ = [
    "AppHost",
    "AppProcess",
    "JobDriver",
    "JobHandle",
    "JobSpec",
    "JobTraffic",
    "completed_record",
    "fold_unit",
]
