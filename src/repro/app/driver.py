"""Job submission and execution: the client side of checkpoint-as-a-service.

A :class:`JobDriver` is the kernel-side pump that executes hosted jobs unit
by unit.  It is deliberately **outside** the checkpointed state — like a
client library retrying against a service — so it survives its host's
crashes.  Each tick it reads the job's hosted progress cursor through the
serving process's application and applies the next unit as a tracked
``app_op`` mutation.  That makes resume automatic and state-driven:

* while the host is crashed, ticks back off and retry;
* after a restart, the Section 6 recovery restores the app table from the
  recovery line, so the next tick reads the *restored* cursor and continues
  from there — work covered by the last committed checkpoint is never
  re-executed, work past it (and only that) is;
* if a rollback undid the submission itself, the driver resubmits
  (``submit`` is idempotent on the host).

The driver's per-job ledger (:class:`JobHandle`) records what physically
happened — submit/complete times, units executed including re-execution —
which is exactly what the E-APP benchmark compares against the logical work
(``sum(stages)``) to measure checkpoint resume savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.types import ProcessId, SimTime


@dataclass(frozen=True)
class JobSpec:
    """One staged pipeline job: where it runs and how much work it is."""

    job: str
    host: ProcessId
    stages: Tuple[int, ...]
    submit_at: SimTime = 0.0

    @property
    def total_units(self) -> int:
        return sum(self.stages)


class JobHandle:
    """The driver-side ledger entry (and client handle) for one job."""

    def __init__(self, spec: JobSpec, driver: "JobDriver") -> None:
        self.spec = spec
        self._driver = driver
        self.submitted_at: Optional[SimTime] = None
        self.completed_at: Optional[SimTime] = None
        self.durable_at: Optional[SimTime] = None
        self.units_executed = 0
        self.retries = 0        # ticks skipped because the host was down
        self.resubmits = 0      # submissions re-issued after deep rollbacks

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def durable(self) -> bool:
        """Completion is covered by a committed checkpoint: no rollback can
        undo it, so the driver has stopped watching this job."""
        return self.durable_at is not None

    @property
    def latency(self) -> Optional[SimTime]:
        """Submit-to-complete time in protocol units (``None`` if running)."""
        if self.submitted_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def reexecuted_units(self) -> int:
        """Units run more than once (rollback re-execution), 0 if unfinished."""
        if not self.done:
            return 0
        return self.units_executed - self.spec.total_units

    def progress(self) -> Optional[Tuple[int, int]]:
        """Live ``(stage, cursor)`` read from the hosting node's app."""
        return self._driver.host_app(self.spec.host).progress(self.spec.job)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return (
            f"<JobHandle {self.spec.job}@P{self.spec.host} {state} "
            f"executed={self.units_executed}/{self.spec.total_units}>"
        )


class JobDriver:
    """Executes submitted jobs against their hosting nodes, one unit a tick.

    ``sim`` is any kernel with a ``scheduler.at`` and ``now`` (the
    discrete-event :class:`~repro.sim.simulation.Simulation` or the live
    :class:`~repro.runtime.loop.AsyncRuntime`); ``procs`` the protocol
    processes this driver can reach (a shard passes only its local slice).
    """

    def __init__(
        self,
        sim: Any,
        procs: Dict[ProcessId, Any],
        unit_time: SimTime = 0.25,
        retry: SimTime = 1.0,
        horizon: Optional[SimTime] = None,
    ) -> None:
        self.sim = sim
        self.procs = procs
        self.unit_time = unit_time
        self.retry = retry
        self.horizon = horizon
        self.handles: Dict[str, JobHandle] = {}

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobHandle:
        """Register a job; its first tick fires at ``spec.submit_at``."""
        if spec.host not in self.procs:
            raise KeyError(
                f"job {spec.job!r} placed on P{spec.host}, which this driver "
                f"does not reach (hosts: {sorted(self.procs)})"
            )
        handle = JobHandle(spec, self)
        self.handles[spec.job] = handle
        self.sim.scheduler.at(
            spec.submit_at,
            lambda: self._tick(handle),
            label=f"job {spec.job} tick",
        )
        return handle

    def host_app(self, pid: ProcessId) -> Any:
        return self.procs[pid].app

    # ------------------------------------------------------------------
    # The pump
    # ------------------------------------------------------------------
    def _later(self, handle: JobHandle, delay: SimTime) -> None:
        at = self.sim.now + delay
        if self.horizon is not None and at >= self.horizon:
            return  # give up: the run is being cut; the job stays incomplete
        self.sim.scheduler.at(
            at, lambda: self._tick(handle), label=f"job {handle.spec.job} tick"
        )

    def _tick(self, handle: JobHandle) -> None:
        spec = handle.spec
        proc = self.procs[spec.host]
        if proc.crashed:
            handle.retries += 1
            self._later(handle, self.retry)
            return
        record = proc.app.jobs.get(spec.job)
        if record is None:
            # First contact — or a rollback undid the submission itself.
            if handle.submitted_at is not None:
                handle.resubmits += 1
            else:
                handle.submitted_at = self.sim.now
            proc.app_op(("submit", spec.job, spec.stages))
            self._later(handle, self.unit_time)
            return
        if record["done"]:
            self._watch_completion(handle, proc)
            return
        handle.completed_at = None  # a rollback un-did a completion we saw
        proc.app_op(("unit", spec.job))
        handle.units_executed += 1
        record = proc.app.jobs.get(spec.job)
        if record is not None and record["done"]:
            self._watch_completion(handle, proc)
            return
        self._later(handle, self.unit_time)

    def _watch_completion(self, handle: JobHandle, proc: Any) -> None:
        """A completion is only *durable* once a committed checkpoint covers
        it; until then a crash-restart rollback could undo it, so the driver
        keeps watching (a client retrying until the service acks durability)
        and re-drives the job if its state regresses."""
        if handle.completed_at is None:
            handle.completed_at = self.sim.now
        if self._completion_committed(proc, handle.spec.job):
            if handle.durable_at is None:
                handle.durable_at = self.sim.now
            return
        self._later(handle, self.retry)

    @staticmethod
    def _completion_committed(proc: Any, job: str) -> bool:
        store = getattr(proc.engine, "store", None)
        committed = getattr(store, "oldchkpt", None)
        if committed is None:
            return False
        record = committed.state.get("jobs", {}).get(job)
        return record is not None and record["done"]

    # ------------------------------------------------------------------
    # Ledger roll-up
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        """Aggregate ledger: completion, latency, goodput inputs, re-execution."""
        handles = list(self.handles.values())
        done = [h for h in handles if h.done]
        latencies = sorted(h.latency for h in done)
        total_needed = sum(h.spec.total_units for h in done)
        executed = sum(h.units_executed for h in handles)
        return {
            "jobs": len(handles),
            "jobs_done": len(done),
            "jobs_durable": sum(1 for h in handles if h.durable),
            "units_executed": executed,
            "units_needed_done": total_needed,
            "units_reexecuted": sum(h.reexecuted_units for h in done),
            "retries": sum(h.retries for h in handles),
            "resubmits": sum(h.resubmits for h in handles),
            "latency_mean": (sum(latencies) / len(latencies)) if latencies else None,
            "latency_p95": latencies[int(0.95 * (len(latencies) - 1))] if latencies else None,
            "last_completion": max((h.completed_at for h in done), default=None),
        }

    def fingerprints(self) -> Dict[str, Tuple[bool, int]]:
        """``job -> (done, digest)`` across every reachable hosting node."""
        out: Dict[str, Tuple[bool, int]] = {}
        for handle in self.handles.values():
            app = self.host_app(handle.spec.host)
            record = app.jobs.get(handle.spec.job)
            if record is not None:
                out[handle.spec.job] = (record["done"], record["digest"])
        return out
