"""Open-loop job traffic: thousands of concurrent clients, one arrival clock.

:class:`JobTraffic` is a :class:`~repro.workloads.base.Workload` whose
arrivals model independent clients: jobs arrive at a configured Poisson
``rate`` regardless of how fast the cluster finishes them (open-loop, so
overload shows up as latency, not as a politely throttled submit stream).

Shard-distribution property: the arrival schedule and the job → host
placement are pure functions of the workload parameters and one named RNG
stream.  Every kernel (the parent simulator, each sharded worker) derives
the *identical* global schedule from its identically-seeded RNG, then
installs only the jobs whose hosting pid it reaches — the same contract
:class:`~repro.workloads.random_peer.RandomPeerWorkload` uses, which is
what lets the one workload run unmodified on ``Simulation``, ``Cluster``
and ``ShardedCluster``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.app.driver import JobDriver, JobSpec
from repro.types import ProcessId, SimTime
from repro.workloads.base import Workload


class JobTraffic(Workload):
    """Submit ``jobs`` staged pipeline jobs at Poisson rate ``rate``.

    ``stages`` — units per pipeline stage (default a 3-stage ETL shape);
    ``unit_time`` — execution time of one unit;
    ``retry`` — back-off while a job's host is crashed;
    ``start`` — arrival clock origin;
    ``horizon`` — no driver tick is scheduled at/past this time (jobs still
    running then stay incomplete — the open-loop generator never blocks a
    run from ending);
    ``collector`` — when set, each completed job's host sends a completion
    report (a normal app message) to this pid, exercising the labelled
    message plane alongside the job plane.
    """

    name = "job_traffic"

    def __init__(
        self,
        jobs: int = 100,
        rate: float = 20.0,
        stages: Sequence[int] = (2, 2, 2),
        unit_time: SimTime = 0.25,
        retry: SimTime = 1.0,
        start: SimTime = 1.0,
        horizon: Optional[SimTime] = None,
        collector: Optional[ProcessId] = None,
    ) -> None:
        self.jobs = jobs
        self.rate = rate
        self.stages = tuple(stages)
        self.unit_time = unit_time
        self.retry = retry
        self.start = start
        self.horizon = horizon
        self.collector = collector
        self.driver: Optional[JobDriver] = None
        self.specs: List[JobSpec] = []

    # ------------------------------------------------------------------
    def plan(self, sim: Any, all_pids: List[ProcessId]) -> List[JobSpec]:
        """The full (cluster-wide) deterministic arrival schedule."""
        stream = sim.rng.stream(self.name, "arrivals")
        specs: List[JobSpec] = []
        t = self.start
        for k in range(self.jobs):
            t += stream.expovariate(self.rate)
            specs.append(
                JobSpec(
                    job=f"j{k}",
                    host=all_pids[k % len(all_pids)],
                    stages=self.stages,
                    submit_at=t,
                )
            )
        return specs

    def install(
        self,
        sim: Any,
        procs: Dict[ProcessId, Any],
        peers: Optional[List[ProcessId]] = None,
    ) -> JobDriver:
        """Plan the global schedule, submit the locally-hosted slice."""
        all_pids = sorted(peers) if peers is not None else sorted(procs)
        self.specs = self.plan(sim, all_pids)
        driver = JobDriver(
            sim,
            procs,
            unit_time=self.unit_time,
            retry=self.retry,
            horizon=self.horizon,
        )
        for spec in self.specs:
            if spec.host in procs:
                driver.submit(spec)
        if self.collector is not None:
            self._arm_collector_reports(sim, procs, driver)
        self.driver = driver
        return driver

    def _arm_collector_reports(
        self, sim: Any, procs: Dict[ProcessId, Any], driver: JobDriver
    ) -> None:
        """Send one completion report per finished job to the collector."""
        collector = self.collector

        def watch(job: str) -> None:
            handle = driver.handles[job]
            if handle.done:
                host = procs[handle.spec.host]
                if not host.crashed and handle.spec.host != collector:
                    host.send_app_message(collector, f"done:{job}")
                return
            if self.horizon is None or sim.now + self.unit_time < self.horizon:
                sim.scheduler.at(
                    sim.now + self.unit_time, lambda: watch(job),
                    label=f"job {job} report",
                )

        for spec in self.specs:
            if spec.host in procs:
                sim.scheduler.at(
                    spec.submit_at + self.unit_time,
                    lambda j=spec.job: watch(j),
                    label=f"job {spec.job} report",
                )

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        """Ledger roll-up plus open-loop goodput (done jobs per time unit)."""
        if self.driver is None:
            raise RuntimeError("JobTraffic.metrics() before install()")
        rolled = self.driver.metrics()
        last = rolled["last_completion"]
        window = (last - self.start) if last is not None else None
        rolled["goodput"] = (
            rolled["jobs_done"] / window if window else None
        )
        return rolled

    def fingerprints(self) -> Dict[str, Tuple[bool, int]]:
        if self.driver is None:
            raise RuntimeError("JobTraffic.fingerprints() before install()")
        return self.driver.fingerprints()
