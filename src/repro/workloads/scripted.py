"""Scripted scenarios — exact reproductions of the paper's figures.

A :class:`ScriptedWorkload` replays a fixed list of timed steps.  Supported
step kinds:

``("send", src, dst, payload)``      — application message
``("checkpoint", pid)``              — b1 initiation
``("rollback", pid)``                — b5 initiation (transient error)
``("step", pid)``                    — one unit of local computation
``("crash", pid)`` / ``("recover", pid)`` — failure injection
``("call", fn)``                     — arbitrary callable, for exotic steps

The module also ships the step lists for Figures 2, 3 and 4 so tests,
benchmarks and examples all replay literally the same scenario.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.types import ProcessId
from repro.workloads.base import ProtocolDriver, Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulation import Simulation

Step = Tuple  # (time, kind, *args)


class ScriptedWorkload(Workload):
    """Replay an explicit ``(time, kind, *args)`` step list."""

    name = "scripted"

    def __init__(self, steps: Sequence[Step]):
        self.steps = list(steps)

    def install(self, sim: "Simulation", procs: Dict[ProcessId, ProtocolDriver]) -> None:
        for step in self.steps:
            time, kind = step[0], step[1]
            if kind == "send":
                _, _, src, dst, payload = step
                sim.scheduler.at(
                    time,
                    lambda s=src, d=dst, p=payload: procs[s].send_app_message(d, p),
                    label=f"script send P{src}->P{dst}",
                )
            elif kind == "checkpoint":
                _, _, pid = step
                sim.scheduler.at(
                    time, lambda p=pid: procs[p].initiate_checkpoint(), label=f"script ckpt P{pid}"
                )
            elif kind == "rollback":
                _, _, pid = step
                sim.scheduler.at(
                    time, lambda p=pid: procs[p].initiate_rollback(), label=f"script roll P{pid}"
                )
            elif kind == "step":
                _, _, pid = step
                sim.scheduler.at(time, procs[pid].local_step, label=f"script step P{pid}")
            elif kind == "crash":
                _, _, pid = step
                sim.scheduler.at(time, lambda p=pid: sim.crash(p), label=f"script crash P{pid}")
            elif kind == "recover":
                _, _, pid = step
                sim.scheduler.at(time, lambda p=pid: sim.recover(p), label=f"script recover P{pid}")
            elif kind == "call":
                _, _, fn = step
                sim.scheduler.at(time, fn, label="script call")
            else:
                raise WorkloadError(f"unknown scripted step kind {kind!r}")


# ----------------------------------------------------------------------
# The paper's figures as literal scripts (process ids match the figures).
# ----------------------------------------------------------------------

def figure2_steps() -> List[Step]:
    """Fig. 2: checkpoint/rollback-point numbering and message labels.

    One process (P0) makes checkpoints and rollback points while sending
    m, l, x, y, z to P1; the paper says their labels are 1, 2, 3, 3, 4.
    """
    return [
        (1.0, "send", 0, 1, "m"),        # interval [1,2] -> label 1
        (2.0, "checkpoint", 0),           # point 2
        (3.0, "send", 0, 1, "l"),        # interval [2,3] -> label 2
        (4.0, "checkpoint", 0),           # point 3
        (5.0, "send", 0, 1, "x"),        # interval [3,4] -> label 3
        (6.0, "send", 0, 1, "y"),        # interval [3,4] -> label 3
        (7.0, "rollback", 0),             # rollback point 4
        (9.0, "send", 0, 1, "z"),        # interval [4,5] -> label 4
    ]


def figure3_steps() -> List[Step]:
    """Fig. 3 / Example 1: P2 initiates; the chkpt tree is P2 -> P3 -> P4.

    P1 sends x to P2 *before* making its own checkpoint λ1, so when P2's
    request arrives, P1 answers neg_ack (seqof(λ1) > label(x)) and stays out
    of the tree — that is the paper's minimality in action.
    """
    return [
        (1.0, "send", 4, 3, "m"),         # P4 -> P3
        (2.0, "send", 3, 2, "l"),         # P3 -> P2
        (2.0, "send", 1, 2, "x"),         # P1 -> P2
        (3.5, "checkpoint", 1),           # λ1 (its own separate instance)
        (5.0, "checkpoint", 2),           # α2: P2 initiates the instance
    ]


def figure4_steps() -> List[Step]:
    """Fig. 4 / Example 2: P1 and P2 initiate simultaneously.

    P3 sent messages to both initiators and P4 to P3, so both instances
    recruit P3 and P4; the single uncommitted checkpoint on each is shared
    between the two trees and commits once.
    """
    return [
        (1.0, "send", 4, 3, "m43"),
        (2.0, "send", 3, 1, "m31"),
        (2.0, "send", 3, 2, "m32"),
        (4.0, "checkpoint", 1),           # α1 — tree T(t')
        (4.0, "checkpoint", 2),           # α2 — tree T(t)
    ]
