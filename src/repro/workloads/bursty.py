"""Bursty traffic workload.

Alternates busy phases (high-rate random traffic) with idle phases.  Bursts
create dense message-exchange windows (large checkpoint trees, long rollback
cascades) separated by quiet windows where instances involve almost nobody —
useful for studying how tree size tracks communication density.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.types import ProcessId, SimTime
from repro.workloads.base import ProtocolDriver, Workload, exponential_arrivals

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulation import Simulation


class BurstyWorkload(Workload):
    """Square-wave modulated Poisson traffic."""

    name = "bursty"

    def __init__(
        self,
        burst_rate: float = 5.0,
        idle_rate: float = 0.1,
        burst_length: SimTime = 10.0,
        idle_length: SimTime = 10.0,
        duration: SimTime = 100.0,
    ):
        self.burst_rate = burst_rate
        self.idle_rate = idle_rate
        self.burst_length = burst_length
        self.idle_length = idle_length
        self.duration = duration

    def install(self, sim: "Simulation", procs: Dict[ProcessId, ProtocolDriver]) -> None:
        pids: List[ProcessId] = sorted(procs)
        if len(pids) < 2:
            return
        for pid in pids:
            proc = procs[pid]
            peer_stream = sim.rng.stream(self.name, "peer", pid)
            others = [p for p in pids if p != pid]
            phase_start = 0.0
            busy = True
            counter = 0
            while phase_start < self.duration:
                length = self.burst_length if busy else self.idle_length
                length = min(length, self.duration - phase_start)
                rate = self.burst_rate if busy else self.idle_rate
                for t in exponential_arrivals(
                    sim,
                    (self.name, "send", pid, round(phase_start, 6)),
                    rate,
                    length,
                    start=phase_start,
                ):
                    dst = peer_stream.choice(others)
                    counter += 1
                    sim.scheduler.at(
                        t,
                        lambda p=proc, d=dst, i=counter: p.send_app_message(d, f"b{p.node_id}-{i}"),
                        label=f"bursty send P{pid}",
                    )
                phase_start += length
                busy = not busy
