"""Pipeline (dataflow) workload.

Items enter at the first stage and are forwarded hop by hop to the last.
The dependency structure is a chain, so checkpoint trees are paths and a
rollback at stage ``k`` cascades to every *downstream* stage — the scenario
that produced Figure 3's chain tree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.core.app import CounterApp
from repro.types import ProcessId, SimTime
from repro.workloads.base import ProtocolDriver, Workload, exponential_arrivals

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulation import Simulation


class ForwardingApp(CounterApp):
    """Stage application: consume an item, forward it downstream."""

    def __init__(self, pid: ProcessId, downstream: Optional[ProcessId], delay: SimTime = 0.1):
        super().__init__(pid)
        self.downstream = downstream
        self.delay = delay
        self.process: Optional[ProtocolDriver] = None
        self.forwarded = 0

    def handle_message(self, src: ProcessId, payload: Any) -> None:
        super().handle_message(src, payload)
        if self.downstream is None or self.process is None:
            return
        self.forwarded += 1
        proc = self.process
        item = payload
        proc.sim.scheduler.after(
            self.delay,
            lambda: proc.send_app_message(self.downstream, item),
            label=f"stage P{self.pid} forward",
        )


class PipelineWorkload(Workload):
    """Poisson item injection into a linear pipeline of stages."""

    name = "pipeline"

    def __init__(
        self,
        stages: List[ProcessId],
        item_rate: float = 1.0,
        duration: SimTime = 100.0,
        stage_delay: SimTime = 0.1,
    ):
        if len(stages) < 2:
            raise ValueError("a pipeline needs at least two stages")
        self.stages = stages
        self.item_rate = item_rate
        self.duration = duration
        self.stage_delay = stage_delay

    def install(self, sim: "Simulation", procs: Dict[ProcessId, ProtocolDriver]) -> None:
        for position, pid in enumerate(self.stages):
            downstream = self.stages[position + 1] if position + 1 < len(self.stages) else None
            app = ForwardingApp(pid, downstream, self.stage_delay)
            app.process = procs[pid]
            procs[pid].app = app

        source = procs[self.stages[0]]
        first_hop = self.stages[1]
        for k, t in enumerate(
            exponential_arrivals(sim, (self.name, "inject"), self.item_rate, self.duration)
        ):
            sim.scheduler.at(
                t,
                lambda i=k: source.send_app_message(first_hop, f"item-{i}"),
                label="pipeline inject",
            )
