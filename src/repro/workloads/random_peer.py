"""Uniform random peer-to-peer traffic — the default comparison workload.

Every process sends Poisson-distributed messages to uniformly random peers,
interleaved with local computation steps.  Optionally, random processes
initiate checkpoints (modelling the b1 timer) and inject transient errors
(modelling b5), which is how the E-T5 and E-CONC experiments exercise the
protocols under contention.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.types import ProcessId, SimTime
from repro.workloads.base import ProtocolDriver, Workload, exponential_arrivals

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulation import Simulation


class RandomPeerWorkload(Workload):
    """Poisson peer-to-peer messaging with optional protocol activity.

    ``message_rate`` — sends per process per time unit.
    ``step_rate`` — local computation steps per process per time unit.
    ``checkpoint_rate`` — autonomous checkpoint initiations per process per
    time unit (0 disables; experiments often initiate explicitly instead).
    ``error_rate`` — transient-error injections (rollback initiations) per
    process per time unit.
    ``duration`` — workload horizon; nothing is scheduled past it.
    ``locality`` — when set, each process only messages peers within this
    id-distance (wrapping), modelling neighbourhood-local communication;
    ``None`` means uniform all-to-all.
    """

    name = "random_peer"

    def __init__(
        self,
        message_rate: float = 1.0,
        duration: SimTime = 100.0,
        step_rate: float = 0.5,
        checkpoint_rate: float = 0.0,
        error_rate: float = 0.0,
        locality: int = None,
    ):
        self.message_rate = message_rate
        self.duration = duration
        self.step_rate = step_rate
        self.checkpoint_rate = checkpoint_rate
        self.error_rate = error_rate
        self.locality = locality

    def _peers_of(self, pid: ProcessId, pids: List[ProcessId]) -> List[ProcessId]:
        others = [p for p in pids if p != pid]
        if self.locality is None:
            return others
        n = len(pids)
        index = pids.index(pid)
        window = set()
        for offset in range(1, self.locality + 1):
            window.add(pids[(index + offset) % n])
            window.add(pids[(index - offset) % n])
        window.discard(pid)
        return sorted(window)

    def install(
        self,
        sim: "Simulation",
        procs: Dict[ProcessId, ProtocolDriver],
        peers: List[ProcessId] = None,
    ) -> None:
        """Schedule traffic for every process in ``procs``.

        ``peers`` widens the destination population beyond ``procs`` — a
        sharded worker installs the workload for its *local* processes only
        but must still address the whole cluster.  Because every arrival
        and peer-choice stream is keyed by pid, the schedule each process
        gets is identical whether its shard hosts 1 process or all of them.
        """
        pids: List[ProcessId] = sorted(procs)
        all_pids: List[ProcessId] = sorted(peers) if peers is not None else pids
        for pid in pids:
            proc = procs[pid]
            peer_stream = sim.rng.stream(self.name, "peer", pid)
            others = self._peers_of(pid, all_pids)
            if not others:
                continue
            for k, t in enumerate(
                exponential_arrivals(sim, (self.name, "send", pid), self.message_rate, self.duration)
            ):
                dst = peer_stream.choice(others)
                sim.scheduler.at(
                    t,
                    lambda p=proc, d=dst, i=k: p.send_app_message(d, f"m{p.node_id}-{i}"),
                    label=f"wl send P{pid}",
                )
            for t in exponential_arrivals(sim, (self.name, "step", pid), self.step_rate, self.duration):
                sim.scheduler.at(t, proc.local_step, label=f"wl step P{pid}")
            for t in exponential_arrivals(
                sim, (self.name, "ckpt", pid), self.checkpoint_rate, self.duration
            ):
                sim.scheduler.at(t, proc.initiate_checkpoint, label=f"wl ckpt P{pid}")
            for t in exponential_arrivals(
                sim, (self.name, "err", pid), self.error_rate, self.duration
            ):
                sim.scheduler.at(t, proc.initiate_rollback, label=f"wl error P{pid}")
