"""Workload framework.

A :class:`Workload` drives application traffic (and optionally checkpoint /
rollback initiations) over an already-built simulation.  Workloads talk to
processes only through the narrow driver API that every protocol node in
this repository implements — ``send_app_message``, ``local_step``,
``initiate_checkpoint``, ``initiate_rollback`` — so the same workload runs
unchanged against the Leu-Bhargava processes and against every baseline.
This is what makes the Section 5 comparison apples-to-apples.

All randomness comes from named :class:`~repro.sim.rng.Rng` streams keyed by
the workload name, so changing one workload's parameters never perturbs
another's traffic pattern.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Protocol

from repro.types import ProcessId, SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulation import Simulation


class ProtocolDriver(Protocol):
    """What a workload needs from a protocol process."""

    node_id: ProcessId

    def send_app_message(self, dst: ProcessId, payload: object) -> None: ...
    def local_step(self) -> None: ...
    def initiate_checkpoint(self) -> object: ...
    def initiate_rollback(self) -> object: ...


class Workload:
    """Base class: subclasses override :meth:`install`."""

    name = "workload"

    def install(self, sim: "Simulation", procs: Dict[ProcessId, ProtocolDriver]) -> None:
        """Schedule this workload's events onto ``sim``."""
        raise NotImplementedError


def exponential_arrivals(
    sim: "Simulation",
    stream_name: tuple,
    rate: float,
    duration: SimTime,
    start: SimTime = 0.0,
) -> List[SimTime]:
    """Poisson-process arrival times in ``[start, start + duration)``.

    ``rate`` is events per time unit.  Materialised as a list (not a
    generator) so the install step fully determines the schedule up front —
    easier to reason about in tests.
    """
    stream = sim.rng.stream(*stream_name)
    times: List[SimTime] = []
    t = start
    if rate <= 0:
        return times
    while True:
        t += stream.expovariate(rate)
        if t >= start + duration:
            return times
        times.append(t)


def uniform_other(sim: "Simulation", stream_name: tuple, pid: ProcessId, pids: List[ProcessId]) -> ProcessId:
    """A uniformly random peer different from ``pid``."""
    stream = sim.rng.stream(*stream_name)
    choices = [p for p in pids if p != pid]
    return stream.choice(choices)
