"""Workload generators: random peer, client-server, pipeline, ring, bursty,
plus the scripted scenarios reproducing the paper's figures."""

from repro.workloads.base import ProtocolDriver, Workload, exponential_arrivals
from repro.workloads.bursty import BurstyWorkload
from repro.workloads.client_server import ClientServerWorkload, ReplyingServerApp
from repro.workloads.pipeline import ForwardingApp, PipelineWorkload
from repro.workloads.random_peer import RandomPeerWorkload
from repro.workloads.ring import RingWorkload, TokenApp
from repro.workloads.scripted import (
    ScriptedWorkload,
    figure2_steps,
    figure3_steps,
    figure4_steps,
)

__all__ = [
    "BurstyWorkload",
    "ClientServerWorkload",
    "ForwardingApp",
    "PipelineWorkload",
    "ProtocolDriver",
    "RandomPeerWorkload",
    "ReplyingServerApp",
    "RingWorkload",
    "ScriptedWorkload",
    "TokenApp",
    "Workload",
    "exponential_arrivals",
    "figure2_steps",
    "figure3_steps",
    "figure4_steps",
]
