"""Token-ring workload.

``tokens`` tokens circulate around the process ring, each held for
``hold_time`` before being forwarded.  Every process continuously depends on
its ring predecessor, so a single checkpoint initiation recruits the whole
ring — the worst case for tree size and the best case for observing shared
uncommitted checkpoints when several instances start at once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.core.app import CounterApp
from repro.types import ProcessId, SimTime
from repro.workloads.base import ProtocolDriver, Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulation import Simulation


class TokenApp(CounterApp):
    """Hold each arriving token briefly, then pass it to the successor."""

    def __init__(self, pid: ProcessId, successor: ProcessId, hold_time: SimTime, horizon: SimTime):
        super().__init__(pid)
        self.successor = successor
        self.hold_time = hold_time
        self.horizon = horizon
        self.process: Optional[ProtocolDriver] = None

    def handle_message(self, src: ProcessId, payload: Any) -> None:
        super().handle_message(src, payload)
        proc = self.process
        if proc is None or proc.sim.now >= self.horizon:
            return
        token = payload
        proc.sim.scheduler.after(
            self.hold_time,
            lambda: proc.send_app_message(self.successor, token),
            label=f"ring P{self.pid} pass",
        )


class RingWorkload(Workload):
    """Circulate ``tokens`` tokens around the ring until ``duration``."""

    name = "ring"

    def __init__(self, tokens: int = 1, hold_time: SimTime = 0.5, duration: SimTime = 100.0):
        self.tokens = tokens
        self.hold_time = hold_time
        self.duration = duration

    def install(self, sim: "Simulation", procs: Dict[ProcessId, ProtocolDriver]) -> None:
        pids = sorted(procs)
        for position, pid in enumerate(pids):
            successor = pids[(position + 1) % len(pids)]
            app = TokenApp(pid, successor, self.hold_time, self.duration)
            app.process = procs[pid]
            procs[pid].app = app

        spacing = max(len(pids) // max(self.tokens, 1), 1)
        for k in range(self.tokens):
            holder = procs[pids[(k * spacing) % len(pids)]]
            sim.scheduler.at(
                0.5 + 0.01 * k,
                lambda h=holder, i=k: h.send_app_message(h.app.successor, f"token-{i}"),
                label="ring start token",
            )
