"""Client-server request/response workload.

Clients issue requests to servers; a server's application replies to each
request after a service time.  This produces the *reactive* dependency
pattern (server state depends on client messages and vice versa) that makes
checkpoint trees deep: a server checkpoint drags in every client it heard
from, and a client rollback drags in the server and transitively its other
clients.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.core.app import CounterApp
from repro.types import ProcessId, SimTime
from repro.workloads.base import ProtocolDriver, Workload, exponential_arrivals

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulation import Simulation


class ReplyingServerApp(CounterApp):
    """Server application: consumes requests, sends responses.

    The reply is issued through the owning process's ``send_app_message``
    after ``service_time``, so it follows the protocol's suspension rules
    like any other normal message.
    """

    def __init__(self, pid: ProcessId, service_time: SimTime = 0.2):
        super().__init__(pid)
        self.service_time = service_time
        self.process: Optional[ProtocolDriver] = None
        self.replies_sent = 0

    def handle_message(self, src: ProcessId, payload: Any) -> None:
        super().handle_message(src, payload)
        if isinstance(payload, dict) and payload.get("type") == "request":
            proc = self.process
            if proc is None:
                return
            self.replies_sent += 1
            response = {"type": "response", "req": payload.get("id")}
            proc.sim.scheduler.after(
                self.service_time,
                lambda: proc.send_app_message(src, response),
                label=f"server P{self.pid} reply",
            )


class ClientServerWorkload(Workload):
    """Poisson request streams from each client to random servers."""

    name = "client_server"

    def __init__(
        self,
        servers: List[ProcessId],
        request_rate: float = 1.0,
        duration: SimTime = 100.0,
        service_time: SimTime = 0.2,
    ):
        self.servers = servers
        self.request_rate = request_rate
        self.duration = duration
        self.service_time = service_time

    def install(self, sim: "Simulation", procs: Dict[ProcessId, ProtocolDriver]) -> None:
        for server_pid in self.servers:
            server = procs[server_pid]
            app = ReplyingServerApp(server_pid, self.service_time)
            app.process = server
            server.app = app

        clients = [pid for pid in sorted(procs) if pid not in self.servers]
        for pid in clients:
            proc = procs[pid]
            pick = sim.rng.stream(self.name, "server", pid)
            for k, t in enumerate(
                exponential_arrivals(sim, (self.name, "req", pid), self.request_rate, self.duration)
            ):
                server_pid = pick.choice(self.servers)
                request = {"type": "request", "id": f"{pid}-{k}"}
                sim.scheduler.at(
                    t,
                    lambda p=proc, d=server_pid, r=request: p.send_app_message(d, r),
                    label=f"client P{pid} request",
                )
