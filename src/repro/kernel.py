"""The runtime-agnostic kernel contract shared by simulator and live runtime.

Protocol code in :mod:`repro.core`, :mod:`repro.failure` and
:mod:`repro.baselines` never talks to the event loop directly — it goes
through the object bound as ``node.sim``.  Historically that object was
always :class:`repro.sim.simulation.Simulation`; this module names the
actual contract so the *same* protocol classes run under the discrete-event
simulator and under :class:`repro.runtime.loop.AsyncRuntime` (real timers,
real sockets) without a single ``if sim:`` branch.

The contract has three parts:

* :class:`TimerHandle` / :class:`SchedulerLike` — a clock (``now``) plus
  cancellable one-shot callbacks (``at`` / ``after``).  The simulator's
  :class:`~repro.sim.scheduler.Scheduler` pops a heap in virtual time; the
  async runtime arms real :mod:`asyncio` timers.  ``priority`` is a
  same-instant tiebreak that only a virtual-time kernel can honour; real
  kernels accept and ignore it (two live timers never share an instant).
* :class:`KernelLike` — what protocol/failure code reads off ``node.sim``:
  the clock, the scheduler, the trace, the network facade, named RNG
  streams, id allocation, the failure-detector slot, and liveness queries.
* :class:`KernelCore` — the shared concrete half: node registry, liveness,
  and the crash/recover transitions (which must behave identically in both
  worlds, down to the trace records and failure-detector reports).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Protocol, runtime_checkable

from repro.errors import SimulationError
from repro.membership import MembershipPlane
from repro.types import IdAllocator, ProcessId, SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network
    from repro.sim.node import Node
    from repro.sim.rng import Rng
    from repro.sim.trace import Trace


@runtime_checkable
class TimerHandle(Protocol):
    """A scheduled callback that can be cancelled before it fires."""

    cancelled: bool

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        ...


@runtime_checkable
class SchedulerLike(Protocol):
    """Clock + cancellable timers — the kernel's time authority."""

    @property
    def now(self) -> SimTime:
        """Current kernel time, in protocol time units."""
        ...

    def at(
        self,
        time: SimTime,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> TimerHandle:
        """Run ``action`` at absolute kernel time ``time``."""
        ...

    def after(
        self,
        delay: SimTime,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> TimerHandle:
        """Run ``action`` ``delay`` time units from now."""
        ...


@runtime_checkable
class KernelLike(Protocol):
    """What a bound protocol node may ask of its substrate (``node.sim``)."""

    scheduler: SchedulerLike
    trace: "Trace"
    network: "Network"
    rng: "Rng"
    ids: IdAllocator
    failure_detector: Optional[Any]
    nodes: Dict[ProcessId, "Node"]

    @property
    def now(self) -> SimTime: ...

    @property
    def process_ids(self) -> List[ProcessId]: ...

    def is_alive(self, pid: ProcessId) -> bool: ...

    def crash(self, pid: ProcessId) -> None: ...

    def recover(self, pid: ProcessId, stable_state: Any = None) -> None: ...


class KernelCore:
    """Node registry, liveness and failure transitions shared by kernels.

    Subclasses (:class:`~repro.sim.simulation.Simulation`,
    :class:`~repro.runtime.loop.AsyncRuntime`) must provide ``scheduler``,
    ``trace``, ``network``, ``rng`` and a ``now`` property; everything here
    is kernel-agnostic and — crucially — byte-identical between the two, so
    crash/recovery semantics cannot drift between simulation and deployment.
    """

    trace: "Trace"

    def __init__(self) -> None:
        self.nodes: Dict[ProcessId, "Node"] = {}
        self.ids = IdAllocator()
        self.failure_detector: Optional[Any] = None
        self.membership = MembershipPlane()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, node: "Node") -> "Node":
        """Register ``node``; ids must be unique."""
        if node.node_id in self.nodes:
            raise SimulationError(f"duplicate node id {node.node_id}")
        node.bind(self)
        self.nodes[node.node_id] = node
        self.membership.seed(node.node_id)
        return node

    def join_node(self, node: "Node") -> "Node":
        """Admit ``node`` into a *running* system (graceful join).

        The membership-plane sequence is identical in both kernels: the pid
        enters the view pending, the node is registered and started, the
        join commits (bumping the view epoch and notifying subscribers —
        network, detectors, shard rings), and finally every other live node
        hears ``on_join_peer``.  The joiner itself learns the world through
        its ordinary ``on_start``.
        """
        from repro.sim import trace as T  # deferred: repro.sim imports this module

        pid = node.node_id
        self.membership.begin_join(pid)
        node.bind(self)
        self.nodes[pid] = node
        self.trace.record(self.now, T.K_JOIN, pid=pid, epoch=self.membership.view.epoch + 1)
        node.on_start()
        self.membership.complete_join(pid)
        # Iterate hosted nodes, not process_ids: a sharded kernel answers
        # for the whole cluster but hosts (and notifies) only its slice.
        for peer in sorted(self.nodes):
            if peer != pid and not self.nodes[peer].crashed:
                self.nodes[peer].on_join_peer(pid)
        return node

    def leave_node(self, pid: ProcessId, successor: Optional[ProcessId] = None) -> None:
        """Gracefully retire ``pid`` from a running system.

        Unlike :meth:`crash`, departure is cooperative: the node's spooler
        group is drained (dead letters travel as ``(src, label)`` summaries
        in the handoff), the node resolves its protocol obligations via
        ``on_leave`` (which may transmit a handoff to ``successor``), and
        only then is it removed and the view change published.
        """
        from repro.sim import trace as T  # deferred: repro.sim imports this module

        node = self.nodes.get(pid)
        if node is None:
            raise SimulationError(f"P{pid} is not a member")
        if node.crashed:
            raise SimulationError(f"P{pid} is crashed; use recover() first")
        if successor is not None and not self.is_alive(successor):
            raise SimulationError(f"successor P{successor} is not alive")
        self.membership.begin_leave(pid)
        group = self.network.spooler_for(pid)  # type: ignore[attr-defined]
        spooled: tuple = ()
        if group is not None:
            spooled = tuple(
                (env.src, env.label) for env in group.drain(self.is_alive)
            )
        self.trace.record(
            self.now, T.K_LEAVE, pid=pid,
            epoch=self.membership.view.epoch + 1, successor=successor,
        )
        node.on_leave(successor, spooled)
        node.cancel_all_timers()
        node.crashed = True  # nothing may run on it past this point
        del self.nodes[pid]
        self.membership.complete_leave(pid)
        if self.failure_detector is not None:
            self.failure_detector.forget(pid)
        for peer in sorted(self.nodes):
            if not self.nodes[peer].crashed:
                self.nodes[peer].on_leave_peer(pid, successor)

    def node(self, pid: ProcessId) -> "Node":
        return self.nodes[pid]

    @property
    def process_ids(self) -> List[ProcessId]:
        return sorted(self.nodes)

    def is_alive(self, pid: ProcessId) -> bool:
        """True if ``pid`` exists and is not crashed."""
        node = self.nodes.get(pid)
        return node is not None and not node.crashed

    def alive_processes(self) -> List[ProcessId]:
        return [pid for pid in self.process_ids if self.is_alive(pid)]

    # ------------------------------------------------------------------
    # Time (subclasses own the scheduler)
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        return self.scheduler.now  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    def crash(self, pid: ProcessId) -> None:
        """Crash ``pid``: clean fail-stop, volatile state and timers lost."""
        from repro.sim import trace as T  # deferred: repro.sim imports this module

        node = self.nodes[pid]
        if node.crashed:
            raise SimulationError(f"P{pid} is already crashed")
        node.crashed = True
        node.cancel_all_timers()
        self.trace.record(self.now, T.K_CRASH, pid=pid)
        node.on_crash()
        if self.failure_detector is not None:
            self.failure_detector.report_crash(pid)

    def recover(self, pid: ProcessId, stable_state: Any = None) -> None:
        """Restart ``pid`` from its stable storage."""
        from repro.sim import trace as T  # deferred: repro.sim imports this module

        node = self.nodes[pid]
        if not node.crashed:
            raise SimulationError(f"P{pid} is not crashed")
        node.crashed = False
        self.trace.record(self.now, T.K_RECOVER, pid=pid)
        node.on_recover(stable_state)
        if self.failure_detector is not None:
            self.failure_detector.report_recovery(pid)
