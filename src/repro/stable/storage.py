"""Stable storage (paper Section 6, assumption b).

"Process failures do not affect the stable storage.  Thus a recovering
process can always restore its last checkpointed state."

:class:`StableStorage` is a tiny key/value interface with exactly the
semantics the algorithms need: writes are atomic and survive crashes, reads
after a crash see the last completed write.  Two implementations:

* :class:`InMemoryStableStorage` — the default for simulations; "stable"
  simply means it lives outside the node object that gets reset on crash.
* :class:`FileStableStorage` — JSON-per-key on disk, with atomic rename
  writes; used by the file-backed examples and to demonstrate that the
  checkpoint records round-trip through real persistence.

Values must be JSON-serialisable for the file backend; the in-memory backend
stores deep copies so a caller mutating a stored object cannot corrupt the
"disk".
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
from typing import Any, Dict, Iterator

from repro.errors import StableStorageError


class StableStorage:
    """Abstract crash-surviving key/value store."""

    def put(self, key: str, value: Any) -> None:
        raise NotImplementedError

    def get(self, key: str, default: Any = None) -> Any:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel


class InMemoryStableStorage(StableStorage):
    """Dictionary-backed stable storage with copy-on-write semantics."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}

    def put(self, key: str, value: Any) -> None:
        self._data[key] = copy.deepcopy(value)

    def get(self, key: str, default: Any = None) -> Any:
        if key not in self._data:
            return default
        return copy.deepcopy(self._data[key])

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def keys(self) -> Iterator[str]:
        return iter(sorted(self._data))


class FileStableStorage(StableStorage):
    """One JSON file per key under ``root``; writes are atomic renames.

    The atomic rename is what makes this *stable*: a crash mid-write leaves
    either the old value or the new value, never a torn record — the
    Lampson-Sturgis contract the paper cites.
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        safe = key.replace(os.sep, "_")
        return os.path.join(self.root, f"{safe}.json")

    def put(self, key: str, value: Any) -> None:
        path = self._path(key)
        try:
            payload = json.dumps(value)
        except (TypeError, ValueError) as exc:
            raise StableStorageError(f"value for {key!r} is not JSON-serialisable: {exc}") from exc
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def get(self, key: str, default: Any = None) -> Any:
        path = self._path(key)
        if not os.path.exists(path):
            return default
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise StableStorageError(f"corrupt stable record {key!r}: {exc}") from exc

    def delete(self, key: str) -> None:
        path = self._path(key)
        if os.path.exists(path):
            os.unlink(path)

    def keys(self) -> Iterator[str]:
        for name in sorted(os.listdir(self.root)):
            if name.endswith(".json") and not name.startswith(".tmp-"):
                yield name[: -len(".json")]
