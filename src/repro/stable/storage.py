"""Stable storage (paper Section 6, assumption b).

"Process failures do not affect the stable storage.  Thus a recovering
process can always restore its last checkpointed state."

:class:`StableStorage` is a tiny key/value interface with exactly the
semantics the algorithms need: writes are atomic and survive crashes, reads
after a crash see the last completed write.  Backends:

* :class:`InMemoryStableStorage` — the default for simulations; "stable"
  simply means it lives outside the node object that gets reset on crash.
  Backed by the :mod:`repro.stable.snapshot` engine: ``put`` freezes the
  value (O(changed) when unchanged sub-trees are reused) and ``get`` returns
  the frozen view without copying — callers :func:`~repro.stable.snapshot.thaw`
  explicitly if they need to mutate.
* :class:`DeepCopyStableStorage` — the historical copy-on-every-access
  backend, kept as the baseline the E-PERF benchmark and the equivalence
  property tests measure the snapshot engine against.
* :class:`FileStableStorage` — JSON-per-key on disk, with atomic rename
  writes; used by the file-backed examples and to demonstrate that the
  checkpoint records round-trip through real persistence.
* :class:`WriteBehindFileStableStorage` — batched variant: puts buffer in
  memory and a group-commit ``flush`` writes them all, each through the same
  tmp-file + atomic-rename path, so flushed records are never torn.

Values must be JSON-shaped (dicts, lists, tuples, scalars) — the snapshot
engine enforces for the in-memory backend what JSON encoding enforces for
the file backends.
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
from typing import Any, Dict, Iterator, Optional

from repro.errors import StableStorageError
from repro.stable.snapshot import SnapshotEngine

_KEY_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-."
)


class StableStorage:
    """Abstract crash-surviving key/value store."""

    def put(self, key: str, value: Any) -> None:
        raise NotImplementedError

    def get(self, key: str, default: Any = None) -> Any:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel


class InMemoryStableStorage(StableStorage):
    """Dictionary-backed stable storage over the snapshot engine.

    ``put`` freezes (no deep copy; caller mutations cannot leak in because
    mutable containers are converted, not aliased).  ``get`` hands out the
    stored frozen view directly — an O(1) read; mutation attempts raise and
    ``thaw()`` is the explicit escape hatch.  Identical sub-trees are
    interned by content hash, so the two checkpoint slots and successive
    checkpoints share structure instead of duplicating it.
    """

    def __init__(self, engine: Optional[SnapshotEngine] = None) -> None:
        self._data: Dict[str, Any] = {}
        self.engine = engine or SnapshotEngine()

    def put(self, key: str, value: Any) -> None:
        self._data[key] = self.engine.store(key, value)

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def delete(self, key: str) -> None:
        self._data.pop(key, None)
        self.engine.forget(key)

    def keys(self) -> Iterator[str]:
        return iter(sorted(self._data))

    def __contains__(self, key: str) -> bool:
        return key in self._data


class DeepCopyStableStorage(StableStorage):
    """The pre-snapshot-engine backend: deep copy on every put *and* get.

    Semantically interchangeable with :class:`InMemoryStableStorage` (the
    equivalence property tests assert identical protocol traces); kept as
    the measured baseline for the E-PERF checkpoint-throughput comparison.
    """

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}

    def put(self, key: str, value: Any) -> None:
        self._data[key] = copy.deepcopy(value)

    def get(self, key: str, default: Any = None) -> Any:
        if key not in self._data:
            return default
        return copy.deepcopy(self._data[key])

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def keys(self) -> Iterator[str]:
        return iter(sorted(self._data))

    def __contains__(self, key: str) -> bool:
        return key in self._data


def escape_key(key: str) -> str:
    """Reversible, filesystem-safe encoding of a storage key.

    Safe characters pass through; anything else (including ``/``, ``%`` and
    a *leading* dot, which would collide with hidden/tmp files) becomes
    ``%XX`` per UTF-8 byte.  Distinct keys always map to distinct names —
    the old ``os.sep -> "_"`` squash mapped ``a/b`` and ``a_b`` to the same
    file.
    """
    out = []
    for index, char in enumerate(key):
        if char in _KEY_SAFE and not (char == "." and index == 0):
            out.append(char)
        else:
            out.extend("%{:02X}".format(byte) for byte in char.encode("utf-8"))
    return "".join(out)


def unescape_key(name: str) -> str:
    """Inverse of :func:`escape_key`."""
    raw = bytearray()
    index = 0
    while index < len(name):
        char = name[index]
        if char == "%":
            raw.extend(bytes.fromhex(name[index + 1:index + 3]))
            index += 3
        else:
            raw.extend(char.encode("utf-8"))
            index += 1
    return raw.decode("utf-8")


class FileStableStorage(StableStorage):
    """One JSON file per key under ``root``; writes are atomic renames.

    The atomic rename is what makes this *stable*: a crash mid-write leaves
    either the old value or the new value, never a torn record — the
    Lampson-Sturgis contract the paper cites.  Keys round-trip through
    :func:`escape_key`, so ``keys()`` returns exactly what was put.
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{escape_key(key)}.json")

    def _encode(self, key: str, value: Any) -> str:
        try:
            return json.dumps(value)
        except (TypeError, ValueError) as exc:
            raise StableStorageError(f"value for {key!r} is not JSON-serialisable: {exc}") from exc

    def _write_atomic(self, path: str, payload: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def put(self, key: str, value: Any) -> None:
        self._write_atomic(self._path(key), self._encode(key, value))

    def get(self, key: str, default: Any = None) -> Any:
        path = self._path(key)
        if not os.path.exists(path):
            return default
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise StableStorageError(f"corrupt stable record {key!r}: {exc}") from exc

    def delete(self, key: str) -> None:
        path = self._path(key)
        if os.path.exists(path):
            os.unlink(path)

    def keys(self) -> Iterator[str]:
        found = [
            unescape_key(name[: -len(".json")])
            for name in os.listdir(self.root)
            if name.endswith(".json") and not name.startswith(".tmp-")
        ]
        return iter(sorted(found))


class WriteBehindFileStableStorage(FileStableStorage):
    """Batched :class:`FileStableStorage` with a group-commit ``flush``.

    Puts and deletes buffer in memory (values are JSON-encoded immediately,
    preserving both the put-time error contract and put-time value capture)
    and reads are served buffer-first, so the store is always read-your-
    writes consistent.  ``flush`` applies the whole batch: every buffered
    value is written to a temp file first, then the batch is published with
    one atomic rename per key — a flushed record is never torn, exactly the
    per-key contract of the unbatched backend.  Durability is batch-
    granular by design (write-behind): records buffered since the last
    flush are lost on a crash, which the checkpoint layer tolerates because
    an uncommitted ``newchkpt`` may always be aborted.
    """

    _DELETED = object()

    def __init__(self, root: str, flush_every: int = 64):
        super().__init__(root)
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.flush_every = flush_every
        self.flushes = 0
        self._buffer: Dict[str, Any] = {}
        self._ops_since_flush = 0

    def _note_op(self) -> None:
        # The threshold counts operations, not distinct keys: a checkpoint
        # workload rewrites the same few keys over and over, and batching
        # must still bound how much history a crash can lose.
        self._ops_since_flush += 1
        if self._ops_since_flush >= self.flush_every:
            self.flush()

    def put(self, key: str, value: Any) -> None:
        self._buffer[key] = self._encode(key, value)
        self._note_op()

    def get(self, key: str, default: Any = None) -> Any:
        if key in self._buffer:
            entry = self._buffer[key]
            return default if entry is self._DELETED else json.loads(entry)
        return super().get(key, default)

    def delete(self, key: str) -> None:
        self._buffer[key] = self._DELETED
        self._note_op()

    def keys(self) -> Iterator[str]:
        on_disk = set(super().keys())
        for key, entry in self._buffer.items():
            if entry is self._DELETED:
                on_disk.discard(key)
            else:
                on_disk.add(key)
        return iter(sorted(on_disk))

    def flush(self) -> None:
        """Group-commit the buffered batch to disk."""
        self._ops_since_flush = 0
        if not self._buffer:
            return
        staged = []
        try:
            for key, entry in sorted(self._buffer.items()):
                if entry is self._DELETED:
                    continue
                fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
                with os.fdopen(fd, "w") as handle:
                    handle.write(entry)
                staged.append((tmp, self._path(key)))
        except OSError:
            for tmp, _path in staged:
                if os.path.exists(tmp):
                    os.unlink(tmp)
            raise
        for tmp, path in staged:
            os.replace(tmp, path)
        for key, entry in self._buffer.items():
            if entry is self._DELETED:
                super().delete(key)
        self._buffer.clear()
        self.flushes += 1

    def close(self) -> None:
        self.flush()
