"""Stable storage, the snapshot engine, and the checkpoint slots."""

from repro.stable.checkpoint import CheckpointStore, MultiCheckpointStore
from repro.stable.snapshot import (
    ChunkStore,
    FrozenDict,
    FrozenList,
    SnapshotEngine,
    diff,
    digest,
    freeze,
    patch,
    thaw,
)
from repro.stable.storage import (
    DeepCopyStableStorage,
    FileStableStorage,
    InMemoryStableStorage,
    StableStorage,
    WriteBehindFileStableStorage,
    escape_key,
    unescape_key,
)

__all__ = [
    "CheckpointStore",
    "ChunkStore",
    "DeepCopyStableStorage",
    "FileStableStorage",
    "FrozenDict",
    "FrozenList",
    "InMemoryStableStorage",
    "MultiCheckpointStore",
    "SnapshotEngine",
    "StableStorage",
    "WriteBehindFileStableStorage",
    "diff",
    "digest",
    "escape_key",
    "freeze",
    "patch",
    "thaw",
    "unescape_key",
]
