"""Stable storage and the oldchkpt/newchkpt checkpoint slots."""

from repro.stable.checkpoint import CheckpointStore, MultiCheckpointStore
from repro.stable.storage import (
    FileStableStorage,
    InMemoryStableStorage,
    StableStorage,
)

__all__ = [
    "CheckpointStore",
    "FileStableStorage",
    "InMemoryStableStorage",
    "MultiCheckpointStore",
    "StableStorage",
]
